// ShardVault walkthrough: one tenant across several enclaves.
//
//   1. train a vault, plan a 3-way shard split of the private graph;
//   2. deploy: one enclave per shard (distinct platforms), sealed shard
//      packages, attested inter-shard channels;
//   3. serve through the sharded server (micro-batches split by ownership);
//   4. replicate to a standby platform, kill a shard, and watch the standby
//      get PROMOTED to PRIMARY (rebuilt from its re-sealed package,
//      re-handshaked, re-materialized) while queries wait on the fence;
//   5. audit: only embeddings crossed inter-shard channels — never edges.
//
// Build: cmake --build build --target shard_demo && ./build/shard_demo
#include <cstdio>

#include "data/synthetic.hpp"
#include "shard/sharded_server.hpp"

using namespace gv;

int main() {
  // --- A private graph the vendor wants served. --------------------------
  SyntheticSpec spec;
  spec.num_nodes = 900;
  spec.num_classes = 4;
  spec.num_undirected_edges = 1800;
  spec.feature_dim = 120;
  const Dataset ds = generate_synthetic(spec, 42);

  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"demo", {32, 16}, {32, 16}, 0.4f};
  cfg.backbone_train.epochs = 60;
  cfg.rectifier_train.epochs = 60;
  TrainedVault vault = train_vault(ds, cfg);
  std::printf("trained vault: backbone %.3f / rectifier %.3f test accuracy\n",
              vault.backbone_test_accuracy, vault.rectifier_test_accuracy);

  // --- 1. Plan: greedy edge-cut, balanced by working set. ----------------
  const ShardPlan plan = ShardPlanner::plan(ds, vault, 3);
  std::printf("plan: %u shards, %zu cut edges (of %zu)\n", plan.num_shards,
              plan.cut_edges, ds.graph.num_edges());
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    std::printf("  shard %u: %5zu nodes, closure %5zu, est %6.2f MB\n", s,
                plan.shards[s].nodes.size(), plan.shards[s].closure_nodes,
                plan.shards[s].estimated_bytes / (1024.0 * 1024.0));
  }

  // --- 2+3. Deploy sharded, with warm replicas on a standby platform. ----
  ShardedDeploymentOptions dopts;
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    Sha256 h;
    h.update("demo-platform-" + std::to_string(s));
    dopts.platform_keys.push_back(h.finish());
  }
  ShardedServerConfig scfg;
  scfg.server.max_batch = 16;
  scfg.server.max_wait = std::chrono::microseconds(500);
  scfg.server.cache_capacity = 0;  // every query reaches a shard enclave
  scfg.replicate = true;
  ShardedVaultServer server(ds, vault, plan, dopts, scfg);

  std::printf("query node 17 (owner shard %u): label %u\n",
              server.deployment().owner(17), server.query(17));
  std::printf("query node 555 (owner shard %u): label %u\n",
              server.deployment().owner(555), server.query(555));

  // --- 4. Kill a shard; the standby is promoted to PRIMARY. --------------
  const std::uint32_t victim = server.deployment().owner(17);
  server.kill_shard(victim);  // fences the shard, promotes in the background
  std::printf("killed shard %u; node 17 still answers: label %u\n", victim,
              server.query(17));
  // A feature update AFTER the kill: only possible because the promoted
  // PRIMARY rejoined the halo exchange (a warm standby alone would be
  // serving a stale snapshot from here on).
  CsrMatrix drifted = ds.features;
  for (auto& v : drifted.mutable_values()) v *= 0.9f;
  server.update_features(drifted);
  std::printf("post-kill feature update ok; node 17 now: label %u\n",
              server.query(17));

  const auto stats = server.stats();
  std::printf("served %llu requests, %llu failovers, %llu promotion "
              "(%.1f ms), %.0f req/s modeled\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.promotions),
              stats.mean_promotion_ms, stats.requests_per_second);

  // --- 5. Channel audit: the one-way/no-adjacency-leak invariant. --------
  const auto& dep = server.deployment();
  std::printf("inter-shard channels: %.1f KB embeddings, %llu label bytes, "
              "%llu package bytes (edges never cross)\n",
              dep.halo_embedding_bytes() / 1024.0,
              static_cast<unsigned long long>(dep.halo_label_bytes()),
              static_cast<unsigned long long>(dep.halo_package_bytes()));
  return 0;
}
