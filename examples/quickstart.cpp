// Quickstart: the whole GNNVault lifecycle in ~80 lines.
//
//   1. load a dataset (a synthetic Cora twin, scaled down so this runs in
//      seconds);
//   2. train the public backbone on a KNN substitute graph and the private
//      rectifier on the real adjacency (partition-before-training);
//   3. deploy: backbone in the normal world, rectifier + private graph in
//      a (simulated) SGX enclave;
//   4. run secure label-only inference and inspect cost/memory.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/deployment.hpp"
#include "data/catalog.hpp"

using namespace gv;

int main() {
  // --- 1. Data. ---------------------------------------------------------
  const Dataset ds = load_dataset(DatasetId::kCora, /*seed=*/42, /*scale=*/0.25);
  std::printf("dataset %s: %u nodes, %zu edges, %zu features, %u classes\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges(),
              ds.feature_dim(), ds.num_classes);

  // --- 2. Partition-before-training. -------------------------------------
  VaultTrainConfig cfg;
  cfg.spec = model_spec_m1();           // backbone (128,32,C), rectifier (128,32,C)
  cfg.backbone = BackboneKind::kKnn;    // substitute graph from public features
  cfg.knn_k = 2;                        // the paper's default (Fig. 5 ablation)
  cfg.rectifier = RectifierKind::kParallel;  // best-accuracy design (Table II)
  cfg.backbone_train.epochs = 100;
  cfg.rectifier_train.epochs = 100;
  TrainedVault vault = train_vault(ds, cfg);

  double p_org = 0.0;
  train_original_gnn(ds, cfg.spec, cfg.backbone_train, cfg.seed, &p_org);
  std::printf("accuracy: original %.1f%% | public backbone %.1f%% | "
              "rectified %.1f%% (protection gap %.1f points)\n",
              p_org * 100, vault.backbone_test_accuracy * 100,
              vault.rectifier_test_accuracy * 100,
              (vault.rectifier_test_accuracy - vault.backbone_test_accuracy) * 100);
  std::printf("parameters: backbone %.3fM (public) vs rectifier %.4fM (in enclave)\n",
              vault.backbone_parameters / 1e6, vault.rectifier_parameters / 1e6);

  // --- 3. Deploy into the enclave. ---------------------------------------
  VaultDeployment deployment(ds, std::move(vault), {});
  std::printf("enclave measurement: %s\n",
              to_hex(deployment.enclave().measurement()).c_str());

  // --- 4. Secure, label-only inference. -----------------------------------
  const auto labels = deployment.infer_labels(ds.features);
  const double acc = accuracy_on(labels, ds.labels, ds.split.test);
  std::printf("secure inference accuracy: %.1f%% (labels only — logits never "
              "leave the enclave)\n", acc * 100);
  std::printf("cost: %s\n",
              deployment.meter().summary(deployment.cost_model()).c_str());
  std::printf("enclave peak memory: %.2f MB (EPC budget: %zu MB)\n",
              deployment.enclave_peak_bytes() / (1024.0 * 1024.0),
              deployment.cost_model().epc_bytes >> 20);
  return 0;
}
