// Serving demo: two tenants behind one EPC-aware registry, batched
// label-only queries through futures, and a metrics snapshot.
//
//   1. train two vaults (different datasets — two model vendors);
//   2. admit both into a VaultRegistry (each gets its own enclave; the
//      registry refuses tenants that would thrash the shared EPC);
//   3. fire a burst of concurrent per-node queries at both tenants — the
//      servers coalesce them into batched ecalls and resolve futures;
//   4. repeat a few queries to show the LRU label cache short-circuiting.
//
// Build & run:  ./build/serve_demo
#include <cstdio>

#include "data/catalog.hpp"
#include "serve/registry.hpp"

using namespace gv;

int main() {
  // --- 1. Two vendors train their vaults. --------------------------------
  const Dataset cora = load_dataset(DatasetId::kCora, /*seed=*/42, /*scale=*/0.25);
  const Dataset cite = load_dataset(DatasetId::kCiteseer, /*seed=*/7, /*scale=*/0.25);
  VaultTrainConfig cfg;
  cfg.backbone_train.epochs = 80;
  cfg.rectifier_train.epochs = 80;
  TrainedVault vault_a = train_vault(cora, cfg);
  TrainedVault vault_b = train_vault(cite, cfg);

  // --- 2. Admission into the shared-EPC registry. ------------------------
  VaultRegistry registry;
  ServerConfig scfg;
  scfg.max_batch = 16;
  scfg.max_wait = std::chrono::microseconds(800);
  scfg.worker_threads = 2;
  scfg.cache_capacity = 256;
  for (const auto& [tenant, ds, vault] :
       {std::tuple<const char*, const Dataset*, TrainedVault*>{"cora-vendor", &cora,
                                                               &vault_a},
        {"citeseer-vendor", &cite, &vault_b}}) {
    const auto r = registry.admit(tenant, *ds, std::move(*vault), scfg);
    std::printf("admit %-16s -> %s (%.2f MB of %.2f MB EPC budget in use)\n",
                tenant,
                r.decision == AdmissionDecision::kAdmitted ? "ADMITTED"
                : r.decision == AdmissionDecision::kQueued ? "QUEUED"
                                                           : "REJECTED",
                registry.epc_in_use() / (1024.0 * 1024.0),
                registry.epc_budget() / (1024.0 * 1024.0));
  }

  // --- 3. A burst of per-node queries; futures resolve label-only. -------
  const auto a = registry.server("cora-vendor");
  const auto b = registry.server("citeseer-vendor");
  std::vector<std::uint32_t> nodes_a, nodes_b;
  for (std::uint32_t v = 0; v < 200; ++v) {
    nodes_a.push_back(v % cora.num_nodes());
    nodes_b.push_back((v * 3) % cite.num_nodes());
  }
  auto futs_a = a->submit_many(nodes_a);
  auto futs_b = b->submit_many(nodes_b);
  a->flush();
  b->flush();
  std::uint64_t checksum = 0;
  for (auto& f : futs_a) checksum += f.get();
  for (auto& f : futs_b) checksum += f.get();
  std::printf("served %zu queries across 2 tenants (label checksum %llu)\n",
              futs_a.size() + futs_b.size(),
              static_cast<unsigned long long>(checksum));

  // --- 4. Repeat queries hit the LRU label cache. ------------------------
  for (int i = 0; i < 100; ++i) a->query(static_cast<std::uint32_t>(i % 50));
  std::printf("tenant %-16s %s\n", "cora-vendor", a->stats().summary().c_str());
  std::printf("tenant %-16s %s\n", "citeseer-vendor", b->stats().summary().c_str());
  return 0;
}
