// Link-stealing attack demo (paper Sec. V-D / Table IV).
//
// Trains three models on the same graph and attacks each with all six
// similarity metrics, printing a mini Table IV:
//   M_org  - unprotected GNN: the attacker sees embeddings computed WITH
//            the private adjacency -> heavy leakage;
//   M_gv   - GNNVault: the attacker sees only the public backbone's
//            embeddings (substitute graph) -> leakage drops to...
//   M_base - ...the feature-only MLP floor.
#include <cstdio>

#include "attack/link_stealing.hpp"
#include "core/pipeline.hpp"
#include "data/catalog.hpp"
#include "nn/trainer.hpp"

using namespace gv;

int main() {
  const Dataset ds = load_dataset(DatasetId::kCora, 42, /*scale=*/0.3);
  const ModelSpec spec = model_spec_m1();
  TrainConfig tc;
  tc.epochs = 100;

  std::printf("training M_org (unprotected GNN)...\n");
  double p_org = 0.0;
  auto original = train_original_gnn(ds, spec, tc, 42, &p_org);
  original->forward(ds.features, false);
  const auto org_layers = original->layer_outputs();

  std::printf("training M_gv (GNNVault)...\n");
  VaultTrainConfig cfg;
  cfg.spec = spec;
  cfg.backbone_train.epochs = tc.epochs;
  cfg.rectifier_train.epochs = tc.epochs;
  const TrainedVault vault = train_vault(ds, cfg);
  const auto gv_layers = vault.backbone_outputs(ds.features);

  std::printf("training M_base (feature-only DNN)...\n");
  auto base_cfg = cfg;
  base_cfg.backbone = BackboneKind::kDnn;
  const TrainedVault base = train_vault(ds, base_cfg);
  const auto base_layers = base.backbone_outputs(ds.features);

  Rng rng(99);
  const PairSample pairs = sample_link_pairs(ds.graph, 3000, rng);
  std::printf("\n%-12s %8s %8s %8s\n", "metric", "M_org", "M_gv", "M_base");
  for (const auto metric : all_similarity_metrics()) {
    std::printf("%-12s %8.3f %8.3f %8.3f\n", metric_name(metric).c_str(),
                link_stealing_auc(org_layers, pairs, metric),
                link_stealing_auc(gv_layers, pairs, metric),
                link_stealing_auc(base_layers, pairs, metric));
  }
  std::printf("\naccuracies: M_org %.1f%%, GNNVault rectified %.1f%% "
              "(protection without losing utility)\n",
              p_org * 100, vault.rectifier_test_accuracy * 100);
  std::printf("Interpretation: M_gv columns should sit near M_base — the\n"
              "attacker learns nothing about edges beyond what public\n"
              "features already reveal.\n");
  return 0;
}
