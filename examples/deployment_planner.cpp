// Deployment planner: given a dataset and model spec, compare the three
// rectifier designs on the axes an edge deployment cares about — enclave
// memory vs the 96 MB EPC, bytes crossing the one-way channel, end-to-end
// latency vs the unprotected baseline, and accuracy — then print a
// recommendation. Demonstrates using the library as a decision tool
// rather than a fixed pipeline.
#include <cstdio>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "data/catalog.hpp"

using namespace gv;

int main(int argc, char** argv) {
  // Optional arg: dataset name (Cora, Citeseer, Pubmed, Computer, Photo,
  // CoraFull). Default: Citeseer.
  std::string want = argc > 1 ? argv[1] : "Citeseer";
  DatasetId id = DatasetId::kCiteseer;
  for (const auto candidate : all_dataset_ids()) {
    if (dataset_name(candidate) == want) id = candidate;
  }
  const Dataset ds = load_dataset(id, 42, /*scale=*/0.3);
  std::printf("planning deployment for %s (%u nodes, %zu private edges)\n",
              ds.name.c_str(), ds.num_nodes(), ds.graph.num_edges());

  double p_org = 0.0;
  TrainConfig tc;
  tc.epochs = 100;
  auto original = train_original_gnn(ds, model_spec_for_dataset(id), tc, 42, &p_org);
  const double unprotected_s = time_unprotected_inference(*original, ds.features);

  struct Candidate {
    RectifierKind kind;
    double accuracy;
    double total_ms;
    double overhead_pct;
    double enclave_peak_mb;
    double transfer_kb;
  };
  std::vector<Candidate> candidates;

  for (const auto kind :
       {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
    VaultTrainConfig cfg;
    cfg.spec = model_spec_for_dataset(id);
    cfg.rectifier = kind;
    cfg.backbone_train.epochs = tc.epochs;
    cfg.rectifier_train.epochs = tc.epochs;
    TrainedVault tv = train_vault(ds, cfg);
    const double acc = tv.rectifier_test_accuracy;
    VaultDeployment dep(ds, std::move(tv), {});
    dep.infer_labels(ds.features);  // warm-up
    dep.reset_meter();
    dep.infer_labels(ds.features);
    const double total = dep.meter().total_seconds(dep.cost_model());
    candidates.push_back({kind, acc, total * 1e3,
                          (total / unprotected_s - 1.0) * 100.0,
                          dep.enclave_peak_bytes() / (1024.0 * 1024.0),
                          dep.bytes_transferred() / 1024.0});
  }

  std::printf("\nunprotected CPU inference: %.2f ms, accuracy %.1f%%\n",
              unprotected_s * 1e3, p_org * 100);
  std::printf("%-10s %9s %10s %10s %12s %12s\n", "design", "acc(%)", "total(ms)",
              "ovh(%)", "enclave(MB)", "transfer(KB)");
  for (const auto& c : candidates) {
    std::printf("%-10s %9.1f %10.2f %10.1f %12.2f %12.1f\n",
                rectifier_kind_name(c.kind).c_str(), c.accuracy * 100, c.total_ms,
                c.overhead_pct, c.enclave_peak_mb, c.transfer_kb);
  }

  // Simple recommendation policy: best accuracy unless another design is
  // within 1 accuracy point and at least 25% cheaper end-to-end.
  const Candidate* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.accuracy > best->accuracy) best = &c;
  }
  const Candidate* pick = best;
  for (const auto& c : candidates) {
    if (best->accuracy - c.accuracy < 0.01 && c.total_ms < pick->total_ms * 0.75) {
      pick = &c;
    }
  }
  std::printf("\nrecommendation: %s rectifier (accuracy %.1f%%, %.2f ms, "
              "%.2f MB enclave peak)\n",
              rectifier_kind_name(pick->kind).c_str(), pick->accuracy * 100,
              pick->total_ms, pick->enclave_peak_mb);
  return 0;
}
