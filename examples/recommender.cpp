// The paper's Fig. 1 motivating scenario: Alice ships a product
// recommender to edge devices.
//
// Node = product; features = public attributes (price band, category,
// review keywords); private edges = "customers who bought X also bought Y"
// learned from Alice's proprietary user-behavior data. Bob, a curious user
// with root on the device, wants those co-purchase edges and the accurate
// model. GNNVault gives Bob only a low-accuracy backbone and feature-
// derived embeddings; the co-purchase graph stays in the enclave.
#include <cstdio>

#include "attack/link_stealing.hpp"
#include "core/deployment.hpp"
#include "data/synthetic.hpp"

using namespace gv;

int main() {
  // A product catalog: 1500 products, 8 departments, co-purchase edges are
  // strongly department-assortative; attributes are noisy department hints.
  SyntheticSpec catalog;
  catalog.name = "product-catalog";
  catalog.num_nodes = 1500;
  catalog.num_classes = 8;
  catalog.num_undirected_edges = 6000;
  catalog.feature_dim = 300;
  catalog.homophily = 0.85;       // co-purchases cluster within departments
  catalog.feature_signal = 0.45;  // public attributes are weak predictors
  catalog.features_per_node = 20;
  const Dataset products = generate_synthetic(catalog, 2024);
  std::printf("catalog: %u products, %zu private co-purchase edges\n",
              products.num_nodes(), products.graph.num_edges());

  // Alice trains GNNVault: the recommendation task here is department-level
  // product classification (the node-classification stand-in the paper
  // evaluates; a ranking head would sit on the same embeddings).
  VaultTrainConfig cfg;
  cfg.spec = model_spec_m1();
  cfg.rectifier = RectifierKind::kSeries;  // smallest enclave footprint
  cfg.backbone_train.epochs = 120;
  cfg.rectifier_train.epochs = 120;
  TrainedVault vault = train_vault(products, cfg);
  std::printf("public backbone accuracy (what Bob can steal): %.1f%%\n",
              vault.backbone_test_accuracy * 100);
  std::printf("rectified accuracy (served via enclave):        %.1f%%\n",
              vault.rectifier_test_accuracy * 100);

  // Bob's attack: infer co-purchase links from everything visible in the
  // untrusted world.
  const auto observable = vault.backbone_outputs(products.features);
  Rng rng(7);
  const PairSample pairs = sample_link_pairs(products.graph, 3000, rng);
  const double auc =
      link_stealing_auc(observable, pairs, SimilarityMetric::kCosine);
  std::printf("Bob's link-stealing AUC against GNNVault: %.3f "
              "(features-only floor; 1.0 = full leak)\n", auc);

  // Deploy and serve.
  VaultDeployment dep(products, std::move(vault), {});
  const auto recommendations = dep.infer_labels(products.features);
  std::printf("served %zu label-only predictions; enclave peak %.2f MB; %s\n",
              recommendations.size(),
              dep.enclave_peak_bytes() / (1024.0 * 1024.0),
              dep.meter().summary(dep.cost_model()).c_str());
  return 0;
}
