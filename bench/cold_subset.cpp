// Cold cross-shard subset inference: what does a demand-driven query cost,
// and how much of the fleet does it touch?
//
// For each shard count K the bench issues random query batches through
// ShardedVaultDeployment::infer_labels_subset_cold in two fleet states:
//
//   warm        the fleet refreshed once, so halo pulls are answered from
//               the surviving shards' retained boundary activations — a
//               cold query computes ONLY inside the owner shards of its
//               query nodes and touches just its frontier's shards;
//   cold-start  no refresh ever ran (no label stores, no retained
//               activations): the frontier walk recurses across
//               boundaries and peers compute their boundary rows live.
//
// Either way the labels must be BIT-EXACT against the single-enclave
// oracle (TrainedVault::predict_rectified_subset).  Reported per row: mean
// shards computed/touched (vs the whole fleet K), frontier rows, halo
// request/embedding traffic, and modeled ms per query; the headline scalar
// is the worst-case fraction of the fleet a warm single-node query touched.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI uploads.
#include "bench_common.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "shard/sharded_deployment.hpp"

using namespace gv;
using namespace gv::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "cold_subset: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);

  Table table("Cold cross-shard subset inference (frontier shards, not the fleet)");
  table.set_header({"shards", "fleet", "batch", "queries", "shards computed",
                    "shards touched", "frontier rows/q", "halo KB/q",
                    "modeled ms/q", "bit-exact"});

  Rng rng(s.seed ^ 0xc01d5b5eull);
  constexpr std::size_t kBatches = 8;
  double worst_warm_single_fraction = 0.0;
  bool all_exact = true;

  for (const std::uint32_t K : {2u, 4u, 8u}) {
    for (const bool warm : {true, false}) {
      ShardedVaultDeployment dep(ds, vault, ShardPlanner::plan(ds, vault, K));
      if (warm) dep.refresh(ds.features);

      for (const std::size_t batch : warm ? std::vector<std::size_t>{1, 8, 32}
                                          : std::vector<std::size_t>{32}) {
        double computed = 0.0, touched = 0.0, frontier = 0.0, halo_kb = 0.0;
        double modeled_ms = 0.0;
        bool exact = true;
        for (std::size_t b = 0; b < kBatches; ++b) {
          std::vector<std::uint32_t> nodes(batch);
          for (auto& v : nodes) {
            v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
          }
          ColdSubsetStats st;
          const auto got = dep.infer_labels_subset_cold(ds.features, nodes, &st);
          const auto oracle = vault.predict_rectified_subset(ds.features, nodes);
          exact = exact && std::equal(got.begin(), got.end(), oracle.begin());
          computed += static_cast<double>(st.shards_computed);
          touched += static_cast<double>(st.shards_touched);
          frontier += static_cast<double>(st.frontier_rows);
          halo_kb += (st.halo_request_bytes + st.halo_embedding_bytes) / 1024.0;
          modeled_ms += st.modeled_seconds * 1e3;
        }
        computed /= kBatches;
        touched /= kBatches;
        all_exact = all_exact && exact;
        if (warm && batch == 1) {
          worst_warm_single_fraction =
              std::max(worst_warm_single_fraction, touched / K);
        }
        table.add_row({std::to_string(K), warm ? "warm" : "cold-start",
                       std::to_string(batch), std::to_string(kBatches * batch),
                       Table::fmt(computed, 1), Table::fmt(touched, 1),
                       Table::fmt(frontier / kBatches, 0),
                       Table::fmt(halo_kb / kBatches, 2),
                       Table::fmt(modeled_ms / kBatches, 3),
                       exact ? "yes" : "NO"});
      }
    }
  }

  table.print();
  GV_LOG_INFO << "worst warm single-query fleet fraction touched: "
              << Table::fmt(worst_warm_single_fraction, 2) << " (1.0 = whole fleet)"
              << (all_exact ? "" : "  [BIT-EXACTNESS FAILED]");
  table.write_csv(out_dir() + "/cold_subset.csv");
  write_json(args, "cold_subset", s, {&table},
             {{"worst_warm_single_fleet_fraction", worst_warm_single_fraction},
              {"all_bit_exact", all_exact ? 1.0 : 0.0}});
  return 0;
}
