// VaultScope overhead: what does fleet-wide tracing + the metrics registry
// cost the serving path?
//
// The same kill -> promote -> cold-query scenario runs twice on identically
// planned fleets — tracing disabled (the default) and enabled — and the
// bench compares the MODELED throughput of the two runs.  Span emission is
// designed to live outside every cost-model stopwatch window, so enabled
// tracing must stay within 3% of the disabled run's modeled req/s (the
// residual is wall-clock noise leaking into the wall-derived meter, not a
// systematic charge).  The enabled run's trace is exported to
// bench_out/trace_serve.json, validated (parse + per-thread slice nesting),
// and checked to actually cover the scenario: queue waits, batch flushes,
// per-shard ecalls, per-layer halo exchange, promotion phases, cold-path
// recursion.
//
// The bench also pins the ServerMetrics::snapshot() fix: the legacy
// sort-8192-doubles-under-mutex latency reservoir is rebuilt inline and
// raced against the log-bucketed Histogram snapshot it was replaced with;
// the histogram must win (O(buckets) vs O(window log window)).
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI uploads.
#include "bench_common.hpp"

#include <algorithm>
#include <mutex>
#include <set>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_server.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

struct ServeRun {
  double modeled_rps = 0.0;
  double modeled_seconds = 0.0;
  bool exact = true;
};

/// Cold queries -> store materialization -> warm queries -> kill ->
/// fenced queries against the promoted PRIMARY.  Every label is checked
/// against the single-enclave oracle.
ServeRun run_scenario(const Dataset& ds, const TrainedVault& vault,
                      std::uint32_t K, std::uint64_t seed,
                      const std::vector<std::uint32_t>& truth) {
  ServeRun out;
  ShardedServerConfig scfg;
  scfg.server.max_batch = 16;
  scfg.server.worker_threads = 2;
  scfg.replicate = true;
  scfg.materialize_on_start = false;  // start COLD: demand-driven cross-shard path
  ShardedVaultServer cold(ds, vault, ShardPlanner::plan(ds, vault, K), {}, scfg);

  Rng rng(seed ^ 0x0b5e7eadull);
  const auto wave = [&](std::size_t n) {
    std::vector<std::uint32_t> nodes(n);
    for (auto& v : nodes) {
      v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
    }
    auto futs = cold.submit_many(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out.exact = out.exact && futs[i].get() == truth[nodes[i]];
    }
  };

  wave(64);  // cold path: stores not yet materialized
  cold.update_features(ds.features);  // materialize + replica re-ship
  wave(128);                          // warm store lookups

  const std::uint32_t victim =
      cold.deployment().plan().owner[rng.uniform_index(ds.num_nodes())];
  cold.kill_shard(victim);
  wave(128);  // fenced until promotion lands, then the new PRIMARY answers
  cold.flush();

  const MetricsSnapshot s = cold.stats();
  out.modeled_rps = s.requests_per_second;
  out.modeled_seconds = s.modeled_seconds;
  return out;
}

/// The pre-VaultScope latency reservoir, rebuilt verbatim: a fixed window
/// of doubles behind a mutex, fully copied + sorted on every snapshot.
class LegacyReservoir {
 public:
  static constexpr std::size_t kWindow = 8192;

  void record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.size() < kWindow) {
      window_.push_back(ms);
    } else {
      window_[next_++ % kWindow] = ms;
    }
  }

  void percentiles(double* p50, double* p95, double* p99) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<double> sorted = window_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double p) {
      if (sorted.empty()) return 0.0;
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(i, sorted.size() - 1)];
    };
    *p50 = at(0.50);
    *p95 = at(0.95);
    *p99 = at(0.99);
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> window_;
  std::size_t next_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "obs_overhead: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);
  const auto truth = vault.predict_rectified(ds.features);
  constexpr std::uint32_t K = 4;

  auto& rec = TraceRecorder::instance();

  // --- Throughput with tracing off vs on (3 runs each; best run kept, so
  // scheduler noise in the wall-derived meter does not masquerade as
  // tracing overhead). -------------------------------------------------------
  ServeRun off, on;
  rec.set_enabled(false);
  for (int rep = 0; rep < 3; ++rep) {
    const ServeRun r = run_scenario(ds, vault, K, s.seed + rep, truth);
    GV_CHECK(r.exact, "serving run (tracing off) answered inexactly");
    if (r.modeled_rps > off.modeled_rps) off = r;
  }
  rec.clear();
  rec.set_enabled(true);
  for (int rep = 0; rep < 3; ++rep) {
    const ServeRun r = run_scenario(ds, vault, K, s.seed + rep, truth);
    GV_CHECK(r.exact, "serving run (tracing on) answered inexactly");
    if (r.modeled_rps > on.modeled_rps) on = r;
  }
  rec.set_enabled(false);

  const double overhead_pct =
      off.modeled_rps > 0.0
          ? (off.modeled_rps - on.modeled_rps) / off.modeled_rps * 100.0
          : 0.0;

  // --- Export + validate the enabled run's trace. ----------------------------
  const std::string trace_path = out_dir() + "/trace_serve.json";
  rec.write_chrome_json(trace_path);
  const std::string trace_json = rec.to_chrome_json();
  std::string why;
  GV_CHECK(validate_trace_json(trace_json, &why), "trace invalid: " + why);

  const auto events = rec.snapshot();
  std::set<std::string> names;
  for (const auto& ev : events) names.insert(ev.name);
  for (const char* required :
       {"queue_wait", "batch_flush", "route_batch", "shard_lookup", "ecall",
        "cold_forward", "cold_layer_compute", "layer_compute", "halo_send",
        "promotion", "unseal", "adopt"}) {
    GV_CHECK(names.count(required) == 1,
             std::string("trace is missing required span: ") + required);
  }
  // Dual clocks: at least one ecall span must carry a modeled-SGX charge.
  double traced_modeled = 0.0;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "ecall") traced_modeled += ev.modeled_s;
  }
  GV_CHECK(traced_modeled > 0.0, "no modeled-SGX seconds attached to ecall spans");

  // --- Legacy reservoir vs Histogram snapshot microbench. --------------------
  LegacyReservoir legacy;
  Histogram hist;
  Rng lat_rng(s.seed ^ 0x1a7e0cull);
  for (std::size_t i = 0; i < LegacyReservoir::kWindow; ++i) {
    const double ms = 0.05 + 20.0 * lat_rng.uniform();
    legacy.record(ms);
    hist.record(ms);
  }
  constexpr int kSnapshots = 500;
  double sink = 0.0;
  Stopwatch legacy_watch;
  for (int i = 0; i < kSnapshots; ++i) {
    double p50, p95, p99;
    legacy.percentiles(&p50, &p95, &p99);
    sink += p99;
  }
  const double legacy_ms = legacy_watch.seconds() * 1e3;
  Stopwatch hist_watch;
  for (int i = 0; i < kSnapshots; ++i) {
    const auto snap = hist.snapshot();
    sink += snap.percentile(0.99);
  }
  const double hist_ms = hist_watch.seconds() * 1e3;
  GV_CHECK(sink > 0.0, "microbench sink must stay observable");
  GV_CHECK(hist_ms < legacy_ms,
           "histogram snapshot must beat the legacy sorted reservoir");

  Table table("VaultScope: tracing overhead + snapshot cost");
  table.set_header({"config", "modeled req/s", "modeled s", "trace events",
                    "snapshot ms (500x)"});
  table.add_row({"tracing off", Table::fmt(off.modeled_rps, 1),
                 Table::fmt(off.modeled_seconds, 4), "0",
                 Table::fmt(hist_ms, 2)});
  table.add_row({"tracing on", Table::fmt(on.modeled_rps, 1),
                 Table::fmt(on.modeled_seconds, 4),
                 std::to_string(events.size()), "-"});
  table.add_row({"legacy reservoir", "-", "-", "-", Table::fmt(legacy_ms, 2)});
  table.print();
  GV_LOG_INFO << "tracing overhead: " << Table::fmt(overhead_pct, 2)
              << "% modeled req/s (must stay < 3%); snapshot speedup "
              << Table::fmt(legacy_ms / std::max(hist_ms, 1e-9), 1) << "x";
  GV_CHECK(overhead_pct < 3.0,
           "tracing overhead exceeded 3% of modeled throughput");

  table.write_csv(out_dir() + "/obs_overhead.csv");
  write_json(args, "obs_overhead", s, {&table},
             {{"modeled_rps_off", off.modeled_rps},
              {"modeled_rps_on", on.modeled_rps},
              {"overhead_pct", overhead_pct},
              {"trace_events", double(events.size())},
              {"legacy_snapshot_ms", legacy_ms},
              {"histogram_snapshot_ms", hist_ms}},
             {{"metrics", MetricsRegistry::global().to_json()}});
  return 0;
}
