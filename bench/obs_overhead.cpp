// VaultScope overhead: what does fleet-wide tracing + the metrics registry
// cost the serving path?
//
// The same kill -> promote -> cold-query scenario runs twice on identically
// planned fleets — tracing disabled (the default) and enabled — and the
// bench reports the MODELED throughput of the two arms for context.  The
// <3% overhead GATE is deterministic: the cost model's compute terms are
// measured native wall time, so the end-to-end off/on delta carries shared-
// CPU scheduler noise far above 3%; instead the bench measures per-span
// emission cost in a tight loop and charges it against the traced arm's
// span volume per modeled serving second.  The enabled run's trace is
// exported to
// bench_out/trace_serve.json, validated (parse + per-thread slice nesting),
// and checked to actually cover the scenario: queue waits, batch flushes,
// per-shard ecalls, per-layer halo exchange, promotion phases, cold-path
// recursion.
//
// QueryLens rides the same scenario: the trace must show per-query causal
// attribution (every batch_flush / shard_lookup / cold_subset span carries
// a query_id, and at least one id groups the flush, the cold walk AND the
// peer shard's halo serving — proof the id crossed the attested channel);
// a TimeSeriesRing over the global registry closes one window per rep with
// deltas that reconcile exactly against the counters; an SLO monitor
// evaluates a channel-integrity objective over those windows; and every
// kill_shard leaves a schema-valid flight bundle under bench_out/flight/
// for CI's independent Python validator.
//
// The bench also pins the ServerMetrics::snapshot() fix: the legacy
// sort-8192-doubles-under-mutex latency reservoir is rebuilt inline and
// raced against the log-bucketed Histogram snapshot it was replaced with;
// the histogram must win (O(buckets) vs O(window log window)).
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI uploads.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_safety.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/registry.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_server.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

struct ServeRun {
  double modeled_rps = 0.0;
  double modeled_seconds = 0.0;
  bool exact = true;
};

/// Cold queries -> store materialization -> warm queries -> kill ->
/// fenced queries against the promoted PRIMARY.  Every label is checked
/// against the single-enclave oracle.
ServeRun run_scenario(const Dataset& ds, const TrainedVault& vault,
                      std::uint32_t K, std::uint64_t seed,
                      const std::vector<std::uint32_t>& truth) {
  ServeRun out;
  ShardedServerConfig scfg;
  scfg.server.max_batch = 16;
  // A wide batching window so workers wait for full batches instead of
  // racing the submitting thread: partial batches multiply per-ecall fixed
  // modeled costs, and that scheduler-dependent batch-size lottery swings
  // per-run modeled throughput by ±10% — far above the 3% overhead pin
  // this bench exists to enforce.
  scfg.server.max_wait = std::chrono::milliseconds(20);
  scfg.server.worker_threads = 2;
  scfg.replicate = true;
  scfg.materialize_on_start = false;  // start COLD: demand-driven cross-shard path
  ShardedVaultServer cold(ds, vault, ShardPlanner::plan(ds, vault, K), {}, scfg);

  Rng rng(seed ^ 0x0b5e7eadull);
  const auto wave = [&](std::size_t n) {
    std::vector<std::uint32_t> nodes(n);
    for (auto& v : nodes) {
      v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
    }
    auto futs = cold.submit_many(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out.exact = out.exact && futs[i].get() == truth[nodes[i]];
    }
  };

  wave(64);  // cold path: stores not yet materialized
  cold.update_features(ds.features);  // materialize + replica re-ship
  wave(128);                          // warm store lookups

  const std::uint32_t victim =
      cold.deployment().plan().owner[rng.uniform_index(ds.num_nodes())];
  // Let replication land before the kill: a kill that races the replica
  // ship falls back to a full cold re-materialization, whose modeled cost
  // dwarfs the fenced wave and turns the overhead comparison bimodal.
  if (cold.replicas() != nullptr) cold.replicas()->wait_ready();
  cold.kill_shard(victim);
  wave(128);  // fenced until promotion lands, then the new PRIMARY answers
  cold.flush();
  // Quiesce the control plane before the meter snapshot: the async
  // promotion (re-materialization + boundary rebuild) and the restaff
  // re-replication book modeled seconds whenever they finish, so an
  // unquiesced snapshot includes a scheduler-dependent fraction of them.
  cold.join_promotion();
  if (cold.replicas() != nullptr) cold.replicas()->wait_ready();

  const MetricsSnapshot s = cold.stats();
  out.modeled_rps = s.requests_per_second;
  out.modeled_seconds = s.modeled_seconds;
  return out;
}

/// The pre-VaultScope latency reservoir, rebuilt verbatim: a fixed window
/// of doubles behind a mutex, fully copied + sorted on every snapshot.
class LegacyReservoir {
 public:
  static constexpr std::size_t kWindow = 8192;

  void record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.size() < kWindow) {
      window_.push_back(ms);
    } else {
      window_[next_++ % kWindow] = ms;
    }
  }

  void percentiles(double* p50, double* p95, double* p99) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<double> sorted = window_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double p) {
      if (sorted.empty()) return 0.0;
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(i, sorted.size() - 1)];
    };
    *p50 = at(0.50);
    *p95 = at(0.95);
    *p99 = at(0.99);
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> window_;
  std::size_t next_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "obs_overhead: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);
  const auto truth = vault.predict_rectified(ds.features);
  constexpr std::uint32_t K = 4;

  auto& rec = TraceRecorder::instance();

  // Untimed warm-up: the first fleet after training pays one-off costs
  // (page cache, allocator arenas, replica thread spin-up) that would
  // otherwise land entirely on the tracing-off arm and masquerade as
  // negative overhead.  Runs before the flight recorder is armed, so its
  // kill trips no bundle and its cold queries stay out of the ring
  // reconciliation below.
  (void)run_scenario(ds, vault, K, s.seed + 99, truth);

  // --- QueryLens telemetry rides along: the flight recorder is armed over
  // BOTH arms (each run_scenario kill trips a dead-shard bundle into
  // bench_out/flight/, which CI re-validates with an independent Python
  // parser), and a time-series ring over the global registry closes one
  // window per rep — the SLO monitor evaluates against those windows
  // below.  Armed-for-both keeps the off-vs-on comparison fair: bundle IO
  // costs the two arms identically. ------------------------------------------
  auto& fr = FlightRecorder::instance();
  const std::string flight_dir = out_dir() + "/flight";
  std::filesystem::remove_all(flight_dir);
  fr.configure(flight_dir, 256);
  MetricsRegistry& greg = MetricsRegistry::global();
  TimeSeriesRing ring(greg, {1.0, 32});
  fr.attach_timeseries(&ring);
  const std::uint64_t cold_queries_before = greg.counter("cold.queries").value();
  double ring_clock = 0.0;
  ring.sample(ring_clock);  // baseline sample: opens the first window

  // --- Throughput with tracing off vs on (5 runs each; best run kept, so
  // scheduler noise in the wall-derived meter does not masquerade as
  // tracing overhead — batch formation races the submitter, so per-run
  // modeled throughput is noisy and only the per-arm envelope is stable). ----
  ServeRun off, on;
  rec.set_enabled(false);
  for (int rep = 0; rep < 5; ++rep) {
    const ServeRun r = run_scenario(ds, vault, K, s.seed + rep, truth);
    GV_CHECK(r.exact, "serving run (tracing off) answered inexactly");
    if (r.modeled_rps > off.modeled_rps) off = r;
    ring.sample(ring_clock += 1.0);  // close this rep's window
  }
  rec.clear();
  rec.set_enabled(true);
  for (int rep = 0; rep < 5; ++rep) {
    const ServeRun r = run_scenario(ds, vault, K, s.seed + rep, truth);
    GV_CHECK(r.exact, "serving run (tracing on) answered inexactly");
    if (r.modeled_rps > on.modeled_rps) on = r;
    ring.sample(ring_clock += 1.0);
  }
  rec.set_enabled(false);

  const double overhead_pct =
      off.modeled_rps > 0.0
          ? (off.modeled_rps - on.modeled_rps) / off.modeled_rps * 100.0
          : 0.0;

  // --- Export + validate the enabled run's trace. ----------------------------
  const std::string trace_path = out_dir() + "/trace_serve.json";
  rec.write_chrome_json(trace_path);
  const std::string trace_json = rec.to_chrome_json();
  std::string why;
  GV_CHECK(validate_trace_json(trace_json, &why), "trace invalid: " + why);

  const auto events = rec.snapshot();
  std::set<std::string> names;
  for (const auto& ev : events) names.insert(ev.name);
  for (const char* required :
       {"queue_wait", "batch_flush", "route_batch", "shard_lookup", "ecall",
        "cold_forward", "cold_layer_compute", "layer_compute", "halo_send",
        "promotion", "unseal", "adopt"}) {
    GV_CHECK(names.count(required) == 1,
             std::string("trace is missing required span: ") + required);
  }
  // Dual clocks: at least one ecall span must carry a modeled-SGX charge.
  double traced_modeled = 0.0;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "ecall") traced_modeled += ev.modeled_s;
  }
  GV_CHECK(traced_modeled > 0.0, "no modeled-SGX seconds attached to ecall spans");

  // --- QueryLens attribution coverage.  Serving spans must be query-tagged
  // (the scope auto-attach), and at least one query id must group the batch
  // flush, the cold walk AND the PEER shard's halo serving — the latter only
  // happens if the id genuinely crossed the attested channel. ----------------
  // "halo_serve" is intentionally NOT in the strict set: promotion
  // re-materialization runs the same cold walk outside any query (operator
  // kill_shard), and those serves are correctly unattributed.
  std::map<std::uint64_t, std::set<std::string>> by_query;
  std::size_t untagged_serving = 0, tagged_serving = 0;
  const std::set<std::string> serving_spans{"batch_flush", "cold_subset",
                                            "shard_lookup"};
  for (const auto& ev : events) {
    std::uint64_t qid = 0;
    for (int i = 0; i < ev.num_args; ++i) {
      if (std::string(ev.args[i].key) == "query_id" && ev.args[i].value > 0) {
        qid = static_cast<std::uint64_t>(ev.args[i].value);
      }
    }
    if (qid != 0) by_query[qid].insert(ev.name);
    if (serving_spans.count(ev.name)) {
      (qid != 0 ? tagged_serving : untagged_serving) += 1;
    }
  }
  GV_CHECK(tagged_serving > 0, "no serving span carries a query_id arg");
  GV_CHECK(untagged_serving == 0,
           "a serving span escaped query attribution (" +
               std::to_string(untagged_serving) + " untagged)");
  std::size_t cascades = 0;
  for (const auto& [qid, span_names] : by_query) {
    if (span_names.count("batch_flush") && span_names.count("cold_subset") &&
        span_names.count("halo_serve")) {
      ++cascades;
    }
  }
  GV_CHECK(cascades > 0,
           "no single query id spans flush + cold walk + peer halo serving");

  // --- Legacy reservoir vs Histogram snapshot microbench. --------------------
  LegacyReservoir legacy;
  Histogram hist;
  Rng lat_rng(s.seed ^ 0x1a7e0cull);
  for (std::size_t i = 0; i < LegacyReservoir::kWindow; ++i) {
    const double ms = 0.05 + 20.0 * lat_rng.uniform();
    legacy.record(ms);
    hist.record(ms);
  }
  constexpr int kSnapshots = 500;
  double sink = 0.0;
  Stopwatch legacy_watch;
  for (int i = 0; i < kSnapshots; ++i) {
    double p50, p95, p99;
    legacy.percentiles(&p50, &p95, &p99);
    sink += p99;
  }
  const double legacy_ms = legacy_watch.seconds() * 1e3;
  Stopwatch hist_watch;
  for (int i = 0; i < kSnapshots; ++i) {
    const auto snap = hist.snapshot();
    sink += snap.percentile(0.99);
  }
  const double hist_ms = hist_watch.seconds() * 1e3;
  GV_CHECK(sink > 0.0, "microbench sink must stay observable");
  GV_CHECK(hist_ms < legacy_ms,
           "histogram snapshot must beat the legacy sorted reservoir");

  // --- Time-series ring + SLO monitor over the scenario's telemetry. ---------
  GV_CHECK(ring.windows() >= 6, "ring should have closed one window per rep");
  const std::uint64_t ring_cold =
      ring.delta_over("cold.queries", {}, ring.windows());
  const std::uint64_t reg_cold =
      greg.counter("cold.queries").value() - cold_queries_before;
  GV_CHECK(ring_cold == reg_cold,
           "windowed cold-query deltas disagree with the registry (" +
               std::to_string(ring_cold) + " vs " + std::to_string(reg_cold) +
               ")");
  GV_CHECK(ring_cold > 0, "scenario served no cold queries");

  SloObjective integrity;
  integrity.name = "halo-channel-integrity";
  integrity.kind = SloObjective::Kind::kCounterRatio;
  integrity.bad_series = TimeSeriesRing::series_key("halo.audit_anomalies");
  integrity.total_series = TimeSeriesRing::series_key("cold.queries");
  integrity.target = 0.999;
  integrity.burn_threshold = 1.0;
  integrity.short_windows = 1;
  integrity.long_windows = 6;
  SloMonitor slo(ring, greg);
  slo.add(integrity);
  const auto slo_evals = slo.evaluate();
  GV_CHECK(slo_evals.size() == 1 && !slo_evals[0].alert,
           "channel-integrity SLO paged during a healthy bench run");
  GV_CHECK(slo.evaluations() >= 1, "SLO monitor never evaluated");

  // --- Flight bundles from the scenario's kills (validated again by CI's
  // independent Python parser; the files stay under bench_out/flight). --------
  std::size_t flight_bundles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(flight_dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bundle_err;
    GV_CHECK(validate_flight_bundle(buf.str(), &bundle_err),
             entry.path().string() + " invalid: " + bundle_err);
    ++flight_bundles;
  }
  GV_CHECK(flight_bundles >= 6,
           "each rep's kill_shard should have dumped a dead-shard bundle");
  fr.attach_timeseries(nullptr);
  fr.disarm();

  // --- Deterministic <3% overhead pin. ---------------------------------------
  // The off/on comparison above is reported for context, but it cannot GATE
  // a 3% bound: the meter's compute terms are measured native wall time, so
  // on a shared CPU both arms carry scheduler noise well above 3% and the
  // end-to-end delta is dominated by the machine, not by tracing.  The pin
  // instead charges the measured per-span emission cost against the traced
  // arm's span volume: (spans per rep x seconds per span) over the rep's
  // modeled serving time bounds the fraction of a serving second tracing
  // can consume.  Runs AFTER every trace-content check — the probe's 200k
  // spans wrap the ring and evict the serving spans snapshotted above.
  rec.set_enabled(true);
  constexpr int kEmitIters = 200000;
  Stopwatch emit_watch;
  for (int i = 0; i < kEmitIters; ++i) {
    TraceSpan probe("bench", "emit_probe");
    probe.arg("i", double(i));
  }
  const double per_span_s = emit_watch.seconds() / double(kEmitIters);
  rec.set_enabled(false);
  rec.clear();
  const double spans_per_rep = double(events.size()) / 5.0;
  const double overhead_pin_pct = per_span_s * spans_per_rep /
                                  std::max(on.modeled_seconds, 1e-12) * 100.0;

  // --- EngineScope lock-contention profiler arms. ----------------------------
  // Same pin construction as tracing: measure the per-acquisition cost of
  // the probe's uncontended try_lock fast path (off vs on), then charge it
  // against the acquisition count of one profiled scenario rep.  The
  // end-to-end off/on throughput delta would drown in scheduler noise; the
  // (cost x volume) product is deterministic.
  constexpr int kLockIters = 200000;
  Mutex probe_mu{lockrank::kQueue};
  lockprof::set_enabled(false);
  Stopwatch lock_off_watch;
  for (int i = 0; i < kLockIters; ++i) {
    MutexLock hold(probe_mu);
  }
  const double lock_off_s = lock_off_watch.seconds();
  lockprof::set_enabled(true);
  Stopwatch lock_on_watch;
  for (int i = 0; i < kLockIters; ++i) {
    MutexLock hold(probe_mu);
  }
  const double lock_on_s = lock_on_watch.seconds();
  // Clamped: on a noisy shared CPU the on-arm can win the wall-clock coin
  // flip, and a negative per-lock cost would hide real emission overhead.
  const double per_lock_s =
      std::max(0.0, (lock_on_s - lock_off_s) / double(kLockIters));

  const std::uint64_t acq_before = lockprof::profiled_acquisitions();
  const std::uint64_t contended_before = lockprof::contended_acquisitions();
  const ServeRun prof_run = run_scenario(ds, vault, K, s.seed + 17, truth);
  GV_CHECK(prof_run.exact, "serving run (lockprof on) answered inexactly");
  const std::uint64_t lock_acquisitions =
      lockprof::profiled_acquisitions() - acq_before;
  const std::uint64_t lock_contended =
      lockprof::contended_acquisitions() - contended_before;
  GV_CHECK(lock_acquisitions > 0,
           "profiled scenario rep acquired no gv::Mutex at all");
  const double lockprof_pin_pct = per_lock_s * double(lock_acquisitions) /
                                  std::max(prof_run.modeled_seconds, 1e-12) *
                                  100.0;

  // Contended-registry scenario: four threads tight-loop the admission
  // lock's read side until the per-rank histogram provably records a wait
  // (bounded retries — a miss here means rank attribution is broken).
  const auto registry_waits = [&greg] {
    return greg
        .histogram("lock.wait_seconds", MetricLabels::of("rank", "kRegistry"))
        .snapshot()
        .count;
  };
  const std::uint64_t reg_waits_before = registry_waits();
  VaultRegistry contended_registry;
  for (int attempt = 0; attempt < 50 && registry_waits() == reg_waits_before;
       ++attempt) {
    std::vector<std::thread> hammer;
    for (int t = 0; t < 4; ++t) {
      hammer.emplace_back([&contended_registry] {
        for (int i = 0; i < 20000; ++i) {
          (void)contended_registry.has("nobody");
        }
      });
    }
    for (auto& th : hammer) th.join();
  }
  lockprof::set_enabled(false);
  const std::uint64_t registry_contended_waits =
      registry_waits() - reg_waits_before;
  GV_CHECK(registry_contended_waits > 0,
           "lock.wait_seconds{rank=kRegistry} stayed empty under a "
           "4-thread admission-lock hammer");

  const double probes_pin_pct = overhead_pin_pct + lockprof_pin_pct;

  Table table("VaultScope: tracing overhead + snapshot cost");
  table.set_header({"config", "modeled req/s", "modeled s", "trace events",
                    "snapshot ms (500x)"});
  table.add_row({"tracing off", Table::fmt(off.modeled_rps, 1),
                 Table::fmt(off.modeled_seconds, 4), "0",
                 Table::fmt(hist_ms, 2)});
  table.add_row({"tracing on", Table::fmt(on.modeled_rps, 1),
                 Table::fmt(on.modeled_seconds, 4),
                 std::to_string(events.size()), "-"});
  table.add_row({"legacy reservoir", "-", "-", "-", Table::fmt(legacy_ms, 2)});
  table.print();
  GV_LOG_INFO << "tracing overhead pin: " << Table::fmt(overhead_pin_pct, 3)
              << "% of modeled serving time ("
              << Table::fmt(per_span_s * 1e9, 0) << " ns/span, must stay < 3%); "
              << "end-to-end off/on delta " << Table::fmt(overhead_pct, 2)
              << "% (informational); snapshot speedup "
              << Table::fmt(legacy_ms / std::max(hist_ms, 1e-9), 1)
              << "x; " << by_query.size() << " traced queries, " << cascades
              << " full cross-shard cascades, " << flight_bundles
              << " flight bundles";
  GV_LOG_INFO << "lockprof pin: " << Table::fmt(lockprof_pin_pct, 3)
              << "% of modeled serving time (" << Table::fmt(per_lock_s * 1e9, 1)
              << " ns/acquisition x " << lock_acquisitions
              << " acquisitions, " << lock_contended
              << " contended); registry hammer recorded "
              << registry_contended_waits
              << " waits in lock.wait_seconds{rank=kRegistry}; all probes on: "
              << Table::fmt(probes_pin_pct, 3) << "%";
  GV_CHECK(overhead_pin_pct < 3.0,
           "tracing emission cost exceeded 3% of modeled serving time");
  GV_CHECK(probes_pin_pct < 3.0,
           "tracing + lock-profiler cost exceeded 3% of modeled serving time "
           "with every probe enabled");

  table.write_csv(out_dir() + "/obs_overhead.csv");
  write_json(args, "obs_overhead", s, {&table},
             {{"modeled_rps_off", off.modeled_rps},
              {"modeled_rps_on", on.modeled_rps},
              {"overhead_pct", overhead_pct},
              {"overhead_pin_pct", overhead_pin_pct},
              {"span_emit_ns", per_span_s * 1e9},
              {"trace_events", double(events.size())},
              {"legacy_snapshot_ms", legacy_ms},
              {"histogram_snapshot_ms", hist_ms},
              {"traced_queries", double(by_query.size())},
              {"traced_cascades", double(cascades)},
              {"ring_windows", double(ring.windows())},
              {"ring_cold_queries", double(ring_cold)},
              {"slo_evaluations", double(slo.evaluations())},
              {"slo_alerts", double(slo.alerts())},
              {"flight_bundles", double(flight_bundles)},
              {"lock_probe_ns", per_lock_s * 1e9},
              {"lockprof_acquisitions", double(lock_acquisitions)},
              {"lockprof_contended", double(lock_contended)},
              {"lockprof_pin_pct", lockprof_pin_pct},
              {"registry_contended_waits", double(registry_contended_waits)},
              {"probes_pin_pct", probes_pin_pct}},
             {{"metrics", MetricsRegistry::global().to_json()},
              {"timeseries", ring.to_json()}});
  return 0;
}
