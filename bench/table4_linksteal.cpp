// Regenerates Table IV: link-stealing ROC-AUC on Cora and Citeseer with
// six similarity metrics against three observable surfaces:
//   M_org  - unprotected GNN (all layer embeddings, real adjacency),
//   M_gv   - GNNVault (public backbone embeddings only),
//   M_base - feature-only DNN baseline.
#include "bench_common.hpp"

#include "attack/link_stealing.hpp"
#include "nn/trainer.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const auto s = settings();
  Table t("Table IV: link stealing attack ROC-AUC");
  t.set_header({"Dataset", "Metric", "M_org", "M_gv", "M_base"});

  for (const auto id : {DatasetId::kCora, DatasetId::kCiteseer}) {
    const Dataset ds = load_dataset(id, s.seed, s.scale);
    GV_LOG_INFO << "Table IV: " << ds.name;
    const ModelSpec spec = model_spec_for_dataset(id);

    // M_org: original GNN embeddings.
    double porg = 0.0;
    auto original = train_original_gnn(ds, spec, original_config(s), s.seed, &porg);
    original->forward(ds.features, false);
    const auto org_layers = original->layer_outputs();

    // M_gv: GNNVault backbone embeddings (the attacker's whole view).
    const TrainedVault tv = train_vault(ds, vault_config(id, s));
    const auto gv_layers = tv.backbone_outputs(ds.features);

    // M_base: feature-only MLP.
    auto cfg = vault_config(id, s);
    cfg.backbone = BackboneKind::kDnn;
    const TrainedVault base = train_vault(ds, cfg);
    const auto base_layers = base.backbone_outputs(ds.features);

    Rng rng(s.seed ^ 0xa77ac4);
    const PairSample sample = sample_link_pairs(ds.graph, 4000, rng);
    const auto auc_org = link_stealing_auc_all_metrics(org_layers, sample);
    const auto auc_gv = link_stealing_auc_all_metrics(gv_layers, sample);
    const auto auc_base = link_stealing_auc_all_metrics(base_layers, sample);
    for (std::size_t i = 0; i < all_similarity_metrics().size(); ++i) {
      t.add_row({ds.name, metric_name(all_similarity_metrics()[i]),
                 Table::fmt(auc_org[i], 3), Table::fmt(auc_gv[i], 3),
                 Table::fmt(auc_base[i], 3)});
    }
  }
  t.print();
  t.write_csv(out_dir() + "/table4_linksteal.csv");
  std::printf(
      "\nShapes to compare with the paper: M_org AUC is high (~0.84-0.99);\n"
      "GNNVault drops the attack to the feature-only baseline level\n"
      "(M_gv ~= M_base) on every metric.\n");
  return 0;
}
