// Regenerates Fig. 6: secure-inference time breakdown (backbone /
// transfer / rectifier-in-enclave) and enclave memory usage for the three
// model structures of the paper — M1 (Cora), M2 (CoraFull), M3 (Computer)
// — under each rectifier design, against the unprotected CPU baseline.
#include "bench_common.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const auto s = settings();
  struct Config {
    DatasetId id;
    const char* model;
  };
  const Config configs[] = {{DatasetId::kCora, "M1"},
                            {DatasetId::kCoraFull, "M2"},
                            {DatasetId::kComputer, "M3"}};

  Table t("Fig. 6 (top): inference time breakdown (ms)");
  t.set_header({"Model", "Rectifier", "backbone", "transfer", "enclave", "total",
                "unprotected", "overhead(%)"});
  Table m("Fig. 6 (bottom): enclave memory usage (MB)");
  m.set_header({"Model", "Rectifier", "resident", "peak", "EPC(96MB)?",
                "backbone mem (untrusted)"});

  for (const auto& c : configs) {
    const Dataset ds = load_dataset(c.id, s.seed, s.scale);
    GV_LOG_INFO << "Fig. 6: " << ds.name << " / " << c.model;

    double porg = 0.0;
    auto original =
        train_original_gnn(ds, model_spec_for_dataset(c.id), original_config(s),
                           s.seed, &porg);
    const double unprotected = time_unprotected_inference(*original, ds.features);

    for (const auto kind :
         {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
      auto cfg = vault_config(c.id, s);
      cfg.rectifier = kind;
      TrainedVault tv = train_vault(ds, cfg);
      VaultDeployment dep(ds, std::move(tv), {});
      // Warm up once, then measure a clean run.
      dep.infer_labels(ds.features);
      dep.reset_meter();
      dep.infer_labels(ds.features);
      const CostMeter& meter = dep.meter();
      const auto& model = dep.cost_model();
      const double total = meter.total_seconds(model);
      t.add_row({c.model, rectifier_kind_name(kind),
                 Table::fmt(meter.untrusted_compute_seconds * 1e3, 2),
                 Table::fmt(meter.transfer_seconds(model) * 1e3, 3),
                 Table::fmt(meter.enclave_compute_seconds * 1e3, 2),
                 Table::fmt(total * 1e3, 2), Table::fmt(unprotected * 1e3, 2),
                 Table::fmt((total / unprotected - 1.0) * 100.0, 1)});
      const double mb = 1.0 / (1024.0 * 1024.0);
      m.add_row({c.model, rectifier_kind_name(kind),
                 Table::fmt(dep.enclave_current_bytes() * mb, 2),
                 Table::fmt(dep.enclave_peak_bytes() * mb, 2),
                 dep.enclave_peak_bytes() <= model.epc_bytes ? "fits" : "EXCEEDS",
                 Table::fmt(dep.backbone_runtime_bytes(ds.features) * mb, 1)});
    }
  }
  t.print();
  m.print();
  t.write_csv(out_dir() + "/fig6_time.csv");
  m.write_csv(out_dir() + "/fig6_memory.csv");
  std::printf(
      "\nShapes to compare with the paper: series has the smallest transfer+\n"
      "enclave share (paper: ~52-131%% overhead vs unprotected CPU); parallel\n"
      "and cascaded transfer all intermediate embeddings and cost more; peak\n"
      "enclave memory stays far below the 96 MB EPC (paper max: 41.6 MB)\n"
      "while the untrusted backbone working set is far larger.\n");
  return 0;
}
