// Regenerates Fig. 4: per-layer embedding quality (silhouette score) for
// the original GNN, the public backbone, and the rectifier on Cora, plus
// 2-D t-SNE coordinates for the qualitative scatter plots.
#include "bench_common.hpp"

#include <cmath>
#include <limits>

#include "metrics/silhouette.hpp"
#include "metrics/tsne.hpp"

using namespace gv;
using namespace gv::bench;

namespace {
void dump_tsne(const Matrix& embedding, const std::vector<std::uint32_t>& labels,
               const std::string& tag, const std::string& dir, std::uint64_t seed) {
  // Subsample for the O(n^2) exact t-SNE.
  const std::size_t max_points = 600;
  std::vector<std::uint32_t> idx(embedding.rows());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(seed);
  if (idx.size() > max_points) {
    rng.shuffle(idx);
    idx.resize(max_points);
  }
  const Matrix sub = embedding.gather_rows(idx);
  TsneConfig cfg;
  cfg.iterations = 250;
  cfg.perplexity = std::min(30.0, static_cast<double>(sub.rows()) / 4.0);
  cfg.seed = seed;
  const Matrix y = tsne_embed(sub, cfg);
  Table t;
  t.set_header({"x", "y", "label"});
  for (std::size_t i = 0; i < y.rows(); ++i) {
    t.add_row({Table::fmt(y(i, 0), 4), Table::fmt(y(i, 1), 4),
               std::to_string(labels[idx[i]])});
  }
  t.write_csv(dir + "/fig4_tsne_" + tag + ".csv");
}
}  // namespace

int main() {
  const auto s = settings();
  const Dataset ds = load_dataset(DatasetId::kCora, s.seed, s.scale);
  const ModelSpec spec = model_spec_m2();  // the figure uses the M2 structure

  double porg = 0.0;
  auto original = train_original_gnn(ds, spec, original_config(s), s.seed, &porg);
  original->forward(ds.features, false);
  const auto org_layers = original->layer_outputs();

  auto cfg = vault_config(DatasetId::kCora, s);
  cfg.spec = spec;
  const TrainedVault tv = train_vault(ds, cfg);
  const auto bb_layers = tv.backbone_outputs(ds.features);
  // Rectifier per-layer outputs: run a forward and read its activations by
  // re-running layer by layer (forward caches only final logits publicly),
  // so we evaluate the silhouette on its logits plus the backbone's inputs.
  const Matrix rect_logits = tv.rectifier->forward(bb_layers, false);

  const std::size_t sil_samples = 1200;
  Table t("Fig. 4: silhouette score per layer (Cora, M2 structure)");
  t.set_header({"Layer", "original", "backbone", "rectifier"});
  for (std::size_t k = 0; k < org_layers.size(); ++k) {
    const double s_org = silhouette_score(org_layers[k], ds.labels, sil_samples);
    const double s_bb = silhouette_score(bb_layers[k], ds.labels, sil_samples);
    const double s_rect =
        (k + 1 == org_layers.size())
            ? silhouette_score(rect_logits, ds.labels, sil_samples)
            : std::numeric_limits<double>::quiet_NaN();
    t.add_row({"gconv " + std::to_string(k + 1), Table::fmt(s_org, 3),
               Table::fmt(s_bb, 3),
               std::isnan(s_rect) ? "-" : Table::fmt(s_rect, 3)});
  }
  t.print();
  t.write_csv(out_dir() + "/fig4_silhouette.csv");

  std::printf("accuracy: original %.1f%%  backbone %.1f%%  rectifier %.1f%%\n",
              porg * 100.0, tv.backbone_test_accuracy * 100.0,
              tv.rectifier_test_accuracy * 100.0);

  dump_tsne(org_layers.back(), ds.labels, "original", out_dir(), s.seed);
  dump_tsne(bb_layers.back(), ds.labels, "backbone", out_dir(), s.seed);
  dump_tsne(rect_logits, ds.labels, "rectifier", out_dir(), s.seed);
  std::printf(
      "\nt-SNE coordinates written to %s/fig4_tsne_{original,backbone,rectifier}.csv\n"
      "Shapes to compare with the paper: rectifier silhouette approaches the\n"
      "original's while the backbone's stays low.\n",
      out_dir().c_str());
  return 0;
}
