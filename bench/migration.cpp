// GraphDrift plan-diff migration vs full re-provision.
//
// A live private graph drifts: edges churn, nodes join, and the LDG plan's
// edge-cut and load balance rot.  The pre-GraphDrift remedy was a full
// re-provision — rebuild + re-seal + re-attest K enclaves from fresh
// payloads and run a full-fleet refresh, with the tenant dark for the whole
// window.  GraphDrift instead applies the deltas in place (update_graph),
// asks ShardPlanner::plan_diff for the minimal move-set over the
// drift-touched nodes, and lets MigrationExecutor move exactly those nodes
// between live shards over the attested channels, fencing one node at a
// time.
//
// For each shard count K this bench drifts the graph (edge churn + node
// adds), then measures both remedies on the same mutated dataset:
//
//   bytes     sealed node-transfer payloads moved by the migration vs the
//             serialized shard packages a re-provision ships to K enclaves;
//   fencing   the per-move router fence (max across moves) vs the full
//             provision+refresh window during which a re-provisioned tenant
//             cannot serve at all;
//   truth     labels after update_graph + migration must match a
//             single-enclave oracle REBUILT on the mutated graph (and the
//             re-provisioned fleet) bit for bit.
//
// Headlines: migration bytes as a fraction of re-provision bytes (the
// acceptance bar is <= 25%) and the two fencing windows in ms.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI uploads.
#include "bench_common.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "shard/graph_drift.hpp"
#include "shard/migration.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_deployment.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

GraphDelta drift_burst(const Dataset& ds, Rng& rng, double churn_frac,
                       std::size_t adds) {
  GraphDelta d;
  const std::size_t churn = std::max<std::size_t>(
      8, static_cast<std::size_t>(ds.graph.num_edges() * churn_frac));
  const std::uint32_t n_after = ds.num_nodes() + static_cast<std::uint32_t>(adds);
  const auto& edges = ds.graph.edges();
  for (std::size_t i = 0; i < churn && !edges.empty(); ++i) {
    const Edge& e = edges[rng.uniform_index(edges.size())];
    d.edge_deletes.push_back({e.a, e.b});
  }
  for (std::size_t i = 0; i < churn; ++i) {
    d.edge_inserts.push_back(
        {static_cast<std::uint32_t>(rng.uniform_index(n_after)),
         static_cast<std::uint32_t>(rng.uniform_index(n_after))});
  }
  for (std::size_t i = 0; i < adds; ++i) {
    d.node_adds.push_back(
        {{static_cast<std::uint32_t>(rng.uniform_index(ds.features.cols())),
          1.0f}});
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.3);
  const Dataset base = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "migration: " << base.name << " n=" << base.num_nodes()
              << " e=" << base.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(base, cfg);

  Table table("GraphDrift: plan-diff migration vs full re-provision");
  table.set_header({"shards", "drift nodes", "moves", "migrate KB",
                    "reprovision KB", "bytes %", "move fence ms (max)",
                    "reprovision window ms", "bit-exact"});

  double worst_ratio = 0.0;
  double worst_fence_ms = 0.0;
  double mean_window_ms = 0.0;
  std::size_t rows = 0;
  bool all_exact = true;

  for (const std::uint32_t K : {2u, 4u, 8u}) {
    Dataset mds = base;  // the drifted dataset this K's run converges to
    ShardedVaultDeployment dep(mds, vault, ShardPlanner::plan(mds, vault, K));
    dep.refresh(mds.features);
    DriftTracker tracker(dep.plan());

    Rng rng(s.seed ^ (0xd21f7u + K));
    const GraphDelta delta = drift_burst(mds, rng, /*churn_frac=*/0.02,
                                         /*adds=*/4);
    apply_delta(mds, delta);
    tracker.record(dep.update_graph(delta, &mds.features));

    const PlanDiff pd = ShardPlanner::plan_diff(mds, vault, dep.plan(),
                                                tracker.drift_nodes());
    MigrationExecutor exec(dep);
    const MigrationStats mig = exec.execute(pd.moves);

    // Full re-provision baseline on the SAME mutated graph + plan: the
    // vendor re-vaults on the mutated dataset, ships K fresh sealed
    // payloads to K fresh enclaves, and runs a full refresh — the tenant
    // is dark for the whole window.
    const TrainedVault oracle = revault_on(vault, mds);
    const auto payloads = ShardPlanner::build_payloads(mds, oracle, pd.plan);
    std::uint64_t reprovision_bytes = 0;
    for (const auto& p : payloads) {
      reprovision_bytes += serialize_shard_payload(p).size();
    }
    Stopwatch window;
    ShardedVaultDeployment fresh(mds, oracle, pd.plan);
    fresh.refresh(mds.features);
    const double window_ms = window.seconds() * 1e3;
    const auto truth = oracle.predict_rectified(mds.features);
    const auto migrated = dep.infer_labels(mds.features);
    const auto rebuilt = fresh.infer_labels(mds.features);
    const bool exact = std::equal(truth.begin(), truth.end(), migrated.begin()) &&
                       std::equal(truth.begin(), truth.end(), rebuilt.begin());
    all_exact = all_exact && exact;

    const double ratio =
        reprovision_bytes > 0
            ? static_cast<double>(mig.wire_bytes) / reprovision_bytes
            : 0.0;
    worst_ratio = std::max(worst_ratio, ratio);
    worst_fence_ms = std::max(worst_fence_ms, mig.max_fence_ms);
    mean_window_ms += window_ms;
    ++rows;

    table.add_row({std::to_string(K), std::to_string(tracker.drift_nodes().size()),
                   std::to_string(mig.moves_executed),
                   Table::fmt(mig.wire_bytes / 1024.0, 1),
                   Table::fmt(reprovision_bytes / 1024.0, 1),
                   Table::fmt(ratio * 100.0, 2) + "%",
                   Table::fmt(mig.max_fence_ms, 3), Table::fmt(window_ms, 1),
                   exact ? "yes" : "NO"});
  }
  mean_window_ms /= std::max<std::size_t>(1, rows);

  table.print();
  GV_LOG_INFO << "plan-diff migration moved " << Table::fmt(worst_ratio * 100.0, 2)
              << "% of full re-provision bytes (worst K) with a per-move "
              << "fence of " << Table::fmt(worst_fence_ms, 3) << " ms vs a "
              << Table::fmt(mean_window_ms, 1)
              << " ms re-provision dark window";
  table.write_csv(out_dir() + "/migration.csv");
  write_json(args, "migration", s, {&table},
             {{"migration_byte_fraction", worst_ratio},
              {"max_move_fence_ms", worst_fence_ms},
              {"mean_reprovision_window_ms", mean_window_ms},
              {"bit_exact", all_exact ? 1.0 : 0.0}});
  return all_exact && worst_ratio <= 0.25 ? 0 : 1;
}
