// Regenerates Table III: backbone design comparison — DNN (feature-only
// MLP) vs GNN backbones over random / cosine / KNN substitute graphs.
// Reports p_bb and p_rec (parallel rectifier) for each.
#include "bench_common.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const auto s = settings();
  Table t("Table III: various backbone designs (p_bb / p_rec, %)");
  t.set_header({"Dataset", "DNN p_bb", "DNN p_rec", "rand p_bb", "rand p_rec",
                "cos p_bb", "cos p_rec", "KNN p_bb", "KNN p_rec"});

  const BackboneKind kinds[] = {BackboneKind::kDnn, BackboneKind::kRandom,
                                BackboneKind::kCosine, BackboneKind::kKnn};
  for (const auto id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, s.seed, s.scale);
    GV_LOG_INFO << "Table III: " << ds.name;
    std::vector<std::string> row = {ds.name};
    for (const auto kind : kinds) {
      auto cfg = vault_config(id, s);
      cfg.backbone = kind;
      cfg.cosine_tau = 0.15f;  // density then sampled to the real graph's
      const TrainedVault tv = train_vault(ds, cfg);
      row.push_back(Table::pct(tv.backbone_test_accuracy));
      row.push_back(Table::pct(tv.rectifier_test_accuracy));
    }
    t.add_row(row);
  }
  t.print();
  t.write_csv(out_dir() + "/table3_backbones.csv");
  std::printf(
      "\nShapes to compare with the paper: random-graph backbones are by far the\n"
      "worst (structural noise); cosine and KNN are the best; the DNN sits in\n"
      "between; rectification lifts every backbone.\n");
  return 0;
}
