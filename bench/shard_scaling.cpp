// ShardVault scaling: modeled req/s vs shard count for a tenant whose
// working set exceeds one platform's usable EPC.
//
// The EPC budget is set to ~1.2x the largest shard of a 4-way plan, so:
//   * K=1 (single enclave) overflows the EPC and pays Sec. III-C paging on
//     every batched ecall — the regime the registry used to reject;
//   * K>=4 shards each fit their slice, so serving pays zero page swaps and
//     the shards answer lookups in parallel across platforms.
// Reported modeled time for sharded rows includes the one-off sharded
// forward (backbone streaming + halo exchange) amortized over the workload,
// plus every routed batch (critical path = slowest touched shard).
//
// Also demonstrates the admission headline: the registry REJECTS the tenant
// unsharded and ADMITS it as K shards on a fleet.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE, and
// GNNVAULT_SERVE_REQUESTS (default 2048).
#include "bench_common.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "serve/registry.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_deployment.hpp"

using namespace gv;
using namespace gv::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "shard_scaling: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);

  const auto requests = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("GNNVAULT_SERVE_REQUESTS", 2048)));
  constexpr std::size_t kBatch = 32;
  Rng rng(s.seed ^ 0x5a4d5a4dull);
  std::vector<std::uint32_t> workload(requests);
  for (auto& v : workload) {
    v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
  }

  // EPC sized so a 4-way plan fits per shard but the whole tenant does not.
  SgxCostModel model;
  model.epc_bytes = ShardPlanner::plan(ds, vault, 4).max_shard_bytes() * 6 / 5;

  // --- Admission headline: rejected unsharded, admitted as K shards. ------
  {
    RegistryConfig rcfg;
    rcfg.cost_model = model;
    rcfg.num_platforms = 1;
    rcfg.shard_oversized = false;
    rcfg.queue_when_full = false;
    VaultRegistry single(rcfg);
    const auto rejected = single.admit("whale", ds, vault);
    GV_LOG_INFO << "single platform, sharding off: "
                << (rejected.decision == AdmissionDecision::kRejected
                        ? "REJECTED"
                        : "admitted")
                << " (" << rejected.reason << ")";

    rcfg.num_platforms = 8;
    rcfg.shard_oversized = true;
    VaultRegistry fleet(rcfg);
    const auto admitted = fleet.admit("whale", ds, vault);
    GV_LOG_INFO << "8-platform fleet, sharding on : "
                << (admitted.decision == AdmissionDecision::kAdmittedSharded
                        ? "ADMITTED as " + std::to_string(admitted.num_shards) +
                              " shards"
                        : "not sharded")
                << " (" << admitted.reason << ")";
  }

  Table table("Modeled serving throughput vs shard count (EPC " +
              Table::fmt(model.epc_bytes / (1024.0 * 1024.0), 2) + " MB)");
  table.set_header({"shards", "peak shard MB", "fits EPC", "page swaps",
                    "halo MB", "modeled s", "req/s (modeled)", "speedup"});

  double baseline_rps = 0.0;
  for (const std::uint32_t K : {1u, 2u, 4u, 8u}) {
    // K=1 is the oversized single enclave (one "shard" = the whole tenant):
    // its refresh working set blows the EPC and pays Sec. III-C paging.
    ShardedDeploymentOptions dopts;
    dopts.cost_model = model;
    ShardedVaultDeployment dep(ds, vault, ShardPlanner::plan(ds, vault, K),
                               dopts);
    dep.refresh(ds.features);
    ShardRouter router(dep);
    for (std::size_t off = 0; off < workload.size(); off += kBatch) {
      const std::size_t take = std::min(kBatch, workload.size() - off);
      router.route(std::span<const std::uint32_t>(workload.data() + off, take));
    }
    const double modeled_s = dep.modeled_seconds() + router.modeled_seconds();
    const std::uint64_t page_swaps = dep.aggregate_meter().page_swaps;
    const std::size_t peak = dep.max_shard_peak_bytes();
    const double halo_mb = dep.halo_embedding_bytes() / (1024.0 * 1024.0);
    const double rps = static_cast<double>(requests) / modeled_s;
    if (K == 1) baseline_rps = rps;
    table.add_row({std::to_string(K),
                   Table::fmt(peak / (1024.0 * 1024.0), 2),
                   peak <= model.epc_bytes ? "yes" : "NO",
                   std::to_string(page_swaps), Table::fmt(halo_mb, 2),
                   Table::fmt(modeled_s, 4), Table::fmt(rps, 0),
                   Table::fmt(rps / baseline_rps, 2) + "x"});
  }
  table.print();
  table.write_csv(out_dir() + "/shard_scaling.csv");

  // Reference: the classic per-batch single-enclave path (no label
  // materialization), the serving mode VaultServer uses for fitting
  // tenants.  Every batch stages the full embedding matrices.
  {
    DeploymentOptions dopts;
    dopts.cost_model = model;
    VaultDeployment dep(ds, vault, dopts);
    const auto outputs = dep.run_backbone(ds.features);
    dep.reset_meter();
    for (std::size_t off = 0; off < workload.size(); off += kBatch) {
      const std::size_t take = std::min(kBatch, workload.size() - off);
      dep.infer_labels_batched(
          outputs, std::span<const std::uint32_t>(workload.data() + off, take));
    }
    const CostMeter m = dep.enclave().meter_snapshot();
    const double modeled_s = m.total_seconds(model);
    GV_LOG_INFO << "reference per-batch single enclave: "
                << Table::fmt(modeled_s, 4) << " modeled s, "
                << Table::fmt(static_cast<double>(requests) / modeled_s, 0)
                << " req/s, " << m.page_swaps << " page swaps";
  }
  write_json(args, "shard_scaling", s, {&table});
  return 0;
}
