// Regenerates Table II: GNNVault performance with the KNN substitute graph
// (k = 2) on all six datasets and all three rectifier designs.
//
// Columns per dataset: p_org, theta_bb, p_bb, then per rectifier design
// (parallel / series / cascaded): p_rec, delta_p = p_rec - p_bb, theta_rec.
#include "bench_common.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const auto s = settings();
  Table t("Table II: GNNVault performance with KNN graph (k=2)");
  t.set_header({"Dataset", "p_org(%)", "th_bb(M)", "p_bb(%)",
                "par p_rec(%)", "par dp(%)", "par th_rec(M)",
                "ser p_rec(%)", "ser dp(%)", "ser th_rec(M)",
                "cas p_rec(%)", "cas dp(%)", "cas th_rec(M)"});

  for (const auto id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, s.seed, s.scale);
    GV_LOG_INFO << "Table II: " << ds.name << " (" << ds.num_nodes() << " nodes)";

    double porg = 0.0;
    train_original_gnn(ds, model_spec_for_dataset(id), original_config(s), s.seed,
                       &porg);

    std::vector<std::string> row = {ds.name};
    bool backbone_reported = false;
    for (const auto kind :
         {RectifierKind::kParallel, RectifierKind::kSeries, RectifierKind::kCascaded}) {
      auto cfg = vault_config(id, s);
      cfg.rectifier = kind;
      const TrainedVault tv = train_vault(ds, cfg);
      if (!backbone_reported) {
        row.push_back(Table::pct(porg));
        row.push_back(fmt_params_m(tv.backbone_parameters));
        row.push_back(Table::pct(tv.backbone_test_accuracy));
        backbone_reported = true;
      }
      row.push_back(Table::pct(tv.rectifier_test_accuracy));
      row.push_back(
          Table::pct(tv.rectifier_test_accuracy - tv.backbone_test_accuracy));
      row.push_back(fmt_params_m(tv.rectifier_parameters));
    }
    t.add_row(row);
  }
  t.print();
  t.write_csv(out_dir() + "/table2_gnnvault.csv");
  std::printf(
      "\nShapes to compare with the paper: p_bb well below p_org; p_rec within a\n"
      "few points of p_org (paper: <2%% degradation); dp large and positive;\n"
      "series has the smallest th_rec, cascaded the largest.\n");
  return 0;
}
