// google-benchmark microbenchmarks for the compute kernels that dominate
// GNNVault inference, plus the SGX-simulator crypto (sealing path).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "graph/graph.hpp"
#include "sgxsim/chacha20poly1305.hpp"
#include "sgxsim/sha256.hpp"
#include "tensor/gemm.hpp"
#include "tensor/csr.hpp"

namespace {

using namespace gv;

Matrix random_dense(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_dense(n, n, 1);
  const Matrix b = random_dense(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmTallSkinny(benchmark::State& state) {
  // The GNN shape: n nodes x d features times d x h weights.
  const Matrix a = random_dense(2708, 1433, 3);
  const Matrix b = random_dense(1433, 128, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
}
BENCHMARK(BM_GemmTallSkinny);

void BM_Spmm(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_nodes = 2708;
  spec.num_classes = 7;
  spec.num_undirected_edges = 5278;
  spec.feature_dim = 64;
  const Dataset ds = generate_synthetic(spec, 5);
  const auto adj = ds.graph.gcn_normalized();
  const Matrix h = random_dense(2708, static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(adj, h));
  }
}
BENCHMARK(BM_Spmm)->Arg(32)->Arg(128);

void BM_SparseFeatureSpmm(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_nodes = 2708;
  spec.num_classes = 7;
  spec.num_undirected_edges = 5278;
  spec.feature_dim = 1433;
  spec.features_per_node = 18;
  const Dataset ds = generate_synthetic(spec, 7);
  const Matrix w = random_dense(1433, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(ds.features, w));
  }
}
BENCHMARK(BM_SparseFeatureSpmm);

void BM_GcnNormalize(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_nodes = 10000;
  spec.num_classes = 5;
  spec.num_undirected_edges = 40000;
  spec.feature_dim = 64;
  const Dataset ds = generate_synthetic(spec, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.graph.gcn_normalized());
  }
}
BENCHMARK(BM_GcnNormalize);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(1 << 20);

void BM_AeadSeal(benchmark::State& state) {
  AeadKey key{};
  AeadNonce nonce{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  AeadTag tag;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_encrypt(key, nonce, data, {}, tag));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(4096)->Arg(1 << 20);

}  // namespace
