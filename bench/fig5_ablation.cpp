// Regenerates Fig. 5: substitute-graph hyper-parameter ablations on Cora
// and Citeseer — KNN k, cosine-similarity threshold tau, and the random
// graph's edge budget (% of real edges). Reports p_bb and p_rec per point.
#include "bench_common.hpp"

using namespace gv;
using namespace gv::bench;

namespace {
struct Point {
  std::string dataset;
  std::string family;
  double x;
  double pbb;
  double prec;
};
}  // namespace

int main() {
  const auto s = settings();
  std::vector<Point> points;

  for (const auto id : {DatasetId::kCora, DatasetId::kCiteseer}) {
    const Dataset ds = load_dataset(id, s.seed, s.scale);
    GV_LOG_INFO << "Fig. 5: " << ds.name;

    // --- KNN: k in {1, 2, 4, 6, 8, 10}. -------------------------------
    for (const std::uint32_t k : {1u, 2u, 4u, 6u, 8u, 10u}) {
      auto cfg = vault_config(id, s);
      cfg.backbone = BackboneKind::kKnn;
      cfg.knn_k = k;
      const TrainedVault tv = train_vault(ds, cfg);
      points.push_back({ds.name, "knn_k", static_cast<double>(k),
                        tv.backbone_test_accuracy, tv.rectifier_test_accuracy});
    }
    // --- Cosine threshold tau. -----------------------------------------
    for (const float tau : {0.1f, 0.2f, 0.4f, 0.6f, 0.8f}) {
      auto cfg = vault_config(id, s);
      cfg.backbone = BackboneKind::kCosine;
      cfg.cosine_tau = tau;
      const TrainedVault tv = train_vault(ds, cfg);
      points.push_back({ds.name, "cosine_tau", tau, tv.backbone_test_accuracy,
                        tv.rectifier_test_accuracy});
    }
    // --- Random edges as % of real edge count. --------------------------
    for (const double frac : {0.05, 0.25, 0.5, 1.0, 2.0, 3.0}) {
      auto cfg = vault_config(id, s);
      cfg.backbone = BackboneKind::kRandom;
      cfg.random_edge_fraction = frac;
      const TrainedVault tv = train_vault(ds, cfg);
      points.push_back({ds.name, "random_pct", frac * 100.0,
                        tv.backbone_test_accuracy, tv.rectifier_test_accuracy});
    }
  }

  Table t("Fig. 5: impact of substitute-graph hyperparameters");
  t.set_header({"Dataset", "Family", "x", "p_bb(%)", "p_rec(%)"});
  for (const auto& p : points) {
    t.add_row({p.dataset, p.family, Table::fmt(p.x, 2), Table::pct(p.pbb),
               Table::pct(p.prec)});
  }
  t.print();
  t.write_csv(out_dir() + "/fig5_ablation.csv");
  std::printf(
      "\nShapes to compare with the paper: KNN accuracy is stable in k; low\n"
      "cosine tau (<=0.2) hurts; adding random edges steadily degrades both\n"
      "p_bb and p_rec (structural noise).\n");
  return 0;
}
