// Shared helpers for the table/figure regeneration binaries.
//
// Every bench honors:
//   GNNVAULT_BENCH_FAST=1  -> scaled-down datasets + fewer epochs (smoke)
//   GNNVAULT_SEED=<u64>    -> experiment seed (default 42)
//   GNNVAULT_EPOCHS=<n>    -> override training epochs
//   GNNVAULT_SCALE=<f>     -> dataset scale factor in (0,1]
// and writes a CSV next to its stdout table into bench_out/.
//
// CI trajectory: a bench invoked with `--json <path>` additionally writes a
// machine-readable artifact (title/header/rows of every table plus named
// headline scalars) so perf claims in later PRs are backed by recorded
// numbers instead of log archaeology.
#pragma once

#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>
#include <sys/stat.h>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "core/pipeline.hpp"
#include "data/catalog.hpp"

namespace gv::bench {

struct BenchSettings {
  double scale = 1.0;
  int epochs = 150;
  std::uint64_t seed = 42;
};

inline BenchSettings settings() {
  BenchSettings s;
  s.seed = experiment_seed();
  if (bench_fast_mode()) {
    s.scale = 0.12;
    s.epochs = 40;
  }
  s.scale = env_double("GNNVAULT_SCALE", s.scale);
  s.epochs = static_cast<int>(env_int("GNNVAULT_EPOCHS", s.epochs));
  return s;
}

inline std::string out_dir() {
  const std::string dir = env_string("GNNVAULT_OUT", "bench_out");
  ::mkdir(dir.c_str(), 0755);  // best effort; write_csv reports failures
  return dir;
}

// --- Machine-readable bench artifacts (--json <path>). ----------------------

struct BenchArgs {
  /// Destination of the JSON artifact; empty = not requested.
  std::string json_path;
};

/// Parse the harness command line.  Only `--json <path>` is recognized;
/// anything else aborts with a usage error so a typo cannot silently drop
/// the artifact a CI step depends on.
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      GV_LOG_ERROR << "usage: " << argv[0] << " [--json <path>]";
      std::exit(2);
    }
  }
  return args;
}

/// Write the bench's tables (and optional named headline scalars) as one
/// JSON document.  No-op when `args.json_path` is empty.
///
/// `fragments` are pre-rendered JSON values embedded verbatim under their
/// key — the hook that lets a bench attach structured observability state
/// (e.g. `{"metrics", MetricsRegistry::global().to_json()}`) to the same
/// artifact its tables land in, instead of scattering sidecar files.
inline void write_json(
    const BenchArgs& args, const std::string& bench, const BenchSettings& s,
    const std::vector<const Table*>& tables,
    const std::vector<std::pair<std::string, double>>& scalars = {},
    const std::vector<std::pair<std::string, std::string>>& fragments = {}) {
  if (args.json_path.empty()) return;
  std::ofstream f(args.json_path, std::ios::trunc);
  GV_CHECK(f.good(), "cannot open JSON output file: " + args.json_path);
  f << "{\"bench\": \"" << bench << "\", \"fast_mode\": "
    << (bench_fast_mode() ? "true" : "false") << ", \"seed\": " << s.seed
    << ", \"scale\": " << s.scale << ", \"epochs\": " << s.epochs;
  for (const auto& [name, value] : scalars) {
    f << ", \"" << name << "\": " << value;
  }
  for (const auto& [name, json] : fragments) {
    f << ", \"" << name << "\": " << json;
  }
  f << ", \"tables\": [";
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (i) f << ", ";
    f << tables[i]->to_json();
  }
  f << "]}\n";
  GV_CHECK(f.good(), "failed writing JSON output file: " + args.json_path);
  GV_LOG_INFO << bench << ": wrote " << args.json_path;
}

inline VaultTrainConfig vault_config(DatasetId id, const BenchSettings& s) {
  VaultTrainConfig cfg;
  cfg.spec = model_spec_for_dataset(id);
  cfg.backbone_train.epochs = s.epochs;
  cfg.rectifier_train.epochs = s.epochs;
  cfg.seed = s.seed;
  return cfg;
}

inline TrainConfig original_config(const BenchSettings& s) {
  TrainConfig tc;
  tc.epochs = s.epochs;
  return tc;
}

/// Format a parameter count as millions with 3-4 significant digits,
/// matching the Table II convention (e.g. 0.188, 0.022, 0.0088).
inline std::string fmt_params_m(std::size_t params) {
  const double m = static_cast<double>(params) / 1e6;
  return Table::fmt(m, m < 0.01 ? 4 : 3);
}

}  // namespace gv::bench
