// Shared helpers for the table/figure regeneration binaries.
//
// Every bench honors:
//   GNNVAULT_BENCH_FAST=1  -> scaled-down datasets + fewer epochs (smoke)
//   GNNVAULT_SEED=<u64>    -> experiment seed (default 42)
//   GNNVAULT_EPOCHS=<n>    -> override training epochs
//   GNNVAULT_SCALE=<f>     -> dataset scale factor in (0,1]
// and writes a CSV next to its stdout table into bench_out/.
#pragma once

#include <string>
#include <sys/stat.h>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "core/pipeline.hpp"
#include "data/catalog.hpp"

namespace gv::bench {

struct BenchSettings {
  double scale = 1.0;
  int epochs = 150;
  std::uint64_t seed = 42;
};

inline BenchSettings settings() {
  BenchSettings s;
  s.seed = experiment_seed();
  if (bench_fast_mode()) {
    s.scale = 0.12;
    s.epochs = 40;
  }
  s.scale = env_double("GNNVAULT_SCALE", s.scale);
  s.epochs = static_cast<int>(env_int("GNNVAULT_EPOCHS", s.epochs));
  return s;
}

inline std::string out_dir() {
  const std::string dir = env_string("GNNVAULT_OUT", "bench_out");
  ::mkdir(dir.c_str(), 0755);  // best effort; write_csv reports failures
  return dir;
}

inline VaultTrainConfig vault_config(DatasetId id, const BenchSettings& s) {
  VaultTrainConfig cfg;
  cfg.spec = model_spec_for_dataset(id);
  cfg.backbone_train.epochs = s.epochs;
  cfg.rectifier_train.epochs = s.epochs;
  cfg.seed = s.seed;
  return cfg;
}

inline TrainConfig original_config(const BenchSettings& s) {
  TrainConfig tc;
  tc.epochs = s.epochs;
  return tc;
}

/// Format a parameter count as millions with 3-4 significant digits,
/// matching the Table II convention (e.g. 0.188, 0.022, 0.0088).
inline std::string fmt_params_m(std::size_t params) {
  const double m = static_cast<double>(params) / 1e6;
  return Table::fmt(m, m < 0.01 ? 4 : 3);
}

}  // namespace gv::bench
