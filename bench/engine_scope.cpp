// EngineScope: serving-engine profiler artifacts + per-tenant attribution.
//
// Four pieces, all over deterministic synthetic fleets:
//
//   1. Work-stealing visibility.  A root job self-posts a burst of children
//      onto its OWN worker's deque (posts from a worker thread stay local),
//      so the other workers can only make progress by stealing — the
//      engine probe's jobs.steals{result=hit} fold is then PROVABLY
//      non-zero, and the baseline gates the steal-success ratio > 0.
//
//   2. Folded-stack profile.  The kill -> promote -> cold-query scenario
//      runs traced; the retained spans fold into
//      bench_out/profile_serve.folded (flamegraph.pl / speedscope format),
//      validated here and re-validated by CI with stock Python.
//
//   3. Tenant ledger conservation.  Two registry-admitted tenants plus the
//      sharded fleet feed TenantLedger; the bench checks the conservation
//      invariant (sum over tenant rows == fleet totals, EPC column == the
//      registry's books) before exporting.
//
//   4. Ops report.  ops_report() — registry dump + ledger + every live
//      engine probe — lands in bench_out/ops_report.json, schema-validated
//      here and again by CI's independent Python check.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI gates via
// bench/baselines/engine.json.
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_export.hpp"
#include "obs/tenant_ledger.hpp"
#include "obs/trace.hpp"
#include "serve/job_system.hpp"
#include "serve/registry.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_server.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

Dataset engine_dataset(std::uint64_t seed, std::uint32_t nodes) {
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.num_classes = 3;
  spec.num_undirected_edges = nodes * 3;
  spec.feature_dim = 100;
  spec.homophily = 0.85;
  spec.feature_signal = 0.45;
  return generate_synthetic(spec, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  MetricsRegistry& greg = MetricsRegistry::global();
  auto& rec = TraceRecorder::instance();

  // --- 1. Deterministic steal scenario. --------------------------------------
  // The root job posts every child onto its own deque; with 4 workers and
  // ~50 us of spin per child, the three peers drain it by stealing.
  std::uint64_t steal_hits = 0, steal_misses = 0, stress_executed = 0;
  {
    JobSystem jobs(4);
    constexpr int kChildren = 512;
    std::atomic<int> done{0};
    jobs.post(JobClass::kInteractive, [&] {
      for (int i = 0; i < kChildren; ++i) {
        jobs.post(JobClass::kInteractive, [&] {
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::microseconds(50);
          while (std::chrono::steady_clock::now() < until) {
          }
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    while (done.load(std::memory_order_relaxed) < kChildren) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EngineProbe stress_probe(greg, "steal-stress");
    stress_probe.attach(&jobs, nullptr, nullptr);
    stress_probe.pull();
    for (const auto& w : jobs.worker_snapshots()) {
      steal_hits += w.steal_hits;
      steal_misses += w.steal_misses;
      for (std::size_t c = 0; c < kNumJobClasses; ++c) {
        stress_executed += w.executed[c];
      }
    }
    stress_probe.attach(nullptr, nullptr, nullptr);
  }
  GV_CHECK(steal_hits > 0,
           "self-posted burst produced no successful steals — the "
           "work-stealing path is dead");
  const double steal_ratio =
      double(steal_hits) / double(std::max<std::uint64_t>(
                               steal_hits + steal_misses, 1));

  // --- 2. Traced kill -> promote -> cold-query scenario. ---------------------
  const std::uint32_t nodes = bench_fast_mode() ? 320 : 640;
  const Dataset ds = engine_dataset(s.seed, nodes);
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"E", {24, 12}, {24, 12}, 0.4f};
  cfg.backbone_train.epochs = std::min(s.epochs, 50);
  cfg.rectifier_train.epochs = std::min(s.epochs, 50);
  cfg.seed = s.seed;
  const TrainedVault vault = train_vault(ds, cfg);
  const auto truth = vault.predict_rectified(ds.features);

  rec.clear();
  rec.set_enabled(true);
  bool exact = true;
  double fleet_modeled_seconds = 0.0;
  std::uint64_t fleet_ecalls = 0;
  {
    ShardedServerConfig scfg;
    scfg.server.max_batch = 16;
    scfg.server.max_wait = std::chrono::milliseconds(10);
    scfg.server.worker_threads = 2;
    scfg.server.tenant = "fleet";
    scfg.replicate = true;
    scfg.materialize_on_start = false;  // cold cross-shard path first
    ShardedVaultServer srv(ds, vault, ShardPlanner::plan(ds, vault, 3), {},
                           scfg);
    Rng rng(s.seed ^ 0xe9c1e5c07eull);
    const auto wave = [&](std::size_t n) {
      std::vector<std::uint32_t> q(n);
      for (auto& v : q) {
        v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
      }
      auto futs = srv.submit_many(q);
      for (std::size_t i = 0; i < q.size(); ++i) {
        exact = exact && futs[i].get() == truth[q[i]];
      }
    };
    wave(48);                           // cold walks
    srv.update_features(ds.features);   // materialize stores
    wave(96);                           // warm lookups
    const std::uint32_t victim =
        srv.deployment().plan().owner[rng.uniform_index(ds.num_nodes())];
    if (srv.replicas() != nullptr) srv.replicas()->wait_ready();
    srv.kill_shard(victim);
    wave(96);  // fenced, then served by the promoted PRIMARY
    srv.flush();
    srv.join_promotion();

    const MetricsSnapshot stats = srv.stats();
    fleet_modeled_seconds = stats.modeled_seconds;
    fleet_ecalls = stats.ecalls;
    rec.set_enabled(false);

    // --- 3. Registry tenants + ledger conservation (fleet still live, so
    // its provider row participates). ----------------------------------------
    VaultRegistry registry;
    ServerConfig tcfg;
    tcfg.max_batch = 8;
    tcfg.max_wait = std::chrono::microseconds(500);
    GV_CHECK(registry.admit("acme", ds, vault, tcfg).decision ==
                 AdmissionDecision::kAdmitted,
             "tenant acme not admitted");
    GV_CHECK(registry.admit("zeta", ds, vault, tcfg).decision ==
                 AdmissionDecision::kAdmitted,
             "tenant zeta not admitted");
    for (std::uint32_t n = 0; n < 32; ++n) {
      GV_CHECK(registry.server("acme")->query(n) == truth[n],
               "tenant acme answered inexactly");
      GV_CHECK(registry.server("zeta")->query(n) == truth[n],
               "tenant zeta answered inexactly");
    }

    auto& ledger = TenantLedger::global();
    std::map<std::string, TenantUsage> rows;
    TenantUsage column_sum;
    for (const auto& [tenant, u] : ledger.snapshot()) {
      rows[tenant] = u;
      column_sum += u;
    }
    const TenantUsage fleet = ledger.fleet_totals();
    GV_CHECK(rows.count("acme") == 1 && rows.count("zeta") == 1 &&
                 rows.count("fleet") == 1,
             "expected ledger rows for acme, zeta and the sharded fleet");
    GV_CHECK(fleet.ecalls == column_sum.ecalls &&
                 fleet.batches == column_sum.batches &&
                 fleet.epc_resident_bytes == column_sum.epc_resident_bytes &&
                 fleet.modeled_seconds == column_sum.modeled_seconds,
             "ledger fleet totals must equal the column-wise tenant sum");
    GV_CHECK(rows["acme"].epc_resident_bytes +
                     rows["zeta"].epc_resident_bytes ==
                 registry.epc_in_use(),
             "ledger EPC column disagrees with the registry books");
    GV_CHECK(rows["acme"].ecalls == registry.server("acme")->stats().ecalls,
             "ledger ecall attribution disagrees with the server meter");
    ledger.publish(greg);

    // --- 4. Artifacts: folded profile + unified ops report. ------------------
    const std::string folded = folded_profile_snapshot();
    std::string why;
    GV_CHECK(validate_folded(folded, &why), "folded profile invalid: " + why);
    for (const char* frame :
         {"serve/batch_flush", "promotion/promotion", "fleet/cold_forward"}) {
      GV_CHECK(folded.find(frame) != std::string::npos,
               std::string("folded profile is missing frame: ") + frame);
    }
    write_folded(out_dir() + "/profile_serve.folded");

    // Probe fold cost, amortized: pull_all() walks every live engine (the
    // fleet's K+1 front ends plus both tenants').
    constexpr int kPulls = 200;
    Stopwatch pull_watch;
    for (int i = 0; i < kPulls; ++i) EngineProbe::pull_all();
    const double pull_us = pull_watch.seconds() / double(kPulls) * 1e6;

    const std::string report = ops_report();
    GV_CHECK(validate_ops_report(report, &why), "ops report invalid: " + why);
    GV_CHECK(report.find("\"engine\":\"acme\"") != std::string::npos &&
                 report.find("\"engine\":\"fleet\"") != std::string::npos,
             "ops report engines array is missing admitted engines");
    write_ops_report(out_dir() + "/ops_report.json");

    std::size_t folded_lines = 0;
    for (char c : folded) folded_lines += c == '\n';
    std::size_t engines_live = 0;
    const std::string engines = EngineProbe::engines_json(false);
    for (std::size_t p = engines.find("\"engine\":"); p != std::string::npos;
         p = engines.find("\"engine\":", p + 1)) {
      ++engines_live;
    }

    Table table("EngineScope: steals, profile, ledger, ops report");
    table.set_header({"quantity", "value"});
    table.add_row({"steal hits", std::to_string(steal_hits)});
    table.add_row({"steal success ratio", Table::fmt(steal_ratio, 3)});
    table.add_row({"folded stacks", std::to_string(folded_lines)});
    table.add_row({"live engines", std::to_string(engines_live)});
    table.add_row({"ledger tenants", std::to_string(rows.size())});
    table.add_row({"fleet modeled s", Table::fmt(fleet_modeled_seconds, 4)});
    table.add_row({"pull_all us", Table::fmt(pull_us, 1)});
    table.print();
    GV_LOG_INFO << "engine_scope: steal ratio " << Table::fmt(steal_ratio, 3)
                << " (" << steal_hits << " hits / " << steal_misses
                << " misses), " << folded_lines << " folded stacks, "
                << engines_live << " live engines, " << rows.size()
                << " ledger tenants, pull_all " << Table::fmt(pull_us, 1)
                << " us";

    table.write_csv(out_dir() + "/engine_scope.csv");
    write_json(args, "engine_scope", s, {&table},
               {{"steal_hits", double(steal_hits)},
                {"steal_misses", double(steal_misses)},
                {"steal_success_ratio", steal_ratio},
                {"stress_executed", double(stress_executed)},
                {"exact", exact ? 1.0 : 0.0},
                {"folded_lines", double(folded_lines)},
                {"engines_live", double(engines_live)},
                {"ledger_tenants", double(rows.size())},
                {"fleet_ecalls", double(fleet_ecalls)},
                {"pull_all_us", pull_us}},
               {{"tenants", ledger.cached_json()}});
  }
  GV_CHECK(exact, "serving scenario answered inexactly");
  rec.clear();
  return 0;
}
