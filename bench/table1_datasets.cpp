// Regenerates Table I: dataset statistics and the memory footprint of a
// dense adjacency matrix (the motivation for COO storage in the enclave
// and for not putting the whole graph inside the EPC).
#include "bench_common.hpp"

#include "graph/stats.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const auto s = settings();
  Table t("Table I: datasets used in GNNVault validation (synthetic twins)");
  t.set_header({"Dataset", "#Node", "#Edge", "#Feature", "#Class", "DenseA(MB,f64)",
                "Homophily", "AvgDeg", "FitsEPC(96MB)?"});
  for (const auto id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, s.seed, s.scale);
    const auto row = table_one_row(ds);
    const auto stats = compute_stats(ds.graph);
    const bool fits = row.dense_adj_mb <= 96.0;
    t.add_row({row.name, std::to_string(row.nodes), std::to_string(row.directed_edges),
               std::to_string(row.features), std::to_string(row.classes),
               Table::fmt(row.dense_adj_mb, 2),
               Table::fmt(ds.graph.edge_homophily(ds.labels), 3),
               Table::fmt(stats.avg_degree, 2), fits ? "yes" : "NO"});
  }
  t.print();
  t.write_csv(out_dir() + "/table1_datasets.csv");
  std::printf(
      "\nPaper Table I reports dense-A footprints of 167.85 / 253.35 / 8898.01 /\n"
      "4328.56 / 1339.47 / 8966.74 MB (a ~23 B/cell framework representation);\n"
      "the float64 column above scales identically (x n^2) and makes the same\n"
      "point: only the smallest graphs even approach the 96 MB EPC.\n");
  return 0;
}
