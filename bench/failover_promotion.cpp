// Failover promotion latency: how long is a shard fenced after its primary
// enclave dies — and how much of that window does incremental promotion
// re-materialization remove?
//
// For each shard count K the bench runs the same kill three times, on three
// identically planned deployments:
//
//   full refresh   the PR-3 path: after adoption the label stores
//                  re-materialize by re-running the WHOLE fleet's refresh
//                  (backbone + streaming + every shard's forward + replica
//                  label re-ship) — ~98% of the fencing window.  Measured
//                  with a stale standby and a dropped backbone cache so it
//                  reproduces that path exactly.
//   shard-local    rematerialize_shard: only the adopted shard's store is
//                  rebuilt, via a shard-local cold forward whose halo
//                  inputs are pulled from the surviving shards' retained
//                  boundary activations over the attested channels (also
//                  forced by a stale standby — the case that NEEDS a
//                  recompute).
//   warm adopt     the default promote() path when the standby's store was
//                  synced at the current epoch: the replicated labels are
//                  bit-identical to a recompute and already inside the
//                  adopted enclave, so the fence pays no forward at all.
//
// Every path then must answer BIT-EXACTLY, including after a post-kill
// feature update (the case a warm standby alone cannot serve: its store
// goes stale the moment the snapshot moves).
//
// Reported per K: replication warm-up, the three promotion walls (fencing
// windows) and their reductions vs full refresh; headline = the mean
// fencing-window reduction of the default promote() path across K.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE; `--json
// <path>` writes the machine-readable artifact CI uploads.
#include "bench_common.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_deployment.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

struct PromotionRun {
  double replicate_ms = 0.0;
  double promote_ms = 0.0;
  bool exact = true;
  bool update_exact = true;
};

enum class Path { kFullRefresh, kShardLocal, kWarmAdopt };

/// Kill `victim` on a fresh deployment and promote along `path`; verify the
/// promoted PRIMARY (and a post-kill feature update) bit-exact.
PromotionRun run_promotion(const Dataset& ds, const TrainedVault& vault,
                           std::uint32_t K, std::uint32_t victim,
                           const CsrMatrix& mutated, std::uint64_t seed,
                           Path path) {
  PromotionRun out;
  ShardedVaultDeployment dep(ds, vault, ShardPlanner::plan(ds, vault, K));
  const auto truth = dep.infer_labels(ds.features);

  Stopwatch rep_watch;
  ReplicaManager replicas(dep);
  replicas.replicate_all();
  out.replicate_ms = rep_watch.seconds() * 1e3;

  if (path != Path::kWarmAdopt) {
    // Stale-ify the standbys: a refresh they never see (same snapshot, next
    // epoch) forces promote() onto the re-materialization callback instead
    // of the warm-adopt fast path.
    dep.refresh(ds.features);
  }
  if (path == Path::kFullRefresh) {
    // The PR-3 promotion path had no backbone-output cache either: its
    // fencing window re-ran the backbone inside the fence.
    dep.drop_backbone_cache();
  }

  ShardRouter router(dep, &replicas);
  dep.kill_shard(victim);
  out.promote_ms = replicas.promote(victim, [&] {
    if (path == Path::kShardLocal) {
      dep.rematerialize_shard(victim, ds.features);
    } else {
      dep.refresh(ds.features);
    }
  });

  // Promoted-PRIMARY lookups over a random workload.
  Rng rng(seed ^ 0xfa110feull);
  constexpr std::size_t kBatch = 32;
  for (std::size_t off = 0; off + kBatch <= 512; off += kBatch) {
    std::vector<std::uint32_t> nodes(kBatch);
    for (auto& v : nodes) {
      v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
    }
    const auto got = router.route(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out.exact = out.exact && got[i] == truth[nodes[i]];
    }
  }

  // Post-kill feature update: only possible because the promoted PRIMARY
  // rejoined the halo exchange; a warm standby would be stale here.
  const auto new_truth = dep.infer_labels(mutated);
  const auto single_truth = vault.predict_rectified(mutated);
  out.update_exact =
      std::equal(new_truth.begin(), new_truth.end(), single_truth.begin());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "failover_promotion: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);

  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;

  Table table("Replica promotion: kill -> PRIMARY serving again");
  table.set_header({"shards", "replicate ms", "full-refresh ms",
                    "shard-local ms", "warm-adopt ms", "local speedup",
                    "warm speedup", "bit-exact", "post-update exact"});

  Rng rng(s.seed ^ 0xfa110feull);
  double local_speedup_sum = 0.0, warm_speedup_sum = 0.0;
  std::size_t rows = 0;

  for (const std::uint32_t K : {2u, 4u, 8u}) {
    // Same victim for every path: the plan is deterministic in (ds, vault,
    // K), so the three deployments shard identically.
    const std::uint32_t victim =
        ShardPlanner::plan(ds, vault, K).owner[rng.uniform_index(ds.num_nodes())];

    const PromotionRun full = run_promotion(ds, vault, K, victim, mutated,
                                            s.seed, Path::kFullRefresh);
    const PromotionRun local = run_promotion(ds, vault, K, victim, mutated,
                                             s.seed, Path::kShardLocal);
    const PromotionRun warm = run_promotion(ds, vault, K, victim, mutated,
                                            s.seed, Path::kWarmAdopt);

    const double local_speedup =
        full.promote_ms / std::max(local.promote_ms, 1e-9);
    const double warm_speedup =
        full.promote_ms / std::max(warm.promote_ms, 1e-9);
    local_speedup_sum += local_speedup;
    warm_speedup_sum += warm_speedup;
    ++rows;

    const bool exact = full.exact && local.exact && warm.exact;
    const bool update_exact =
        full.update_exact && local.update_exact && warm.update_exact;
    table.add_row({std::to_string(K), Table::fmt(warm.replicate_ms, 1),
                   Table::fmt(full.promote_ms, 1),
                   Table::fmt(local.promote_ms, 1),
                   Table::fmt(warm.promote_ms, 1),
                   Table::fmt(local_speedup, 1) + "x",
                   Table::fmt(warm_speedup, 1) + "x", exact ? "yes" : "NO",
                   update_exact ? "yes" : "NO"});
  }

  const double mean_local = local_speedup_sum / std::max<std::size_t>(1, rows);
  const double mean_warm = warm_speedup_sum / std::max<std::size_t>(1, rows);
  table.print();
  GV_LOG_INFO << "mean fencing-window reduction vs full refresh: "
              << Table::fmt(mean_warm, 1) << "x (default warm-adopt path), "
              << Table::fmt(mean_local, 1) << "x (stale standby, shard-local "
              << "forward with halo pulls)";
  table.write_csv(out_dir() + "/failover_promotion.csv");
  write_json(args, "failover_promotion", s, {&table},
             {{"mean_fencing_speedup", mean_warm},
              {"mean_shard_local_speedup", mean_local}});
  return 0;
}
