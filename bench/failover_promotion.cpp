// Failover promotion latency: how long is a shard fenced after its primary
// enclave dies?
//
// For each shard count K, the bench kills one shard and times the full
// promotion — the standby unseals its RE-SEALED package, the deployment
// adopts its enclave (rebuilding rectifier + sub-adjacency and re-running
// the attested-channel handshake with the surviving shards), and the label
// stores re-materialize from the current feature snapshot — then verifies
// the promoted PRIMARY answers BIT-EXACTLY, including after a post-kill
// feature update (the case a warm standby alone cannot serve: its store
// goes stale the moment the snapshot moves).
//
// Reported: replication warm-up, promotion wall ms (the fencing window),
// the share of it spent re-materializing, and post-promotion lookup cost.
//
// Honors GNNVAULT_BENCH_FAST, GNNVAULT_SEED, GNNVAULT_SCALE.
#include "bench_common.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_deployment.hpp"

using namespace gv;
using namespace gv::bench;

int main() {
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.35);
  const Dataset ds = load_dataset(DatasetId::kPubmed, s.seed, scale);
  GV_LOG_INFO << "failover_promotion: " << ds.name << " n=" << ds.num_nodes()
              << " e=" << ds.graph.num_directed_edges();

  VaultTrainConfig cfg = vault_config(DatasetId::kPubmed, s);
  TrainedVault vault = train_vault(ds, cfg);

  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;

  Table table("Replica promotion: kill -> PRIMARY serving again");
  table.set_header({"shards", "replicate ms", "promote ms", "rematerialize %",
                    "lookup ms/batch", "bit-exact", "post-update exact"});

  Rng rng(s.seed ^ 0xfa110feull);
  constexpr std::size_t kBatch = 32;

  for (const std::uint32_t K : {2u, 4u, 8u}) {
    ShardedVaultDeployment dep(ds, vault, ShardPlanner::plan(ds, vault, K));
    const auto truth = dep.infer_labels(ds.features);

    Stopwatch rep_watch;
    ReplicaManager replicas(dep);
    replicas.replicate_all();
    const double replicate_ms = rep_watch.seconds() * 1e3;

    ShardRouter router(dep, &replicas);
    const std::uint32_t victim = dep.owner(
        static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes())));
    dep.kill_shard(victim);

    double rematerialize_s = 0.0;
    const double promote_ms = replicas.promote(victim, [&] {
      Stopwatch w;
      dep.refresh(ds.features);
      rematerialize_s = w.seconds();
    });

    // Promoted-PRIMARY lookups over a random workload.
    bool exact = true;
    Stopwatch lookup_watch;
    std::size_t batches = 0;
    for (std::size_t off = 0; off + kBatch <= 512; off += kBatch, ++batches) {
      std::vector<std::uint32_t> nodes(kBatch);
      for (auto& v : nodes) {
        v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
      }
      const auto got = router.route(nodes);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        exact = exact && got[i] == truth[nodes[i]];
      }
    }
    const double lookup_ms =
        lookup_watch.seconds() * 1e3 / std::max<std::size_t>(1, batches);

    // Post-kill feature update: only possible because the promoted PRIMARY
    // rejoined the halo exchange; a warm standby would be stale here.
    const auto new_truth = dep.infer_labels(mutated);
    const auto single_truth = vault.predict_rectified(mutated);
    const bool update_exact =
        std::equal(new_truth.begin(), new_truth.end(), single_truth.begin());

    table.add_row({std::to_string(K), Table::fmt(replicate_ms, 1),
                   Table::fmt(promote_ms, 1),
                   Table::fmt(100.0 * rematerialize_s * 1e3 /
                                  std::max(promote_ms, 1e-9),
                              0),
                   Table::fmt(lookup_ms, 3), exact ? "yes" : "NO",
                   update_exact ? "yes" : "NO"});
  }
  table.print();
  table.write_csv(out_dir() + "/failover_promotion.csv");
  return 0;
}
