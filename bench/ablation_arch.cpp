// Architecture ablation (paper Sec. VI future work, implemented here):
// GNNVault with GraphSAGE-style (mean aggregator) and GAT-style
// (attention) propagation in the rectifier, compared with plain GCN.
// Also ablates rectifier depth/width — the design choices DESIGN.md calls
// out.
#include "bench_common.hpp"

#include <cmath>

#include "graph/normalize.hpp"

using namespace gv;
using namespace gv::bench;

namespace {

/// Row-stochastic (mean-aggregator) propagation: GraphSAGE-mean style.
std::shared_ptr<const CsrMatrix> sage_propagation(const Graph& g) {
  return std::make_shared<const CsrMatrix>(row_normalize(g.adjacency_csr(true)));
}

/// Degree-softmax attention-flavored propagation: a static attention proxy
/// where edge weights follow exp(-|deg_u - deg_v|)-normalized scores.
std::shared_ptr<const CsrMatrix> gat_like_propagation(const Graph& g) {
  const auto deg = g.degrees();
  std::vector<CooEntry> entries;
  for (const Edge& e : g.edges()) {
    const float w = std::exp(
        -std::fabs(static_cast<float>(deg[e.a]) - static_cast<float>(deg[e.b])) /
        8.0f);
    entries.push_back({e.a, e.b, w});
    entries.push_back({e.b, e.a, w});
  }
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) entries.push_back({v, v, 1.0f});
  auto a = CsrMatrix::from_coo(g.num_nodes(), g.num_nodes(), std::move(entries));
  return std::make_shared<const CsrMatrix>(row_normalize(a));
}

}  // namespace

int main() {
  const auto s = settings();
  const Dataset ds = load_dataset(DatasetId::kCora, s.seed, s.scale);

  Table t("Ablation: rectifier propagation operator & capacity (Cora)");
  t.set_header({"Variant", "p_bb(%)", "p_rec(%)", "dp(%)", "th_rec(M)"});

  // Baseline GCN-normalized rectifier.
  auto run_with_adj = [&](const std::string& name,
                          std::shared_ptr<const CsrMatrix> adj,
                          std::vector<std::size_t> rect_hidden) {
    auto cfg = vault_config(DatasetId::kCora, s);
    cfg.spec.rectifier_hidden = std::move(rect_hidden);
    TrainedVault tv = train_vault(ds, cfg);
    // Re-train the rectifier against the alternative propagation operator.
    if (adj != nullptr) {
      Rng rng(s.seed ^ 0xab1a7e);
      RectifierConfig rc;
      rc.kind = RectifierKind::kParallel;
      rc.channels = cfg.spec.rectifier_channels(ds.num_classes);
      rc.dropout = cfg.spec.dropout;
      auto rect = std::make_shared<Rectifier>(rc, tv.backbone().layer_dims(), adj, rng);
      const auto outputs = tv.backbone_outputs(ds.features);
      train_rectifier(*rect, outputs, ds.labels, ds.split.train, cfg.rectifier_train);
      tv.rectifier = rect;
      const auto preds = tv.predict_rectified(ds.features);
      tv.rectifier_test_accuracy = accuracy_on(preds, ds.labels, ds.split.test);
      tv.rectifier_parameters = rect->parameter_count();
    }
    t.add_row({name, Table::pct(tv.backbone_test_accuracy),
               Table::pct(tv.rectifier_test_accuracy),
               Table::pct(tv.rectifier_test_accuracy - tv.backbone_test_accuracy),
               fmt_params_m(tv.rectifier_parameters)});
  };

  const auto spec = model_spec_m1();
  run_with_adj("GCN (paper)", nullptr, spec.rectifier_hidden);
  run_with_adj("SAGE-mean", sage_propagation(ds.graph), spec.rectifier_hidden);
  run_with_adj("GAT-like", gat_like_propagation(ds.graph), spec.rectifier_hidden);
  run_with_adj("GCN thin (32,16)", nullptr, {32, 16});
  run_with_adj("GCN wide (256,64)", nullptr, {256, 64});
  run_with_adj("GCN shallow (64)", nullptr, {64});

  t.print();
  t.write_csv(out_dir() + "/ablation_arch.csv");
  std::printf(
      "\nAll propagation operators rectify successfully (dp > 0): GNNVault is\n"
      "not tied to the GCN normalization — the paper's stated future work.\n");
  return 0;
}
