// Serving throughput: batched vs. unbatched ecalls, plus JobServe QoS.
//
// Sweeps the micro-batch size and reports modeled requests/sec (the SGX
// cost model charges ECALL transitions, MEE-encrypted copies, and paging as
// modeled seconds, so that is the time batching actually removes; wall time
// is reported alongside).  batch=1 is the unbatched baseline: every request
// pays a full embedding push plus one enclave transition.  A second table
// runs the end-to-end VaultServer (micro-batch queue + work-stealing
// JobSystem workers + LRU cache) under a mixed workload: interactive query
// latency is measured with and without a saturating MAINTENANCE flood on
// the same workers, which is exactly the starvation the job system's
// maintenance in-flight cap exists to prevent.  Headline scalars:
//
//   interactive_p99_clean_ms   client-observed p99, no background work
//   interactive_p99_mixed_ms   client-observed p99 under the flood
//   interactive_p99_ratio      mixed / clean (the QoS claim: bounded, ~<2x)
//   allocs_per_warm_lookup     heap allocations per warm cache-hit lookup,
//                              counted with a global operator-new hook — the
//                              JobServe zero-allocation claim, exactly 0
//
// Honors the usual knobs (GNNVAULT_BENCH_FAST, GNNVAULT_SEED,
// GNNVAULT_SCALE) plus GNNVAULT_SERVE_REQUESTS (default 512).
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <thread>

#include "common/rng.hpp"
#include "serve/vault_server.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Global hook: operator new[] and the nothrow variants funnel through this
// overload, so one counter observes every heap allocation in the process.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

using namespace gv;
using namespace gv::bench;

namespace {

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Drive `server` with `kClients` synchronous client threads; under
/// `flood`, a feeder keeps the maintenance lanes saturated the whole time.
/// Returns client-observed per-query latencies (ms).
std::vector<double> run_interactive_scenario(
    VaultServer& server, const std::vector<std::uint32_t>& workload,
    bool flood, std::uint64_t* maintenance_done) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> maintenance{0};
  std::thread feeder;
  if (flood) {
    feeder = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 32; ++i) {
          // Maintenance work holds a worker without burning the CPU (real
          // sweeps are EPC-paging / IO bound): what the flood tests is the
          // cap keeping workers FREE, not core contention.
          server.front_end().post_background(JobClass::kMaintenance, [&] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            maintenance.fetch_add(1, std::memory_order_relaxed);
          });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  constexpr std::size_t kClients = 4;
  const std::size_t per_client = std::max<std::size_t>(1, workload.size() / kClients);
  std::vector<double> lat[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::uint32_t node =
            workload[(c * per_client + i) % workload.size()];
        Stopwatch t;
        server.query(node);
        lat[c].push_back(t.seconds() * 1e3);
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  if (feeder.joinable()) feeder.join();

  *maintenance_done = maintenance.load();
  std::vector<double> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.5);
  const Dataset ds = load_dataset(DatasetId::kCora, s.seed, scale);
  GV_LOG_INFO << "serve_throughput: " << ds.name << " n=" << ds.num_nodes();

  VaultTrainConfig cfg = vault_config(DatasetId::kCora, s);
  TrainedVault vault = train_vault(ds, cfg);

  const auto requests = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("GNNVAULT_SERVE_REQUESTS", 512)));
  Rng rng(s.seed ^ 0x5e7e5e7eull);
  std::vector<std::uint32_t> workload(requests);
  for (auto& v : workload) {
    v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
  }

  VaultDeployment dep(ds, std::move(vault), {});
  const auto outputs = dep.run_backbone(ds.features);

  Table table("Serving throughput vs. micro-batch size (batch=1 = unbatched)");
  table.set_header({"batch", "ecalls", "MB in", "modeled s", "wall s",
                    "req/s (modeled)", "speedup"});

  double baseline_rps = 0.0;
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    dep.reset_meter();
    Stopwatch wall;
    for (std::size_t off = 0; off < workload.size(); off += batch) {
      const std::size_t take = std::min(batch, workload.size() - off);
      dep.infer_labels_batched(
          outputs, std::span<const std::uint32_t>(workload.data() + off, take));
    }
    const double wall_s = wall.seconds();
    const CostMeter& m = dep.meter();
    const double modeled_s = m.total_seconds(dep.cost_model());
    const double rps = static_cast<double>(requests) / modeled_s;
    if (batch == 1) baseline_rps = rps;
    table.add_row({std::to_string(batch), std::to_string(m.ecalls),
                   Table::fmt(m.bytes_in / (1024.0 * 1024.0), 1),
                   Table::fmt(modeled_s, 4), Table::fmt(wall_s, 3),
                   Table::fmt(rps, 0), Table::fmt(rps / baseline_rps, 2) + "x"});
  }
  table.print();
  table.write_csv(out_dir() + "/serve_throughput.csv");

  // End-to-end server: queue + JobSystem workers + cache, same workload;
  // afterwards, count heap allocations across warm cache-hit lookups.
  double allocs_per_warm_lookup = 0.0;
  {
    TrainedVault vault2 = train_vault(ds, cfg);
    ServerConfig scfg;
    scfg.max_batch = 32;
    scfg.max_wait = std::chrono::microseconds(500);
    scfg.worker_threads = 2;
    VaultServer server(ds, std::move(vault2), {}, scfg);
    Stopwatch wall;
    SubmitBatch futs = server.submit_many(workload);
    server.flush();
    for (auto& f : futs) f.get();
    const auto snap = server.stats();
    GV_LOG_INFO << "VaultServer end-to-end (" << wall.seconds() << " s wall): "
                << snap.summary();

    // Zero-allocation claim: after warm-up, a cache-hit lookup never
    // touches the heap (inline-ready token, no promise, no queue slot).
    const std::uint32_t hot = workload[0];
    for (int i = 0; i < 256; ++i) server.query(hot);
    constexpr int kWarmLookups = 4096;
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < kWarmLookups; ++i) server.query(hot);
    const std::uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - before;
    allocs_per_warm_lookup = static_cast<double>(delta) / kWarmLookups;
  }

  // Tenant QoS: interactive p99 with the maintenance lanes saturated must
  // stay within a small factor of the maintenance-free p99 (the in-flight
  // cap keeps workers available; a FIFO pool would serialize behind the
  // flood).  Cache off so every query exercises the full flush path.
  Table qos("JobServe QoS: interactive latency vs. a maintenance flood");
  qos.set_header(
      {"scenario", "requests", "p50 ms", "p99 ms", "maintenance done"});
  double p99_clean = 0.0;
  double p99_mixed = 0.0;
  {
    TrainedVault vault3 = train_vault(ds, cfg);
    ServerConfig scfg;
    scfg.max_batch = 16;
    scfg.max_wait = std::chrono::microseconds(200);
    scfg.worker_threads = 4;
    scfg.cache_capacity = 0;
    // Latency-sensitive tenant setting: one maintenance job in flight at a
    // time, three workers always free for interactive flushes.
    scfg.max_maintenance_in_flight = 1;
    scfg.shutdown_drain = std::chrono::milliseconds(0);  // shed flood at exit
    VaultServer server(ds, std::move(vault3), {}, scfg);

    std::uint64_t maint_clean = 0;
    auto clean = run_interactive_scenario(server, workload,
                                          /*flood=*/false, &maint_clean);
    std::uint64_t maint_mixed = 0;
    auto mixed = run_interactive_scenario(server, workload,
                                          /*flood=*/true, &maint_mixed);
    p99_clean = percentile(clean, 0.99);
    p99_mixed = percentile(mixed, 0.99);
    qos.add_row({"clean", std::to_string(clean.size()),
                 Table::fmt(percentile(clean, 0.5), 3),
                 Table::fmt(p99_clean, 3), std::to_string(maint_clean)});
    qos.add_row({"mixed", std::to_string(mixed.size()),
                 Table::fmt(percentile(mixed, 0.5), 3),
                 Table::fmt(p99_mixed, 3), std::to_string(maint_mixed)});
  }
  qos.print();
  qos.write_csv(out_dir() + "/serve_qos.csv");

  const double ratio = p99_clean > 0.0 ? p99_mixed / p99_clean : 0.0;
  GV_LOG_INFO << "JobServe QoS: interactive p99 clean=" << p99_clean
              << " ms, mixed=" << p99_mixed << " ms (ratio " << ratio
              << "), allocs/warm lookup=" << allocs_per_warm_lookup;

  write_json(args, "serve_throughput", s, {&table, &qos},
             {{"interactive_p99_clean_ms", p99_clean},
              {"interactive_p99_mixed_ms", p99_mixed},
              {"interactive_p99_ratio", ratio},
              {"allocs_per_warm_lookup", allocs_per_warm_lookup}});
  return 0;
}
