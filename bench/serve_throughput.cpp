// Serving throughput: batched vs. unbatched ecalls.
//
// Sweeps the micro-batch size and reports modeled requests/sec (the SGX
// cost model charges ECALL transitions, MEE-encrypted copies, and paging as
// modeled seconds, so that is the time batching actually removes; wall time
// is reported alongside).  batch=1 is the unbatched baseline: every request
// pays a full embedding push plus one enclave transition.  A final row runs
// the end-to-end VaultServer (queue + ThreadPool workers + LRU cache).
//
// Honors the usual knobs (GNNVAULT_BENCH_FAST, GNNVAULT_SEED,
// GNNVAULT_SCALE) plus GNNVAULT_SERVE_REQUESTS (default 512).
#include "bench_common.hpp"

#include <numeric>

#include "common/rng.hpp"
#include "serve/vault_server.hpp"

using namespace gv;
using namespace gv::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const BenchSettings s = settings();
  const double scale = bench_fast_mode() ? s.scale : (s.scale < 1.0 ? s.scale : 0.5);
  const Dataset ds = load_dataset(DatasetId::kCora, s.seed, scale);
  GV_LOG_INFO << "serve_throughput: " << ds.name << " n=" << ds.num_nodes();

  VaultTrainConfig cfg = vault_config(DatasetId::kCora, s);
  TrainedVault vault = train_vault(ds, cfg);

  const auto requests = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("GNNVAULT_SERVE_REQUESTS", 512)));
  Rng rng(s.seed ^ 0x5e7e5e7eull);
  std::vector<std::uint32_t> workload(requests);
  for (auto& v : workload) {
    v = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
  }

  VaultDeployment dep(ds, std::move(vault), {});
  const auto outputs = dep.run_backbone(ds.features);

  Table table("Serving throughput vs. micro-batch size (batch=1 = unbatched)");
  table.set_header({"batch", "ecalls", "MB in", "modeled s", "wall s",
                    "req/s (modeled)", "speedup"});

  double baseline_rps = 0.0;
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    dep.reset_meter();
    Stopwatch wall;
    for (std::size_t off = 0; off < workload.size(); off += batch) {
      const std::size_t take = std::min(batch, workload.size() - off);
      dep.infer_labels_batched(
          outputs, std::span<const std::uint32_t>(workload.data() + off, take));
    }
    const double wall_s = wall.seconds();
    const CostMeter& m = dep.meter();
    const double modeled_s = m.total_seconds(dep.cost_model());
    const double rps = static_cast<double>(requests) / modeled_s;
    if (batch == 1) baseline_rps = rps;
    table.add_row({std::to_string(batch), std::to_string(m.ecalls),
                   Table::fmt(m.bytes_in / (1024.0 * 1024.0), 1),
                   Table::fmt(modeled_s, 4), Table::fmt(wall_s, 3),
                   Table::fmt(rps, 0), Table::fmt(rps / baseline_rps, 2) + "x"});
  }
  table.print();
  table.write_csv(out_dir() + "/serve_throughput.csv");

  // End-to-end server: queue + deadline + workers + cache, same workload.
  {
    TrainedVault vault2 = train_vault(ds, cfg);
    ServerConfig scfg;
    scfg.max_batch = 32;
    scfg.max_wait = std::chrono::microseconds(500);
    scfg.worker_threads = 2;
    VaultServer server(ds, std::move(vault2), {}, scfg);
    Stopwatch wall;
    auto futs = server.submit_many(workload);
    server.flush();
    for (auto& f : futs) f.get();
    const auto snap = server.stats();
    GV_LOG_INFO << "VaultServer end-to-end (" << wall.seconds() << " s wall): "
                << snap.summary();
  }
  write_json(args, "serve_throughput", s, {&table});
  return 0;
}
