// Developer tool: checks that each dataset twin reproduces the accuracy
// regime the paper's experiments depend on:
//     p_mlp (features only)  <  p_org (real graph),
//     p_bb  (KNN substitute) <  p_org,
//     p_rec (rectified)      ~  p_org.
// Usage: calibrate [scale] [epochs] [dataset-name]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "core/pipeline.hpp"
#include "data/catalog.hpp"
#include "graph/substitute.hpp"

using namespace gv;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.4;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::string only = argc > 3 ? argv[3] : "";
  const double signal_override = argc > 4 ? std::atof(argv[4]) : -1.0;
  const double confusion_override = argc > 5 ? std::atof(argv[5]) : -1.0;
  const double common_override = argc > 6 ? std::atof(argv[6]) : -1.0;
  const double homophily_override = argc > 7 ? std::atof(argv[7]) : -1.0;
  const int subtopics_override = argc > 8 ? std::atoi(argv[8]) : -1;
  const double subfrac_override = argc > 9 ? std::atof(argv[9]) : -1.0;

  std::printf("%-10s %6s %6s %6s %6s %6s | %6s %6s\n", "dataset", "p_org", "p_mlp",
              "p_bb", "p_rec", "dp", "hom", "knn_h");
  for (const auto id : all_dataset_ids()) {
    const std::string name = dataset_name(id);
    if (!only.empty() && name != only) continue;
    SyntheticSpec spec = dataset_spec(id);
    if (scale < 1.0) spec = scaled_spec(spec, scale);
    if (signal_override >= 0.0) spec.feature_signal = signal_override;
    if (confusion_override >= 0.0) spec.class_confusion = confusion_override;
    if (common_override >= 0.0) spec.common_token_prob = common_override;
    if (homophily_override >= 0.0) spec.homophily = homophily_override;
    if (subtopics_override >= 0) {
      spec.subtopics_per_class = static_cast<std::uint32_t>(subtopics_override);
    }
    if (subfrac_override >= 0.0) spec.subtopic_fraction = subfrac_override;
    const Dataset ds = generate_synthetic(
        spec, 42 * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(id) + 1);

    VaultTrainConfig cfg;
    cfg.spec = model_spec_for_dataset(id);
    cfg.backbone_train.epochs = epochs;
    cfg.rectifier_train.epochs = epochs;

    double porg = 0.0;
    train_original_gnn(ds, cfg.spec, cfg.backbone_train, cfg.seed, &porg);

    auto mlp_cfg = cfg;
    mlp_cfg.backbone = BackboneKind::kDnn;
    const TrainedVault mlp = train_vault(ds, mlp_cfg);

    const TrainedVault knn = train_vault(ds, cfg);
    const Graph sub = build_knn_graph(ds.features, 2);

    std::printf("%-10s %6.1f %6.1f %6.1f %6.1f %6.1f | %6.2f %6.2f\n", name.c_str(),
                porg * 100, mlp.backbone_test_accuracy * 100,
                knn.backbone_test_accuracy * 100, knn.rectifier_test_accuracy * 100,
                (knn.rectifier_test_accuracy - knn.backbone_test_accuracy) * 100,
                ds.graph.edge_homophily(ds.labels), sub.edge_homophily(ds.labels));
  }
  return 0;
}
