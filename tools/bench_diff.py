#!/usr/bin/env python3
"""Compare bench JSON artifacts against checked-in baselines.

CI's bench-smoke step writes one BENCH_<name>.json per bench (see
.github/workflows/ci.yml).  Each baseline file under bench/baselines/
declares which scalars in that artifact are stable enough to gate on, the
direction a regression moves them, and how much slack fast-mode noise is
allowed before the smoke job fails:

    {
      "artifact": "BENCH_obs_overhead.json",
      "bench": "obs_overhead",
      "note": "how these numbers were produced",
      "checks": [
        {"path": ["modeled_rps_on"], "op": "min", "value": 1234.5,
         "rel_slack": 0.5},
        {"path": ["tables", 0, "rows", 1, "modeled req/s"], ...}
      ]
    }

`path` is a list of keys/indices resolved against the artifact document, so
both top-level scalars and individual table cells can be pinned.  Ops:

    min   regression = value dropping:  actual >= value * (1 - rel_slack)
    max   regression = value rising:    actual <= value * (1 + rel_slack)
    eq    bit-deterministic quantities: actual == value exactly

Only MODELED quantities (cost-model seconds, counters, exactness flags)
belong here; wall-clock milliseconds vary by runner and would flake.  Wide
rel_slack is deliberate: this gate exists to catch gross regressions (a 2x
throughput drop, a broken exactness invariant), not 5% drift.

Usage:
    tools/bench_diff.py --results build [--baselines bench/baselines]
    tools/bench_diff.py --results build --update   # rebake baseline values

--update resolves every check's path against the fresh artifact and
rewrites its "value" in place (ops and slack are kept), so regenerating
baselines after an intentional perf change is one local fast-mode bench
run plus this command.
"""

import argparse
import json
import os
import sys


def resolve(doc, path):
    """Walk a ["tables", 0, "rows", 1, "cell name"] path through the doc."""
    cur = doc
    for seg in path:
        if isinstance(seg, int):
            if not isinstance(cur, list) or seg >= len(cur):
                raise KeyError(f"index {seg} out of range")
            cur = cur[seg]
        else:
            if not isinstance(cur, dict) or seg not in cur:
                raise KeyError(f"key {seg!r} missing")
            cur = cur[seg]
    return cur


def check_one(doc, check):
    path, op = check["path"], check["op"]
    base = check["value"]
    slack = check.get("rel_slack", 0.0)
    actual = resolve(doc, path)
    if not isinstance(actual, (int, float)) or isinstance(actual, bool):
        return f"{path}: not numeric (got {actual!r})"
    if op == "min":
        bound = base * (1.0 - slack)
        if actual < bound:
            return (f"{path}: {actual} fell below {bound:.6g} "
                    f"(baseline {base}, slack {slack:.0%})")
    elif op == "max":
        bound = base * (1.0 + slack)
        if actual > bound:
            return (f"{path}: {actual} rose above {bound:.6g} "
                    f"(baseline {base}, slack {slack:.0%})")
    elif op == "eq":
        if actual != base:
            return f"{path}: {actual} != baseline {base} (deterministic)"
    else:
        return f"{path}: unknown op {op!r}"
    return None


def run(baselines_dir, results_dir, update):
    baseline_files = sorted(
        f for f in os.listdir(baselines_dir) if f.endswith(".json"))
    if not baseline_files:
        print(f"error: no baselines under {baselines_dir}", file=sys.stderr)
        return 1
    failures = []
    for fname in baseline_files:
        bpath = os.path.join(baselines_dir, fname)
        with open(bpath) as f:
            baseline = json.load(f)
        artifact = os.path.join(results_dir, baseline["artifact"])
        if not os.path.exists(artifact):
            failures.append(f"{fname}: artifact {artifact} missing")
            continue
        with open(artifact) as f:
            doc = json.load(f)
        if doc.get("bench") != baseline["bench"]:
            failures.append(f"{fname}: artifact bench {doc.get('bench')!r} "
                            f"!= baseline bench {baseline['bench']!r}")
            continue
        if update:
            for check in baseline["checks"]:
                check["value"] = resolve(doc, check["path"])
            with open(bpath, "w") as f:
                json.dump(baseline, f, indent=2)
                f.write("\n")
            print(f"{fname}: rebaked {len(baseline['checks'])} values")
            continue
        bad = [msg for msg in (check_one(doc, c) for c in baseline["checks"])
               if msg]
        status = "FAIL" if bad else "ok"
        print(f"{fname}: {len(baseline['checks'])} checks {status}")
        for msg in bad:
            failures.append(f"{fname}: {msg}")
    for msg in failures:
        print(f"::error::bench regression: {msg}")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines")
    ap.add_argument("--results", required=True,
                    help="directory holding BENCH_*.json artifacts")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baseline values from the fresh artifacts")
    args = ap.parse_args()
    return run(args.baselines, args.results, args.update)


if __name__ == "__main__":
    sys.exit(main())
