"""The five VaultLint checks, implemented over the token stream.

This is the fallback frontend's analysis core (and the engine CI pins):
deterministic, zero-dependency, and honest about being a lexer-level
approximation — every heuristic it relies on is a repo-wide convention
(member names end in ``_``, guards are std lock adapters or gv::MutexLock,
annotations sit adjacent to the declared name).  The libclang frontend
(clang_frontend.py) re-derives the same facts from the AST when available.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from . import CHECKS
from .lexer import ID, NUM, PUNCT, STR, Token, lex, match_brace, match_paren, string_value
from .model import FileReport, Finding, Suppression

GUARD_NAMES = {"lock_guard", "unique_lock", "shared_lock", "scoped_lock", "MutexLock"}
LOG_SINKS = {"GV_LOG_INFO", "GV_LOG_WARN", "GV_LOG_ERROR", "GV_LOG_DEBUG"}
# Method-call sinks: `.name(` / `->name(` hands data to untrusted telemetry
# or an unattested channel.
METHOD_SINKS = {
    "arg": "TraceSpan argument",
    "counter": "MetricsRegistry name/labels",
    "gauge": "MetricsRegistry name/labels",
    "histogram": "MetricsRegistry name/labels",
    "trip": "FlightRecorder detail",
    "emit": "TraceRecorder event",
    "push": "raw (unattested) channel push",
}
# std:: members that make an ecall-ABI struct non-trivially-copyable or give
# it host-heap indirection.
BANNED_ABI_TYPES = {
    "string", "vector", "unique_ptr", "shared_ptr", "weak_ptr", "function",
    "map", "unordered_map", "set", "unordered_set", "list", "deque",
    "mutex", "condition_variable", "future", "promise", "thread", "any",
}


@dataclass
class FileFacts:
    path: str
    tokens: list[Token]
    secret_names: set[str] = field(default_factory=set)   # fields/vars
    secret_types: set[str] = field(default_factory=set)
    secret_functions: set[str] = field(default_factory=set)
    boundary_functions: set[str] = field(default_factory=set)
    member_ranks: dict[str, int] = field(default_factory=dict)


def _prev(tokens: list[Token], i: int) -> Token | None:
    return tokens[i - 1] if i > 0 else None


def _nxt(tokens: list[Token], i: int) -> Token | None:
    return tokens[i + 1] if i + 1 < len(tokens) else None


class Analysis:
    """Two-phase run: collect repo-wide facts, then check each file."""

    def __init__(self, files: list[str], rank_table_file: str | None = None):
        self.files = files
        self.facts: dict[str, FileFacts] = {}
        self.rank_table: dict[str, int] = {}
        self.reports: list[FileReport] = []
        self._all_secret_names: set[str] = set()
        self._all_secret_types: set[str] = set()
        self._all_secret_functions: set[str] = set()
        self._rank_table_file = rank_table_file

    # ---------------------------------------------------------------- phase 1
    def collect(self) -> None:
        paths = list(self.files)
        if self._rank_table_file and self._rank_table_file not in paths:
            paths.append(self._rank_table_file)
        for path in paths:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    text = f.read()
            except OSError:
                continue
            ff = FileFacts(path=path, tokens=lex(text))
            self._collect_rank_table(ff)
            self.facts[path] = ff
        # Second pass: annotations resolve GV_LOCK_RANK constants against the
        # now-complete rank table, wherever in the file set it was declared.
        for ff in self.facts.values():
            self._collect_annotations(ff)
        for ff in self.facts.values():
            self._all_secret_names |= ff.secret_names
            self._all_secret_types |= ff.secret_types
            self._all_secret_functions |= ff.secret_functions

    def _collect_rank_table(self, ff: FileFacts) -> None:
        # inline constexpr int kName = N;
        toks = ff.tokens
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != "constexpr":
                continue
            if i + 4 < len(toks) and toks[i + 1].value == "int" \
                    and toks[i + 2].kind == ID and toks[i + 3].value == "=" \
                    and toks[i + 4].kind == NUM:
                try:
                    self.rank_table[toks[i + 2].value] = int(toks[i + 4].value)
                except ValueError:
                    pass

    def _collect_annotations(self, ff: FileFacts) -> None:
        toks = ff.tokens
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            if t.value == "GV_SECRET":
                self._classify_secret(ff, i)
            elif t.value == "GV_BOUNDARY_OK":
                name = self._enclosing_function_name(toks, i)
                if name:
                    ff.boundary_functions.add(name)
            elif t.value == "GV_LOCK_RANK":
                prev = _prev(toks, i)
                if prev is not None and prev.kind == ID:
                    rank = self._rank_of_args(toks, i)
                    if rank is not None:
                        ff.member_ranks[prev.value] = rank

    def _rank_of_args(self, toks: list[Token], macro_idx: int) -> int | None:
        """Rank value from ``MACRO(...)`` args: last id constant or number."""
        j = macro_idx + 1
        if j >= len(toks) or toks[j].value != "(":
            return None
        close = match_paren(toks, j)
        rank = None
        for k in range(j + 1, close):
            if toks[k].kind == ID and toks[k].value in self.rank_table:
                rank = self.rank_table[toks[k].value]
            elif toks[k].kind == NUM and rank is None:
                try:
                    rank = int(toks[k].value)
                except ValueError:
                    pass
        return rank

    def _classify_secret(self, ff: FileFacts, i: int) -> None:
        toks = ff.tokens
        prev = _prev(toks, i)
        nxt = _nxt(toks, i)
        # struct/class GV_SECRET Name  -> secret type
        if prev is not None and prev.value in ("struct", "class") \
                and nxt is not None and nxt.kind == ID:
            ff.secret_types.add(nxt.value)
            return
        # using Alias GV_SECRET = ...  -> secret type
        if prev is not None and prev.kind == ID and i >= 2 \
                and toks[i - 2].value == "using":
            ff.secret_types.add(prev.value)
            return
        # ...) const GV_SECRET  /  ...) GV_SECRET  -> secret-returning function
        back = i - 1
        if back >= 0 and toks[back].value == "const":
            back -= 1
        if back >= 0 and toks[back].value == ")":
            name = self._enclosing_function_name(toks, i)
            if name:
                ff.secret_functions.add(name)
            return
        # Leading on a declaration: GV_SECRET <type...> name [= / { / ;]
        j = i + 1
        depth_angle = 0
        last_id = None
        while j < len(toks):
            t = toks[j]
            if t.kind == PUNCT:
                if t.value == "<":
                    depth_angle += 1
                elif t.value == ">":
                    depth_angle = max(0, depth_angle - 1)
                elif t.value == ">>":
                    # nested template close; the lexer emits the shift token
                    depth_angle = max(0, depth_angle - 2)
                elif t.value == ";":
                    break  # declarations never carry ';' inside template args
                elif depth_angle == 0 and t.value in ("=", "{", "("):
                    break
            elif t.kind == ID:
                last_id = t.value
            j += 1
        if last_id:
            ff.secret_names.add(last_id)

    @staticmethod
    def _enclosing_function_name(toks: list[Token], i: int) -> str | None:
        """Name of the function whose parameter-list ``)`` precedes token i."""
        back = i - 1
        while back >= 0 and toks[back].value in ("const", "noexcept", "override"):
            back -= 1
        if back < 0 or toks[back].value != ")":
            return None
        depth = 0
        for k in range(back, -1, -1):
            v = toks[k].value
            if v == ")":
                depth += 1
            elif v == "(":
                depth -= 1
                if depth == 0:
                    return toks[k - 1].value if k > 0 and toks[k - 1].kind == ID else None
        return None

    # ---------------------------------------------------------------- phase 2
    def run(self) -> list[FileReport]:
        self.collect()
        for path in self.files:
            ff = self.facts.get(path)
            if ff is None:
                continue
            report = FileReport(path=path)
            self._check_suppressions(ff, report)
            self._check_secret_egress(ff, report)
            self._check_ecall_abi(ff, report)
            self._check_lock_rank(ff, report)
            self.reports.append(report)
        self._check_channel_kinds()
        for r in self.reports:
            r.apply_suppressions()
        return self.reports

    # -- suppression hygiene --------------------------------------------------
    def _check_suppressions(self, ff: FileFacts, report: FileReport) -> None:
        toks = ff.tokens
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != "GV_LINT_ALLOW":
                continue
            j = i + 1
            if j >= len(toks) or toks[j].value != "(":
                continue
            close = match_paren(toks, j)
            strs = [tok for tok in toks[j + 1 : close] if tok.kind == STR]
            check = string_value(strs[0]) if strs else ""
            reason = string_value(strs[1]) if len(strs) > 1 else ""
            last_line = toks[close].line if close < len(toks) else t.line
            if check not in CHECKS:
                report.findings.append(Finding(
                    "suppression", ff.path, t.line,
                    f'GV_LINT_ALLOW names unknown check "{check}" '
                    f"(known: {', '.join(CHECKS)})"))
                continue
            if not reason.strip():
                report.findings.append(Finding(
                    "suppression", ff.path, t.line,
                    f'GV_LINT_ALLOW("{check}", ...) has an empty reason'))
                continue
            report.suppressions.append(
                Suppression(check=check, reason=reason, line=t.line,
                            last_line=last_line))

    # -- secret egress --------------------------------------------------------
    def _is_secret_use(self, toks: list[Token], k: int, local_secrets: set[str]) -> str | None:
        t = toks[k]
        if t.kind != ID:
            return None
        prev = _prev(toks, k)
        accessed = prev is not None and prev.value in (".", "->")
        nxt = _nxt(toks, k)
        calls = nxt is not None and nxt.value == "("
        if t.value in self._all_secret_functions and calls:
            return f"call to secret-returning function {t.value}()"
        if t.value in self._all_secret_names:
            # Member access (x.labels) always counts; a bare identifier only
            # when it follows the member `_` suffix convention or is a local
            # declared with a secret type in this file — plain parameters that
            # happen to share a name (e.g. `labels`) do not.
            if accessed or t.value.endswith("_") or t.value in local_secrets:
                return f"secret value {t.value}"
        if t.value in local_secrets and not accessed:
            return f"value {t.value} of secret type"
        return None

    def _local_secret_vars(self, ff: FileFacts) -> set[str]:
        """Vars declared with a GV_SECRET-marked type anywhere in this file."""
        out: set[str] = set()
        toks = ff.tokens
        for i, t in enumerate(toks):
            if t.kind == ID and t.value in self._all_secret_types:
                nxt = _nxt(toks, i)
                if nxt is not None and nxt.kind == ID:
                    after = _nxt(toks, i + 1)
                    if after is not None and after.value in (";", "=", "{", ",", ")"):
                        out.add(nxt.value)
        return out

    def _check_secret_egress(self, ff: FileFacts, report: FileReport) -> None:
        toks = ff.tokens
        local_secrets = self._local_secret_vars(ff)
        i = 0
        while i < len(toks):
            t = toks[i]
            sink = None
            rng = None
            if t.kind == ID and t.value in LOG_SINKS:
                j = i + 1
                while j < len(toks) and toks[j].value != ";":
                    j += 1
                sink, rng = f"{t.value} stream", (i + 1, j)
            elif t.kind == ID and t.value in METHOD_SINKS:
                prev = _prev(toks, i)
                nxt = _nxt(toks, i)
                if prev is not None and prev.value in (".", "->") \
                        and nxt is not None and nxt.value == "(":
                    close = match_paren(toks, i + 1)
                    sink, rng = METHOD_SINKS[t.value], (i + 2, close)
            elif t.kind == ID and t.value == "TraceSpan":
                nxt = _nxt(toks, i)
                k = i + 1
                if nxt is not None and nxt.kind == ID:
                    k = i + 2
                if k < len(toks) and toks[k].value == "(":
                    close = match_paren(toks, k)
                    sink, rng = "TraceSpan argument", (k + 1, close)
            if sink is not None and rng is not None:
                for k in range(rng[0], rng[1]):
                    what = self._is_secret_use(toks, k, local_secrets)
                    if what:
                        report.findings.append(Finding(
                            "secret-egress", ff.path, toks[k].line,
                            f"{what} reaches untrusted sink ({sink}); route it "
                            "through a GV_BOUNDARY_OK seal/attested-channel API "
                            "or suppress with a justification"))
                        break  # one finding per sink expression
                i = rng[1]
                continue
            i += 1

    # -- ecall ABI ------------------------------------------------------------
    def _check_ecall_abi(self, ff: FileFacts, report: FileReport) -> None:
        toks = ff.tokens
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != "GV_ECALL_ABI":
                continue
            prev = _prev(toks, i)
            nxt = _nxt(toks, i)
            if prev is None or prev.value not in ("struct", "class") \
                    or nxt is None or nxt.kind != ID:
                continue
            name = nxt.value
            j = i + 2
            while j < len(toks) and toks[j].value not in ("{", ";"):
                j += 1
            if j >= len(toks) or toks[j].value != "{":
                continue
            close = match_brace(toks, j)
            self._check_abi_body(ff, report, name, toks, j + 1, close)

    def _check_abi_body(self, ff: FileFacts, report: FileReport, name: str,
                        toks: list[Token], lo: int, hi: int) -> None:
        # Walk member declarations (split on ';' at depth 0 within the body);
        # methods (a '(' before the first '=' or ';') are not marshaled and
        # are skipped.
        start = lo
        depth = 0
        k = lo
        while k < hi:
            v = toks[k].value
            if v in ("{", "("):
                depth += 1
            elif v in ("}", ")"):
                depth -= 1
            elif v == ";" and depth == 0:
                self._check_abi_member(ff, report, name, toks, start, k)
                start = k + 1
            k += 1

    def _check_abi_member(self, ff: FileFacts, report: FileReport, name: str,
                          toks: list[Token], lo: int, hi: int) -> None:
        decl = toks[lo:hi]
        if not decl:
            return
        # Method, using-alias, or nested type: not a marshaled field.
        first_stop = next((i for i, t in enumerate(decl)
                           if t.value in ("(", "=", "{")), len(decl))
        if first_stop < len(decl) and decl[first_stop].value == "(":
            return
        if decl[0].value in ("using", "typedef", "struct", "class", "enum",
                             "static", "friend"):
            return
        line = decl[0].line
        for i, t in enumerate(decl):
            if t.kind == PUNCT and t.value in ("*", "&"):
                report.findings.append(Finding(
                    "ecall-abi", ff.path, t.line,
                    f"GV_ECALL_ABI struct {name} has a pointer/reference "
                    "member — host addresses must not cross the enclave ABI"))
                return
            if t.kind == ID and t.value in BANNED_ABI_TYPES and i >= 2 \
                    and decl[i - 1].value == "::" and decl[i - 2].value == "std":
                report.findings.append(Finding(
                    "ecall-abi", ff.path, line,
                    f"GV_ECALL_ABI struct {name} has a std::{t.value} member — "
                    "not trivially copyable, cannot be EDL-marshaled by value"))
                return

    # -- lock rank ------------------------------------------------------------
    def _rank_for_mutex(self, ff: FileFacts, mutex: str) -> int | None:
        if mutex in ff.member_ranks:
            return ff.member_ranks[mutex]
        stem = os.path.splitext(ff.path)[0]
        for ext in (".hpp", ".h"):
            other = self.facts.get(stem + ext)
            if other and mutex in other.member_ranks:
                return other.member_ranks[mutex]
        hits = {f.member_ranks[mutex] for f in self.facts.values()
                if mutex in f.member_ranks}
        return hits.pop() if len(hits) == 1 else None

    def _check_lock_rank(self, ff: FileFacts, report: FileReport) -> None:
        toks = ff.tokens
        depth = 0
        held: list[tuple[int, int, str]] = []  # (depth_at_push, rank, what)
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == PUNCT:
                if t.value == "{":
                    depth += 1
                elif t.value == "}":
                    depth -= 1
                    while held and held[-1][0] > depth:
                        held.pop()
                i += 1
                continue
            rank = None
            what = None
            if t.kind == ID and t.value == "GV_RANK_SCOPE":
                rank = self._rank_of_args(toks, i)
                what = "GV_RANK_SCOPE"
                if rank is None:
                    i += 1
                    continue
                i = match_paren(toks, i + 1) + 1
            elif t.kind == ID and t.value in GUARD_NAMES:
                # guard<...> name(expr) / MutexLock name(expr)
                j = i + 1
                angle = 0
                while j < len(toks):
                    v = toks[j].value
                    if v == "<":
                        angle += 1
                    elif v == ">":
                        angle = max(0, angle - 1)
                    elif v == "(" and angle == 0:
                        break
                    elif v in (";", "{", "}") and angle == 0:
                        break
                    j += 1
                if j >= len(toks) or toks[j].value != "(":
                    i += 1
                    continue
                close = match_paren(toks, j)
                args = [a for a in toks[j + 1 : close] if a.kind == ID]
                if not args:
                    i = close + 1
                    continue
                mutex = args[-1].value
                rank = self._rank_for_mutex(ff, mutex)
                what = f"{t.value}({mutex})"
                i = close + 1
                if rank is None:
                    continue
            else:
                i += 1
                continue
            if held and rank < held[-1][1]:
                report.findings.append(Finding(
                    "lock-rank", ff.path, t.line,
                    f"{what} acquires rank {rank} while rank {held[-1][1]} "
                    f"({held[-1][2]}) is held — lock-order inversion against "
                    "the gv::lockrank table"))
                # Do NOT push the violating (lower) rank: the held maximum
                # stays authoritative, so later acquisitions below it are
                # still flagged instead of hiding behind the first bug.
            else:
                held.append((depth, rank, what))

    # -- channel kinds (cross-file) -------------------------------------------
    def _check_channel_kinds(self) -> None:
        enums: list[tuple[FileFacts, int, list[str]]] = []  # (file, line, names)
        for ff in self.facts.values():
            toks = ff.tokens
            for i, t in enumerate(toks):
                if t.kind == ID and t.value == "PayloadKind" and i >= 2 \
                        and toks[i - 1].value == "class" \
                        and toks[i - 2].value == "enum":
                    j = i + 1
                    while j < len(toks) and toks[j].value not in ("{", ";"):
                        j += 1
                    if j >= len(toks) or toks[j].value != "{":
                        continue
                    close = match_brace(toks, j)
                    names = []
                    k = j + 1
                    while k < close:
                        if toks[k].kind == ID:
                            names.append(toks[k].value)
                            # skip to next ',' at depth 0
                            while k < close and toks[k].value != ",":
                                k += 1
                        k += 1
                    enums.append((ff, t.line, names))
        if not enums:
            return
        sites = {
            "kKindPolicies": "a pad-policy row in kKindPolicies",
            "kind_name": "a kind_name() switch case",
            "kind_bytes": "a kind_bytes() byte-audit case",
        }
        for enum_ff, enum_line, names in enums:
            # A PayloadKind enum's machinery may live in the same file or in
            # the paired .cpp/.hpp; search the whole analyzed set.
            for site, describe in sites.items():
                covered: set[str] = set()
                found_site = False
                for ff in self.facts.values():
                    rng = self._site_range(ff.tokens, site)
                    if rng is None:
                        continue
                    found_site = True
                    covered |= self._kinds_in_range(ff.tokens, *rng)
                report = self._report_for(enum_ff.path)
                if not found_site:
                    report.findings.append(Finding(
                        "channel-kind", enum_ff.path, enum_line,
                        f"PayloadKind has no {site} definition in the analyzed "
                        "set — every enumerator needs " + describe))
                    continue
                for name in names:
                    if name not in covered:
                        report.findings.append(Finding(
                            "channel-kind", enum_ff.path, enum_line,
                            f"PayloadKind::{name} is missing {describe}"))

    def _report_for(self, path: str) -> FileReport:
        for r in self.reports:
            if r.path == path:
                return r
        r = FileReport(path=path)
        self.reports.append(r)
        return r

    @staticmethod
    def _site_range(toks: list[Token], site: str) -> tuple[int, int] | None:
        for i, t in enumerate(toks):
            if t.kind != ID or t.value != site:
                continue
            if site == "kKindPolicies":
                # ... kKindPolicies{{ ... }};  (skip mere uses: need a '{'
                # before the next ';')
                j = i + 1
                while j < len(toks) and toks[j].value not in ("{", ";"):
                    j += 1
                if j < len(toks) and toks[j].value == "{":
                    return (j, match_brace(toks, j))
            else:
                # function DEFINITION: name(...) [const...] {body}
                j = i + 1
                if j < len(toks) and toks[j].value == "(":
                    j = match_paren(toks, j) + 1
                    while j < len(toks) and toks[j].value in ("const", "noexcept"):
                        j += 1
                    if j < len(toks) and toks[j].value == "{":
                        return (j, match_brace(toks, j))
        return None

    @staticmethod
    def _kinds_in_range(toks: list[Token], lo: int, hi: int) -> set[str]:
        out: set[str] = set()
        for k in range(lo, hi):
            if toks[k].kind == ID and toks[k].value == "PayloadKind" \
                    and k + 2 < hi and toks[k + 1].value == "::":
                out.add(toks[k + 2].value)
        return out
