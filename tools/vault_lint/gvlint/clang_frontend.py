"""Optional libclang frontend.

When python-clang (clang.cindex) and a libclang shared object are present,
this frontend re-derives the annotation facts from the AST — exact types
instead of token heuristics — for the two checks that benefit most from
semantic information: ecall-abi (std::is_trivially_copyable on the real
record layout) and secret-egress (declaration-resolved references instead
of name matching).  channel-kind, lock-rank, and suppression hygiene are
structural/textual properties and always run on the token engine.

The container this repo builds in ships GCC only, so the CI gate pins
``--frontend fallback``; this module exists for developer machines with
LLVM installed and degrades to an explicit error (never a silent pass)
when asked for and unavailable.
"""

from __future__ import annotations

from .model import FileReport, Finding

try:  # pragma: no cover - exercised only where libclang exists
    import clang.cindex as cindex

    try:
        cindex.Index.create()
        _AVAILABLE = True
    except Exception:
        _AVAILABLE = False
except ImportError:  # pragma: no cover
    cindex = None
    _AVAILABLE = False


def available() -> bool:
    return _AVAILABLE


def _annotations(cursor) -> set[str]:
    return {c.displayname for c in cursor.get_children()
            if c.kind == cindex.CursorKind.ANNOTATE_ATTR}


SINK_METHODS = {"arg", "counter", "gauge", "histogram", "trip", "emit", "push"}


def analyze(files: list[str], compile_args: dict[str, list[str]]) -> list[FileReport]:
    """AST passes for ecall-abi + secret-egress; one report per file."""
    assert _AVAILABLE
    index = cindex.Index.create()
    reports = []
    for path in files:
        args = compile_args.get(path, ["-std=c++20"])
        report = FileReport(path=path)
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError:
            reports.append(report)
            continue
        secret_decls: set = set()

        def walk(cursor):
            kind = cursor.kind
            ann = _annotations(cursor)
            if "gv::secret" in ann:
                secret_decls.add(cursor.get_usr())
            if kind in (cindex.CursorKind.STRUCT_DECL, cindex.CursorKind.CLASS_DECL) \
                    and "gv::ecall_abi" in ann and cursor.is_definition():
                _check_abi_record(cursor, report)
            if kind == cindex.CursorKind.CALL_EXPR \
                    and cursor.spelling in SINK_METHODS:
                _check_sink_call(cursor, secret_decls, report)
            for child in cursor.get_children():
                if child.location.file and child.location.file.name == path:
                    walk(child)

        walk(tu.cursor)
        reports.append(report)
    return reports


def _check_abi_record(cursor, report: FileReport) -> None:
    record_type = cursor.type
    if not record_type.is_pod():
        # is_pod is stricter than trivially-copyable but is what cindex
        # exposes portably; a non-POD hit is refined per field below.
        pass
    for field in cursor.type.get_fields():
        ft = field.type.get_canonical()
        if ft.kind in (cindex.TypeKind.POINTER, cindex.TypeKind.LVALUEREFERENCE,
                       cindex.TypeKind.RVALUEREFERENCE):
            report.findings.append(Finding(
                "ecall-abi", report.path, field.location.line,
                f"GV_ECALL_ABI struct {cursor.spelling} field {field.spelling} "
                "is a pointer/reference — host addresses must not cross the "
                "enclave ABI"))
        elif ft.kind == cindex.TypeKind.RECORD and not ft.is_pod():
            report.findings.append(Finding(
                "ecall-abi", report.path, field.location.line,
                f"GV_ECALL_ABI struct {cursor.spelling} field {field.spelling} "
                f"({ft.spelling}) is not trivially copyable"))


def _check_sink_call(cursor, secret_decls: set, report: FileReport) -> None:
    for arg in cursor.get_arguments():
        for node in arg.walk_preorder():
            ref = node.referenced
            if ref is not None and ref.get_usr() in secret_decls:
                report.findings.append(Finding(
                    "secret-egress", report.path, node.location.line,
                    f"secret {ref.spelling} reaches untrusted sink "
                    f"{cursor.spelling}()"))
                return
