"""Finding model + suppression bookkeeping shared by both frontends."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    suppressed: bool = False
    suppress_reason: str = ""

    def to_dict(self) -> dict:
        d = {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }
        if self.suppressed:
            d["suppressed"] = True
            d["reason"] = self.suppress_reason
        return d


@dataclass
class Suppression:
    check: str
    reason: str
    line: int        # line of the GV_LINT_ALLOW token
    last_line: int   # last line of the macro call; applies through last_line+1
    used: bool = False

    def covers(self, check: str, line: int) -> bool:
        return check == self.check and self.line <= line <= self.last_line + 1


@dataclass
class FileReport:
    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    def apply_suppressions(self) -> None:
        for f in self.findings:
            for s in self.suppressions:
                if s.covers(f.check, f.line):
                    f.suppressed = True
                    f.suppress_reason = s.reason
                    s.used = True
                    break
