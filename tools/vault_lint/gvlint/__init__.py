"""VaultLint: enclave-boundary confidentiality + lock-discipline linter.

Reads the GV_* annotation vocabulary (src/common/annotations.hpp) off the
GNNVault sources and enforces five checks; see docs/static_analysis.md.
"""

CHECKS = (
    "secret-egress",
    "channel-kind",
    "ecall-abi",
    "lock-rank",
    "suppression",
)
