"""Minimal C++ lexer for the VaultLint fallback frontend.

Produces a flat token stream with line numbers.  Comments are dropped,
string/char literals are kept as single tokens (the suppression check needs
their contents), and preprocessor directives are dropped entirely — the
annotation macros the checks consume all appear in ordinary code, and
skipping directives keeps `#include <vector>` from reading as a comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

ID = "id"
NUM = "num"
STR = "str"
CHR = "chr"
PUNCT = "punct"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXuUlLfF+-]*)")
# Longest-first so ``->`` never lexes as ``-`` ``>`` and ``::`` stays whole.
_PUNCT_RE = re.compile(
    r"<<=|>>=|\.\.\.|->\*|<=>|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-="
    r"|\*=|/=|%=|&=|\|=|\^=|[-+*/%^&|~!<>=?:;,.(){}\[\]#]"
)


def lex(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n, line = 0, len(text), 1
    in_directive = False
    while i < n:
        c = text[i]
        if c == "\n":
            if in_directive and (not tokens or text[i - 1] != "\\"):
                in_directive = False
            if in_directive and text[i - 1] == "\\":
                pass  # continued directive line
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                break
            line += text.count("\n", i, j + 2)
            i = j + 2
            continue
        if c == "#" and (not tokens or tokens[-1].line != line):
            # Preprocessor directive: skip to end of (possibly continued) line.
            in_directive = True
            i += 1
            continue
        if in_directive:
            i += 1
            continue
        if c == '"':
            # Raw strings: R"delim( ... )delim"
            if tokens and tokens[-1].kind == ID and tokens[-1].value.endswith("R") \
                    and tokens[-1].line == line:
                m = re.match(r'"([^ ()\\\n]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    if j >= 0:
                        body = text[i : j + len(close)]
                        line_at = line
                        line += body.count("\n")
                        tokens.append(Token(STR, body, line_at))
                        i = j + len(close)
                        continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token(STR, text[i : j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token(CHR, text[i : j + 1], line))
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token(ID, m.group(0), line))
            i = m.end()
            continue
        if c.isdigit():
            m = _NUM_RE.match(text, i)
            tokens.append(Token(NUM, m.group(0), line))
            i = m.end()
            continue
        m = _PUNCT_RE.match(text, i)
        if m:
            tokens.append(Token(PUNCT, m.group(0), line))
            i = m.end()
            continue
        i += 1  # unknown byte: skip
    return tokens


def string_value(tok: Token) -> str:
    """Contents of a string-literal token (no unescaping beyond quotes)."""
    v = tok.value
    if v.startswith('"') and v.endswith('"'):
        return v[1:-1]
    return v


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the ``)`` matching ``tokens[open_idx] == '('`` (or len)."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind == PUNCT:
            if t.value == "(":
                depth += 1
            elif t.value == ")":
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens)


def match_brace(tokens: list[Token], open_idx: int) -> int:
    """Index of the ``}`` matching ``tokens[open_idx] == '{'`` (or len)."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind == PUNCT:
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens)
