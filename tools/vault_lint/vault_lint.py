#!/usr/bin/env python3
"""VaultLint driver.

Lints the GNNVault tree against the GV_* annotation contracts
(src/common/annotations.hpp): secret-egress, channel-kind, ecall-abi,
lock-rank, and suppression hygiene.  See docs/static_analysis.md.

Typical invocations:

    # CI gate: whole tree, deterministic token frontend, fail on findings
    python3 tools/vault_lint/vault_lint.py \
        --compile-commands build/compile_commands.json \
        --include src --frontend fallback --json lint_findings.json

    # Fixture / single-file mode
    python3 tools/vault_lint/vault_lint.py --files tests/lint/fixtures/bad_lock_rank.cpp

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shlex
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from gvlint import CHECKS  # noqa: E402
from gvlint import clang_frontend  # noqa: E402
from gvlint.checks import Analysis  # noqa: E402
from gvlint.model import FileReport  # noqa: E402


def parse_args(argv: list[str]) -> argparse.Namespace:
    p = argparse.ArgumentParser(prog="vault_lint", description=__doc__)
    p.add_argument("--compile-commands",
                   help="compile_commands.json listing the TUs to lint")
    p.add_argument("--files", nargs="*", default=[],
                   help="explicit file list (bypasses compile_commands)")
    p.add_argument("--include", action="append", default=[],
                   help="only lint paths under this prefix (repeatable); "
                        "headers beneath it are linted too")
    p.add_argument("--json", dest="json_out",
                   help="write the findings artifact to this path")
    p.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                   default="auto",
                   help="auto: libclang when importable, else the built-in "
                        "token engine; CI pins 'fallback' for determinism")
    p.add_argument("--rank-table", default=None,
                   help="header declaring the gv::lockrank constants "
                        "(default: <repo-root>/src/common/annotations.hpp)")
    p.add_argument("--repo-root", default=None,
                   help="repository root (default: two levels above this "
                        "script)")
    p.add_argument("--no-headers", action="store_true",
                   help="do not add headers under --include prefixes")
    p.add_argument("--quiet", action="store_true",
                   help="summary line only")
    return p.parse_args(argv)


def collect_files(args: argparse.Namespace, root: str) -> tuple[list[str], dict]:
    compile_args: dict[str, list[str]] = {}
    files: list[str] = []
    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    elif args.compile_commands:
        try:
            with open(args.compile_commands, encoding="utf-8") as f:
                db = json.load(f)
        except (OSError, ValueError) as e:
            print(f"vault_lint: cannot read {args.compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in db:
            path = os.path.abspath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            files.append(path)
            if "arguments" in entry:
                compile_args[path] = entry["arguments"][1:]
            elif "command" in entry:
                compile_args[path] = shlex.split(entry["command"])[1:]
    else:
        print("vault_lint: need --compile-commands or --files", file=sys.stderr)
        sys.exit(2)

    prefixes = [os.path.abspath(os.path.join(root, p)) for p in args.include]
    if prefixes:
        files = [f for f in files
                 if any(f.startswith(p + os.sep) or f == p for p in prefixes)]
        if not args.no_headers:
            for p in prefixes:
                for pat in ("**/*.hpp", "**/*.h"):
                    files.extend(os.path.abspath(h) for h in
                                 glob.glob(os.path.join(p, pat), recursive=True))
    return sorted(set(files)), compile_args


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    root = os.path.abspath(args.repo_root or
                           os.path.join(os.path.dirname(__file__), "..", ".."))
    files, compile_args = collect_files(args, root)
    if not files:
        print("vault_lint: no files to lint", file=sys.stderr)
        return 2

    rank_table = args.rank_table or os.path.join(root, "src", "common",
                                                 "annotations.hpp")
    if not os.path.exists(rank_table):
        rank_table = None

    frontend = args.frontend
    if frontend == "clang" and not clang_frontend.available():
        print("vault_lint: --frontend clang requested but clang.cindex / "
              "libclang is not available", file=sys.stderr)
        return 2
    if frontend == "auto":
        frontend = "clang" if clang_frontend.available() else "fallback"

    analysis = Analysis(files, rank_table_file=rank_table)
    reports = analysis.run()

    if frontend == "clang":
        # The AST engine owns the two semantic checks; token engine keeps the
        # structural three.  Suppressions (token-collected) cover both.
        ast_reports = {r.path: r for r in
                       clang_frontend.analyze(files, compile_args)}
        for r in reports:
            r.findings = [f for f in r.findings
                          if f.check not in ("ecall-abi", "secret-egress")]
            ast = ast_reports.get(r.path)
            if ast:
                r.findings.extend(ast.findings)
            r.apply_suppressions()

    findings = []
    suppressed = []
    for r in reports:
        for f in r.findings:
            (suppressed if f.suppressed else findings).append(f)

    def rel(path: str) -> str:
        try:
            return os.path.relpath(path, root)
        except ValueError:
            return path

    if not args.quiet:
        for f in sorted(findings, key=lambda f: (f.file, f.line)):
            print(f"{rel(f.file)}:{f.line}: [{f.check}] {f.message}")
        for f in sorted(suppressed, key=lambda f: (f.file, f.line)):
            print(f"{rel(f.file)}:{f.line}: [{f.check}] suppressed "
                  f"({f.suppress_reason})")
    by_check = {c: sum(1 for f in findings if f.check == c) for c in CHECKS}
    tally = ", ".join(f"{c}={n}" for c, n in by_check.items() if n)
    print(f"vault_lint[{frontend}]: {len(files)} files, "
          f"{len(findings)} finding(s)"
          + (f" [{tally}]" if tally else "")
          + (f", {len(suppressed)} suppressed" if suppressed else ""))

    if args.json_out:
        artifact = {
            "frontend": frontend,
            "files": len(files),
            "findings": [dict(f.to_dict(), file=rel(f.file))
                         for f in sorted(findings, key=lambda f: (f.file, f.line))],
            "suppressed": [dict(f.to_dict(), file=rel(f.file))
                           for f in sorted(suppressed, key=lambda f: (f.file, f.line))],
        }
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump(artifact, out, indent=2)
            out.write("\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
