// Compressed Sparse Row matrix.
//
// Two roles in GNNVault:
//   * the normalized adjacency  used by every GCN layer's message passing
//     (the paper stores the private adjacency in COO inside the enclave;
//     we keep a COO view for that and convert to CSR for compute), and
//   * the sparse node-feature matrix X (citation-network features are
//     ~1% dense binary vectors), which makes first-layer training cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace gv {

/// One nonzero in coordinate format.
struct CooEntry {
  std::uint32_t row;
  std::uint32_t col;
  float value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from unordered COO entries; duplicate (row,col) values are summed.
  static CsrMatrix from_coo(std::size_t rows, std::size_t cols,
                            std::vector<CooEntry> entries);

  /// Build from a dense matrix, keeping entries with |v| > eps.
  static CsrMatrix from_dense(const Matrix& dense, float eps = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_idx_.size(); }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Number of nonzeros in row r.
  std::size_t row_nnz(std::size_t r) const {
    return static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r]);
  }

  /// Value at (r, c); zero if not stored. O(log nnz(r)).
  float at(std::size_t r, std::size_t c) const;

  /// Dense copy (tests / small graphs only).
  Matrix to_dense() const;

  /// Transposed copy.
  CsrMatrix transposed() const;

  /// COO view (row-major order).
  std::vector<CooEntry> to_coo() const;

  /// Payload bytes (row_ptr + col_idx + values) for memory accounting.
  std::size_t payload_bytes() const;

  /// y = A * x for a dense vector x.
  std::vector<float> matvec(const std::vector<float>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;   // size rows_+1
  std::vector<std::uint32_t> col_idx_;  // size nnz
  std::vector<float> values_;           // size nnz
};

/// C[n,k] = A[n,m] (sparse) * B[m,k] (dense). OpenMP over rows.
Matrix spmm(const CsrMatrix& a, const Matrix& b);

/// C[m,k] = A[n,m]^T (sparse) * B[n,k] (dense); per-thread accumulators.
Matrix spmm_tn(const CsrMatrix& a, const Matrix& b);

}  // namespace gv
