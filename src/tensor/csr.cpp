#include "tensor/csr.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace gv {

CsrMatrix CsrMatrix::from_coo(std::size_t rows, std::size_t cols,
                              std::vector<CooEntry> entries) {
  for (const auto& e : entries) {
    GV_CHECK(e.row < rows && e.col < cols, "COO entry out of bounds");
  }
  std::sort(entries.begin(), entries.end(), [](const CooEntry& a, const CooEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    float sum = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[entries[i].row + 1] += 1;
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, float eps) {
  std::vector<CooEntry> entries;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const float v = dense(r, c);
      if (std::abs(v) > eps) {
        entries.push_back({static_cast<std::uint32_t>(r),
                           static_cast<std::uint32_t>(c), v});
      }
    }
  }
  return from_coo(dense.rows(), dense.cols(), std::move(entries));
}

float CsrMatrix::at(std::size_t r, std::size_t c) const {
  GV_CHECK(r < rows_ && c < cols_, "CsrMatrix::at out of range");
  const auto begin = col_idx_.begin() + row_ptr_[r];
  const auto end = col_idx_.begin() + row_ptr_[r + 1];
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_, 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      d(r, col_idx_[p]) = values_[p];
    }
  }
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      entries.push_back({col_idx_[p], static_cast<std::uint32_t>(r), values_[p]});
    }
  }
  return from_coo(cols_, rows_, std::move(entries));
}

std::vector<CooEntry> CsrMatrix::to_coo() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      entries.push_back({static_cast<std::uint32_t>(r), col_idx_[p], values_[p]});
    }
  }
  return entries;
}

std::size_t CsrMatrix::payload_bytes() const {
  return row_ptr_.size() * sizeof(std::int64_t) +
         col_idx_.size() * sizeof(std::uint32_t) + values_.size() * sizeof(float);
}

std::vector<float> CsrMatrix::matvec(const std::vector<float>& x) const {
  GV_CHECK(x.size() == cols_, "matvec shape mismatch");
  std::vector<float> y(rows_, 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (std::int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += values_[p] * x[col_idx_[p]];
    }
    y[r] = acc;
  }
  return y;
}

Matrix spmm(const CsrMatrix& a, const Matrix& b) {
  GV_CHECK(a.cols() == b.rows(), "spmm shape mismatch");
  const std::size_t n = a.rows(), k = b.cols();
  Matrix c(n, k, 0.0f);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& va = a.values();
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(n); ++r) {
    float* crow = c.data() + r * k;
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
      const float av = va[p];
      const float* brow = b.data() + static_cast<std::size_t>(ci[p]) * k;
      for (std::size_t j = 0; j < k; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix spmm_tn(const CsrMatrix& a, const Matrix& b) {
  GV_CHECK(a.rows() == b.rows(), "spmm_tn shape mismatch");
  const std::size_t n = a.rows(), m = a.cols(), k = b.cols();
  Matrix c(m, k, 0.0f);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& va = a.values();
#pragma omp parallel
  {
    Matrix local(m, k, 0.0f);
#pragma omp for schedule(dynamic, 64) nowait
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(n); ++r) {
      const float* brow = b.data() + r * k;
      for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
        const float av = va[p];
        float* crow = local.data() + static_cast<std::size_t>(ci[p]) * k;
        for (std::size_t j = 0; j < k; ++j) crow[j] += av * brow[j];
      }
    }
#pragma omp critical
    c += local;
  }
  return c;
}

}  // namespace gv
