#include "tensor/gemm.hpp"

#include "common/error.hpp"

namespace gv {

namespace {
// Row-parallel i-k-j kernel: the innermost loop is a contiguous AXPY over
// C's row, which GCC auto-vectorizes; good enough for the matrix shapes in
// GNN training (tall-skinny activations times small weight blocks).
void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    float* crow = c + i * n;
    if (!accumulate) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    const float* arow = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // sparse-ish activations (post-ReLU) shortcut
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}
}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  GV_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  gemm_nn(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols(), false);
  return c;
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  GV_CHECK(a.cols() == b.rows(), "matmul_acc shape mismatch");
  GV_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
           "matmul_acc output shape mismatch");
  gemm_nn(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols(), true);
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  // A is [k, m] stored row-major; result C[m, n] = sum_p A[p,i] * B[p,j].
  GV_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n, 0.0f);
#pragma omp parallel
  {
    Matrix local(m, n, 0.0f);
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t p = 0; p < static_cast<std::ptrdiff_t>(k); ++p) {
      const float* arow = a.data() + p * m;
      const float* brow = b.data() + p * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = local.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
#pragma omp critical
    c += local;
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  // C[m, n] = A[m, k] * B[n, k]^T ; dot products of contiguous rows.
  GV_CHECK(a.cols() == b.cols(), "matmul_nt shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace gv
