// Element-wise and row-wise tensor operations used by the nn layers,
// metrics, and the link-stealing attack's similarity computations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gv {

/// out = max(x, 0), element-wise.
Matrix relu(const Matrix& x);
/// dx = dy where x > 0, else 0 (in terms of the forward input x).
Matrix relu_backward(const Matrix& dy, const Matrix& x);

/// In-place inverted dropout with keep mask recorded for backward.
/// Scales surviving activations by 1/(1-p).
struct DropoutMask {
  std::vector<std::uint8_t> keep;
  float scale = 1.0f;
};
DropoutMask dropout_forward(Matrix& x, float p, Rng& rng);
void dropout_backward(Matrix& dy, const DropoutMask& mask);

/// Row-wise log-softmax.
Matrix log_softmax_rows(const Matrix& x);
/// Row-wise softmax.
Matrix softmax_rows(const Matrix& x);

/// Add a bias row-vector b[1,c] to every row of x.
void add_bias_rows(Matrix& x, const std::vector<float>& bias);
/// Column sums of x (for bias gradients).
std::vector<float> col_sums(const Matrix& x);

/// Argmax of each row.
std::vector<std::uint32_t> argmax_rows(const Matrix& x);

/// Masked negative log-likelihood loss for log-probability inputs.
/// Returns mean over the rows listed in `mask`; fills dlogp (same shape as
/// logp) with the gradient w.r.t. the log-probabilities.
double nll_loss_masked(const Matrix& logp, const std::vector<std::uint32_t>& labels,
                       const std::vector<std::uint32_t>& mask, Matrix& dlogp);

/// Combined log-softmax + masked NLL backward: given logp = log_softmax(z)
/// and dlogp from nll_loss_masked, returns dz.
Matrix log_softmax_backward(const Matrix& dlogp, const Matrix& logp);

/// L2-normalize every row in place (zero rows left untouched).
void l2_normalize_rows(Matrix& x);

/// Row-pair distances/similarities between rows a and b of the SAME matrix.
/// These are the six metrics of He et al.'s link-stealing attack (Table IV).
float row_euclidean(const Matrix& x, std::size_t a, std::size_t b);
float row_cosine(const Matrix& x, std::size_t a, std::size_t b);
float row_correlation(const Matrix& x, std::size_t a, std::size_t b);
float row_chebyshev(const Matrix& x, std::size_t a, std::size_t b);
float row_braycurtis(const Matrix& x, std::size_t a, std::size_t b);
float row_canberra(const Matrix& x, std::size_t a, std::size_t b);

}  // namespace gv
