#include "tensor/matrix.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"

namespace gv {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    GV_CHECK(row.size() == cols_, "ragged initializer list for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0f);
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0f);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  GV_CHECK(r < rows_ && c < cols_, "Matrix::at index out of range");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  GV_CHECK(r < rows_ && c < cols_, "Matrix::at index out of range");
  return (*this)(r, c);
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::gather_rows(std::span<const std::uint32_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    GV_CHECK(rows[i] < rows_, "gather_rows index out of range");
    std::memcpy(out.data() + i * cols_, data_.data() + rows[i] * cols_,
                cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::hconcat(std::span<const Matrix* const> blocks) {
  GV_CHECK(!blocks.empty(), "hconcat requires at least one block");
  const std::size_t rows = blocks.front()->rows();
  std::size_t cols = 0;
  for (const Matrix* b : blocks) {
    GV_CHECK(b->rows() == rows, "hconcat blocks must share row count");
    cols += b->cols();
  }
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float* dst = out.data() + r * cols;
    for (const Matrix* b : blocks) {
      std::memcpy(dst, b->data() + r * b->cols(), b->cols() * sizeof(float));
      dst += b->cols();
    }
  }
  return out;
}

Matrix Matrix::hconcat(const Matrix& a, const Matrix& b) {
  const Matrix* blocks[] = {&a, &b};
  return hconcat(std::span<const Matrix* const>(blocks, 2));
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
           "Matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
           "Matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

float Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool Matrix::allclose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace gv
