// Dense row-major single-precision matrix.
//
// This is the workhorse container for node-feature blocks, layer
// activations, and weight matrices.  It plays the role Eigen plays in the
// paper's SGX enclave implementation (the authors use Eigen for the
// rectifier's matrix ops); we implement the subset of functionality GNN
// inference/training needs, with OpenMP-parallel kernels in gemm.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace gv {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  /// Build from nested initializer list (for tests): {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<float>> init);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  static Matrix ones(std::size_t rows, std::size_t cols);
  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access (throws gv::Error).
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Reset all elements to `v`.
  void fill(float v);

  /// Transposed copy.
  Matrix transposed() const;

  /// Extract the sub-matrix of the given rows (gather).
  Matrix gather_rows(std::span<const std::uint32_t> rows) const;

  /// Horizontal concatenation [A | B | ...]; all blocks must share rows.
  static Matrix hconcat(std::span<const Matrix* const> blocks);
  static Matrix hconcat(const Matrix& a, const Matrix& b);

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);

  /// Frobenius norm.
  float frobenius_norm() const;

  /// True when shapes and all elements match within `tol`.
  bool allclose(const Matrix& other, float tol = 1e-5f) const;

  /// Bytes occupied by the payload (used by the SGX memory accounting).
  std::size_t payload_bytes() const { return data_.size() * sizeof(float); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace gv
