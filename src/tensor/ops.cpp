#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gv {

Matrix relu(const Matrix& x) {
  Matrix y = x;
  float* d = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
  return y;
}

Matrix relu_backward(const Matrix& dy, const Matrix& x) {
  GV_CHECK(dy.rows() == x.rows() && dy.cols() == x.cols(),
           "relu_backward shape mismatch");
  Matrix dx = dy;
  const float* xv = x.data();
  float* d = dx.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (xv[i] <= 0.0f) d[i] = 0.0f;
  }
  return dx;
}

DropoutMask dropout_forward(Matrix& x, float p, Rng& rng) {
  GV_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0,1)");
  DropoutMask mask;
  mask.keep.resize(x.size());
  mask.scale = 1.0f / (1.0f - p);
  float* d = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng.bernoulli(p);
    mask.keep[i] = keep ? 1 : 0;
    d[i] = keep ? d[i] * mask.scale : 0.0f;
  }
  return mask;
}

void dropout_backward(Matrix& dy, const DropoutMask& mask) {
  GV_CHECK(dy.size() == mask.keep.size(), "dropout_backward shape mismatch");
  float* d = dy.data();
  for (std::size_t i = 0; i < dy.size(); ++i) {
    d[i] = mask.keep[i] ? d[i] * mask.scale : 0.0f;
  }
}

Matrix log_softmax_rows(const Matrix& x) {
  Matrix y(x.rows(), x.cols());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(x.rows()); ++r) {
    const float* xr = x.data() + r * x.cols();
    float* yr = y.data() + r * x.cols();
    float mx = xr[0];
    for (std::size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, xr[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) sum += std::exp(static_cast<double>(xr[c] - mx));
    const float lse = mx + static_cast<float>(std::log(sum));
    for (std::size_t c = 0; c < x.cols(); ++c) yr[c] = xr[c] - lse;
  }
  return y;
}

Matrix softmax_rows(const Matrix& x) {
  Matrix y = log_softmax_rows(x);
  float* d = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) d[i] = std::exp(d[i]);
  return y;
}

void add_bias_rows(Matrix& x, const std::vector<float>& bias) {
  GV_CHECK(bias.size() == x.cols(), "add_bias_rows shape mismatch");
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(x.rows()); ++r) {
    float* xr = x.data() + r * x.cols();
    for (std::size_t c = 0; c < x.cols(); ++c) xr[c] += bias[c];
  }
}

std::vector<float> col_sums(const Matrix& x) {
  std::vector<float> s(x.cols(), 0.0f);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.data() + r * x.cols();
    for (std::size_t c = 0; c < x.cols(); ++c) s[c] += xr[c];
  }
  return s;
}

std::vector<std::uint32_t> argmax_rows(const Matrix& x) {
  GV_CHECK(x.cols() > 0, "argmax_rows requires at least one column");
  std::vector<std::uint32_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.data() + r * x.cols();
    std::size_t best = 0;
    for (std::size_t c = 1; c < x.cols(); ++c) {
      if (xr[c] > xr[best]) best = c;
    }
    out[r] = static_cast<std::uint32_t>(best);
  }
  return out;
}

double nll_loss_masked(const Matrix& logp, const std::vector<std::uint32_t>& labels,
                       const std::vector<std::uint32_t>& mask, Matrix& dlogp) {
  GV_CHECK(labels.size() == logp.rows(), "labels size mismatch");
  GV_CHECK(!mask.empty(), "loss mask must be non-empty");
  dlogp = Matrix(logp.rows(), logp.cols(), 0.0f);
  double loss = 0.0;
  const float inv = 1.0f / static_cast<float>(mask.size());
  for (const std::uint32_t r : mask) {
    GV_CHECK(r < logp.rows(), "mask row out of range");
    const std::uint32_t y = labels[r];
    GV_CHECK(y < logp.cols(), "label out of range");
    loss -= logp(r, y);
    dlogp(r, y) = -inv;
  }
  return loss / static_cast<double>(mask.size());
}

Matrix log_softmax_backward(const Matrix& dlogp, const Matrix& logp) {
  GV_CHECK(dlogp.rows() == logp.rows() && dlogp.cols() == logp.cols(),
           "log_softmax_backward shape mismatch");
  // dz_j = dlogp_j - softmax_j * sum_k dlogp_k
  Matrix dz(dlogp.rows(), dlogp.cols());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(dlogp.rows()); ++r) {
    const float* dl = dlogp.data() + r * dlogp.cols();
    const float* lp = logp.data() + r * logp.cols();
    float* out = dz.data() + r * dlogp.cols();
    float sum = 0.0f;
    for (std::size_t c = 0; c < dlogp.cols(); ++c) sum += dl[c];
    for (std::size_t c = 0; c < dlogp.cols(); ++c) {
      out[c] = dl[c] - std::exp(lp[c]) * sum;
    }
  }
  return dz;
}

void l2_normalize_rows(Matrix& x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* xr = x.data() + r * x.cols();
    double norm = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) norm += static_cast<double>(xr[c]) * xr[c];
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (std::size_t c = 0; c < x.cols(); ++c) xr[c] *= inv;
  }
}

namespace {
inline void check_pair(const Matrix& x, std::size_t a, std::size_t b) {
  GV_CHECK(a < x.rows() && b < x.rows(), "row index out of range");
}
}  // namespace

float row_euclidean(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  double acc = 0.0;
  const float* ra = x.data() + a * x.cols();
  const float* rb = x.data() + b * x.cols();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double d = static_cast<double>(ra[c]) - rb[c];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float row_cosine(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  const float* ra = x.data() + a * x.cols();
  const float* rb = x.data() + b * x.cols();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    dot += static_cast<double>(ra[c]) * rb[c];
    na += static_cast<double>(ra[c]) * ra[c];
    nb += static_cast<double>(rb[c]) * rb[c];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

float row_correlation(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  const std::size_t n = x.cols();
  const float* ra = x.data() + a * n;
  const float* rb = x.data() + b * n;
  double ma = 0.0, mb = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    ma += ra[c];
    mb += rb[c];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    const double da = ra[c] - ma, db = rb[c] - mb;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

float row_chebyshev(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  float mx = 0.0f;
  const float* ra = x.data() + a * x.cols();
  const float* rb = x.data() + b * x.cols();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    mx = std::max(mx, std::fabs(ra[c] - rb[c]));
  }
  return mx;
}

float row_braycurtis(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  double num = 0.0, den = 0.0;
  const float* ra = x.data() + a * x.cols();
  const float* rb = x.data() + b * x.cols();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    num += std::fabs(static_cast<double>(ra[c]) - rb[c]);
    den += std::fabs(static_cast<double>(ra[c]) + rb[c]);
  }
  if (den < 1e-24) return 0.0f;
  return static_cast<float>(num / den);
}

float row_canberra(const Matrix& x, std::size_t a, std::size_t b) {
  check_pair(x, a, b);
  double acc = 0.0;
  const float* ra = x.data() + a * x.cols();
  const float* rb = x.data() + b * x.cols();
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double num = std::fabs(static_cast<double>(ra[c]) - rb[c]);
    const double den = std::fabs(ra[c]) + std::fabs(rb[c]);
    if (den > 1e-24) acc += num / den;
  }
  return static_cast<float>(acc);
}

}  // namespace gv
