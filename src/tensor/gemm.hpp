// Dense matrix multiplication kernels (OpenMP parallel).
//
// Three orientations are enough for GNN training:
//   matmul    : C = A  * B    (forward projections)
//   matmul_tn : C = A' * B    (weight gradients  dW = X' dZ)
//   matmul_nt : C = A  * B'   (input gradients   dX = dZ W')
#pragma once

#include "tensor/matrix.hpp"

namespace gv {

/// C = A[m,k] * B[k,n].
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A'[k,m]' * B[k,n]  i.e. result is [m,n] with A stored [k,m].
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A[m,k] * B'[n,k]'  i.e. result is [m,n] with B stored [n,k].
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C += A * B (accumulating variant used by optimizers/fused layers).
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace gv
