#include "sgxsim/enclave.hpp"

#include <cstring>

namespace gv {

void MemoryLedger::alloc(const std::string& name, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(*mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  GV_CHECK(live_.find(name) == live_.end(),
           "enclave allocation already exists: " + name);
  live_[name] = bytes;
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryLedger::free(const std::string& name) {
  std::lock_guard<std::mutex> lock(*mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  const auto it = live_.find(name);
  GV_CHECK(it != live_.end(), "freeing unknown enclave allocation: " + name);
  current_ -= it->second;
  live_.erase(it);
}

void MemoryLedger::set(const std::string& name, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(*mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  const auto it = live_.find(name);
  if (it != live_.end()) {
    current_ -= it->second;
    it->second = bytes;
  } else {
    live_[name] = bytes;
  }
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

Sha256Digest Enclave::default_platform_key() {
  Sha256 h;
  h.update(std::string("gnnvault-simulated-cpu-fuse-key-v1"));
  return h.finish();
}

Enclave::Enclave(std::string name, SgxCostModel model, Sha256Digest platform_key)
    : name_(std::move(name)),
      trace_category_(TraceRecorder::instance().intern(name_)),
      model_(model),
      platform_key_(platform_key) {
  measurement_hasher_.update(std::string("enclave:") + name_);
}

void Enclave::extend_measurement(std::span<const std::uint8_t> blob) {
  GV_CHECK(!initialized_, "cannot extend measurement after initialization");
  measurement_hasher_.update(blob);
}

void Enclave::extend_measurement(const std::string& tag) {
  GV_CHECK(!initialized_, "cannot extend measurement after initialization");
  measurement_hasher_.update(tag);
}

void Enclave::initialize() {
  GV_CHECK(!initialized_, "enclave already initialized");
  measurement_ = measurement_hasher_.finish();
  initialized_ = true;
}

const Sha256Digest& Enclave::measurement() const {
  GV_CHECK(initialized_, "measurement available only after initialization");
  return measurement_;
}

double Enclave::finish_ecall(double wall_seconds) {
  const std::size_t working_set = ledger_.current_bytes();
  std::lock_guard<std::mutex> m(*meter_mu_);
  GV_RANK_SCOPE(lockrank::kEnclaveMeter);
  meter_.enclave_compute_seconds += wall_seconds * model_.enclave_compute_slowdown;
  // EPC pressure: the portion of the working set beyond the usable EPC is
  // assumed to be swapped in and out once per ecall that touches it.
  std::uint64_t swaps = 0;
  if (working_set > model_.epc_bytes) {
    const std::size_t overflow = working_set - model_.epc_bytes;
    swaps = 2 * ((overflow + model_.page_bytes - 1) / model_.page_bytes);
    meter_.page_swaps += swaps;
  }
  return model_.cycles_to_seconds(
             static_cast<double>(model_.ecall_cycles) +
             static_cast<double>(swaps) *
                 static_cast<double>(model_.page_swap_cycles)) +
         wall_seconds * model_.enclave_compute_slowdown;
}

AeadKey Enclave::sealing_key() const {
  GV_CHECK(initialized_, "sealing requires an initialized enclave");
  const Sha256Digest k = hmac_sha256(
      std::span<const std::uint8_t>(platform_key_.data(), platform_key_.size()),
      std::span<const std::uint8_t>(measurement_.data(), measurement_.size()));
  AeadKey key;
  std::memcpy(key.data(), k.data(), key.size());
  return key;
}

SealedBlob Enclave::seal(std::span<const std::uint8_t> plaintext) {
  SealedBlob blob;
  const std::uint64_t ctr = ++seal_counter_;
  for (int i = 0; i < 8; ++i) {
    blob.nonce[i] = static_cast<std::uint8_t>(ctr >> (8 * i));
  }
  std::memcpy(blob.nonce.data() + 8, measurement_.data(), 4);
  blob.ciphertext = aead_encrypt(sealing_key(), blob.nonce, plaintext,
                                 std::span<const std::uint8_t>(measurement_.data(), 8),
                                 blob.tag);
  return blob;
}

std::vector<std::uint8_t> Enclave::unseal(const SealedBlob& blob) {
  return aead_decrypt(sealing_key(), blob.nonce, blob.ciphertext,
                      std::span<const std::uint8_t>(measurement_.data(), 8),
                      blob.tag);
}

Enclave::Report Enclave::create_report(std::span<const std::uint8_t> user_data) const {
  GV_CHECK(initialized_, "report requires an initialized enclave");
  Report r;
  r.measurement = measurement_;
  r.user_data_hash = Sha256::hash(user_data);
  std::vector<std::uint8_t> msg;
  msg.insert(msg.end(), r.measurement.begin(), r.measurement.end());
  msg.insert(msg.end(), r.user_data_hash.begin(), r.user_data_hash.end());
  r.mac = hmac_sha256(
      std::span<const std::uint8_t>(platform_key_.data(), platform_key_.size()), msg);
  return r;
}

bool Enclave::verify_report(const Report& report, const Sha256Digest& platform_key) {
  std::vector<std::uint8_t> msg;
  msg.insert(msg.end(), report.measurement.begin(), report.measurement.end());
  msg.insert(msg.end(), report.user_data_hash.begin(), report.user_data_hash.end());
  const Sha256Digest expect = hmac_sha256(
      std::span<const std::uint8_t>(platform_key.data(), platform_key.size()), msg);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expect.size(); ++i) diff |= expect[i] ^ report.mac[i];
  return diff == 0;
}

}  // namespace gv
