// SGX performance/capacity model.
//
// We do not have SGX hardware in this environment, so the enclave is
// simulated: real computation runs natively, and the *costs* SGX would add
// are charged by this model. Constants are calibrated to published
// microbenchmarks of the paper's platform class (Intel Core i7-7700,
// SGX1):
//   * enclave transitions (ECALL/OCALL): ~8,000-14,000 cycles
//     (Weisse et al., "HotCalls", ISCA'17; Costan & Devadas, "Intel SGX
//     Explained", 2016) — we use 8,600 / 8,200;
//   * EPC paging: an EWB+ELDU pair costs ~40,000 cycles per 4 KiB page;
//   * crossing data is copied + MEE-encrypted: ~2 cycles/byte effective;
//   * in-enclave compute on memory-bound kernels runs ~1.2x slower due to
//     the Memory Encryption Engine.
// Capacity constants come straight from the paper (Sec. III-C): 128 MB PRM
// of which 96 MB is usable EPC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gv {

struct SgxCostModel {
  double cpu_ghz = 3.6;  // i7-7700 base clock

  std::uint64_t ecall_cycles = 8600;
  std::uint64_t ocall_cycles = 8200;
  double transfer_cycles_per_byte = 2.0;
  std::uint64_t page_swap_cycles = 40000;
  double enclave_compute_slowdown = 1.2;

  std::size_t page_bytes = 4096;
  std::size_t epc_bytes = 96ull * 1024 * 1024;
  std::size_t prm_bytes = 128ull * 1024 * 1024;

  double cycles_to_seconds(double cycles) const { return cycles / (cpu_ghz * 1e9); }
};

/// Accumulated cost of one deployment's enclave interactions, split the
/// way the paper's Fig. 6 breaks down inference time.
struct CostMeter {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t bytes_in = 0;       // untrusted -> enclave copies
  std::uint64_t page_swaps = 0;     // EPC pressure events
  double enclave_compute_seconds = 0.0;   // native time already scaled by slowdown
  double untrusted_compute_seconds = 0.0; // backbone time (normal world)

  void reset() { *this = CostMeter{}; }

  /// Transition + copy + paging time implied by the model.
  double transfer_seconds(const SgxCostModel& m) const;
  /// Total end-to-end seconds: untrusted + transfer + enclave.
  double total_seconds(const SgxCostModel& m) const;

  std::string summary(const SgxCostModel& m) const;
};

}  // namespace gv
