// ChaCha20-Poly1305 AEAD (RFC 8439).
//
// The enclave simulator uses this for sealed storage: rectifier weights and
// the private adjacency are stored at rest encrypted under a key derived
// from the enclave measurement, mirroring SGX's sealing against MRENCLAVE.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.hpp"

namespace gv {

/// AEAD keys are secrets wherever they appear in src/ (sealing keys,
/// attested-channel session keys); the annotation makes every local or
/// member of this type secret by construction.
using AeadKey GV_SECRET = std::array<std::uint8_t, 32>;
using AeadNonce = std::array<std::uint8_t, 12>;
using AeadTag = std::array<std::uint8_t, 16>;

/// Raw ChaCha20 block-function keystream encryption with initial counter
/// (exposed for RFC test vectors).
void chacha20_xor(const AeadKey& key, const AeadNonce& nonce,
                  std::uint32_t counter, std::span<const std::uint8_t> in,
                  std::uint8_t* out);

/// One-shot Poly1305 MAC (exposed for RFC test vectors).
AeadTag poly1305_mac(std::span<const std::uint8_t> msg,
                     const std::array<std::uint8_t, 32>& key);

/// AEAD encrypt: returns ciphertext; writes the tag.
std::vector<std::uint8_t> aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> plaintext,
                                       std::span<const std::uint8_t> aad,
                                       AeadTag& tag_out);

/// AEAD decrypt: returns plaintext, or throws gv::Error on tag mismatch.
std::vector<std::uint8_t> aead_decrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> ciphertext,
                                       std::span<const std::uint8_t> aad,
                                       const AeadTag& tag);

}  // namespace gv
