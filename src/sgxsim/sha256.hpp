// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104).
//
// Used by the enclave simulator for MRENCLAVE-style measurements (hash of
// everything loaded into the enclave at build time) and for MAC'ing local
// attestation reports, mirroring how SGX derives identity and report keys.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gv {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  /// Absorb bytes (may be called repeatedly).
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  /// Finalize and return the digest; the object must not be reused after.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 over `data` with `key`.
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

/// Hex string of a digest (for logs and tests).
std::string to_hex(const Sha256Digest& d);

}  // namespace gv
