#include "sgxsim/chacha20poly1305.hpp"

#include <cstring>

#include "common/error.hpp"

namespace gv {

namespace {

inline std::uint32_t load32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

void chacha20_xor(const AeadKey& key, const AeadNonce& nonce,
                  std::uint32_t counter, std::span<const std::uint8_t> in,
                  std::uint8_t* out) {
  // Hot path of every halo exchange, replica ship, and sealed-store round
  // trip: state setup hoisted out of the block loop, the 20 rounds run on
  // 16 locals (registers), and whole blocks XOR word-at-a-time.  Same
  // keystream as chacha20_block (the RFC vectors pin it).
  std::uint32_t s[16];
  s[0] = 0x61707865; s[1] = 0x3320646e; s[2] = 0x79622d32; s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = load32(key.data() + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = load32(nonce.data() + 4 * i);

  std::size_t off = 0;
  std::uint8_t block[64];

  // 4-blocks-at-a-time lane-interleaved path: the scalar quarter-round is a
  // serial dependency chain, so four independent counters side by side give
  // the compiler (and the core) something to vectorize/pipeline — this is
  // where halo-exchange and sealed-store throughput comes from.
  while (in.size() - off >= 256) {
    std::uint32_t x[16][4];
    for (int i = 0; i < 16; ++i) {
      for (int l = 0; l < 4; ++l) x[i][l] = s[i];
    }
    for (int l = 0; l < 4; ++l) x[12][l] = s[12] + static_cast<std::uint32_t>(l);
    auto qr4 = [&x](int a, int b, int c, int d) {
      for (int l = 0; l < 4; ++l) {
        x[a][l] += x[b][l]; x[d][l] ^= x[a][l]; x[d][l] = rotl32(x[d][l], 16);
      }
      for (int l = 0; l < 4; ++l) {
        x[c][l] += x[d][l]; x[b][l] ^= x[c][l]; x[b][l] = rotl32(x[b][l], 12);
      }
      for (int l = 0; l < 4; ++l) {
        x[a][l] += x[b][l]; x[d][l] ^= x[a][l]; x[d][l] = rotl32(x[d][l], 8);
      }
      for (int l = 0; l < 4; ++l) {
        x[c][l] += x[d][l]; x[b][l] ^= x[c][l]; x[b][l] = rotl32(x[b][l], 7);
      }
    };
    for (int round = 0; round < 10; ++round) {
      qr4(0, 4, 8, 12); qr4(1, 5, 9, 13); qr4(2, 6, 10, 14); qr4(3, 7, 11, 15);
      qr4(0, 5, 10, 15); qr4(1, 6, 11, 12); qr4(2, 7, 8, 13); qr4(3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
      for (int l = 0; l < 4; ++l) {
        x[i][l] += i == 12 ? s[12] + static_cast<std::uint32_t>(l) : s[i];
      }
    }
    for (int l = 0; l < 4; ++l) {
      std::uint32_t w[16];
      std::memcpy(w, in.data() + off, 64);
      for (int i = 0; i < 16; ++i) w[i] ^= x[i][l];
      std::memcpy(out + off, w, 64);
      off += 64;
    }
    s[12] += 4;
  }

  while (off < in.size()) {
    std::uint32_t x0 = s[0], x1 = s[1], x2 = s[2], x3 = s[3], x4 = s[4],
                  x5 = s[5], x6 = s[6], x7 = s[7], x8 = s[8], x9 = s[9],
                  x10 = s[10], x11 = s[11], x12 = s[12], x13 = s[13],
                  x14 = s[14], x15 = s[15];
    for (int round = 0; round < 10; ++round) {
      quarter_round(x0, x4, x8, x12);
      quarter_round(x1, x5, x9, x13);
      quarter_round(x2, x6, x10, x14);
      quarter_round(x3, x7, x11, x15);
      quarter_round(x0, x5, x10, x15);
      quarter_round(x1, x6, x11, x12);
      quarter_round(x2, x7, x8, x13);
      quarter_round(x3, x4, x9, x14);
    }
    // Keystream words XOR'd as native uint32 — little-endian hosts only,
    // which the RFC-vector tests verify loudly at runtime.
    const std::uint32_t k[16] = {
        x0 + s[0],  x1 + s[1],  x2 + s[2],   x3 + s[3],
        x4 + s[4],  x5 + s[5],  x6 + s[6],   x7 + s[7],
        x8 + s[8],  x9 + s[9],  x10 + s[10], x11 + s[11],
        x12 + s[12], x13 + s[13], x14 + s[14], x15 + s[15]};
    ++s[12];
    if (in.size() - off >= 64) {
      std::uint32_t w[16];
      std::memcpy(w, in.data() + off, 64);
      for (int i = 0; i < 16; ++i) w[i] ^= k[i];
      std::memcpy(out + off, w, 64);
      off += 64;
    } else {
      std::memcpy(block, k, 64);
      const std::size_t take = in.size() - off;
      for (std::size_t i = 0; i < take; ++i) {
        out[off + i] = in[off + i] ^ block[i];
      }
      off = in.size();
    }
  }
}

namespace {

/// Streaming Poly1305 accumulator (state mod 2^130 - 5 in three limbs with
/// 128-bit intermediates).  Streaming matters: the AEAD tag runs over
/// aad || pad || ct || pad || lens, and concatenating those into a scratch
/// vector used to copy (and allocate) every halo-exchange payload twice.
struct Poly1305 {
  std::uint64_t r0, r1, s0, s1;
  std::uint64_t h0 = 0, h1 = 0, h2 = 0;

  explicit Poly1305(const std::array<std::uint8_t, 32>& key) {
    // r is clamped per RFC 8439 2.5.
    r0 = (std::uint64_t(load32(key.data())) |
          (std::uint64_t(load32(key.data() + 4)) << 32)) &
         0x0ffffffc0fffffffull;
    r1 = (std::uint64_t(load32(key.data() + 8)) |
          (std::uint64_t(load32(key.data() + 12)) << 32)) &
         0x0ffffffc0ffffffcull;
    s0 = std::uint64_t(load32(key.data() + 16)) |
         (std::uint64_t(load32(key.data() + 20)) << 32);
    s1 = std::uint64_t(load32(key.data() + 24)) |
         (std::uint64_t(load32(key.data() + 28)) << 32);
  }

  /// Absorb one 16-byte block extended with byte `hi` (1 for message
  /// blocks, 0 only in the one-shot final-partial case where the 0x01 is
  /// already inside the padded block).
  void block(const std::uint8_t* p, std::uint64_t hi) {
    const std::uint64_t t0 =
        std::uint64_t(load32(p)) | (std::uint64_t(load32(p + 4)) << 32);
    const std::uint64_t t1 =
        std::uint64_t(load32(p + 8)) | (std::uint64_t(load32(p + 12)) << 32);
    // h += t
    __uint128_t acc = (__uint128_t)h0 + t0;
    h0 = (std::uint64_t)acc;
    acc = (__uint128_t)h1 + t1 + (std::uint64_t)(acc >> 64);
    h1 = (std::uint64_t)acc;
    h2 = h2 + hi + (std::uint64_t)(acc >> 64);
    // h *= r  (mod 2^130 - 5); schoolbook with 128-bit intermediates.
    const __uint128_t m0 = (__uint128_t)h0 * r0;
    const __uint128_t m1 = (__uint128_t)h0 * r1 + (__uint128_t)h1 * r0;
    const __uint128_t m2 = (__uint128_t)h1 * r1 + (__uint128_t)h2 * r0;
    const __uint128_t m3 = (__uint128_t)h2 * r1;
    std::uint64_t d0 = (std::uint64_t)m0;
    __uint128_t carry = (m0 >> 64) + (std::uint64_t)m1;
    std::uint64_t d1 = (std::uint64_t)carry;
    carry = (carry >> 64) + (m1 >> 64) + (std::uint64_t)m2;
    std::uint64_t d2 = (std::uint64_t)carry;
    carry = (carry >> 64) + (m2 >> 64) + (std::uint64_t)m3;
    std::uint64_t d3 = (std::uint64_t)carry;
    // Reduce mod 2^130 - 5: fold bits above 130 down multiplied by 5.
    std::uint64_t g2 = d2 & 3;  // low 2 bits stay in h2
    __uint128_t high = ((__uint128_t)d3 << 62) | (d2 >> 2);
    __uint128_t fold = high * 5;
    acc = (__uint128_t)d0 + (std::uint64_t)fold;
    h0 = (std::uint64_t)acc;
    acc = (__uint128_t)d1 + (std::uint64_t)(fold >> 64) + (std::uint64_t)(acc >> 64);
    h1 = (std::uint64_t)acc;
    h2 = g2 + (std::uint64_t)(acc >> 64);
    // h2 can still exceed 3; one more small fold.
    while (h2 >= 4) {
      const std::uint64_t extra = (h2 >> 2) * 5;
      h2 &= 3;
      acc = (__uint128_t)h0 + extra;
      h0 = (std::uint64_t)acc;
      acc = (__uint128_t)h1 + (std::uint64_t)(acc >> 64);
      h1 = (std::uint64_t)acc;
      h2 += (std::uint64_t)(acc >> 64);
    }
  }

  /// Absorb a message zero-padded to a 16-byte multiple (the AEAD layout's
  /// aad/ciphertext segments).
  void absorb_padded(std::span<const std::uint8_t> msg) {
    std::size_t off = 0;
    for (; off + 16 <= msg.size(); off += 16) block(msg.data() + off, 1);
    if (off < msg.size()) {
      std::uint8_t buf[16] = {0};
      std::memcpy(buf, msg.data() + off, msg.size() - off);
      block(buf, 1);
    }
  }

  AeadTag finish() {
    // Final reduction: if h >= 2^130 - 5, subtract the modulus.
    std::uint64_t c0 = h0 + 5;
    std::uint64_t carry_bit = c0 < 5 ? 1 : 0;
    std::uint64_t c1 = h1 + carry_bit;
    carry_bit = (carry_bit && c1 == 0) ? 1 : 0;
    std::uint64_t c2 = h2 + carry_bit;
    if (c2 >= 4) {  // h + 5 overflowed 2^130, so h >= 2^130 - 5
      h0 = c0;
      h1 = c1;
    }
    // tag = (h + s) mod 2^128
    __uint128_t acc = (__uint128_t)h0 + s0;
    const std::uint64_t t0 = (std::uint64_t)acc;
    acc = (__uint128_t)h1 + s1 + (std::uint64_t)(acc >> 64);
    const std::uint64_t t1 = (std::uint64_t)acc;
    AeadTag tag;
    store32(tag.data(), (std::uint32_t)t0);
    store32(tag.data() + 4, (std::uint32_t)(t0 >> 32));
    store32(tag.data() + 8, (std::uint32_t)t1);
    store32(tag.data() + 12, (std::uint32_t)(t1 >> 32));
    return tag;
  }
};

}  // namespace

AeadTag poly1305_mac(std::span<const std::uint8_t> msg,
                     const std::array<std::uint8_t, 32>& key) {
  Poly1305 p(key);
  std::size_t off = 0;
  for (; off + 16 <= msg.size(); off += 16) p.block(msg.data() + off, 1);
  if (off < msg.size()) {
    // Final partial block: append 0x01 then zeros (RFC 8439 2.5.1).
    std::uint8_t buf[16] = {0};
    std::memcpy(buf, msg.data() + off, msg.size() - off);
    buf[msg.size() - off] = 1;
    p.block(buf, 0);
  }
  return p.finish();
}

namespace {
AeadTag compute_aead_tag(const AeadKey& key, const AeadNonce& nonce,
                         std::span<const std::uint8_t> ciphertext,
                         std::span<const std::uint8_t> aad) {
  // Poly1305 one-time key = first 32 bytes of keystream block 0.
  std::uint8_t zeros[64] = {0};
  std::uint8_t block0[64];
  chacha20_xor(key, nonce, 0, std::span<const std::uint8_t>(zeros, 64), block0);
  std::array<std::uint8_t, 32> otk;
  std::memcpy(otk.data(), block0, 32);

  // MAC input: aad || pad || ct || pad || len(aad) || len(ct), streamed —
  // no concatenation copy of the payload.
  Poly1305 p(otk);
  p.absorb_padded(aad);
  p.absorb_padded(ciphertext);
  std::uint8_t lens[16];
  const std::uint64_t alen = aad.size(), clen = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lens[i] = static_cast<std::uint8_t>(alen >> (8 * i));
    lens[8 + i] = static_cast<std::uint8_t>(clen >> (8 * i));
  }
  p.block(lens, 1);
  return p.finish();
}
}  // namespace

std::vector<std::uint8_t> aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> plaintext,
                                       std::span<const std::uint8_t> aad,
                                       AeadTag& tag_out) {
  std::vector<std::uint8_t> ct(plaintext.size());
  chacha20_xor(key, nonce, 1, plaintext, ct.data());
  tag_out = compute_aead_tag(key, nonce, ct, aad);
  return ct;
}

std::vector<std::uint8_t> aead_decrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> ciphertext,
                                       std::span<const std::uint8_t> aad,
                                       const AeadTag& tag) {
  const AeadTag expect = compute_aead_tag(key, nonce, ciphertext, aad);
  // Constant-time compare.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= expect[i] ^ tag[i];
  GV_CHECK(diff == 0, "AEAD tag mismatch: sealed blob corrupted or wrong key");
  std::vector<std::uint8_t> pt(ciphertext.size());
  chacha20_xor(key, nonce, 1, ciphertext, pt.data());
  return pt;
}

}  // namespace gv
