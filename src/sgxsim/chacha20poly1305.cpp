#include "sgxsim/chacha20poly1305.hpp"

#include <cstring>

#include "common/error.hpp"

namespace gv {

namespace {

inline std::uint32_t load32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

void chacha20_block(const AeadKey& key, const AeadNonce& nonce,
                    std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t s[16];
  s[0] = 0x61707865; s[1] = 0x3320646e; s[2] = 0x79622d32; s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = load32(key.data() + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = load32(nonce.data() + 4 * i);
  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) store32(out + 4 * i, w[i] + s[i]);
}

}  // namespace

void chacha20_xor(const AeadKey& key, const AeadNonce& nonce,
                  std::uint32_t counter, std::span<const std::uint8_t> in,
                  std::uint8_t* out) {
  std::uint8_t block[64];
  std::size_t off = 0;
  while (off < in.size()) {
    chacha20_block(key, nonce, counter++, block);
    const std::size_t take = std::min<std::size_t>(64, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ block[i];
    off += take;
  }
}

AeadTag poly1305_mac(std::span<const std::uint8_t> msg,
                     const std::array<std::uint8_t, 32>& key) {
  // r is clamped per RFC 8439 2.5.
  std::uint64_t r0 = (std::uint64_t(load32(key.data())) |
                      (std::uint64_t(load32(key.data() + 4)) << 32)) &
                     0x0ffffffc0fffffffull;
  std::uint64_t r1 = (std::uint64_t(load32(key.data() + 8)) |
                      (std::uint64_t(load32(key.data() + 12)) << 32)) &
                     0x0ffffffc0ffffffcull;
  const std::uint64_t s0 = std::uint64_t(load32(key.data() + 16)) |
                           (std::uint64_t(load32(key.data() + 20)) << 32);
  const std::uint64_t s1 = std::uint64_t(load32(key.data() + 24)) |
                           (std::uint64_t(load32(key.data() + 28)) << 32);

  // Accumulator h as 3x 44-bit-ish limbs in 64-bit words (h0,h1 full 64-bit
  // little pieces, h2 small) using 128-bit arithmetic mod 2^130 - 5.
  std::uint64_t h0 = 0, h1 = 0, h2 = 0;
  std::size_t off = 0;
  while (off < msg.size()) {
    const std::size_t take = std::min<std::size_t>(16, msg.size() - off);
    std::uint8_t block[17] = {0};
    std::memcpy(block, msg.data() + off, take);
    block[take] = 1;  // append the 0x01 byte
    const std::uint64_t t0 =
        std::uint64_t(load32(block)) | (std::uint64_t(load32(block + 4)) << 32);
    const std::uint64_t t1 =
        std::uint64_t(load32(block + 8)) | (std::uint64_t(load32(block + 12)) << 32);
    const std::uint64_t t2 = block[16];
    // h += t
    __uint128_t acc = (__uint128_t)h0 + t0;
    h0 = (std::uint64_t)acc;
    acc = (__uint128_t)h1 + t1 + (std::uint64_t)(acc >> 64);
    h1 = (std::uint64_t)acc;
    h2 = h2 + t2 + (std::uint64_t)(acc >> 64);
    // h *= r  (mod 2^130 - 5); schoolbook with 128-bit intermediates.
    const __uint128_t m0 = (__uint128_t)h0 * r0;
    const __uint128_t m1 = (__uint128_t)h0 * r1 + (__uint128_t)h1 * r0;
    const __uint128_t m2 = (__uint128_t)h1 * r1 + (__uint128_t)h2 * r0;
    const __uint128_t m3 = (__uint128_t)h2 * r1;
    std::uint64_t d0 = (std::uint64_t)m0;
    __uint128_t carry = (m0 >> 64) + (std::uint64_t)m1;
    std::uint64_t d1 = (std::uint64_t)carry;
    carry = (carry >> 64) + (m1 >> 64) + (std::uint64_t)m2;
    std::uint64_t d2 = (std::uint64_t)carry;
    carry = (carry >> 64) + (m2 >> 64) + (std::uint64_t)m3;
    std::uint64_t d3 = (std::uint64_t)carry;
    // Reduce mod 2^130 - 5: fold bits above 130 down multiplied by 5.
    std::uint64_t g2 = d2 & 3;  // low 2 bits stay in h2
    // The part above 2^130: (d2 >> 2) + (d3 << 62)... handle via 128-bit.
    __uint128_t high = ((__uint128_t)d3 << 62) | (d2 >> 2);
    __uint128_t fold = high * 5;
    acc = (__uint128_t)d0 + (std::uint64_t)fold;
    h0 = (std::uint64_t)acc;
    acc = (__uint128_t)d1 + (std::uint64_t)(fold >> 64) + (std::uint64_t)(acc >> 64);
    h1 = (std::uint64_t)acc;
    h2 = g2 + (std::uint64_t)(acc >> 64);
    // h2 can still exceed 3; one more small fold.
    while (h2 >= 4) {
      const std::uint64_t extra = (h2 >> 2) * 5;
      h2 &= 3;
      acc = (__uint128_t)h0 + extra;
      h0 = (std::uint64_t)acc;
      acc = (__uint128_t)h1 + (std::uint64_t)(acc >> 64);
      h1 = (std::uint64_t)acc;
      h2 += (std::uint64_t)(acc >> 64);
    }
    off += take;
  }
  // Final reduction: if h >= 2^130 - 5, subtract the modulus.
  std::uint64_t c0 = h0 + 5;
  std::uint64_t carry_bit = c0 < 5 ? 1 : 0;
  std::uint64_t c1 = h1 + carry_bit;
  carry_bit = (carry_bit && c1 == 0) ? 1 : 0;
  std::uint64_t c2 = h2 + carry_bit;
  if (c2 >= 4) {  // h + 5 overflowed 2^130, so h >= 2^130 - 5
    h0 = c0;
    h1 = c1;
  }
  // tag = (h + s) mod 2^128
  __uint128_t acc = (__uint128_t)h0 + s0;
  const std::uint64_t t0 = (std::uint64_t)acc;
  acc = (__uint128_t)h1 + s1 + (std::uint64_t)(acc >> 64);
  const std::uint64_t t1 = (std::uint64_t)acc;
  AeadTag tag;
  store32(tag.data(), (std::uint32_t)t0);
  store32(tag.data() + 4, (std::uint32_t)(t0 >> 32));
  store32(tag.data() + 8, (std::uint32_t)t1);
  store32(tag.data() + 12, (std::uint32_t)(t1 >> 32));
  return tag;
}

namespace {
AeadTag compute_aead_tag(const AeadKey& key, const AeadNonce& nonce,
                         std::span<const std::uint8_t> ciphertext,
                         std::span<const std::uint8_t> aad) {
  // Poly1305 one-time key = first 32 bytes of keystream block 0.
  std::uint8_t zeros[64] = {0};
  std::uint8_t block0[64];
  chacha20_xor(key, nonce, 0, std::span<const std::uint8_t>(zeros, 64), block0);
  std::array<std::uint8_t, 32> otk;
  std::memcpy(otk.data(), block0, 32);

  // MAC input: aad || pad || ct || pad || len(aad) || len(ct).
  std::vector<std::uint8_t> mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  mac_data.insert(mac_data.end(), aad.begin(), aad.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  mac_data.insert(mac_data.end(), ciphertext.begin(), ciphertext.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  std::uint8_t lens[16];
  const std::uint64_t alen = aad.size(), clen = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lens[i] = static_cast<std::uint8_t>(alen >> (8 * i));
    lens[8 + i] = static_cast<std::uint8_t>(clen >> (8 * i));
  }
  mac_data.insert(mac_data.end(), lens, lens + 16);
  return poly1305_mac(mac_data, otk);
}
}  // namespace

std::vector<std::uint8_t> aead_encrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> plaintext,
                                       std::span<const std::uint8_t> aad,
                                       AeadTag& tag_out) {
  std::vector<std::uint8_t> ct(plaintext.size());
  chacha20_xor(key, nonce, 1, plaintext, ct.data());
  tag_out = compute_aead_tag(key, nonce, ct, aad);
  return ct;
}

std::vector<std::uint8_t> aead_decrypt(const AeadKey& key, const AeadNonce& nonce,
                                       std::span<const std::uint8_t> ciphertext,
                                       std::span<const std::uint8_t> aad,
                                       const AeadTag& tag) {
  const AeadTag expect = compute_aead_tag(key, nonce, ciphertext, aad);
  // Constant-time compare.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i) diff |= expect[i] ^ tag[i];
  GV_CHECK(diff == 0, "AEAD tag mismatch: sealed blob corrupted or wrong key");
  std::vector<std::uint8_t> pt(ciphertext.size());
  chacha20_xor(key, nonce, 1, ciphertext, pt.data());
  return pt;
}

}  // namespace gv
