// One-way untrusted -> enclave data channel (paper Sec. IV-B / IV-E).
//
// GNNVault prevents information leakage through intermediate data by
// allowing data to flow only from the normal world into the enclave.  We
// enforce that at the type level: the untrusted side holds a
// `UntrustedSender` which can only push; the enclave side holds a
// `TrustedReceiver` which can only pop.  There is no API that exposes
// enclave-written data back to the sender.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "sgxsim/enclave.hpp"
#include "tensor/matrix.hpp"

namespace gv {

class OneWayChannel;

/// Untrusted-world endpoint: push-only.
class UntrustedSender {
 public:
  explicit UntrustedSender(OneWayChannel& ch) : ch_(&ch) {}
  /// Copy a dense block into the enclave (charges transfer costs).
  void push(const Matrix& block);

 private:
  OneWayChannel* ch_;
};

/// Enclave-side endpoint: pop-only. Must be used from inside an ecall.
class TrustedReceiver {
 public:
  explicit TrustedReceiver(OneWayChannel& ch) : ch_(&ch) {}
  bool empty() const;
  std::size_t pending() const;
  /// Take the oldest block (FIFO). Throws when empty.
  Matrix pop();

 private:
  OneWayChannel* ch_;
};

/// The channel itself lives with the deployment; both endpoints refer to it.
/// Thread-safe: multiple untrusted senders may push concurrently (the serving
/// subsystem runs several worker threads against one deployment), and a
/// receiver inside an ecall may pop while another thread stages the next
/// batch.
class OneWayChannel {
 public:
  explicit OneWayChannel(Enclave& enclave) : enclave_(&enclave) {}

  UntrustedSender sender() { return UntrustedSender(*this); }
  TrustedReceiver receiver() { return TrustedReceiver(*this); }

  std::uint64_t total_blocks_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    return pushed_;
  }
  std::uint64_t total_bytes_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    return bytes_;
  }

 private:
  friend class UntrustedSender;
  friend class TrustedReceiver;

  Enclave* enclave_;
  // Guards queue_, staged_bytes_, and the counters.
  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kChannel);
  std::deque<Matrix> queue_;
  std::size_t staged_bytes_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace gv
