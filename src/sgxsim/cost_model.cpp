#include "sgxsim/cost_model.hpp"

#include <sstream>

namespace gv {

double CostMeter::transfer_seconds(const SgxCostModel& m) const {
  const double cycles =
      static_cast<double>(ecalls) * m.ecall_cycles +
      static_cast<double>(ocalls) * m.ocall_cycles +
      static_cast<double>(bytes_in) * m.transfer_cycles_per_byte +
      static_cast<double>(page_swaps) * m.page_swap_cycles;
  return m.cycles_to_seconds(cycles);
}

double CostMeter::total_seconds(const SgxCostModel& m) const {
  return untrusted_compute_seconds + transfer_seconds(m) + enclave_compute_seconds;
}

std::string CostMeter::summary(const SgxCostModel& m) const {
  std::ostringstream out;
  out << "backbone=" << untrusted_compute_seconds * 1e3 << "ms"
      << " transfer=" << transfer_seconds(m) * 1e3 << "ms"
      << " enclave=" << enclave_compute_seconds * 1e3 << "ms"
      << " (ecalls=" << ecalls << ", bytes_in=" << bytes_in
      << ", page_swaps=" << page_swaps << ")";
  return out.str();
}

}  // namespace gv
