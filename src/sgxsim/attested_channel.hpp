// Mutually attested enclave-to-enclave channel.
//
// ShardVault runs one tenant across several enclaves (possibly on several
// SGX platforms); at every rectifier layer, boundary-node embeddings must
// move from the shard that computed them to the shards whose nodes border
// them.  That traffic crosses untrusted memory, so it must be protected and
// the peers must prove their identity first:
//
//   handshake: each side produces a local-attestation report over its key
//   share (Enclave::create_report); the verifier checks the MAC with the
//   peer platform's key — the stand-in for the quoting/IAS step of remote
//   attestation when the peer is another machine — and requires the peer's
//   MEASUREMENT to match its own (all shards of one tenant run identical
//   rectifier code).  The session key is derived from both measurements and
//   both key shares, and every payload is ChaCha20-Poly1305-sealed under it.
//
// The API is deliberately narrow: every payload crossing the channel is one
// of the PayloadKind enumerators — embeddings, labels, halo-pull requests
// (node-id lists the cold cross-shard path uses to ask a peer for specific
// boundary embeddings), node-transfer payloads (GraphDrift migration moving
// one node's row + label between live shards — the ONLY kind that may carry
// adjacency, and it is audited separately for exactly that reason), and
// (for the replica channel only) whole sealed shard packages.  There is no
// other way to put raw adjacency on an inter-shard channel, and per-kind
// byte counters let tests audit exactly that invariant.  The untrusted
// world that relays the ciphertext learns only block sizes, never edges —
// in particular a halo request's node ids (which would reveal a query's
// private frontier) are only ever plaintext inside the two attested
// enclaves.
//
// Padding policy lives in ONE table, kKindPolicies: kinds whose size would
// leak a private cardinality (embeddings → cut size, requests → frontier
// width, transfers → move-set size) are padded to power-of-two byte buckets
// before sealing; whole-store kinds (labels, packages) whose size is public
// ship exact.  The per-kind audit counters stay LOGICAL bytes (what the
// enclaves meant to say); padded_bytes() reports what actually crossed the
// wire.  vault_lint's channel-kind check enforces that every enumerator has
// a kKindPolicies row, a kind_name() case, and a byte-audit case — adding a
// kind without deciding its padding and audit story is a CI failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/annotations.hpp"
#include "sgxsim/enclave.hpp"
#include "tensor/matrix.hpp"

namespace gv {

class AttestedChannel {
 public:
  /// Every payload crossing the channel is exactly one of these.  Adding a
  /// kind requires a kKindPolicies row (pad policy + audit name) and a
  /// kind_name()/kind_bytes() case; vault_lint's channel-kind check fails
  /// CI otherwise.
  enum class PayloadKind : std::uint8_t {
    kEmbeddings = 0,  // boundary-node embedding rows (halo exchange)
    kLabels = 1,      // node-id -> label store blocks
    kRequest = 2,     // cold-path halo-pull node-id lists
    kPackage = 3,     // whole sealed shard packages (replica channel only)
    kTransfer = 4,    // GraphDrift node migration payloads
  };
  static constexpr std::size_t kNumPayloadKinds = 5;

  /// How a kind's sealed block size relates to its plaintext size.
  enum class PadPolicy : std::uint8_t {
    kBucket,  // pad to pad_bucket(): the size would leak a cardinality
    kExact,   // ship exact: the size is public (whole-store blocks)
  };
  struct KindPolicy {
    PayloadKind kind;
    const char* name;
    PadPolicy pad;
  };
  /// The single source of truth for per-kind wire policy, indexed by
  /// enumerator value.
  static constexpr KindPolicy kKindPolicies[kNumPayloadKinds] = {
      {PayloadKind::kEmbeddings, "embeddings", PadPolicy::kBucket},
      {PayloadKind::kLabels, "labels", PadPolicy::kExact},
      {PayloadKind::kRequest, "request", PadPolicy::kBucket},
      {PayloadKind::kPackage, "package", PadPolicy::kExact},
      {PayloadKind::kTransfer, "transfer", PadPolicy::kBucket},
  };
  static constexpr const KindPolicy& policy(PayloadKind k) {
    return kKindPolicies[static_cast<std::size_t>(k)];
  }
  /// Audit name of a kind ("embeddings", "labels", ...).
  static const char* kind_name(PayloadKind k);

  /// Handshake between `a` and `b`.  `key_a` / `key_b` are the platform
  /// keys the verifier trusts for each side (same-platform peers pass the
  /// same key twice).  Throws gv::Error when a report fails verification or
  /// the measurements differ.
  AttestedChannel(Enclave& a, Enclave& b, const Sha256Digest& key_a,
                  const Sha256Digest& key_b);
  /// Same-platform convenience (both enclaves under the default key).
  AttestedChannel(Enclave& a, Enclave& b);

  AttestedChannel(const AttestedChannel&) = delete;
  AttestedChannel& operator=(const AttestedChannel&) = delete;

  /// Rejoin handshake: replace the endpoint currently occupied by `dead`
  /// (e.g. a crashed shard enclave) with `fresh` — a promoted replica with
  /// the SAME measurement — trusted under `fresh_key`, and re-run the mutual
  /// attestation handshake.  The session key is re-derived from the new key
  /// shares; any blocks still queued in either direction are dropped, since
  /// they were sealed under the retired session key and their sender or
  /// addressee no longer exists.  Byte/block audit counters are cumulative
  /// across rebinds.
  void rebind(const Enclave& dead, Enclave& fresh, const Sha256Digest& fresh_key);

  struct EmbeddingBlock {
    std::vector<std::uint32_t> nodes;  // global node ids of the rows
    GV_SECRET Matrix rows;             // private boundary embeddings
  };
  struct LabelBlock {
    std::vector<std::uint32_t> nodes;
    GV_SECRET std::vector<std::uint32_t> labels;
  };

  /// Send boundary-node embedding rows from `from` to the other endpoint.
  /// Must be called with one of the two handshaked enclaves.
  void send_embeddings(const Enclave& from, std::vector<std::uint32_t> nodes,
                       Matrix rows) GV_BOUNDARY_OK;
  /// Pop the oldest embedding block addressed to `to` (FIFO); throws when
  /// none is pending or the AEAD tag fails.
  EmbeddingBlock recv_embeddings(const Enclave& to);
  bool has_embeddings(const Enclave& to) const;

  void send_labels(const Enclave& from, std::vector<std::uint32_t> nodes,
                   std::vector<std::uint32_t> labels) GV_BOUNDARY_OK;
  LabelBlock recv_labels(const Enclave& to);
  bool has_labels(const Enclave& to) const;

  /// Cold-path halo pull: ask the peer for specific nodes' embeddings (it
  /// answers with send_embeddings).  The request is a bare node-id list —
  /// frontier metadata, never adjacency — and is sealed like every other
  /// payload, so the relaying untrusted world learns only its size.
  /// `query_id` is the QueryLens causal-trace id riding inside the sealed
  /// payload (a trailer after the node list), so the peer can attribute its
  /// halo-serve work to the originating query; it is telemetry, excluded
  /// from the logical request_bytes() audit, and never visible to the
  /// untrusted relay.  0 means "untraced".
  void send_request(const Enclave& from, std::vector<std::uint32_t> nodes,
                    std::uint64_t query_id = 0) GV_BOUNDARY_OK;
  std::vector<std::uint32_t> recv_request(const Enclave& to,
                                          std::uint64_t* query_id = nullptr);
  bool has_request(const Enclave& to) const;

  /// Replication path: ship an opaque package payload (e.g. a serialized
  /// shard package) to the peer, which re-seals it under its own platform
  /// key.  Inter-shard inference channels never call this.
  void send_package(const Enclave& from, std::vector<std::uint8_t> payload)
      GV_BOUNDARY_OK;
  std::vector<std::uint8_t> recv_package(const Enclave& to);

  /// Migration path (GraphDrift): ship one node's sealed transfer payload
  /// (features digestible state: adjacency row + degrees + current label)
  /// from the shard losing the node to the shard gaining it.  The only
  /// inter-shard kind that may carry adjacency; transfer_bytes() audits it.
  void send_transfer(const Enclave& from, std::vector<std::uint8_t> payload)
      GV_BOUNDARY_OK;
  std::vector<std::uint8_t> recv_transfer(const Enclave& to);
  bool has_transfer(const Enclave& to) const;

  /// Drop every queued block (all kinds, both directions).  Failure
  /// cleanup: a cold cross-shard walk aborted mid-exchange must not leave
  /// sealed blocks behind for a later exchange to pop.  Audit counters are
  /// NOT rolled back — the bytes did cross.
  void drop_pending();

  // --- Audit counters (logical plaintext payload bytes by kind). ---------
  std::uint64_t kind_bytes(PayloadKind k) const;
  std::uint64_t embedding_bytes() const {
    return kind_bytes(PayloadKind::kEmbeddings);
  }
  std::uint64_t label_bytes() const { return kind_bytes(PayloadKind::kLabels); }
  std::uint64_t package_bytes() const {
    return kind_bytes(PayloadKind::kPackage);
  }
  std::uint64_t request_bytes() const {
    return kind_bytes(PayloadKind::kRequest);
  }
  std::uint64_t transfer_bytes() const {
    return kind_bytes(PayloadKind::kTransfer);
  }
  std::uint64_t total_payload_bytes() const;
  /// Wire bytes after bucket padding (>= total_payload_bytes; the delta is
  /// what the padding spent to hide cut/frontier/move-set cardinalities).
  std::uint64_t padded_bytes() const;
  std::uint64_t blocks_sent() const;

  /// The padding bucket a payload of `n` bytes lands in: the next power of
  /// two >= max(n, 64).  Exposed so tests can pin the wire-size policy.
  static std::size_t pad_bucket(std::size_t n);

 private:
  struct Sealed {
    AeadNonce nonce{};
    std::vector<std::uint8_t> ciphertext;
    AeadTag tag{};
  };

  int endpoint_index(const Enclave& e) const;
  Sealed encrypt(const Enclave& from, std::span<const std::uint8_t> plaintext);
  std::vector<std::uint8_t> decrypt(const Enclave& to, const Sealed& blob);
  /// Mutual attestation + session-key derivation over the current endpoints.
  void handshake();

  /// Unified egress: applies the kind's pad policy, seals, charges the
  /// boundary-crossing cost model, enqueues toward the peer, and folds
  /// `logical` plaintext bytes into the kind's audit counter.
  void send_block(const Enclave& from, PayloadKind kind,
                  std::vector<std::uint8_t> payload, std::size_t logical)
      GV_BOUNDARY_OK;
  /// Pop + unseal the oldest `kind` block addressed to `to`; `what` names
  /// the kind in the empty-queue error.
  std::vector<std::uint8_t> pop_block(const Enclave& to, PayloadKind kind,
                                      const char* what);
  bool has_block(const Enclave& to, PayloadKind kind) const;

  Enclave* a_;
  Enclave* b_;
  Sha256Digest key_a_{};
  Sha256Digest key_b_{};
  /// Bumped on every rebind and mixed into the KDF, so the rebound session
  /// key differs even though the peer measurement is identical.
  std::uint64_t handshake_generation_ = 0;
  GV_SECRET AeadKey session_key_{};
  std::atomic<std::uint64_t> nonce_counter_{0};

  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kChannel);
  // queue_to_[kind][i] holds `kind` blocks addressed to endpoint i
  // (0 = a, 1 = b).
  std::deque<Sealed> queue_to_[kNumPayloadKinds][2];
  std::uint64_t kind_bytes_[kNumPayloadKinds] = {};
  std::uint64_t padded_bytes_ = 0;
  std::uint64_t blocks_ = 0;
};

}  // namespace gv
