#include "sgxsim/channel.hpp"

namespace gv {

void UntrustedSender::push(const Matrix& block) {
  OneWayChannel& ch = *ch_;
  const std::size_t bytes = block.payload_bytes();
  ch.enclave_->copy_in(bytes);
  std::lock_guard<std::mutex> lock(ch.mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  // Staged blocks occupy enclave memory until the rectifier consumes them.
  ch.queue_.push_back(block);
  ch.pushed_ += 1;
  ch.bytes_ += bytes;
  ch.staged_bytes_ += bytes;
  ch.enclave_->memory().set("channel.staging", ch.staged_bytes_);
}

bool TrustedReceiver::empty() const {
  std::lock_guard<std::mutex> lock(ch_->mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  return ch_->queue_.empty();
}

std::size_t TrustedReceiver::pending() const {
  std::lock_guard<std::mutex> lock(ch_->mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  return ch_->queue_.size();
}

Matrix TrustedReceiver::pop() {
  OneWayChannel& ch = *ch_;
  std::lock_guard<std::mutex> lock(ch.mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  GV_CHECK(!ch.queue_.empty(), "one-way channel is empty");
  Matrix block = std::move(ch.queue_.front());
  ch.queue_.pop_front();
  ch.staged_bytes_ -= block.payload_bytes();
  ch.enclave_->memory().set("channel.staging", ch.staged_bytes_);
  return block;
}

}  // namespace gv
