#include "sgxsim/channel.hpp"

namespace gv {

void UntrustedSender::push(const Matrix& block) {
  OneWayChannel& ch = *ch_;
  const std::size_t bytes = block.payload_bytes();
  ch.enclave_->copy_in(bytes);
  // Staged blocks occupy enclave memory until the rectifier consumes them.
  ch.queue_.push_back(block);
  ch.pushed_ += 1;
  ch.bytes_ += bytes;
  std::size_t staged = 0;
  for (const auto& m : ch.queue_) staged += m.payload_bytes();
  ch.enclave_->memory().set("channel.staging", staged);
}

bool TrustedReceiver::empty() const { return ch_->queue_.empty(); }

std::size_t TrustedReceiver::pending() const { return ch_->queue_.size(); }

Matrix TrustedReceiver::pop() {
  OneWayChannel& ch = *ch_;
  GV_CHECK(!ch.queue_.empty(), "one-way channel is empty");
  Matrix block = std::move(ch.queue_.front());
  ch.queue_.pop_front();
  std::size_t staged = 0;
  for (const auto& m : ch.queue_) staged += m.payload_bytes();
  ch.enclave_->memory().set("channel.staging", staged);
  return block;
}

}  // namespace gv
