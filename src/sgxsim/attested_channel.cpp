#include "sgxsim/attested_channel.hpp"

#include <cstring>

#include "common/error.hpp"

namespace gv {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& off) {
  GV_CHECK(off + 4 <= in.size(), "truncated attested-channel payload");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[off + i]) << (8 * i);
  off += 4;
  return v;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t& off) {
  GV_CHECK(off + 8 <= in.size(), "truncated attested-channel payload");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[off + i]) << (8 * i);
  off += 8;
  return v;
}

// The policy table is indexed by enumerator value; a reordered row would
// silently swap two kinds' padding and audit streams.
constexpr bool policies_match_enumerators() {
  for (std::size_t i = 0; i < AttestedChannel::kNumPayloadKinds; ++i) {
    if (static_cast<std::size_t>(AttestedChannel::kKindPolicies[i].kind) != i) {
      return false;
    }
  }
  return true;
}
static_assert(policies_match_enumerators(),
              "kKindPolicies rows must be ordered by enumerator value");

}  // namespace

const char* AttestedChannel::kind_name(PayloadKind k) {
  switch (k) {
    case PayloadKind::kEmbeddings:
      return "embeddings";
    case PayloadKind::kLabels:
      return "labels";
    case PayloadKind::kRequest:
      return "request";
    case PayloadKind::kPackage:
      return "package";
    case PayloadKind::kTransfer:
      return "transfer";
  }
  return "?";
}

std::size_t AttestedChannel::pad_bucket(std::size_t n) {
  std::size_t b = 64;
  while (b < n) b <<= 1;
  return b;
}

AttestedChannel::AttestedChannel(Enclave& a, Enclave& b, const Sha256Digest& key_a,
                                 const Sha256Digest& key_b)
    : a_(&a), b_(&b), key_a_(key_a), key_b_(key_b) {
  GV_CHECK(&a != &b, "attested channel needs two distinct enclaves");
  handshake();
}

void AttestedChannel::handshake() {
  // Each side contributes a key share bound to its report; a real deployment
  // would run a DH exchange — the simulation derives the shares from the
  // enclave identities, which is enough to make the session key depend on
  // both attested parties.
  std::vector<std::uint8_t> share_a(a_->measurement().begin(), a_->measurement().end());
  share_a.push_back(0xA5);
  std::vector<std::uint8_t> share_b(b_->measurement().begin(), b_->measurement().end());
  share_b.push_back(0x5A);
  const Enclave::Report report_a = a_->create_report(share_a);
  const Enclave::Report report_b = b_->create_report(share_b);
  GV_CHECK(Enclave::verify_report(report_a, key_a_),
           "attestation failed: endpoint A's report does not verify");
  GV_CHECK(Enclave::verify_report(report_b, key_b_),
           "attestation failed: endpoint B's report does not verify");
  // All shards of one tenant run the same rectifier code image; a peer with
  // a different measurement is not a shard of this tenant.
  GV_CHECK(report_a.measurement == report_b.measurement,
           "attestation failed: peer enclave runs different code");

  Sha256 kdf;
  kdf.update(std::string("gnnvault-attested-channel-v1"));
  kdf.update(std::span<const std::uint8_t>(report_a.measurement.data(),
                                           report_a.measurement.size()));
  kdf.update(share_a);
  kdf.update(share_b);
  // Per-handshake freshness: identical measurements would otherwise derive
  // the SAME key after a rebind (the shares above are measurement-derived
  // in this simulation), and a ciphertext captured from the retired session
  // must not authenticate under the new one.  A real deployment gets this
  // from the ephemeral DH exchange; the generation counter stands in.
  std::vector<std::uint8_t> fresh(8);
  for (int i = 0; i < 8; ++i) {
    fresh[i] = static_cast<std::uint8_t>(handshake_generation_ >> (8 * i));
  }
  kdf.update(fresh);
  const Sha256Digest k = kdf.finish();
  std::memcpy(session_key_.data(), k.data(), session_key_.size());
}

AttestedChannel::AttestedChannel(Enclave& a, Enclave& b)
    : AttestedChannel(a, b, Enclave::default_platform_key(),
                      Enclave::default_platform_key()) {}

void AttestedChannel::rebind(const Enclave& dead, Enclave& fresh,
                             const Sha256Digest& fresh_key) {
  GV_CHECK(&fresh != a_ && &fresh != b_,
           "fresh enclave is already an endpoint of this channel");
  const int idx = endpoint_index(dead);
  if (idx == 0) {
    a_ = &fresh;
    key_a_ = fresh_key;
  } else {
    b_ = &fresh;
    key_b_ = fresh_key;
  }
  ++handshake_generation_;  // genuinely retires the old session key
  handshake();
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  for (auto& per_kind : queue_to_) {
    for (auto& q : per_kind) q.clear();
  }
}

int AttestedChannel::endpoint_index(const Enclave& e) const {
  if (&e == a_) return 0;
  if (&e == b_) return 1;
  throw Error("enclave is not an endpoint of this attested channel");
}

AttestedChannel::Sealed AttestedChannel::encrypt(
    const Enclave& from, std::span<const std::uint8_t> plaintext) {
  Sealed blob;
  const std::uint64_t ctr = ++nonce_counter_;
  for (int i = 0; i < 8; ++i) blob.nonce[i] = static_cast<std::uint8_t>(ctr >> (8 * i));
  blob.nonce[8] = static_cast<std::uint8_t>(endpoint_index(from));
  blob.ciphertext = aead_encrypt(session_key_, blob.nonce, plaintext, {}, blob.tag);
  return blob;
}

std::vector<std::uint8_t> AttestedChannel::decrypt(const Enclave& to,
                                                   const Sealed& blob) {
  // Direction check: a block must have been sealed by the OTHER endpoint.
  GV_CHECK(blob.nonce[8] != endpoint_index(to),
           "attested-channel block addressed to its own sender");
  return aead_decrypt(session_key_, blob.nonce, blob.ciphertext, {}, blob.tag);
}

void AttestedChannel::send_block(const Enclave& from, PayloadKind kind,
                                 std::vector<std::uint8_t> payload,
                                 std::size_t logical) {
  if (policy(kind).pad == PadPolicy::kBucket) {
    // Cardinality hiding: the untrusted relay must not learn how many
    // boundary rows / frontier ids / moved nodes a block carries from its
    // size, so bucket-padded kinds seal a power-of-two-sized plaintext
    // (explicit count fields keep the receiver's parse exact).
    payload.resize(pad_bucket(payload.size()), 0);
  }

  const int to = 1 - endpoint_index(from);
  Sealed blob = encrypt(from, payload);
  // Leaving the sender is an OCALL-shaped transition; entering the receiver
  // is an MEE-encrypted copy (charged now; the recv pop is in-enclave work).
  const_cast<Enclave&>(from).charge_ocall();
  (to == 0 ? a_ : b_)->copy_in(payload.size());
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  queue_to_[static_cast<std::size_t>(kind)][to].push_back(std::move(blob));
  kind_bytes_[static_cast<std::size_t>(kind)] += logical;
  padded_bytes_ += payload.size();
  ++blocks_;
}

std::vector<std::uint8_t> AttestedChannel::pop_block(const Enclave& to,
                                                     PayloadKind kind,
                                                     const char* what) {
  Sealed blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    auto& q = queue_to_[static_cast<std::size_t>(kind)][endpoint_index(to)];
    GV_CHECK(!q.empty(), what);
    blob = std::move(q.front());
    q.pop_front();
  }
  return decrypt(to, blob);
}

bool AttestedChannel::has_block(const Enclave& to, PayloadKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  return !queue_to_[static_cast<std::size_t>(kind)][endpoint_index(to)].empty();
}

void AttestedChannel::send_embeddings(const Enclave& from,
                                      std::vector<std::uint32_t> nodes,
                                      Matrix rows) {
  GV_CHECK(nodes.size() == rows.rows(), "one node id per embedding row");
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + nodes.size() * 4 + rows.payload_bytes());
  put_u32(payload, static_cast<std::uint32_t>(nodes.size()));
  put_u32(payload, static_cast<std::uint32_t>(rows.cols()));
  for (const auto v : nodes) put_u32(payload, v);
  const auto* fp = reinterpret_cast<const std::uint8_t*>(rows.data());
  payload.insert(payload.end(), fp, fp + rows.payload_bytes());

  const std::size_t logical = payload.size();
  send_block(from, PayloadKind::kEmbeddings, std::move(payload), logical);
}

AttestedChannel::EmbeddingBlock AttestedChannel::recv_embeddings(const Enclave& to) {
  const auto payload = pop_block(to, PayloadKind::kEmbeddings,
                                 "no pending embedding block on attested channel");
  std::size_t off = 0;
  EmbeddingBlock out;
  const std::uint32_t count = get_u32(payload, off);
  const std::uint32_t cols = get_u32(payload, off);
  out.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.nodes.push_back(get_u32(payload, off));
  out.rows = Matrix(count, cols);
  // <= rather than ==: the tail beyond the logical payload is bucket
  // padding (authenticated along with everything else by the AEAD tag).
  GV_CHECK(off + out.rows.payload_bytes() <= payload.size(),
           "embedding block size mismatch");
  std::memcpy(out.rows.data(), payload.data() + off, out.rows.payload_bytes());
  return out;
}

bool AttestedChannel::has_embeddings(const Enclave& to) const {
  return has_block(to, PayloadKind::kEmbeddings);
}

void AttestedChannel::send_labels(const Enclave& from,
                                  std::vector<std::uint32_t> nodes,
                                  std::vector<std::uint32_t> labels) {
  GV_CHECK(nodes.size() == labels.size(), "one node id per label");
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + nodes.size() * 8);
  put_u32(payload, static_cast<std::uint32_t>(nodes.size()));
  for (const auto v : nodes) put_u32(payload, v);
  for (const auto l : labels) put_u32(payload, l);

  const std::size_t logical = payload.size();
  send_block(from, PayloadKind::kLabels, std::move(payload), logical);
}

AttestedChannel::LabelBlock AttestedChannel::recv_labels(const Enclave& to) {
  const auto payload = pop_block(to, PayloadKind::kLabels,
                                 "no pending label block on attested channel");
  std::size_t off = 0;
  LabelBlock out;
  const std::uint32_t count = get_u32(payload, off);
  out.nodes.reserve(count);
  out.labels.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.nodes.push_back(get_u32(payload, off));
  for (std::uint32_t i = 0; i < count; ++i) out.labels.push_back(get_u32(payload, off));
  GV_CHECK(off == payload.size(), "label block size mismatch");
  return out;
}

bool AttestedChannel::has_labels(const Enclave& to) const {
  return has_block(to, PayloadKind::kLabels);
}

void AttestedChannel::send_request(const Enclave& from,
                                   std::vector<std::uint32_t> nodes,
                                   std::uint64_t query_id) {
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + nodes.size() * 4 + 8);
  put_u32(payload, static_cast<std::uint32_t>(nodes.size()));
  for (const auto v : nodes) put_u32(payload, v);
  // The logical audit counts the frontier itself; the QueryLens trace-id
  // trailer is sealed alongside it but is telemetry, not frontier bytes.
  const std::size_t logical = payload.size();
  put_u64(payload, query_id);

  send_block(from, PayloadKind::kRequest, std::move(payload), logical);
}

std::vector<std::uint32_t> AttestedChannel::recv_request(const Enclave& to,
                                                         std::uint64_t* query_id) {
  const auto payload = pop_block(to, PayloadKind::kRequest,
                                 "no pending halo request on attested channel");
  std::size_t off = 0;
  const std::uint32_t count = get_u32(payload, off);
  std::vector<std::uint32_t> nodes;
  nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) nodes.push_back(get_u32(payload, off));
  const std::uint64_t qid = get_u64(payload, off);
  if (query_id != nullptr) *query_id = qid;
  GV_CHECK(off <= payload.size(), "halo request size mismatch");
  return nodes;
}

bool AttestedChannel::has_request(const Enclave& to) const {
  return has_block(to, PayloadKind::kRequest);
}

void AttestedChannel::send_package(const Enclave& from,
                                   std::vector<std::uint8_t> payload) {
  const std::size_t logical = payload.size();
  send_block(from, PayloadKind::kPackage, std::move(payload), logical);
}

std::vector<std::uint8_t> AttestedChannel::recv_package(const Enclave& to) {
  return pop_block(to, PayloadKind::kPackage,
                   "no pending package on attested channel");
}

void AttestedChannel::send_transfer(const Enclave& from,
                                    std::vector<std::uint8_t> payload) {
  // The payload is opaque to the channel, so the logical length is framed
  // inside the sealed block ahead of the bucket padding send_block applies.
  std::vector<std::uint8_t> framed;
  framed.reserve(4 + payload.size());
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.insert(framed.end(), payload.begin(), payload.end());
  const std::size_t logical = payload.size();

  send_block(from, PayloadKind::kTransfer, std::move(framed), logical);
}

std::vector<std::uint8_t> AttestedChannel::recv_transfer(const Enclave& to) {
  const auto framed = pop_block(to, PayloadKind::kTransfer,
                                "no pending node transfer on attested channel");
  std::size_t off = 0;
  const std::uint32_t len = get_u32(framed, off);
  GV_CHECK(off + len <= framed.size(), "node transfer size mismatch");
  return std::vector<std::uint8_t>(framed.begin() + off,
                                   framed.begin() + off + len);
}

bool AttestedChannel::has_transfer(const Enclave& to) const {
  return has_block(to, PayloadKind::kTransfer);
}

void AttestedChannel::drop_pending() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  for (auto& per_kind : queue_to_) {
    for (auto& q : per_kind) q.clear();
  }
}

std::uint64_t AttestedChannel::kind_bytes(PayloadKind k) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  // Per-kind audit cases (paired with kind_name(); vault_lint's
  // channel-kind check keys on these).
  switch (k) {
    case PayloadKind::kEmbeddings:
    case PayloadKind::kLabels:
    case PayloadKind::kRequest:
    case PayloadKind::kPackage:
    case PayloadKind::kTransfer:
      return kind_bytes_[static_cast<std::size_t>(k)];
  }
  throw Error("unknown attested-channel payload kind");
}

std::uint64_t AttestedChannel::total_payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  std::uint64_t total = 0;
  for (const auto b : kind_bytes_) total += b;
  return total;
}

std::uint64_t AttestedChannel::padded_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  return padded_bytes_;
}

std::uint64_t AttestedChannel::blocks_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kChannel);
  return blocks_;
}

}  // namespace gv
