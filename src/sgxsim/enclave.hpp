// Simulated SGX enclave.
//
// Provides the pieces of the SGX programming model that GNNVault's
// deployment depends on:
//   * identity: an MRENCLAVE-style SHA-256 measurement of everything loaded
//     at build time;
//   * sealed storage: ChaCha20-Poly1305 under a key derived from the
//     platform sealing key and the measurement (unsealing in an enclave
//     with a different measurement fails);
//   * memory accounting: every in-enclave allocation is registered in a
//     ledger; exceeding the EPC budget charges page-swap costs, mirroring
//     the paper's Sec. III-C concern;
//   * ECALL gating: enclave code runs inside `ecall(...)`, which charges
//     the transition cost and scales measured compute time by the MEE
//     slowdown factor.
//
// What is intentionally NOT provided is any API for untrusted code to read
// enclave state: the only way data leaves is the explicit return value of
// an ecall, which GNNVault restricts to label-only outputs (Sec. IV-E).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace.hpp"
#include "sgxsim/chacha20poly1305.hpp"
#include "sgxsim/cost_model.hpp"
#include "sgxsim/sha256.hpp"

namespace gv {

/// An ecall that never ran to completion: the enclave crashed, was torn
/// down by the platform, or hit an injected fault.  Distinct from plain
/// gv::Error so callers can tell "the enclave died under me" (trigger
/// failover) from "my arguments were bad" (report to the caller).
struct EnclaveFailure : Error {
  using Error::Error;
};

/// Tracks live in-enclave allocations by name; reports current/peak usage.
/// Thread-safe: untrusted senders account channel staging concurrently with
/// ledger updates made inside ecalls.
class MemoryLedger {
 public:
  MemoryLedger() : mu_(std::make_unique<std::mutex>()) {}

  void alloc(const std::string& name, std::size_t bytes);
  void free(const std::string& name);
  /// Replace (or create) an allocation with a new size.
  void set(const std::string& name, std::size_t bytes);

  std::size_t current_bytes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    return current_;
  }
  std::size_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    return peak_;
  }
  std::size_t live_allocations() const {
    std::lock_guard<std::mutex> lock(*mu_);
    GV_RANK_SCOPE(lockrank::kChannel);
    return live_.size();
  }

 private:
  // Owned via pointer so the ledger (and the enclave holding it) stays
  // movable.
  mutable std::unique_ptr<std::mutex> mu_ GV_LOCK_RANK(gv::lockrank::kChannel);
  std::unordered_map<std::string, std::size_t> live_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// A sealed blob: nonce + ciphertext + tag, bound to a measurement via the
/// key derivation (SGX MRENCLAVE sealing policy).
struct SealedBlob {
  AeadNonce nonce{};
  std::vector<std::uint8_t> ciphertext;
  AeadTag tag{};
  std::size_t size_bytes() const { return ciphertext.size() + nonce.size() + tag.size(); }
};

class GV_ENCLAVE Enclave {
 public:
  /// `platform_key` models the CPU's fused sealing key: blobs sealed on one
  /// platform cannot be unsealed on another.
  Enclave(std::string name, SgxCostModel model,
          Sha256Digest platform_key = default_platform_key());

  const std::string& name() const { return name_; }
  const SgxCostModel& cost_model() const { return model_; }

  // --- Build phase: extend the measurement, then finalize. -------------
  /// Absorb a blob (code or initial data) into the measurement.
  void extend_measurement(std::span<const std::uint8_t> blob);
  void extend_measurement(const std::string& tag);
  /// Finalize; after this the enclave can run ecalls and seal/unseal.
  void initialize();
  bool initialized() const { return initialized_; }
  const Sha256Digest& measurement() const;

  // --- Runtime. ---------------------------------------------------------
  /// Run `body` inside the enclave: charges one ECALL transition, measures
  /// wall time, scales it by the MEE slowdown, and charges paging costs for
  /// the portion of the working set that exceeds the EPC budget.
  ///
  /// Concurrent entry from several untrusted threads is serialized (real SGX
  /// enclaves multiplex a fixed TCS pool; this simulated one has a single
  /// logical TCS) so the meter/ledger accounting stays consistent under the
  /// serving subsystem's worker threads.
  template <typename F>
  auto ecall(F&& body) -> decltype(body()) {
    GV_CHECK(initialized_, "ecall into uninitialized enclave");
    // The span starts before TCS entry (so contention on the single logical
    // TCS shows up as span time) and is emitted after the Stopwatch sample,
    // so tracing never inflates the modeled clock.  The enclave name rides
    // as the category — interned at construction, since exports routinely
    // outlive the enclave — so every slice is still named "ecall".
    TraceSpan span(trace_category_, "ecall");
    std::lock_guard<std::mutex> entry(*entry_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveEntry);
    {
      std::lock_guard<std::mutex> m(*meter_mu_);
      GV_RANK_SCOPE(lockrank::kEnclaveMeter);
      ++meter_.ecalls;
      if (injected_faults_ > 0) {
        --injected_faults_;
        throw EnclaveFailure("ecall into enclave '" + name_ +
                             "' failed: " + injected_fault_message_);
      }
    }
    Stopwatch sw;
    if constexpr (std::is_void_v<decltype(body())>) {
      body();
      span.modeled_seconds(finish_ecall(sw.seconds()));
      return;
    } else {
      auto result = body();
      span.modeled_seconds(finish_ecall(sw.seconds()));
      return result;
    }
  }

  /// Test/chaos hook: make the next `count` ecalls throw EnclaveFailure
  /// before running their body — the simulation's stand-in for an enclave
  /// that crashed or was torn down by the platform.  Dead-shard detection
  /// (shard/sharded_deployment.hpp) turns such a failure into the same
  /// fence + promote path an explicit kill takes.
  void inject_ecall_failure(std::string message, std::size_t count = 1) {
    std::lock_guard<std::mutex> m(*meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
    injected_fault_message_ = std::move(message);
    injected_faults_ = count;
  }

  /// Charge an OCALL (enclave -> untrusted transition), e.g. for paging.
  void charge_ocall() {
    std::lock_guard<std::mutex> m(*meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
    ++meter_.ocalls;
  }

  /// Account a copy of `bytes` from untrusted memory into the enclave.
  void copy_in(std::size_t bytes) {
    std::lock_guard<std::mutex> m(*meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
    meter_.bytes_in += bytes;
  }

  /// Account normal-world compute (e.g. a backbone pass) on the meter from
  /// any untrusted thread.
  void add_untrusted_seconds(double seconds) {
    std::lock_guard<std::mutex> m(*meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
    meter_.untrusted_compute_seconds += seconds;
  }

  MemoryLedger& memory() { return ledger_; }
  const MemoryLedger& memory() const { return ledger_; }
  CostMeter& meter() { return meter_; }
  const CostMeter& meter() const { return meter_; }
  /// Locked copy of the meter for monitoring threads that poll while other
  /// threads are mid-ecall (the raw meter() references are unsynchronized).
  CostMeter meter_snapshot() const {
    std::lock_guard<std::mutex> m(*meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
    return meter_;
  }

  /// True when the current working set fits the usable EPC.
  bool fits_in_epc() const { return ledger_.current_bytes() <= model_.epc_bytes; }

  // --- Sealing. ----------------------------------------------------------
  /// Seal data under key = HMAC(platform_key, measurement). Deterministic
  /// nonce derivation from a per-enclave counter.
  SealedBlob seal(std::span<const std::uint8_t> plaintext) GV_BOUNDARY_OK;
  /// Unseal; throws gv::Error if the blob was sealed by a different
  /// enclave identity or platform, or was tampered with.
  std::vector<std::uint8_t> unseal(const SealedBlob& blob);

  /// A local-attestation style report: MAC over (measurement || user_data).
  /// Crosses the enclave boundary by value — GV_ECALL_ABI keeps it free of
  /// host pointers so a real SGX port could marshal it through an EDL.
  struct GV_ECALL_ABI Report {
    Sha256Digest measurement;
    Sha256Digest user_data_hash;
    Sha256Digest mac;
  };
  Report create_report(std::span<const std::uint8_t> user_data) const;
  /// Verify a report allegedly produced on the same platform.
  static bool verify_report(const Report& report, const Sha256Digest& platform_key);

  static Sha256Digest default_platform_key();

 private:
  /// Charge the ecall's compute + paging costs; returns the modeled SGX
  /// seconds this ecall added (transition + scaled compute + paging) for
  /// the trace span's second clock.
  double finish_ecall(double wall_seconds);
  AeadKey sealing_key() const GV_SECRET;

  std::string name_;
  /// Recorder-interned copy of name_, safe to reference from trace events
  /// after this enclave is destroyed (set once in the constructor).
  const char* trace_category_ = "enclave";
  SgxCostModel model_;
  GV_SECRET Sha256Digest platform_key_;
  Sha256 measurement_hasher_;
  Sha256Digest measurement_{};
  bool initialized_ = false;
  MemoryLedger ledger_;
  CostMeter meter_;
  std::uint64_t seal_counter_ = 0;
  // Injected-fault state (guarded by meter_mu_: it is checked inside ecall
  // entry where that mutex is already taken).
  std::size_t injected_faults_ = 0;
  std::string injected_fault_message_;
  // Owned via pointers so the enclave stays movable. `entry_mu_` serializes
  // ecall entry; `meter_mu_` guards meter mutations that may come from
  // untrusted threads while another thread is inside an ecall.
  std::unique_ptr<std::mutex> entry_mu_ GV_LOCK_RANK(gv::lockrank::kEnclaveEntry) =
      std::make_unique<std::mutex>();
  std::unique_ptr<std::mutex> meter_mu_ GV_LOCK_RANK(gv::lockrank::kEnclaveMeter) =
      std::make_unique<std::mutex>();
};

}  // namespace gv
