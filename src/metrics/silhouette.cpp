#include "metrics/silhouette.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace gv {

double silhouette_score(const Matrix& embeddings,
                        const std::vector<std::uint32_t>& labels,
                        std::size_t max_samples, std::uint64_t seed) {
  GV_CHECK(labels.size() == embeddings.rows(), "labels size mismatch");
  GV_CHECK(embeddings.rows() >= 2, "silhouette needs at least 2 samples");

  // Subsample deterministically when requested.
  std::vector<std::uint32_t> idx(embeddings.rows());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  if (max_samples > 0 && embeddings.rows() > max_samples) {
    Rng rng(seed);
    rng.shuffle(idx);
    idx.resize(max_samples);
  }
  const std::size_t n = idx.size();

  std::uint32_t num_classes = 0;
  for (const auto i : idx) num_classes = std::max(num_classes, labels[i] + 1);

  std::vector<std::size_t> class_size(num_classes, 0);
  for (const auto i : idx) class_size[labels[i]] += 1;

  double total = 0.0;
#pragma omp parallel for schedule(dynamic, 16) reduction(+ : total)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const std::uint32_t i = idx[ii];
    const std::uint32_t ci = labels[i];
    if (class_size[ci] <= 1) continue;  // convention: silhouette 0
    std::vector<double> dist_sum(num_classes, 0.0);
    for (std::size_t jj = 0; jj < n; ++jj) {
      const std::uint32_t j = idx[jj];
      if (j == i) continue;
      dist_sum[labels[j]] += row_euclidean(embeddings, i, j);
    }
    const double a = dist_sum[ci] / static_cast<double>(class_size[ci] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < num_classes; ++c) {
      if (c == ci || class_size[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(class_size[c]));
    }
    if (!std::isfinite(b)) continue;  // only one populated class
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace gv
