#include "metrics/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace gv {

namespace {

/// Binary-search the Gaussian bandwidth of row i so the conditional
/// distribution hits the target perplexity; fills p_row (length n).
void fit_row_bandwidth(const std::vector<float>& sqdist, std::size_t i,
                       double perplexity, std::vector<double>& p_row) {
  const std::size_t n = p_row.size();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = std::numeric_limits<double>::infinity();
  for (int it = 0; it < 64; ++it) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      p_row[j] = (j == i) ? 0.0 : std::exp(-beta * sqdist[j]);
      sum += p_row[j];
    }
    if (sum < 1e-300) {
      beta /= 2.0;
      continue;
    }
    double entropy = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (p_row[j] > 0.0) {
        const double pj = p_row[j] / sum;
        entropy -= pj * std::log(pj);
        p_row[j] = pj;
      }
    }
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) return;
    if (diff > 0.0) {
      beta_lo = beta;
      beta = std::isfinite(beta_hi) ? 0.5 * (beta + beta_hi) : beta * 2.0;
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
}

}  // namespace

Matrix tsne_embed(const Matrix& x, const TsneConfig& cfg) {
  const std::size_t n = x.rows();
  GV_CHECK(n >= 5, "t-SNE needs at least 5 points");
  GV_CHECK(cfg.perplexity > 1.0 && cfg.perplexity < static_cast<double>(n),
           "perplexity out of range");

  // Symmetrized input affinities P.
  std::vector<double> p(n * n, 0.0);
#pragma omp parallel
  {
    std::vector<float> sqdist(n);
    std::vector<double> p_row(n);
#pragma omp for schedule(dynamic, 8)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const float d = row_euclidean(x, static_cast<std::size_t>(i), j);
        sqdist[j] = d * d;
      }
      fit_row_bandwidth(sqdist, static_cast<std::size_t>(i), cfg.perplexity, p_row);
      for (std::size_t j = 0; j < n; ++j) p[i * n + j] = p_row[j];
    }
  }
  // Symmetrize and normalize: P = (P + P') / 2n.
  double psum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (p[i * n + j] + p[j * n + i]);
      p[i * n + j] = v;
      p[j * n + i] = v;
      psum += 2.0 * v;
    }
    p[i * n + i] = 0.0;
  }
  const double pnorm = std::max(psum, 1e-12);
  for (auto& v : p) v = std::max(v / pnorm, 1e-12);

  // Initialize Y ~ N(0, 1e-4).
  Rng rng(cfg.seed);
  Matrix y(n, 2);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y.data()[i] = static_cast<float>(rng.normal(0.0, 1e-2));
  }
  Matrix velocity(n, 2, 0.0f);
  std::vector<double> q(n * n);
  Matrix grad(n, 2);

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    const double exaggeration = iter < cfg.exaggeration_until ? cfg.early_exaggeration : 1.0;
    // Student-t affinities Q.
    double qsum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : qsum)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (static_cast<std::size_t>(i) == j) {
          q[i * n + j] = 0.0;
          continue;
        }
        const double dx = y(i, 0) - y(j, 0);
        const double dy = y(i, 1) - y(j, 1);
        const double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = w;
        qsum += w;
      }
    }
    const double qnorm = std::max(qsum, 1e-12);
    // Gradient: 4 * sum_j (exag*P_ij - Q_ij) * w_ij * (y_i - y_j).
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      double gx = 0.0, gy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (static_cast<std::size_t>(i) == j) continue;
        const double w = q[i * n + j];
        const double qij = w / qnorm;
        const double mult = (exaggeration * p[i * n + j] - qij) * w;
        gx += mult * (y(i, 0) - y(j, 0));
        gy += mult * (y(i, 1) - y(j, 1));
      }
      grad(i, 0) = static_cast<float>(4.0 * gx);
      grad(i, 1) = static_cast<float>(4.0 * gy);
    }
    const double momentum =
        iter < cfg.momentum_switch_iter ? cfg.momentum_initial : cfg.momentum_final;
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < 2; ++d) {
        velocity(i, d) = static_cast<float>(momentum * velocity(i, d) -
                                            cfg.learning_rate * grad(i, d));
        y(i, d) += velocity(i, d);
      }
    }
    // Re-center.
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mx += y(i, 0);
      my += y(i, 1);
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      y(i, 0) -= static_cast<float>(mx);
      y(i, 1) -= static_cast<float>(my);
    }
  }
  return y;
}

}  // namespace gv
