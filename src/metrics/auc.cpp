#include "metrics/auc.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace gv {

double roc_auc(const std::vector<float>& scores,
               const std::vector<std::uint8_t>& positives) {
  GV_CHECK(scores.size() == positives.size(), "scores/labels size mismatch");
  const std::size_t n = scores.size();
  std::size_t np = 0;
  for (const auto p : positives) np += (p != 0);
  const std::size_t nn = n - np;
  if (np == 0 || nn == 0) return 0.5;

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return scores[a] < scores[b]; });

  // Sum of positive ranks with average ranks across tie groups.
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // ranks i+1 .. j (1-based); average rank for the tie group:
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t k = i; k < j; ++k) {
      if (positives[order[k]]) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos - 0.5 * static_cast<double>(np) * (np + 1);
  return u / (static_cast<double>(np) * static_cast<double>(nn));
}

}  // namespace gv
