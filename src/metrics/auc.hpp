// ROC-AUC via the rank-statistic (Mann-Whitney U) formulation with average
// ranks for ties.  Used to score link-stealing attacks (Table IV).
#pragma once

#include <cstdint>
#include <vector>

namespace gv {

/// AUC of `scores` against binary `positives` (1 = positive class).
/// Higher scores should indicate positives; returns 0.5 when one class is
/// empty or all scores are identical.
double roc_auc(const std::vector<float>& scores,
               const std::vector<std::uint8_t>& positives);

}  // namespace gv
