// Exact t-SNE (van der Maaten & Hinton 2008), used to regenerate the
// Fig. 4 embedding visualizations.  O(n^2) per iteration, so callers
// subsample (the figure uses a qualitative scatter; a few hundred to a
// thousand points reproduce it).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gv {

struct TsneConfig {
  double perplexity = 30.0;
  int iterations = 400;
  double learning_rate = 200.0;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 120;
  double early_exaggeration = 12.0;
  int exaggeration_until = 100;
  std::uint64_t seed = 1234;
};

/// Embed rows of `x` into 2-D. Returns an [n, 2] matrix.
Matrix tsne_embed(const Matrix& x, const TsneConfig& cfg = {});

}  // namespace gv
