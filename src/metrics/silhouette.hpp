// Silhouette score (Rousseeuw 1987), the clustering-quality metric the
// paper plots per layer in Fig. 4 to show the rectifier recovering the
// original model's embedding structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gv {

/// Mean silhouette coefficient of `embeddings` rows grouped by `labels`,
/// using Euclidean distance.  If `max_samples` > 0 and the matrix has more
/// rows, a deterministic subsample of that size is scored instead (the
/// standard practice for large n since the metric is O(n^2)).
/// Returns a value in [-1, 1]; classes with a single member contribute 0.
double silhouette_score(const Matrix& embeddings,
                        const std::vector<std::uint32_t>& labels,
                        std::size_t max_samples = 0, std::uint64_t seed = 7);

}  // namespace gv
