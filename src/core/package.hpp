// Vault packages: single-file serialization of a trained GNNVault.
//
// The model vendor (the paper's Alice) trains on her infrastructure and
// ships an artifact to the edge device. A package contains:
//   * the public backbone (architecture + weights) and substitute graph,
//     destined for the untrusted world;
//   * the private rectifier (config + weights) and the REAL graph,
//     destined for the enclave (sealed by the enclave on first load).
//
// Binary layout: magic "GVPK1\n", then tagged sections, each
//   [tag u32][byte-length u64][payload]
// with little-endian integers and raw float32 weight payloads.
#pragma once

#include <span>
#include <string>

#include "common/annotations.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"

namespace gv {

/// Serialize a trained vault (plus the private graph it was trained on)
/// to `path`. Throws gv::Error on I/O failure.
void save_vault_package(const std::string& path, const TrainedVault& vault,
                        const Graph& private_graph, const Dataset& ds);

/// Everything reconstructed from a package.
struct LoadedVault {
  TrainedVault vault;
  Graph private_graph;
  std::uint32_t num_classes = 0;
  std::size_t feature_dim = 0;
};

/// Load a package written by save_vault_package. Model weights, graphs,
/// and configs round-trip bit-exactly. Throws gv::Error on malformed or
/// truncated input.
LoadedVault load_vault_package(const std::string& path);

// --- Shard packages (ShardVault multi-enclave deployment). ------------------
//
// When one tenant spans several enclaves, each shard enclave is provisioned
// with its own package: the (replicated) rectifier weights, the shard's rows
// of the globally normalized private adjacency, and the halo routing lists
// derived from the cut edges.  Every field except `owned` is adjacency-
// derived and therefore only ever exists sealed at rest or in the clear
// inside an enclave; serialization lives here so the sealed blob layout is
// versioned alongside the vendor package format.

// GV_SECRET: adjacency-derived through and through — a payload may exist
// only sealed at rest or in the clear inside an enclave, never in a log,
// trace, metric, or raw channel push.
struct GV_SECRET ShardPayload {
  std::uint32_t shard_index = 0;
  std::uint32_t num_shards = 0;
  /// Global ids of the nodes this shard owns (sorted).
  std::vector<std::uint32_t> owned;
  /// Sorted one-hop closure of `owned` (owned plus halo nodes).
  std::vector<std::uint32_t> closure;
  /// Private-graph degree (self-loop excluded) of every closure node, in
  /// closure order.  GraphDrift needs it: an edge insert/delete changes the
  /// endpoints' D̃^{-1/2}, and every shard holding a touched node in its
  /// closure must renormalize its rows from the SAME degree the global
  /// normalization would use — bit-exactness demands recomputing
  /// 1/sqrt(deg+1) from the integer degree, not nudging stored floats.
  std::vector<std::uint32_t> closure_deg;
  /// Rectangular sub-adjacency: rows index `owned`, cols index `closure`,
  /// values are the GLOBAL Â = D̃^{-1/2}(A+I)D̃^{-1/2} entries, so sharded
  /// message passing reproduces the unsharded computation bit-exactly.
  std::vector<std::uint32_t> adj_row;
  std::vector<std::uint32_t> adj_col;
  std::vector<float> adj_val;
  /// halo_out[t] = owned node ids whose embeddings shard t needs each layer
  /// (empty for t == shard_index and non-adjacent shards).
  std::vector<std::vector<std::uint32_t>> halo_out;
  /// Rectifier weight blob (Rectifier::serialize_weights layout).
  std::vector<std::uint8_t> rectifier_weights;

  std::size_t payload_bytes() const;
};

std::vector<std::uint8_t> serialize_shard_payload(const ShardPayload& p);
ShardPayload deserialize_shard_payload(std::span<const std::uint8_t> bytes);

}  // namespace gv
