// Vault packages: single-file serialization of a trained GNNVault.
//
// The model vendor (the paper's Alice) trains on her infrastructure and
// ships an artifact to the edge device. A package contains:
//   * the public backbone (architecture + weights) and substitute graph,
//     destined for the untrusted world;
//   * the private rectifier (config + weights) and the REAL graph,
//     destined for the enclave (sealed by the enclave on first load).
//
// Binary layout: magic "GVPK1\n", then tagged sections, each
//   [tag u32][byte-length u64][payload]
// with little-endian integers and raw float32 weight payloads.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"

namespace gv {

/// Serialize a trained vault (plus the private graph it was trained on)
/// to `path`. Throws gv::Error on I/O failure.
void save_vault_package(const std::string& path, const TrainedVault& vault,
                        const Graph& private_graph, const Dataset& ds);

/// Everything reconstructed from a package.
struct LoadedVault {
  TrainedVault vault;
  Graph private_graph;
  std::uint32_t num_classes = 0;
  std::size_t feature_dim = 0;
};

/// Load a package written by save_vault_package. Model weights, graphs,
/// and configs round-trip bit-exactly. Throws gv::Error on malformed or
/// truncated input.
LoadedVault load_vault_package(const std::string& path);

}  // namespace gv
