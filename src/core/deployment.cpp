#include "core/deployment.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "tensor/ops.hpp"

namespace gv {

VaultDeployment::VaultDeployment(const Dataset& ds, TrainedVault vault,
                                 DeploymentOptions opts)
    : vault_(std::move(vault)),
      opts_(opts),
      enclave_(opts.enclave_name.empty() ? "gnnvault." + ds.name : opts.enclave_name,
               opts.cost_model),
      channel_(enclave_) {
  GV_CHECK(vault_.rectifier != nullptr, "deployment requires a trained rectifier");
  provision_enclave(ds);
}

void VaultDeployment::provision_enclave(const Dataset& ds) {
  // The private adjacency goes straight to its enclave (COO) form.
  private_coo_ = ds.graph.to_coo_normalized();

  // Measurement covers the rectifier code identity and the initial data.
  enclave_.extend_measurement(std::string("gnnvault-rectifier-v1:") +
                              rectifier_kind_name(vault_.rectifier->config().kind));
  const auto weights = vault_.rectifier->serialize_weights();
  enclave_.extend_measurement(weights);
  enclave_.initialize();

  if (opts_.seal_artifacts) {
    sealed_weights_ = enclave_.seal(weights);
    // Round-trip through sealed storage, as a real deployment would on
    // every enclave launch.
    const auto restored = enclave_.unseal(sealed_weights_);
    vault_.rectifier->deserialize_weights(restored);
  }

  // Enclave-resident allocations (Fig. 6 memory accounting).
  enclave_.ecall([&] {
    enclave_.memory().set("rectifier.weights", vault_.rectifier->parameter_bytes());
    enclave_.memory().set("graph.coo", private_coo_.payload_bytes());
    // The rectifier multiplies against a CSR view built once at load.
    private_adj_csr_ = std::make_shared<const CsrMatrix>(
        Graph::csr_from_coo_normalized(private_coo_));
    enclave_.memory().set("graph.csr", private_adj_csr_->payload_bytes());
    vault_.rectifier->set_adjacency(private_adj_csr_);
  });
}

std::vector<Matrix> VaultDeployment::run_backbone(const CsrMatrix& features) {
  Stopwatch bb_watch;
  auto outputs = vault_.backbone_outputs(features);
  enclave_.add_untrusted_seconds(bb_watch.seconds());
  return outputs;
}

std::vector<std::uint32_t> VaultDeployment::infer_labels(const CsrMatrix& features) {
  // --- 1. Public backbone in the untrusted world. -----------------------
  const auto outputs = run_backbone(features);
  return secure_infer(outputs, nullptr);
}

std::vector<std::uint32_t> VaultDeployment::infer_labels_subset(
    const CsrMatrix& features, std::span<const std::uint32_t> nodes) {
  const auto outputs = run_backbone(features);
  return secure_infer(outputs, &nodes);
}

std::vector<std::uint32_t> VaultDeployment::infer_labels_batched(
    const std::vector<Matrix>& backbone_outputs,
    std::span<const std::uint32_t> nodes) {
  return secure_infer(backbone_outputs, &nodes);
}

std::vector<std::uint32_t> VaultDeployment::secure_infer(
    const std::vector<Matrix>& outputs, const std::span<const std::uint32_t>* nodes) {
  if (nodes != nullptr && nodes->empty()) return {};
  std::lock_guard<std::mutex> infer_lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);

  // --- 2. Only the required embeddings cross the one-way channel. The FULL
  // matrices cross even for subset queries: restricting the transfer to the
  // queries' neighbourhood would require the untrusted side to know the
  // private adjacency, which is exactly what GNNVault hides. -------------
  const auto required = vault_.rectifier->required_backbone_layers();
  auto sender = channel_.sender();
  for (const auto idx : required) {
    GV_CHECK(idx < outputs.size(), "backbone output index out of range");
    sender.push(outputs[idx]);
  }

  // --- 3+4. Rectifier inside the enclave; label-only output. -------------
  return enclave_.ecall([&] {
    auto receiver = channel_.receiver();
    std::vector<Matrix> enclave_inputs(outputs.size());
    for (const auto idx : required) {
      enclave_inputs[idx] = receiver.pop();
      enclave_.memory().set("rect.input." + std::to_string(idx),
                            enclave_inputs[idx].payload_bytes());
    }
    std::vector<std::uint32_t> labels;
    std::size_t act_entries = 0;
    if (nodes == nullptr) {
      const std::size_t n = enclave_inputs[required.front()].rows();
      const auto act_bytes = vault_.rectifier->activation_bytes(n);
      for (std::size_t k = 0; k < act_bytes.size(); ++k) {
        enclave_.memory().set("rect.act." + std::to_string(k), act_bytes[k]);
      }
      act_entries = act_bytes.size();
      const Matrix logits =
          vault_.rectifier->forward(enclave_inputs, /*training=*/false);
      // Label-only: argmax happens inside the enclave; logits never leave.
      labels = argmax_rows(logits);
    } else {
      // Subset path: only the queries' multi-hop frontier is computed.
      std::vector<std::size_t> layer_rows;
      const Matrix logits =
          vault_.rectifier->forward_subset(enclave_inputs, *nodes, &layer_rows);
      const auto& channels = vault_.rectifier->config().channels;
      for (std::size_t k = 0; k < layer_rows.size(); ++k) {
        enclave_.memory().set("rect.act." + std::to_string(k),
                              layer_rows[k] * channels[k] * sizeof(float));
      }
      act_entries = layer_rows.size();
      labels = argmax_rows(logits);
    }
    // Transient buffers are released before the ecall returns.
    for (const auto idx : required) {
      enclave_.memory().free("rect.input." + std::to_string(idx));
    }
    for (std::size_t k = 0; k < act_entries; ++k) {
      enclave_.memory().free("rect.act." + std::to_string(k));
    }
    return labels;
  });
}

std::size_t VaultDeployment::backbone_runtime_bytes(const CsrMatrix& features) const {
  const NodeModel& bb = vault_.backbone();
  std::size_t bytes = 0;
  bytes += const_cast<NodeModel&>(bb).parameter_count() * sizeof(float);
  bytes += features.payload_bytes();
  if (vault_.substitute_adj) bytes += vault_.substitute_adj->payload_bytes();
  for (const std::size_t dim : bb.layer_dims()) {
    bytes += static_cast<std::size_t>(features.rows()) * dim * sizeof(float);
  }
  return bytes;
}

double time_unprotected_inference(NodeModel& model, const CsrMatrix& features,
                                  int repetitions) {
  GV_CHECK(repetitions > 0, "repetitions must be positive");
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Stopwatch sw;
    model.forward(features, /*training=*/false);
    best = std::min(best, sw.seconds());
  }
  return best;
}

}  // namespace gv
