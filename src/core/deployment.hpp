// Step 4 of GNNVault (paper Fig. 2 + Sec. IV-E): secure deployment.
//
// The public backbone and the substitute graph live in the untrusted
// world; the rectifier weights and the REAL adjacency (COO + precomputed
// degree terms) are sealed and only ever exist in the clear inside the
// enclave.  At inference time:
//   1. the backbone runs in the normal world (GPU/CPU — here CPU);
//   2. only the embeddings the rectifier needs cross the one-way channel;
//   3. the rectifier runs inside an ecall, with every intermediate kept in
//      enclave memory;
//   4. ONLY the predicted class labels leave the enclave (label-only
//      output: logits carry link/membership signal, Sec. IV-E).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/pipeline.hpp"
#include "sgxsim/channel.hpp"
#include "sgxsim/enclave.hpp"
#include "common/annotations.hpp"

namespace gv {

struct DeploymentOptions {
  SgxCostModel cost_model{};
  /// Seal rectifier weights at rest and unseal on load (default on; can be
  /// disabled to measure the crypto's share of load time).
  bool seal_artifacts = true;
  /// Override the enclave name (and thereby its identity prefix). Empty ->
  /// "gnnvault.<dataset>". The multi-tenant registry sets this per tenant so
  /// tenants sharing a dataset still get distinct enclave identities.
  std::string enclave_name;
};

class VaultDeployment {
 public:
  /// Takes ownership of the trained vault. The private graph is taken from
  /// `ds` and immediately converted to its enclave (COO) form; the
  /// deployment never stores the real adjacency in untrusted state.
  VaultDeployment(const Dataset& ds, TrainedVault vault, DeploymentOptions opts = {});

  /// Secure inference over all nodes; returns ONLY class labels.
  std::vector<std::uint32_t> infer_labels(const CsrMatrix& features);

  /// Secure inference for a subset of nodes; labels in query order. The full
  /// required embedding matrices still cross the channel — selecting rows by
  /// the queries' private neighbourhood untrusted-side would leak the real
  /// adjacency — but the rectifier computes only the queries' multi-hop
  /// frontier inside the enclave.
  std::vector<std::uint32_t> infer_labels_subset(const CsrMatrix& features,
                                                 std::span<const std::uint32_t> nodes);

  /// Serving path: one ecall for a whole batch of node queries, reusing
  /// backbone outputs the caller computed (and may cache across batches).
  std::vector<std::uint32_t> infer_labels_batched(
      const std::vector<Matrix>& backbone_outputs,
      std::span<const std::uint32_t> nodes);

  /// Run the public backbone in the untrusted world, metering its time.
  std::vector<Matrix> run_backbone(const CsrMatrix& features);

  /// Accumulated Fig.-6-style cost breakdown (reset before each batch with
  /// reset_meter()).
  const CostMeter& meter() const { return enclave_.meter(); }
  void reset_meter() { enclave_.meter().reset(); }
  const SgxCostModel& cost_model() const { return opts_.cost_model; }

  const Enclave& enclave() const { return enclave_; }
  Enclave& enclave() { return enclave_; }
  /// The sealed rectifier weights (empty unless seal_artifacts); exposed so
  /// multi-tenant tests can prove cross-tenant unsealing fails.
  const SealedBlob& sealed_weights() const { return sealed_weights_; }
  std::size_t enclave_peak_bytes() const { return enclave_.memory().peak_bytes(); }
  std::size_t enclave_current_bytes() const { return enclave_.memory().current_bytes(); }

  /// Estimated untrusted-world runtime bytes of the backbone (params +
  /// activations + substitute adjacency + features); the Fig. 6 argument
  /// that the full model cannot fit in the EPC.
  std::size_t backbone_runtime_bytes(const CsrMatrix& features) const;

  /// Bytes that crossed into the enclave so far.
  std::uint64_t bytes_transferred() const { return channel_.total_bytes_pushed(); }

  const TrainedVault& vault() const { return vault_; }

 private:
  void provision_enclave(const Dataset& ds);
  /// Shared secure path: push required embeddings, one ecall, label-only
  /// output. `nodes` == nullptr -> all rows.
  std::vector<std::uint32_t> secure_infer(const std::vector<Matrix>& backbone_outputs,
                                          const std::span<const std::uint32_t>* nodes);

  TrainedVault vault_;
  DeploymentOptions opts_;
  Enclave enclave_;
  OneWayChannel channel_;
  /// Serializes the push-then-ecall pair so concurrent server workers cannot
  /// interleave their staged blocks (owned via pointer to stay movable).
  std::unique_ptr<std::mutex> infer_mu_ GV_LOCK_RANK(gv::lockrank::kDeployment) =
      std::make_unique<std::mutex>();
  // Enclave-held state (only touched inside ecalls).
  CooAdjacency private_coo_;
  std::shared_ptr<const CsrMatrix> private_adj_csr_;
  SealedBlob sealed_weights_;
};

/// Wall-clock seconds of one unprotected CPU inference of `model` (the
/// Fig. 6 baseline).
double time_unprotected_inference(NodeModel& model, const CsrMatrix& features,
                                  int repetitions = 3);

}  // namespace gv
