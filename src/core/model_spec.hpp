// Model architecture specs M1/M2/M3 (paper Sec. V-A "Models").
//
//   M1: 3-layer GCN backbone (128, 32, C), rectifier hidden (128, 32);
//       for the smaller citation graphs (Cora, Citeseer, Pubmed).
//   M2: wider channels for the 70-class CoraFull.
//   M3: a larger/deeper backbone (256, 64, 32, 16, C) with a compact
//       (64, 32, C) rectifier; used for Amazon Computer/Photo.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.hpp"

namespace gv {

struct ModelSpec {
  std::string name;                          // "M1" / "M2" / "M3"
  std::vector<std::size_t> backbone_hidden;  // hidden channels (C appended)
  std::vector<std::size_t> rectifier_hidden; // hidden channels (C appended)
  float dropout = 0.5f;

  /// Full channel lists including the class dimension.
  std::vector<std::size_t> backbone_channels(std::uint32_t num_classes) const;
  std::vector<std::size_t> rectifier_channels(std::uint32_t num_classes) const;
};

ModelSpec model_spec_m1();
ModelSpec model_spec_m2();
ModelSpec model_spec_m3();
ModelSpec model_spec_by_name(const std::string& name);

/// The paper's dataset -> model assignment (M1 small citation graphs,
/// M2 CoraFull, M3 Amazon graphs).
ModelSpec model_spec_for_dataset(DatasetId id);

}  // namespace gv
