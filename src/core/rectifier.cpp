#include "core/rectifier.hpp"

#include <cstring>
#include <numeric>

#include <algorithm>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace gv {

std::string rectifier_kind_name(RectifierKind kind) {
  switch (kind) {
    case RectifierKind::kParallel: return "parallel";
    case RectifierKind::kCascaded: return "cascaded";
    case RectifierKind::kSeries: return "series";
  }
  throw Error("unknown rectifier kind");
}

namespace {
/// Columns [begin, end) of m as a copy.
Matrix slice_cols(const Matrix& m, std::size_t begin, std::size_t end) {
  GV_CHECK(begin <= end && end <= m.cols(), "column slice out of range");
  Matrix out(m.rows(), end - begin);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::memcpy(out.data() + r * out.cols(), m.data() + r * m.cols() + begin,
                (end - begin) * sizeof(float));
  }
  return out;
}
}  // namespace

/// Sorted union of `rows` and every adjacency column reachable from them
/// (the one-hop closure; Â carries self-loops, but the union keeps isolated
/// nodes in the frontier too). Uses the epoch-stamped scratch buffer so no
/// O(n) clear is paid per call.
std::vector<std::uint32_t> Rectifier::expand_frontier(
    const std::vector<std::uint32_t>& rows) {
  const CsrMatrix& adj = *adj_;
  if (frontier_mark_.size() < adj.cols()) frontier_mark_.assign(adj.cols(), 0);
  if (++frontier_epoch_ == 0) {  // epoch wrapped: stale stamps could collide
    std::fill(frontier_mark_.begin(), frontier_mark_.end(), 0u);
    frontier_epoch_ = 1;
  }
  const std::uint32_t epoch = frontier_epoch_;
  std::vector<std::uint32_t> out;
  out.reserve(rows.size() * 4);
  auto add = [&](std::uint32_t v) {
    if (frontier_mark_[v] != epoch) {
      frontier_mark_[v] = epoch;
      out.push_back(v);
    }
  };
  const auto& row_ptr = adj.row_ptr();
  const auto& col_idx = adj.col_idx();
  for (const std::uint32_t r : rows) {
    add(r);
    for (std::int64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) add(col_idx[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The |rows| x |cols| view of the adjacency with global indices remapped to
/// local frontier positions. `cols` must contain every column reachable from
/// `rows` (guaranteed by expand_frontier); both must be sorted. The local
/// index scratch needs no clearing: every entry read is written first.
CsrMatrix Rectifier::gather_sub_adjacency(const std::vector<std::uint32_t>& rows,
                                          const std::vector<std::uint32_t>& cols) {
  return frontier_slice(rows, cols);
}

std::vector<std::uint32_t> Rectifier::frontier_columns(
    std::span<const std::uint32_t> rows) {
  const CsrMatrix& adj = *adj_;
  if (frontier_mark_.size() < adj.cols()) frontier_mark_.assign(adj.cols(), 0);
  if (++frontier_epoch_ == 0) {  // epoch wrapped: stale stamps could collide
    std::fill(frontier_mark_.begin(), frontier_mark_.end(), 0u);
    frontier_epoch_ = 1;
  }
  const std::uint32_t epoch = frontier_epoch_;
  std::vector<std::uint32_t> out;
  out.reserve(rows.size() * 4);
  const auto& row_ptr = adj.row_ptr();
  const auto& col_idx = adj.col_idx();
  for (const std::uint32_t r : rows) {
    GV_CHECK(r < adj.rows(), "frontier row out of range");
    for (std::int64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const std::uint32_t c = col_idx[i];
      if (frontier_mark_[c] != epoch) {
        frontier_mark_[c] = epoch;
        out.push_back(c);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

CsrMatrix Rectifier::frontier_slice(std::span<const std::uint32_t> rows,
                                    const std::vector<std::uint32_t>& cols) {
  const CsrMatrix& adj = *adj_;
  if (local_index_.size() < adj.cols()) local_index_.resize(adj.cols());
  for (std::uint32_t j = 0; j < cols.size(); ++j) local_index_[cols[j]] = j;
  std::vector<CooEntry> entries;
  const auto& row_ptr = adj.row_ptr();
  const auto& col_idx = adj.col_idx();
  const auto& values = adj.values();
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    for (std::int64_t k = row_ptr[rows[i]]; k < row_ptr[rows[i] + 1]; ++k) {
      entries.push_back({i, local_index_[col_idx[k]], values[k]});
    }
  }
  return CsrMatrix::from_coo(rows.size(), cols.size(), std::move(entries));
}

Rectifier::Rectifier(RectifierConfig cfg, std::vector<std::size_t> backbone_dims,
                     std::shared_ptr<const CsrMatrix> adjacency, Rng& rng)
    : cfg_(std::move(cfg)),
      backbone_dims_(std::move(backbone_dims)),
      adj_(std::move(adjacency)),
      dropout_rng_(rng.split()) {
  GV_CHECK(!cfg_.channels.empty(), "rectifier needs at least one layer");
  GV_CHECK(!backbone_dims_.empty(), "backbone must have at least one layer");
  GV_CHECK(adj_ != nullptr, "rectifier requires the real adjacency");
  if (cfg_.kind == RectifierKind::kParallel) {
    GV_CHECK(cfg_.channels.size() <= backbone_dims_.size(),
             "parallel rectifier cannot be deeper than the backbone");
  }
  layers_.reserve(cfg_.channels.size());
  for (std::size_t k = 0; k < cfg_.channels.size(); ++k) {
    layers_.emplace_back(layer_input_dim(k), cfg_.channels[k], rng);
  }
}

std::size_t Rectifier::layer_input_dim(std::size_t k) const {
  GV_CHECK(k < cfg_.channels.size(), "layer index out of range");
  switch (cfg_.kind) {
    case RectifierKind::kParallel:
      // Layer k reads backbone layer k's embedding, plus (for k >= 1) the
      // previous rectifier output.
      return k == 0 ? backbone_dims_[0] : backbone_dims_[k] + cfg_.channels[k - 1];
    case RectifierKind::kCascaded:
      return k == 0 ? std::accumulate(backbone_dims_.begin(), backbone_dims_.end(),
                                      std::size_t{0})
                    : cfg_.channels[k - 1];
    case RectifierKind::kSeries: {
      const std::size_t penult =
          backbone_dims_.size() >= 2 ? backbone_dims_[backbone_dims_.size() - 2]
                                     : backbone_dims_.back();
      return k == 0 ? penult : cfg_.channels[k - 1];
    }
  }
  throw Error("unknown rectifier kind");
}

std::vector<std::size_t> Rectifier::required_backbone_layers() const {
  std::vector<std::size_t> req;
  switch (cfg_.kind) {
    case RectifierKind::kParallel:
      for (std::size_t k = 0; k < cfg_.channels.size(); ++k) req.push_back(k);
      break;
    case RectifierKind::kCascaded:
      for (std::size_t k = 0; k < backbone_dims_.size(); ++k) req.push_back(k);
      break;
    case RectifierKind::kSeries:
      req.push_back(backbone_dims_.size() >= 2 ? backbone_dims_.size() - 2 : 0);
      break;
  }
  return req;
}

std::size_t Rectifier::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.parameter_count();
  return n;
}

Matrix Rectifier::build_layer_input(std::size_t k,
                                    const std::vector<Matrix>& backbone_outputs,
                                    const Matrix& prev) const {
  auto bb = [&](std::size_t i) -> const Matrix& {
    GV_CHECK(i < backbone_outputs.size(), "missing backbone output");
    GV_CHECK(!backbone_outputs[i].empty(), "required backbone output is empty");
    GV_CHECK(backbone_outputs[i].cols() == backbone_dims_[i],
             "backbone output dim mismatch");
    return backbone_outputs[i];
  };
  switch (cfg_.kind) {
    case RectifierKind::kParallel:
      return k == 0 ? bb(0) : Matrix::hconcat(bb(k), prev);
    case RectifierKind::kCascaded: {
      if (k > 0) return prev;
      std::vector<const Matrix*> blocks;
      blocks.reserve(backbone_dims_.size());
      for (std::size_t i = 0; i < backbone_dims_.size(); ++i) blocks.push_back(&bb(i));
      return Matrix::hconcat(std::span<const Matrix* const>(blocks.data(), blocks.size()));
    }
    case RectifierKind::kSeries:
      return k == 0 ? bb(backbone_dims_.size() >= 2 ? backbone_dims_.size() - 2 : 0)
                    : prev;
  }
  throw Error("unknown rectifier kind");
}

Matrix Rectifier::forward(const std::vector<Matrix>& backbone_outputs, bool training) {
  pre_activations_.clear();
  post_activations_.clear();
  masks_.clear();
  trained_forward_ = training;
  cached_backbone_outputs_ = &backbone_outputs;

  Matrix h;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const bool last = (k + 1 == layers_.size());
    const Matrix input = build_layer_input(k, backbone_outputs, h);
    Matrix z = layers_[k].forward(*adj_, input, training);
    if (training) pre_activations_.push_back(z);
    if (!last) {
      h = relu(z);
      if (training && cfg_.dropout > 0.0f) {
        masks_.push_back(dropout_forward(h, cfg_.dropout, dropout_rng_));
      }
    } else {
      h = z;
    }
    post_activations_.push_back(h);
  }
  return post_activations_.back();
}

Matrix Rectifier::forward_subset(const std::vector<Matrix>& backbone_outputs,
                                 std::span<const std::uint32_t> nodes,
                                 std::vector<std::size_t>* layer_rows) {
  const std::size_t n = adj_->rows();
  if (layer_rows) layer_rows->clear();
  if (nodes.empty()) return Matrix();
  for (const auto v : nodes) GV_CHECK(v < n, "query node out of range");
  auto bb = [&](std::size_t i) -> const Matrix& {
    GV_CHECK(i < backbone_outputs.size(), "missing backbone output");
    GV_CHECK(!backbone_outputs[i].empty(), "required backbone output is empty");
    GV_CHECK(backbone_outputs[i].cols() == backbone_dims_[i],
             "backbone output dim mismatch");
    GV_CHECK(backbone_outputs[i].rows() == n,
             "backbone output covers a different node count");
    return backbone_outputs[i];
  };

  // Frontier sets, last layer first: the output rows of layer k are the
  // input rows of layer k+1, and each layer's input frontier is the one-hop
  // closure of its output frontier (an L-layer GCN reads the L-hop
  // neighbourhood of the query set).
  const std::size_t L = layers_.size();
  std::vector<std::vector<std::uint32_t>> out_sets(L), in_sets(L);
  out_sets[L - 1].assign(nodes.begin(), nodes.end());
  std::sort(out_sets[L - 1].begin(), out_sets[L - 1].end());
  out_sets[L - 1].erase(
      std::unique(out_sets[L - 1].begin(), out_sets[L - 1].end()),
      out_sets[L - 1].end());
  for (std::size_t k = L; k-- > 0;) {
    in_sets[k] = expand_frontier(out_sets[k]);
    if (k > 0) out_sets[k - 1] = in_sets[k];
  }

  Matrix h;
  for (std::size_t k = 0; k < L; ++k) {
    const bool last = (k + 1 == L);
    Matrix input;
    switch (cfg_.kind) {
      case RectifierKind::kParallel:
        input = k == 0 ? bb(0).gather_rows(in_sets[0])
                       : Matrix::hconcat(bb(k).gather_rows(in_sets[k]), h);
        break;
      case RectifierKind::kCascaded:
        if (k == 0) {
          std::vector<Matrix> gathered;
          gathered.reserve(backbone_dims_.size());
          for (std::size_t i = 0; i < backbone_dims_.size(); ++i) {
            gathered.push_back(bb(i).gather_rows(in_sets[0]));
          }
          std::vector<const Matrix*> blocks;
          blocks.reserve(gathered.size());
          for (const auto& g : gathered) blocks.push_back(&g);
          input = Matrix::hconcat(
              std::span<const Matrix* const>(blocks.data(), blocks.size()));
        } else {
          input = std::move(h);
        }
        break;
      case RectifierKind::kSeries:
        input = k == 0 ? bb(backbone_dims_.size() >= 2 ? backbone_dims_.size() - 2
                                                       : 0)
                             .gather_rows(in_sets[0])
                       : std::move(h);
        break;
    }
    const CsrMatrix sub_adj = gather_sub_adjacency(out_sets[k], in_sets[k]);
    Matrix z = layers_[k].forward_subgraph(sub_adj, input);
    h = last ? std::move(z) : relu(z);
    if (layer_rows) layer_rows->push_back(out_sets[k].size());
  }

  // h rows follow the sorted unique query set; map back to query order.
  const auto& sorted = out_sets[L - 1];
  std::vector<std::uint32_t> positions;
  positions.reserve(nodes.size());
  for (const auto v : nodes) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    positions.push_back(static_cast<std::uint32_t>(it - sorted.begin()));
  }
  return h.gather_rows(positions);
}

void Rectifier::backward(const Matrix& dlogits) {
  GV_CHECK(trained_forward_, "backward() requires a training-mode forward");
  Matrix d = dlogits;
  for (std::size_t k = layers_.size(); k-- > 0;) {
    const bool last = (k + 1 == layers_.size());
    if (!last) {
      if (cfg_.dropout > 0.0f) dropout_backward(d, masks_[k]);
      d = relu_backward(d, pre_activations_[k]);
    }
    Matrix dinput = layers_[k].backward(*adj_, d);
    if (k == 0) break;  // gradient w.r.t. backbone embeddings is discarded
    switch (cfg_.kind) {
      case RectifierKind::kParallel:
        // Input was [backbone_k | prev]; keep only the prev part.
        d = slice_cols(dinput, backbone_dims_[k], dinput.cols());
        break;
      case RectifierKind::kCascaded:
      case RectifierKind::kSeries:
        d = std::move(dinput);
        break;
    }
  }
}

void Rectifier::collect_parameters(ParamRefs& refs) {
  for (auto& l : layers_) l.collect_parameters(refs);
}

std::vector<std::size_t> Rectifier::activation_bytes(std::size_t n) const {
  std::vector<std::size_t> bytes;
  bytes.reserve(layers_.size());
  for (const auto ch : cfg_.channels) bytes.push_back(n * ch * sizeof(float));
  return bytes;
}

std::size_t Rectifier::parameter_bytes() const { return parameter_count() * sizeof(float); }

std::vector<std::uint8_t> Rectifier::serialize_weights() const {
  // Layout: [num_layers u32] then per layer [in u32][out u32][W floats][b floats].
  std::vector<std::uint8_t> out;
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put_floats = [&](const float* p, std::size_t count) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(p);
    out.insert(out.end(), bytes, bytes + count * sizeof(float));
  };
  put_u32(static_cast<std::uint32_t>(layers_.size()));
  for (const auto& l : layers_) {
    put_u32(static_cast<std::uint32_t>(l.in_dim()));
    put_u32(static_cast<std::uint32_t>(l.out_dim()));
    put_floats(l.weight().value.data(), l.weight().value.size());
    put_floats(l.bias().value.data(), l.bias().value.size());
  }
  return out;
}

void Rectifier::deserialize_weights(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  auto get_u32 = [&]() -> std::uint32_t {
    GV_CHECK(off + 4 <= bytes.size(), "truncated rectifier weight blob");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes[off + i]) << (8 * i);
    off += 4;
    return v;
  };
  auto get_floats = [&](float* p, std::size_t count) {
    GV_CHECK(off + count * sizeof(float) <= bytes.size(),
             "truncated rectifier weight blob");
    std::memcpy(p, bytes.data() + off, count * sizeof(float));
    off += count * sizeof(float);
  };
  const std::uint32_t n_layers = get_u32();
  GV_CHECK(n_layers == layers_.size(), "rectifier layer count mismatch");
  for (auto& l : layers_) {
    const std::uint32_t in = get_u32();
    const std::uint32_t outd = get_u32();
    GV_CHECK(in == l.in_dim() && outd == l.out_dim(),
             "rectifier layer shape mismatch in weight blob");
    get_floats(l.weight().value.data(), l.weight().value.size());
    get_floats(l.bias().value.data(), l.bias().value.size());
  }
  GV_CHECK(off == bytes.size(), "trailing bytes in rectifier weight blob");
}

void Rectifier::set_adjacency(std::shared_ptr<const CsrMatrix> adjacency) {
  GV_CHECK(adjacency != nullptr, "adjacency must not be null");
  adj_ = std::move(adjacency);
}

}  // namespace gv
