// GNNVault end-to-end training pipeline (paper Fig. 2):
//   1. generate a substitute graph from public node features;
//   2. train the public GNN backbone on the substitute adjacency;
//   3. freeze the backbone, train the private rectifier on the REAL
//      adjacency from the backbone's embeddings;
// (step 4, deployment, lives in deployment.hpp).
#pragma once

#include <memory>
#include <optional>

#include "core/model_spec.hpp"
#include "core/rectifier.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace gv {

/// Backbone flavors compared in Table III.
enum class BackboneKind { kDnn, kRandom, kCosine, kKnn };

std::string backbone_kind_name(BackboneKind kind);

struct VaultTrainConfig {
  ModelSpec spec = model_spec_m1();
  BackboneKind backbone = BackboneKind::kKnn;
  RectifierKind rectifier = RectifierKind::kParallel;

  /// Substitute graph hyper-parameters (Fig. 5 ablation knobs).
  std::uint32_t knn_k = 2;
  float cosine_tau = 0.5f;
  /// Random-graph edge budget as a fraction of the real edge count.
  double random_edge_fraction = 1.0;

  TrainConfig backbone_train{};   // defaults: 150 epochs, Adam(0.01, wd 5e-4)
  TrainConfig rectifier_train{};

  std::uint64_t seed = 42;
};

/// Everything produced by the pipeline that deployment (and the attacks /
/// benches) need.
struct TrainedVault {
  /// Exactly one of these is non-null, depending on BackboneKind.
  std::shared_ptr<GcnModel> backbone_gcn;
  std::shared_ptr<MlpModel> backbone_mlp;

  std::shared_ptr<Rectifier> rectifier;
  std::shared_ptr<const CsrMatrix> substitute_adj;  // null for the DNN backbone
  std::shared_ptr<const CsrMatrix> real_adj;
  Graph substitute_graph;  // empty for the DNN backbone

  double backbone_test_accuracy = 0.0;   // p_bb
  double rectifier_test_accuracy = 0.0;  // p_rec
  std::size_t backbone_parameters = 0;   // theta_bb
  std::size_t rectifier_parameters = 0;  // theta_rec

  NodeModel& backbone();
  const NodeModel& backbone() const;

  /// Inference-mode backbone embeddings (all layers; last = logits).
  std::vector<Matrix> backbone_outputs(const CsrMatrix& features) const;

  /// Label-only secure prediction path used by tests (the deployment class
  /// adds the enclave around the same computation).
  std::vector<std::uint32_t> predict_rectified(const CsrMatrix& features) const;

  /// Node-subset variant of predict_rectified: labels for `nodes` only, in
  /// query order (the plain-world ground truth for batched serving).
  std::vector<std::uint32_t> predict_rectified_subset(
      const CsrMatrix& features, std::span<const std::uint32_t> nodes) const;
};

/// Run pipeline steps 1-3 on a dataset.
TrainedVault train_vault(const Dataset& ds, const VaultTrainConfig& cfg);

/// Train the ORIGINAL (unprotected) GNN: backbone architecture + real
/// adjacency. Returns the model and fills `test_accuracy` (p_org).
std::shared_ptr<GcnModel> train_original_gnn(const Dataset& ds, const ModelSpec& spec,
                                             const TrainConfig& tc, std::uint64_t seed,
                                             double* test_accuracy);

/// Train a rectifier against fixed backbone embeddings (exposed separately
/// for ablations; train_vault calls this internally).
TrainResult train_rectifier(Rectifier& rectifier,
                            const std::vector<Matrix>& backbone_outputs,
                            const std::vector<std::uint32_t>& labels,
                            const std::vector<std::uint32_t>& train_mask,
                            const TrainConfig& cfg);

/// Build the substitute graph for a config (exposed for the Fig. 5 bench).
Graph build_substitute_graph(const Dataset& ds, const VaultTrainConfig& cfg, Rng& rng);

}  // namespace gv
