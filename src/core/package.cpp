#include "core/package.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace gv {

namespace {

constexpr char kMagic[6] = {'G', 'V', 'P', 'K', '1', '\n'};
enum Section : std::uint32_t {
  kMeta = 1,
  kBackbone = 2,
  kSubstituteGraph = 3,
  kRectifier = 4,
  kPrivateGraph = 5,
};

class Writer {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void floats(const float* p, std::size_t count) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + count * 4);
  }
  void bytes(const std::uint8_t* p, std::size_t count) {
    buf_.insert(buf_.end(), p, p + count);
  }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t size) : p_(p), size_(size) {}
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  void floats(float* dst, std::size_t count) {
    need(count * 4);
    std::memcpy(dst, p_ + off_, count * 4);
    off_ += count * 4;
  }
  std::vector<std::uint8_t> blob(std::size_t count) {
    need(count);
    std::vector<std::uint8_t> out(p_ + off_, p_ + off_ + count);
    off_ += count;
    return out;
  }
  bool done() const { return off_ == size_; }
  std::size_t offset() const { return off_; }

 private:
  void need(std::size_t n) const {
    GV_CHECK(off_ + n <= size_, "truncated vault package");
  }
  const std::uint8_t* p_;
  std::size_t size_;
  std::size_t off_ = 0;
};

void write_graph(Writer& w, const Graph& g) {
  w.u32(g.num_nodes());
  w.u64(g.num_edges());
  for (const Edge& e : g.edges()) {
    w.u32(e.a);
    w.u32(e.b);
  }
}

Graph read_graph(Reader& r) {
  const std::uint32_t n = r.u32();
  const std::uint64_t m = r.u64();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint32_t a = r.u32();
    const std::uint32_t b = r.u32();
    pairs.push_back({a, b});
  }
  return Graph::from_pairs(n, pairs);
}

void write_section(std::vector<std::uint8_t>& out, Section tag, const Writer& w) {
  Writer head;
  head.u32(tag);
  head.u64(w.data().size());
  out.insert(out.end(), head.data().begin(), head.data().end());
  out.insert(out.end(), w.data().begin(), w.data().end());
}

}  // namespace

void save_vault_package(const std::string& path, const TrainedVault& vault,
                        const Graph& private_graph, const Dataset& ds) {
  GV_CHECK(vault.rectifier != nullptr, "cannot package an untrained vault");
  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof(kMagic));

  {
    Writer w;
    w.u32(ds.num_classes);
    w.u64(ds.feature_dim());
    w.f32(static_cast<float>(vault.backbone_test_accuracy));
    w.f32(static_cast<float>(vault.rectifier_test_accuracy));
    write_section(out, kMeta, w);
  }
  {
    Writer w;
    const bool is_gcn = vault.backbone_gcn != nullptr;
    w.u32(is_gcn ? 1 : 0);
    auto& bb = const_cast<TrainedVault&>(vault).backbone();
    const auto dims = bb.layer_dims();
    w.u32(static_cast<std::uint32_t>(dims.size()));
    for (const auto d : dims) w.u32(static_cast<std::uint32_t>(d));
    // Per-layer W then b.
    for (std::size_t k = 0; k < dims.size(); ++k) {
      if (is_gcn) {
        auto& layer = vault.backbone_gcn->layer(k);
        w.u32(static_cast<std::uint32_t>(layer.in_dim()));
        w.floats(layer.weight().value.data(), layer.weight().value.size());
        w.floats(layer.bias().value.data(), layer.bias().value.size());
      } else {
        auto& layer = vault.backbone_mlp->layer(k);
        w.u32(static_cast<std::uint32_t>(layer.in_dim()));
        w.floats(layer.weight().value.data(), layer.weight().value.size());
        w.floats(layer.bias().value.data(), layer.bias().value.size());
      }
    }
    write_section(out, kBackbone, w);
  }
  {
    Writer w;
    write_graph(w, vault.substitute_graph);
    write_section(out, kSubstituteGraph, w);
  }
  {
    Writer w;
    w.u32(static_cast<std::uint32_t>(vault.rectifier->config().kind));
    w.f32(vault.rectifier->config().dropout);
    const auto& channels = vault.rectifier->config().channels;
    w.u32(static_cast<std::uint32_t>(channels.size()));
    for (const auto c : channels) w.u32(static_cast<std::uint32_t>(c));
    const auto blob = vault.rectifier->serialize_weights();
    w.u64(blob.size());
    w.bytes(blob.data(), blob.size());
    write_section(out, kRectifier, w);
  }
  {
    Writer w;
    write_graph(w, private_graph);
    write_section(out, kPrivateGraph, w);
  }

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  GV_CHECK(f.good(), "cannot open package file for writing: " + path);
  f.write(reinterpret_cast<const char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  GV_CHECK(f.good(), "failed writing package file: " + path);
}

LoadedVault load_vault_package(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GV_CHECK(f.good(), "cannot open package file: " + path);
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  GV_CHECK(raw.size() >= sizeof(kMagic) &&
               std::memcmp(raw.data(), kMagic, sizeof(kMagic)) == 0,
           "not a GNNVault package: " + path);

  LoadedVault lv;
  // Parsed-but-deferred state.
  bool backbone_is_gcn = true;
  std::vector<std::size_t> backbone_dims;
  std::vector<std::uint32_t> backbone_in_dims;
  std::vector<std::vector<float>> backbone_weights, backbone_biases;
  RectifierConfig rect_cfg;
  std::vector<std::uint8_t> rect_blob;

  Reader top(raw.data() + sizeof(kMagic), raw.size() - sizeof(kMagic));
  while (!top.done()) {
    const std::uint32_t tag = top.u32();
    const std::uint64_t len = top.u64();
    const auto payload = top.blob(len);
    Reader r(payload.data(), payload.size());
    switch (tag) {
      case kMeta: {
        lv.num_classes = r.u32();
        lv.feature_dim = r.u64();
        lv.vault.backbone_test_accuracy = r.f32();
        lv.vault.rectifier_test_accuracy = r.f32();
        break;
      }
      case kBackbone: {
        backbone_is_gcn = r.u32() == 1;
        const std::uint32_t layers = r.u32();
        backbone_dims.clear();
        for (std::uint32_t k = 0; k < layers; ++k) backbone_dims.push_back(r.u32());
        for (std::uint32_t k = 0; k < layers; ++k) {
          const std::uint32_t in = r.u32();
          backbone_in_dims.push_back(in);
          std::vector<float> wv(static_cast<std::size_t>(in) * backbone_dims[k]);
          r.floats(wv.data(), wv.size());
          std::vector<float> bv(backbone_dims[k]);
          r.floats(bv.data(), bv.size());
          backbone_weights.push_back(std::move(wv));
          backbone_biases.push_back(std::move(bv));
        }
        break;
      }
      case kSubstituteGraph:
        lv.vault.substitute_graph = read_graph(r);
        break;
      case kRectifier: {
        rect_cfg.kind = static_cast<RectifierKind>(r.u32());
        GV_CHECK(rect_cfg.kind == RectifierKind::kParallel ||
                     rect_cfg.kind == RectifierKind::kCascaded ||
                     rect_cfg.kind == RectifierKind::kSeries,
                 "invalid rectifier kind in package");
        rect_cfg.dropout = r.f32();
        const std::uint32_t layers = r.u32();
        for (std::uint32_t k = 0; k < layers; ++k) rect_cfg.channels.push_back(r.u32());
        rect_blob = r.blob(r.u64());
        break;
      }
      case kPrivateGraph:
        lv.private_graph = read_graph(r);
        break;
      default:
        throw Error("unknown section tag in vault package");
    }
  }
  GV_CHECK(!backbone_dims.empty(), "package missing backbone section");
  GV_CHECK(!rect_cfg.channels.empty(), "package missing rectifier section");
  GV_CHECK(lv.private_graph.num_nodes() > 0, "package missing private graph");

  // Rebuild models; weights are overwritten right after construction.
  Rng rng(1);
  if (backbone_is_gcn) {
    lv.vault.substitute_adj = std::make_shared<const CsrMatrix>(
        lv.vault.substitute_graph.gcn_normalized());
    GcnConfig gc;
    gc.input_dim = lv.feature_dim;
    gc.channels = backbone_dims;
    gc.dropout = 0.0f;
    lv.vault.backbone_gcn =
        std::make_shared<GcnModel>(gc, lv.vault.substitute_adj, rng);
    for (std::size_t k = 0; k < backbone_dims.size(); ++k) {
      auto& layer = lv.vault.backbone_gcn->layer(k);
      GV_CHECK(layer.in_dim() == backbone_in_dims[k],
               "backbone layer shape mismatch in package");
      std::memcpy(layer.weight().value.data(), backbone_weights[k].data(),
                  backbone_weights[k].size() * sizeof(float));
      layer.bias().value = backbone_biases[k];
    }
  } else {
    MlpConfig mc;
    mc.input_dim = lv.feature_dim;
    mc.channels = backbone_dims;
    mc.dropout = 0.0f;
    lv.vault.backbone_mlp = std::make_shared<MlpModel>(mc, rng);
    for (std::size_t k = 0; k < backbone_dims.size(); ++k) {
      auto& layer = lv.vault.backbone_mlp->layer(k);
      GV_CHECK(layer.in_dim() == backbone_in_dims[k],
               "backbone layer shape mismatch in package");
      std::memcpy(layer.weight().value.data(), backbone_weights[k].data(),
                  backbone_weights[k].size() * sizeof(float));
      layer.bias().value = backbone_biases[k];
    }
  }
  lv.vault.backbone_parameters = lv.vault.backbone().parameter_count();

  lv.vault.real_adj =
      std::make_shared<const CsrMatrix>(lv.private_graph.gcn_normalized());
  lv.vault.rectifier = std::make_shared<Rectifier>(rect_cfg, backbone_dims,
                                                   lv.vault.real_adj, rng);
  lv.vault.rectifier->deserialize_weights(rect_blob);
  lv.vault.rectifier_parameters = lv.vault.rectifier->parameter_count();
  return lv;
}

std::size_t ShardPayload::payload_bytes() const {
  std::size_t halo = 0;
  for (const auto& h : halo_out) halo += h.size() * sizeof(std::uint32_t);
  return owned.size() * sizeof(std::uint32_t) +
         closure.size() * sizeof(std::uint32_t) +
         closure_deg.size() * sizeof(std::uint32_t) +
         adj_row.size() * sizeof(std::uint32_t) +
         adj_col.size() * sizeof(std::uint32_t) + adj_val.size() * sizeof(float) +
         halo + rectifier_weights.size();
}

std::vector<std::uint8_t> serialize_shard_payload(const ShardPayload& p) {
  GV_CHECK(p.adj_row.size() == p.adj_col.size() &&
               p.adj_row.size() == p.adj_val.size(),
           "shard payload adjacency arrays must align");
  Writer w;
  w.u32(p.shard_index);
  w.u32(p.num_shards);
  auto put_vec = [&](const std::vector<std::uint32_t>& v) {
    w.u64(v.size());
    for (const auto x : v) w.u32(x);
  };
  put_vec(p.owned);
  put_vec(p.closure);
  put_vec(p.closure_deg);
  put_vec(p.adj_row);
  put_vec(p.adj_col);
  w.u64(p.adj_val.size());
  w.floats(p.adj_val.data(), p.adj_val.size());
  w.u32(static_cast<std::uint32_t>(p.halo_out.size()));
  for (const auto& h : p.halo_out) put_vec(h);
  w.u64(p.rectifier_weights.size());
  w.bytes(p.rectifier_weights.data(), p.rectifier_weights.size());
  return w.data();
}

ShardPayload deserialize_shard_payload(std::span<const std::uint8_t> bytes) {
  Reader r(bytes.data(), bytes.size());
  ShardPayload p;
  p.shard_index = r.u32();
  p.num_shards = r.u32();
  auto get_vec = [&]() {
    const std::uint64_t n = r.u64();
    std::vector<std::uint32_t> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u32());
    return v;
  };
  p.owned = get_vec();
  p.closure = get_vec();
  p.closure_deg = get_vec();
  p.adj_row = get_vec();
  p.adj_col = get_vec();
  const std::uint64_t nval = r.u64();
  p.adj_val.resize(nval);
  r.floats(p.adj_val.data(), nval);
  const std::uint32_t peers = r.u32();
  p.halo_out.resize(peers);
  for (std::uint32_t t = 0; t < peers; ++t) p.halo_out[t] = get_vec();
  const std::uint64_t wlen = r.u64();
  p.rectifier_weights = r.blob(wlen);
  GV_CHECK(r.done(), "trailing bytes in shard payload");
  GV_CHECK(p.adj_row.size() == p.adj_col.size() &&
               p.adj_row.size() == p.adj_val.size(),
           "shard payload adjacency arrays must align");
  GV_CHECK(p.closure_deg.size() == p.closure.size(),
           "shard payload degree vector must cover the closure");
  return p;
}

}  // namespace gv
