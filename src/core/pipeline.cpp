#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "graph/substitute.hpp"
#include "tensor/ops.hpp"

namespace gv {

std::string backbone_kind_name(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kDnn: return "DNN";
    case BackboneKind::kRandom: return "random";
    case BackboneKind::kCosine: return "cosine";
    case BackboneKind::kKnn: return "KNN";
  }
  throw Error("unknown backbone kind");
}

NodeModel& TrainedVault::backbone() {
  if (backbone_gcn) return *backbone_gcn;
  GV_CHECK(backbone_mlp != nullptr, "TrainedVault has no backbone");
  return *backbone_mlp;
}

const NodeModel& TrainedVault::backbone() const {
  return const_cast<TrainedVault*>(this)->backbone();
}

std::vector<Matrix> TrainedVault::backbone_outputs(const CsrMatrix& features) const {
  NodeModel& bb = const_cast<TrainedVault*>(this)->backbone();
  bb.forward(features, /*training=*/false);
  return bb.layer_outputs();
}

std::vector<std::uint32_t> TrainedVault::predict_rectified(
    const CsrMatrix& features) const {
  const auto outputs = backbone_outputs(features);
  const Matrix logits = rectifier->forward(outputs, /*training=*/false);
  return argmax_rows(logits);
}

std::vector<std::uint32_t> TrainedVault::predict_rectified_subset(
    const CsrMatrix& features, std::span<const std::uint32_t> nodes) const {
  const auto outputs = backbone_outputs(features);
  const Matrix logits = rectifier->forward_subset(outputs, nodes);
  return argmax_rows(logits);
}

Graph build_substitute_graph(const Dataset& ds, const VaultTrainConfig& cfg, Rng& rng) {
  switch (cfg.backbone) {
    case BackboneKind::kKnn:
      return build_knn_graph(ds.features, cfg.knn_k);
    case BackboneKind::kCosine:
      // Paper: sample the cosine graph's density down to the real graph's.
      return build_cosine_graph(ds.features, cfg.cosine_tau, ds.graph.num_edges(), rng);
    case BackboneKind::kRandom: {
      const auto target = static_cast<std::size_t>(
          static_cast<double>(ds.graph.num_edges()) * cfg.random_edge_fraction);
      return build_random_graph(ds.num_nodes(), std::max<std::size_t>(1, target), rng);
    }
    case BackboneKind::kDnn:
      return Graph(ds.num_nodes());  // unused
  }
  throw Error("unknown backbone kind");
}

TrainResult train_rectifier(Rectifier& rectifier,
                            const std::vector<Matrix>& backbone_outputs,
                            const std::vector<std::uint32_t>& labels,
                            const std::vector<std::uint32_t>& train_mask,
                            const TrainConfig& cfg) {
  GV_CHECK(!train_mask.empty(), "empty training mask");
  ParamRefs params;
  rectifier.collect_parameters(params);
  Adam opt(cfg.adam);

  TrainResult result;
  result.loss_history.reserve(cfg.epochs);
  Matrix dlogp;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    params.zero_grad();
    const Matrix logits = rectifier.forward(backbone_outputs, /*training=*/true);
    const Matrix logp = log_softmax_rows(logits);
    const double loss = nll_loss_masked(logp, labels, train_mask, dlogp);
    const Matrix dlogits = log_softmax_backward(dlogp, logp);
    rectifier.backward(dlogits);
    opt.step(params);
    result.loss_history.push_back(loss);
    if (cfg.verbose && (epoch % 25 == 0 || epoch + 1 == cfg.epochs)) {
      GV_LOG_INFO << "rectifier epoch " << epoch << " loss " << loss;
    }
  }
  result.final_loss = result.loss_history.back();
  const Matrix logits = rectifier.forward(backbone_outputs, /*training=*/false);
  const auto preds = argmax_rows(logits);
  result.train_accuracy = accuracy_on(preds, labels, train_mask);
  return result;
}

TrainedVault train_vault(const Dataset& ds, const VaultTrainConfig& cfg) {
  Rng rng(cfg.seed);
  TrainedVault tv;

  // --- Step 1: substitute graph (public features only). -----------------
  tv.substitute_graph = build_substitute_graph(ds, cfg, rng);
  tv.real_adj = std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized());

  const auto backbone_channels = cfg.spec.backbone_channels(ds.num_classes);
  const auto rectifier_channels = cfg.spec.rectifier_channels(ds.num_classes);

  // --- Step 2: train the public backbone. -------------------------------
  if (cfg.backbone == BackboneKind::kDnn) {
    MlpConfig mc;
    mc.input_dim = ds.feature_dim();
    mc.channels = backbone_channels;
    mc.dropout = cfg.spec.dropout;
    tv.backbone_mlp = std::make_shared<MlpModel>(mc, rng);
  } else {
    tv.substitute_adj =
        std::make_shared<const CsrMatrix>(tv.substitute_graph.gcn_normalized());
    GcnConfig gc;
    gc.input_dim = ds.feature_dim();
    gc.channels = backbone_channels;
    gc.dropout = cfg.spec.dropout;
    tv.backbone_gcn = std::make_shared<GcnModel>(gc, tv.substitute_adj, rng);
  }
  NodeModel& bb = tv.backbone();
  train_node_classifier(bb, ds.features, ds.labels, ds.split.train, cfg.backbone_train);
  tv.backbone_parameters = bb.parameter_count();
  tv.backbone_test_accuracy =
      evaluate_accuracy(bb, ds.features, ds.labels, ds.split.test);

  // --- Step 3: freeze the backbone, train the rectifier on the REAL
  // adjacency from the backbone's (inference-mode) embeddings. -----------
  const auto outputs = tv.backbone_outputs(ds.features);
  RectifierConfig rc;
  rc.kind = cfg.rectifier;
  rc.channels = rectifier_channels;
  rc.dropout = cfg.spec.dropout;
  tv.rectifier = std::make_shared<Rectifier>(rc, bb.layer_dims(), tv.real_adj, rng);
  train_rectifier(*tv.rectifier, outputs, ds.labels, ds.split.train,
                  cfg.rectifier_train);
  tv.rectifier_parameters = tv.rectifier->parameter_count();

  const auto preds = tv.predict_rectified(ds.features);
  tv.rectifier_test_accuracy = accuracy_on(preds, ds.labels, ds.split.test);
  return tv;
}

std::shared_ptr<GcnModel> train_original_gnn(const Dataset& ds, const ModelSpec& spec,
                                             const TrainConfig& tc, std::uint64_t seed,
                                             double* test_accuracy) {
  Rng rng(seed ^ 0x0123456789abcdefull);
  GcnConfig gc;
  gc.input_dim = ds.feature_dim();
  gc.channels = spec.backbone_channels(ds.num_classes);
  gc.dropout = spec.dropout;
  auto adj = std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized());
  auto model = std::make_shared<GcnModel>(gc, adj, rng);
  train_node_classifier(*model, ds.features, ds.labels, ds.split.train, tc);
  if (test_accuracy != nullptr) {
    *test_accuracy = evaluate_accuracy(*model, ds.features, ds.labels, ds.split.test);
  }
  return model;
}

}  // namespace gv
