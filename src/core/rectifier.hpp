// The private GNN rectifier (paper Sec. IV-D, Fig. 3).
//
// The rectifier is a small stack of GCN layers that runs over the REAL
// (private) adjacency and consumes embeddings produced by the public
// backbone in the untrusted world.  Three communication schemes define
// what the rectifier reads:
//
//   Parallel : rectifier layer k reads backbone layer k's embedding,
//              concatenated with the previous rectifier output
//              ("rectify right after each message passing"); best accuracy.
//   Cascaded : the backbone runs to completion first; the rectifier's
//              first layer reads the concatenation of ALL backbone layer
//              outputs (global view; largest enclave model).
//   Series   : only the backbone's final embedding (the penultimate
//              layer's output, before the classification head) crosses;
//              smallest enclave footprint and fastest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/gcn_layer.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace gv {

enum class RectifierKind { kParallel, kCascaded, kSeries };

std::string rectifier_kind_name(RectifierKind kind);

struct RectifierConfig {
  RectifierKind kind = RectifierKind::kParallel;
  /// Output channels per rectifier layer; the last entry must equal the
  /// number of classes.
  std::vector<std::size_t> channels;
  float dropout = 0.5f;
};

class Rectifier {
 public:
  /// `backbone_dims` are the output channel sizes of every backbone layer
  /// (last = classes). `adjacency` is the normalized REAL adjacency Â.
  Rectifier(RectifierConfig cfg, std::vector<std::size_t> backbone_dims,
            std::shared_ptr<const CsrMatrix> adjacency, Rng& rng);

  const RectifierConfig& config() const { return cfg_; }
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t parameter_count() const;

  /// Indices of the backbone layers whose embeddings must cross into the
  /// enclave (drives the Fig. 6 transfer-cost accounting):
  ///   parallel -> {0 .. R-1}; cascaded -> all; series -> {B-2}.
  std::vector<std::size_t> required_backbone_layers() const;

  /// Forward pass. `backbone_outputs` must contain the embeddings of the
  /// required backbone layers at their original indices (others may be
  /// empty). Returns logits [n, C].
  Matrix forward(const std::vector<Matrix>& backbone_outputs, bool training);

  /// Node-subset inference (the serving path): computes logits ONLY for
  /// `nodes`, restricting every layer to the multi-hop frontier of the query
  /// set instead of running over all n nodes. Returns logits in query order
  /// (duplicates allowed). Inference-only; the training cache is untouched.
  /// `layer_rows`, when non-null, receives the number of frontier rows
  /// computed at each layer (enclave activation-memory accounting).
  Matrix forward_subset(const std::vector<Matrix>& backbone_outputs,
                        std::span<const std::uint32_t> nodes,
                        std::vector<std::size_t>* layer_rows = nullptr);

  /// Backward from dL/dlogits. Gradients flow only into rectifier
  /// parameters; the backbone is frozen by construction (its embedding
  /// gradient is computed internally where needed and discarded).
  void backward(const Matrix& dlogits);

  void collect_parameters(ParamRefs& refs);

  /// Per-layer activation bytes for `n` nodes (enclave memory accounting).
  std::vector<std::size_t> activation_bytes(std::size_t n) const;
  /// Total parameter bytes (float32).
  std::size_t parameter_bytes() const;

  /// Serialize weights to a flat byte buffer (sealing) and back.
  std::vector<std::uint8_t> serialize_weights() const;
  void deserialize_weights(std::span<const std::uint8_t> bytes);

  GcnLayer& layer(std::size_t i) { return layers_[i]; }
  const CsrMatrix& adjacency() const { return *adj_; }
  void set_adjacency(std::shared_ptr<const CsrMatrix> adjacency);

  // --- Cross-boundary frontier restriction (ShardVault cold path). --------
  // A shard's rectifier holds the RECTANGULAR owned x closure slice of the
  // global adjacency, so its row and column index spaces differ; these two
  // helpers let the sharded deployment walk a query's L-hop frontier one
  // shard-local hop at a time, stopping at the shard boundary (columns owned
  // by a peer become halo pulls over the attested channel, not local rows).

  /// Sorted unique column indices with a nonzero in any of `rows`: the
  /// one-hop input frontier of an output row set.  Unlike the square-only
  /// subset path, row indices are NOT injected into the result — for a
  /// rectangular shard adjacency they live in a different index space (each
  /// owned row still reaches its own closure column via its self-loop).
  std::vector<std::uint32_t> frontier_columns(std::span<const std::uint32_t> rows);

  /// The |rows| x |cols| slice of the adjacency with column ids remapped to
  /// positions in `cols`; `cols` must cover every column reachable from
  /// `rows` (frontier_columns guarantees it) and both must be sorted.
  CsrMatrix frontier_slice(std::span<const std::uint32_t> rows,
                           const std::vector<std::uint32_t>& cols);

  /// Input dim of rectifier layer k under this config (exposed for tests).
  std::size_t layer_input_dim(std::size_t k) const;

 private:
  Matrix build_layer_input(std::size_t k,
                           const std::vector<Matrix>& backbone_outputs,
                           const Matrix& prev) const;
  std::vector<std::uint32_t> expand_frontier(const std::vector<std::uint32_t>& rows);
  CsrMatrix gather_sub_adjacency(const std::vector<std::uint32_t>& rows,
                                 const std::vector<std::uint32_t>& cols);

  RectifierConfig cfg_;
  std::vector<std::size_t> backbone_dims_;
  std::shared_ptr<const CsrMatrix> adj_;
  std::vector<GcnLayer> layers_;
  Rng dropout_rng_;

  // Cached training state.
  std::vector<Matrix> pre_activations_;
  std::vector<Matrix> post_activations_;
  std::vector<DropoutMask> masks_;
  const std::vector<Matrix>* cached_backbone_outputs_ = nullptr;
  bool trained_forward_ = false;

  // Reusable O(n) scratch for subset inference, so per-query cost tracks the
  // frontier instead of re-zeroing node-sized buffers every layer (callers
  // serialize subset queries; the deployment holds its infer lock here).
  std::vector<std::uint32_t> frontier_mark_;   // epoch-stamped membership
  std::uint32_t frontier_epoch_ = 0;
  std::vector<std::uint32_t> local_index_;     // global -> frontier position
};

}  // namespace gv
