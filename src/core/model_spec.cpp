#include "core/model_spec.hpp"

#include "common/error.hpp"

namespace gv {

std::vector<std::size_t> ModelSpec::backbone_channels(std::uint32_t num_classes) const {
  std::vector<std::size_t> ch = backbone_hidden;
  ch.push_back(num_classes);
  return ch;
}

std::vector<std::size_t> ModelSpec::rectifier_channels(std::uint32_t num_classes) const {
  std::vector<std::size_t> ch = rectifier_hidden;
  ch.push_back(num_classes);
  return ch;
}

ModelSpec model_spec_m1() {
  return ModelSpec{"M1", {128, 32}, {128, 32}, 0.5f};
}

ModelSpec model_spec_m2() {
  return ModelSpec{"M2", {256, 128}, {128, 64}, 0.5f};
}

ModelSpec model_spec_m3() {
  return ModelSpec{"M3", {256, 64, 32, 16}, {64, 32}, 0.5f};
}

ModelSpec model_spec_by_name(const std::string& name) {
  if (name == "M1") return model_spec_m1();
  if (name == "M2") return model_spec_m2();
  if (name == "M3") return model_spec_m3();
  throw Error("unknown model spec: " + name);
}

ModelSpec model_spec_for_dataset(DatasetId id) {
  switch (id) {
    case DatasetId::kCora:
    case DatasetId::kCiteseer:
    case DatasetId::kPubmed:
      return model_spec_m1();
    case DatasetId::kCoraFull:
      return model_spec_m2();
    case DatasetId::kComputer:
    case DatasetId::kPhoto:
      return model_spec_m3();
  }
  throw Error("unknown dataset id");
}

}  // namespace gv
