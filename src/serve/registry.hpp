// VaultRegistry: multi-tenant serving with EPC-aware admission control.
//
// Several model vendors can deploy vaults on one fleet of SGX platforms;
// each tenant gets its OWN enclave (own measurement, own sealing identity —
// tenant A's enclave cannot unseal tenant B's rectifier weights), but every
// enclave on a platform shares that platform's 96 MB usable EPC.  Admitting
// a tenant whose resident set does not fit would push every ecall through
// the EWB/ELDU page-swap path (the paper's Sec. III-C overhead, ~40k cycles
// per 4 KiB page), degrading ALL tenants.  The registry therefore estimates
// each tenant's enclave working set up front and places it on a platform
// with room; the rest are queued (admitted as capacity frees) or rejected.
//
// Sharded admission (ShardVault): a tenant whose working set exceeds ONE
// platform's budget — previously an outright rejection — is admitted as K
// shard enclaves spread across the fleet, provided a shard plan exists
// whose largest shard fits a platform budget and the fleet has room for
// all K.  Each platform has its own fuse key, so shard packages seal
// per-platform and halo traffic runs over attested channels.
//
// JobServe admission redesign: admission is now RESERVE -> PROVISION ->
// COMMIT.  The registry lock is held only to check the name, pick a
// placement, and reserve the EPC bytes; the expensive part — provisioning
// the enclave(s), sealing the graph, running the initial sharded refresh —
// happens OUTSIDE the lock, and the reservation is committed (server handle
// published) or rolled back (bytes released, queue re-drained) afterwards.
// A whale tenant's minutes-long provisioning no longer stalls every other
// tenant's server() lookup on mu_.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "serve/vault_server.hpp"
#include "shard/sharded_server.hpp"
#include "common/annotations.hpp"
#include "common/thread_safety.hpp"

namespace gv {

struct RegistryConfig {
  /// Platform cost model shared by every platform in the fleet.
  SgxCostModel cost_model{};
  /// Fraction of usable EPC handed out per platform before refusing
  /// admission (headroom for ecall transients).
  double epc_budget_fraction = 0.9;
  /// Queue tenants that do not fit right now instead of rejecting them.
  bool queue_when_full = true;
  /// Identical SGX machines in the fleet (each contributes one EPC budget
  /// and has its own platform fuse key).
  std::uint32_t num_platforms = 1;
  /// Admit tenants larger than one platform's budget as K shards.
  bool shard_oversized = true;
  std::uint32_t max_shards = 8;
  /// Warm standby replicas for sharded tenants.
  bool replicate_shards = false;
};

enum class AdmissionDecision { kAdmitted, kAdmittedSharded, kQueued, kRejected };

struct AdmissionResult {
  AdmissionDecision decision = AdmissionDecision::kRejected;
  /// Estimated enclave working set of the tenant (weights + private graph +
  /// channel staging + activations); for sharded admission, the sum of the
  /// per-shard estimates.
  std::size_t estimated_bytes = 0;
  /// 1 for unsharded tenants; K for kAdmittedSharded.
  std::uint32_t num_shards = 1;
  std::string reason;
};

class VaultRegistry {
 public:
  explicit VaultRegistry(RegistryConfig cfg = {});
  ~VaultRegistry() = default;

  VaultRegistry(const VaultRegistry&) = delete;
  VaultRegistry& operator=(const VaultRegistry&) = delete;

  /// Deploy `vault` for `tenant` (unique name). On kAdmitted the server is
  /// live; kAdmittedSharded means the tenant exceeded one platform's budget
  /// and now spans several shard enclaves (query via sharded_server());
  /// kQueued parks the vault until capacity frees; kRejected drops it.
  AdmissionResult admit(const std::string& tenant, const Dataset& ds,
                        TrainedVault vault, ServerConfig server_cfg = {});

  bool has(const std::string& tenant) const;
  bool is_sharded(const std::string& tenant) const;
  /// Live server for an unsharded admitted tenant; throws gv::Error if
  /// absent (or sharded). The shared handle keeps the server alive across a
  /// concurrent remove().
  std::shared_ptr<VaultServer> server(const std::string& tenant);
  /// Live server for a sharded tenant; throws gv::Error if absent.
  std::shared_ptr<ShardedVaultServer> sharded_server(const std::string& tenant);

  /// Tear down a tenant (live, sharded, or queued). Freed capacity admits
  /// queued tenants in arrival order. Returns false if the name is unknown.
  bool remove(const std::string& tenant);

  /// Reservation platform index for shards serving from the standby
  /// platform after a failover promotion.
  static constexpr std::uint32_t kStandbyPlatform =
      static_cast<std::uint32_t>(-1);

  /// Shard `shard` of sharded tenant `tenant` dies: its standby replica is
  /// fenced and promoted to PRIMARY (ShardedVaultServer::kill_shard), the
  /// failed platform's reservation is released — the freed capacity admits
  /// queued tenants immediately — and the promoted shard's bytes move to
  /// the standby-platform account.  Requires the tenant admitted with
  /// `replicate_shards`.
  void fail_shard(const std::string& tenant, std::uint32_t shard);
  /// Bytes serving from the standby platform after failover promotions.
  std::size_t standby_in_use() const;

  std::vector<std::string> tenants() const;
  std::vector<std::string> queued() const;
  /// Sum of reserved bytes across all platforms.
  std::size_t epc_in_use() const;
  /// Fleet-wide budget (per-platform budget x num_platforms).
  std::size_t epc_budget() const;
  std::size_t platform_budget() const { return platform_budget_bytes_; }
  std::vector<std::size_t> platform_in_use() const;

  /// Fuse key of fleet platform `idx` (platform 0 is the default key, so a
  /// single-platform registry behaves exactly like the pre-fleet one).
  static Sha256Digest platform_key(std::uint32_t idx);

  /// Working-set estimate used for admission: rectifier weights, the private
  /// adjacency in COO + CSR form, channel staging for the required embedding
  /// matrices, and per-layer activations at full node count.
  static std::size_t estimate_enclave_bytes(const TrainedVault& vault,
                                            const Dataset& ds);

 private:
  /// A queued tenant.  The shard plan of an oversized tenant is computed
  /// once, outside the lock, when the tenant first arrives — a queue drain
  /// under the lock then only needs the (cheap) placement pass.
  struct Waiting {
    std::string tenant;
    Dataset ds;
    TrainedVault vault;
    ServerConfig server_cfg;
    std::size_t estimated_bytes = 0;
    bool sharded = false;
    ShardPlan plan;  // sharded only
  };

  /// A reservation that has been booked under the lock and now needs its
  /// enclave(s) provisioned outside it.
  struct PendingLaunch {
    std::string tenant;
    Dataset ds;
    TrainedVault vault;
    ServerConfig server_cfg;
    bool sharded = false;
    ShardPlan plan;                        // sharded only
    std::vector<std::uint32_t> placement;  // platform per shard; [0] unsharded
    std::vector<std::size_t> shard_bytes;  // bytes per shard; [0] unsharded
  };

  /// Worst-fit-decreasing placement of the plan's shards onto `free`
  /// per-platform headroom.  Fills `placement` (and debits `free`) on
  /// success; pure — no registry state is touched.
  bool place_shards(const ShardPlan& plan, std::vector<std::size_t> free,
                    std::vector<std::uint32_t>* placement) const;

  /// RESERVE phase (lock held): pick a placement against the current books
  /// and reserve the bytes + the tenant name.  Returns false when the fleet
  /// has no room right now.
  bool reserve_locked(const std::string& tenant, std::size_t estimated_bytes,
                      bool sharded, const ShardPlan& plan,
                      std::vector<std::uint32_t>* placement,
                      std::vector<std::size_t>* shard_bytes) GV_REQUIRES(mu_);
  /// Drop a reserved-but-not-committed tenant's bytes (provisioning failed).
  void release_reservation_locked(const std::string& tenant) GV_REQUIRES(mu_);
  /// Reserve as many queued tenants as now fit (FIFO, no skipping); the
  /// caller provisions the returned launches after releasing the lock.
  std::vector<PendingLaunch> reserve_from_queue_locked() GV_REQUIRES(mu_);

  /// PROVISION + COMMIT phase (lock NOT held): build the server(s), then
  /// publish the handle under the lock.  On a provisioning failure the
  /// reservation is rolled back, the queue re-drained, and the error
  /// rethrown.
  void provision_and_commit(PendingLaunch&& job);
  /// provision_and_commit for every launch, in order.
  void provision_all(std::vector<PendingLaunch>&& jobs);

  std::size_t platform_free(std::uint32_t p) const;
  /// Publish per-platform EPC headroom (budget - in-use) gauges to the
  /// global MetricsRegistry; called wherever the books change.
  void publish_epc_gauges() const;
  /// Push `tenant`'s EPC-resident bytes (the sum of its reservation rows)
  /// into the TenantLedger; called wherever a tenant's booking changes.
  void push_epc_ledger_locked(const std::string& tenant) const
      GV_REQUIRES(mu_);

  RegistryConfig cfg_;
  std::size_t platform_budget_bytes_ = 0;
  /// gv::Mutex (not std::mutex) so the EngineScope contention profiler can
  /// attribute admission-path contention to rank kRegistry.
  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kRegistry){
      gv::lockrank::kRegistry};
  std::vector<std::size_t> platform_in_use_;
  std::size_t standby_in_use_ = 0;
  std::map<std::string, std::shared_ptr<VaultServer>> servers_;
  std::map<std::string, std::shared_ptr<ShardedVaultServer>> sharded_;
  /// Tenants reserved and provisioning right now (outside the lock); their
  /// names are taken and their bytes are booked, but server()/has() do not
  /// see them until the commit.
  std::set<std::string> provisioning_;
  /// tenant -> per-(platform, bytes) reservations (one entry per shard).
  std::map<std::string, std::vector<std::pair<std::uint32_t, std::size_t>>>
      reservations_;
  std::deque<Waiting> waiting_;
};

}  // namespace gv
