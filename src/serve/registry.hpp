// VaultRegistry: multi-tenant serving with EPC-aware admission control.
//
// Several model vendors can deploy vaults on one SGX platform; each tenant
// gets its OWN enclave (own measurement, own sealing identity — tenant A's
// enclave cannot unseal tenant B's rectifier weights), but they all share
// the platform's 96 MB usable EPC.  Admitting a tenant whose resident set
// does not fit would push every ecall through the EWB/ELDU page-swap path
// (the paper's Sec. III-C overhead, ~40k cycles per 4 KiB page), degrading
// ALL tenants.  The registry therefore estimates each tenant's enclave
// working set up front and only admits while the total stays inside the EPC
// budget; the rest are queued (admitted as capacity frees) or rejected.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/vault_server.hpp"

namespace gv {

struct RegistryConfig {
  /// Platform cost model shared by every tenant enclave.
  SgxCostModel cost_model{};
  /// Fraction of usable EPC handed out before refusing admission (headroom
  /// for ecall transients).
  double epc_budget_fraction = 0.9;
  /// Queue tenants that do not fit right now instead of rejecting them.
  bool queue_when_full = true;
};

enum class AdmissionDecision { kAdmitted, kQueued, kRejected };

struct AdmissionResult {
  AdmissionDecision decision = AdmissionDecision::kRejected;
  /// Estimated enclave working set of the tenant (weights + private graph +
  /// channel staging + activations).
  std::size_t estimated_bytes = 0;
  std::string reason;
};

class VaultRegistry {
 public:
  explicit VaultRegistry(RegistryConfig cfg = {});
  ~VaultRegistry() = default;

  VaultRegistry(const VaultRegistry&) = delete;
  VaultRegistry& operator=(const VaultRegistry&) = delete;

  /// Deploy `vault` for `tenant` (unique name). On kAdmitted the server is
  /// live; kQueued parks the vault until capacity frees; kRejected drops it
  /// (working set larger than the whole budget, duplicate name, or
  /// queue_when_full=false).
  AdmissionResult admit(const std::string& tenant, const Dataset& ds,
                        TrainedVault vault, ServerConfig server_cfg = {});

  bool has(const std::string& tenant) const;
  /// Live server for an admitted tenant; throws gv::Error if absent. The
  /// shared handle keeps the server alive across a concurrent remove() —
  /// callers holding it never race its destruction.
  std::shared_ptr<VaultServer> server(const std::string& tenant);

  /// Tear down a tenant (live or queued). Freed capacity admits queued
  /// tenants in arrival order. Returns false if the name is unknown.
  bool remove(const std::string& tenant);

  std::vector<std::string> tenants() const;
  std::vector<std::string> queued() const;
  std::size_t epc_in_use() const;
  std::size_t epc_budget() const;

  /// Working-set estimate used for admission: rectifier weights, the private
  /// adjacency in COO + CSR form, channel staging for the required embedding
  /// matrices, and per-layer activations at full node count.
  static std::size_t estimate_enclave_bytes(const TrainedVault& vault,
                                            const Dataset& ds);

 private:
  struct Waiting {
    std::string tenant;
    Dataset ds;
    TrainedVault vault;
    ServerConfig server_cfg;
    std::size_t estimated_bytes = 0;
  };

  /// Launch a server for an admitted tenant (registry lock held).
  void launch(const std::string& tenant, const Dataset& ds, TrainedVault vault,
              const ServerConfig& server_cfg, std::size_t estimated_bytes);
  void admit_from_queue();

  RegistryConfig cfg_;
  std::size_t budget_bytes_ = 0;
  mutable std::mutex mu_;
  std::size_t in_use_bytes_ = 0;
  std::map<std::string, std::shared_ptr<VaultServer>> servers_;
  std::map<std::string, std::size_t> reserved_bytes_;
  std::deque<Waiting> waiting_;
};

}  // namespace gv
