#include "serve/serve_frontend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace gv {

ServeFrontEnd::ServeFrontEnd(ServeBackend& backend, const ServerConfig& cfg,
                             std::size_t num_nodes)
    : backend_(backend),
      cfg_(cfg),
      cache_(cfg.cache_capacity),
      num_nodes_(num_nodes),
      queue_(cfg.max_batch, cfg.max_wait),
      jobs_(std::max<std::size_t>(1, cfg.worker_threads),
            cfg.max_maintenance_in_flight) {
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  cfg_.worker_threads = jobs_.num_workers();
  cfg_.max_maintenance_in_flight = jobs_.max_maintenance_in_flight();
  probe_ =
      std::make_unique<EngineProbe>(MetricsRegistry::global(), cfg_.tenant);
  probe_->attach(&jobs_, &tokens_, &queue_);
  tokens_.set_observer(
      probe_.get(),
      [](void* ctx, std::size_t capacity, std::size_t free_count,
         std::size_t chunks) {
        static_cast<EngineProbe*>(ctx)->publish_token_pool(capacity,
                                                           free_count, chunks);
      });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ServeFrontEnd::~ServeFrontEnd() {
  stop();
  // Freeze the probe's last engine snapshot, then detach it so a concurrent
  // ops_report() pull cannot touch queue_/tokens_/jobs_ mid-teardown.
  // attach() blocks on the probe's pull mutex, so a pull that already read
  // the engine pointers finishes before detach returns and the members die
  // (the probe itself outlives them — it is declared first).
  probe_->pull();
  probe_->attach(nullptr, nullptr, nullptr);
}

void ServeFrontEnd::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  // 1. Queue first: new submits throw, queued-but-unflushed INTERACTIVE
  //    waiters fail with the "server shutting down" Error.
  queue_.stop();
  // 2. The dispatcher sees next_batch() return false and exits (batches it
  //    already posted are owned by their jobs).
  if (dispatcher_.joinable()) dispatcher_.join();
  // 3. Job system: queued interactive/cold jobs are cancelled — a flush
  //    job's cancel handler fails its batch's waiters with the same
  //    shutdown error — while queued MAINTENANCE drains bounded by the
  //    configured deadline.  In-flight jobs of every class complete.
  jobs_.stop(cfg_.shutdown_drain);
}

SubmitToken ServeFrontEnd::submit(std::uint32_t node) {
  GV_CHECK(node < num_nodes_.load(), "query node out of range");
  metrics_.record_request();
  Sha256Digest digest{};  // only computed (and consulted) when caching is on
  if (cache_.enabled()) {
    digest = backend_.row_digest(node);
    if (const auto hit = cache_.get(node, digest)) {
      metrics_.record_cache_hit();
      metrics_.record_latency_ms(0.0);
      return SubmitToken::ready_value(*hit);
    }
    metrics_.record_cache_miss();
  }
  TokenState* state = tokens_.acquire();
  bool coalesced = false;
  try {
    coalesced = queue_.submit(node, digest, state);
  } catch (...) {
    state->abandon();  // the queue never owned the producer reference
    throw;
  }
  if (coalesced) metrics_.record_coalesced();
  return SubmitToken(state);
}

SubmitBatch ServeFrontEnd::submit_many(std::span<const std::uint32_t> nodes) {
  SubmitBatch out;
  out.reserve(nodes.size());
  // Resolve cache hits up front, then enqueue every miss under ONE
  // queue-lock acquisition (the old front ends paid N submit round-trips).
  std::vector<std::uint32_t> miss_nodes;
  std::vector<Sha256Digest> miss_digests;
  std::vector<TokenState*> miss_states;
  miss_nodes.reserve(nodes.size());
  miss_digests.reserve(nodes.size());
  miss_states.reserve(nodes.size());
  for (const auto node : nodes) {
    GV_CHECK(node < num_nodes_.load(), "query node out of range");
    metrics_.record_request();
    Sha256Digest digest{};
    if (cache_.enabled()) {
      digest = backend_.row_digest(node);
      if (const auto hit = cache_.get(node, digest)) {
        metrics_.record_cache_hit();
        metrics_.record_latency_ms(0.0);
        out.push_back(SubmitToken::ready_value(*hit));
        continue;
      }
      metrics_.record_cache_miss();
    }
    TokenState* state = tokens_.acquire();
    miss_nodes.push_back(node);
    miss_digests.push_back(digest);
    miss_states.push_back(state);
    out.push_back(SubmitToken(state));
  }
  if (!miss_nodes.empty()) {
    std::size_t coalesced = 0;
    try {
      coalesced = queue_.submit_many(miss_nodes, miss_digests, miss_states);
    } catch (...) {
      // The queue consumed nothing: fail the pending tokens so callers see
      // the shutdown error instead of hanging, then rethrow.
      const auto err = std::current_exception();
      for (TokenState* s : miss_states) s->fail(err);
      throw;
    }
    for (std::size_t i = 0; i < coalesced; ++i) metrics_.record_coalesced();
  }
  return out;
}

std::uint32_t ServeFrontEnd::query(std::uint32_t node) {
  return submit(node).get();
}

void ServeFrontEnd::post_background(JobClass cls, std::function<void()> fn,
                                    std::function<void()> on_cancel) {
  jobs_.post(cls, std::move(fn), std::move(on_cancel));
}

void ServeFrontEnd::flush() { queue_.flush(); }

std::size_t ServeFrontEnd::pending() const { return queue_.pending(); }

ServeFrontEnd::Batch* ServeFrontEnd::acquire_batch() {
  {
    MutexLock lock(pool_mu_);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    if (!free_batches_.empty()) {
      Batch* b = free_batches_.back();
      free_batches_.pop_back();
      return b;
    }
  }
  // Warm-up: the pool grows to (dispatched-ahead depth) batches and then
  // cycles forever.
  auto owned = std::make_unique<Batch>();
  Batch* b = owned.get();
  MutexLock lock(pool_mu_);
  GV_RANK_SCOPE(lockrank::kJobQueue);
  all_batches_.push_back(std::move(owned));
  return b;
}

void ServeFrontEnd::release_batch(Batch* b) {
  b->count = 0;
  // Publish this batch's arena growth as gauge deltas (the gauges aggregate
  // the whole pool).  Steady state: three reads + three compares, no probe
  // call, no heap — the warm-path zero-alloc gate stays intact.
  const std::size_t reserved = b->arena.bytes_reserved();
  const std::size_t blocks = b->arena.num_blocks();
  const std::size_t high_water = b->arena.bytes_high_water();
  if (reserved != b->published_reserved || blocks != b->published_blocks ||
      high_water != b->published_high_water) {
    probe_->add_arena_delta(
        static_cast<double>(reserved) -
            static_cast<double>(b->published_reserved),
        static_cast<double>(blocks) - static_cast<double>(b->published_blocks),
        static_cast<double>(high_water) -
            static_cast<double>(b->published_high_water));
    b->published_reserved = reserved;
    b->published_blocks = blocks;
    b->published_high_water = high_water;
  }
  MutexLock lock(pool_mu_);
  GV_RANK_SCOPE(lockrank::kJobQueue);
  free_batches_.push_back(b);
}

void ServeFrontEnd::dispatcher_loop() {
  for (;;) {
    Batch* b = acquire_batch();
    if (!queue_.next_batch(b)) {
      release_batch(b);
      return;  // stopped and drained
    }
    // The flush itself is an INTERACTIVE job: it competes with (and beats)
    // cold/maintenance work on the same workers.
    jobs_.post(
        JobClass::kInteractive,
        [this, b] {
          execute_batch(*b);
          release_batch(b);
        },
        [this, b] {
          fail_batch_shutdown(*b);
          release_batch(b);
        });
  }
}

void ServeFrontEnd::fail_batch_shutdown(Batch& b) {
  const auto err = std::make_exception_ptr(Error("server shutting down"));
  for (std::size_t i = 0; i < b.count; ++i) {
    for (TokenState* w : b.entries[i].waiters) w->fail(err);
    b.entries[i].waiters.clear();
  }
}

void ServeFrontEnd::execute_batch(Batch& b) {
  const std::size_t n = b.count;
  b.arena.reset();
  auto nodes = b.arena.alloc_array<std::uint32_t>(n);
  std::size_t waiters = 0;
  auto oldest = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = b.entries[i];
    nodes[i] = e.node;
    waiters += e.waiters.size();
    oldest = std::min(oldest, e.enqueued);
  }
  const auto flush_start = std::chrono::steady_clock::now();
  // Queue stage, per entry: enqueue -> flush start.  The oldest entry also
  // labels the async queue_wait slice with its query id.
  std::uint64_t oldest_qid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = b.entries[i];
    if (e.enqueued == oldest) oldest_qid = e.query_id;
    record_query_stage(
        QueryStage::kQueue,
        std::chrono::duration<double>(flush_start - e.enqueued).count());
  }
  // The wait the batch's oldest request spent in the micro-batch queue,
  // reconstructed from its enqueue timestamp (no-op when tracing is off).
  TraceRecorder::instance().emit_async("serve", "queue_wait", oldest,
                                       flush_start, 0.0,
                                       {{"batch_size", double(n)},
                                        {"query_id", double(oldest_qid)}});
  // The flush runs in the scope of the batch's first entry — a multi-query
  // batch attributes its shared spans (routing, ecalls, any cold walk the
  // backend falls back to, halo pulls on peers) to that representative
  // query (the batch is one causal unit).
  QueryScope qscope(b.entries[0].query_id);
  TraceSpan span("serve", "batch_flush");
  span.arg("batch_size", double(n));
  span.arg("waiters", double(waiters));
  double modeled_before = 0.0;
  if (span.active()) modeled_before = backend_.modeled_seconds_total();
  try {
    auto labels = b.arena.alloc_array<std::uint32_t>(n);
    std::span<Sha256Digest> digests{};
    if (cache_.enabled()) digests = b.arena.alloc_array<Sha256Digest>(n);
    const auto result = backend_.execute(nodes, labels, digests);
    const auto done = std::chrono::steady_clock::now();
    record_query_stage(
        QueryStage::kFlush,
        std::chrono::duration<double>(done - flush_start).count());
    if (span.active()) {
      span.modeled_seconds(backend_.modeled_seconds_total() - modeled_before);
    }
    // Account the batch before resolving any token, so a caller observing
    // its token completed also observes the batch in stats().
    metrics_.record_batch(waiters);
    const bool cacheable = cache_.enabled() && result.cacheable;
    for (std::size_t i = 0; i < n; ++i) {
      if (cacheable) cache_.put(b.entries[i].node, digests[i], labels[i]);
      const double ms = std::chrono::duration<double, std::milli>(
                            done - b.entries[i].enqueued)
                            .count();
      for (std::size_t w = 0; w < b.entries[i].waiters.size(); ++w) {
        metrics_.record_latency_ms(ms);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (TokenState* w : b.entries[i].waiters) w->resolve(labels[i]);
      b.entries[i].waiters.clear();
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (std::size_t i = 0; i < n; ++i) {
      for (TokenState* w : b.entries[i].waiters) w->fail(err);
      b.entries[i].waiters.clear();
    }
  }
}

}  // namespace gv
