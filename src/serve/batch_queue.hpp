// MicroBatchQueue: the dynamic micro-batching queue shared by VaultServer
// and ShardedVaultServer.
//
// Requests accumulate until the batch is full or the oldest request's
// deadline passes (or a flush/shutdown short-circuits the wait).  Duplicate
// in-flight queries for the SAME node (and feature digest) coalesce onto
// one entry: the node occupies one slot in the flushed batch — one share of
// one ecall — and the result fans out to every waiting future.  Hot nodes
// (the celebrity-profile lookup every feed is rendering) therefore cost one
// enclave computation per flush instead of one per caller.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"
#include "sgxsim/sha256.hpp"

namespace gv {

class MicroBatchQueue {
 public:
  struct Entry {
    std::uint32_t node = 0;
    Sha256Digest digest{};
    /// All futures waiting on this node (>= 1; > 1 when coalesced).
    std::vector<std::promise<std::uint32_t>> waiters;
    std::chrono::steady_clock::time_point enqueued;
    /// QueryLens causal-trace id, allocated at enqueue; coalesced waiters
    /// ride the slot's id (one ecall share, one causal chain).
    std::uint64_t query_id = 0;
  };

  MicroBatchQueue(std::size_t max_batch, std::chrono::microseconds max_wait);

  /// Enqueue a waiter.  Returns true when it coalesced onto an already
  /// queued entry for the same (node, digest).  Throws gv::Error after
  /// stop().
  bool submit(std::uint32_t node, const Sha256Digest& digest,
              std::promise<std::uint32_t> waiter);

  /// Block until a batch is ready and pop it (at most max_batch entries).
  /// Returns an empty vector only when the queue is stopped — the
  /// worker-loop exit condition.
  std::vector<Entry> next_batch();

  /// Flush pending entries without waiting for the deadline.
  void flush();
  /// Reject new submissions and wake every waiting worker.  Entries still
  /// queued (never popped into a batch) have their waiters failed with an
  /// explicit "server shutting down" gv::Error — never a broken_promise.
  void stop();

  /// Queued (unflushed) entries; coalesced duplicates count once.
  std::size_t pending() const;

 private:
  const std::size_t max_batch_;
  const std::chrono::microseconds max_wait_;

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kQueue);
  CondVar cv_;
  std::list<Entry> queue_ GV_GUARDED_BY(mu_);
  /// node -> its newest queued entry (coalescing index).
  std::unordered_map<std::uint32_t, std::list<Entry>::iterator> index_
      GV_GUARDED_BY(mu_);
  bool stopping_ GV_GUARDED_BY(mu_) = false;
  bool flush_requested_ GV_GUARDED_BY(mu_) = false;
};

}  // namespace gv
