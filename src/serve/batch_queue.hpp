// MicroBatchQueue: the dynamic micro-batching queue at the heart of the
// JobServe ServeFrontEnd.
//
// Requests accumulate until the batch is full or the oldest request's
// deadline passes (or a flush/shutdown short-circuits the wait).  Duplicate
// in-flight queries for the SAME node (and feature digest) coalesce onto
// one entry: the node occupies one slot in the flushed batch — one share of
// one ecall — and the result fans out to every waiting token.  Hot nodes
// (the celebrity-profile lookup every feed is rendering) therefore cost one
// enclave computation per flush instead of one per caller.
//
// JobServe redesign notes:
//   * Waiters are pooled TokenState pointers (serve/submit_token.hpp), not
//     std::promise values: enqueuing allocates nothing.
//   * Entries live in a stable SLOT SLAB threaded onto an intrusive FIFO
//     list plus an index free list; slots recycle, and their waiter vectors
//     keep their capacity across recycles — after warm-up a submit touches
//     zero heap.
//   * submit_many() enqueues an entire client batch under ONE lock
//     acquisition (the old front ends paid N lock round-trips).
//   * next_batch() fills a caller-owned pooled Batch (swapping waiter
//     vector capacities with the slots) instead of returning a fresh
//     std::vector of entries.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/arena.hpp"
#include "common/thread_safety.hpp"
#include "serve/submit_token.hpp"
#include "sgxsim/sha256.hpp"

namespace gv {

class MicroBatchQueue {
 public:
  struct Entry {
    std::uint32_t node = 0;
    Sha256Digest digest{};
    /// All tokens waiting on this node (>= 1; > 1 when coalesced).  The
    /// queue owns their producer references until the entry is popped into
    /// a batch (or failed by stop()).
    std::vector<TokenState*> waiters;
    std::chrono::steady_clock::time_point enqueued;
    /// QueryLens causal-trace id, allocated at enqueue; coalesced waiters
    /// ride the slot's id (one ecall share, one causal chain).
    std::uint64_t query_id = 0;
  };

  /// One flushed micro-batch.  Pooled by the ServeFrontEnd: entries are
  /// pre-sized to max_batch and recycle their waiter-vector capacity, and
  /// the embedded arena scratches the flush path (reset per flush, blocks
  /// retained).
  struct Batch {
    std::vector<Entry> entries;  // [0, count) valid
    std::size_t count = 0;
    Arena arena;
    /// Arena figures last pushed to the EngineProbe gauges for this batch
    /// (ServeFrontEnd::release_batch publishes deltas only when they moved
    /// — which stops happening once the arena reaches steady state).
    std::size_t published_reserved = 0;
    std::size_t published_blocks = 0;
    std::size_t published_high_water = 0;
  };

  MicroBatchQueue(std::size_t max_batch, std::chrono::microseconds max_wait);

  /// Enqueue a waiter, taking ownership of its producer reference.  Returns
  /// true when it coalesced onto an already queued entry for the same
  /// (node, digest).  Throws gv::Error after stop() — the caller keeps the
  /// producer reference in that case.
  bool submit(std::uint32_t node, const Sha256Digest& digest,
              TokenState* waiter);

  /// Enqueue a whole client batch under one lock acquisition.  Returns the
  /// number of waiters that coalesced.  Throws gv::Error after stop()
  /// without consuming any producer reference.
  std::size_t submit_many(std::span<const std::uint32_t> nodes,
                          std::span<const Sha256Digest> digests,
                          std::span<TokenState* const> waiters);

  /// Block until a batch is ready and pop it into `out` (at most max_batch
  /// entries; out->entries is resized on first use and recycled after).
  /// Returns false only when the queue is stopped — the dispatcher's exit
  /// condition.
  bool next_batch(Batch* out);

  /// Flush pending entries without waiting for the deadline.
  void flush();
  /// Reject new submissions and wake every waiting worker.  Entries still
  /// queued (never popped into a batch) have their waiters failed with an
  /// explicit "server shutting down" gv::Error — never a silent drop.
  void stop();

  /// Queued (unflushed) entries; coalesced duplicates count once.
  std::size_t pending() const;
  /// Most entries ever queued at once (EngineScope depth gauge).
  std::size_t depth_high_water() const;
  /// Slot-slab occupancy (EngineScope): total slots ever allocated, slots
  /// on the free list, and live coalescing-index entries.
  std::size_t slot_capacity() const;
  std::size_t free_slots() const;
  std::size_t index_size() const;

  std::size_t max_batch() const { return max_batch_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Slab slot: an Entry plus intrusive FIFO links.  `next` doubles as the
  /// free-list link when the slot is unused.
  struct Slot {
    Entry entry;
    std::uint32_t next = kNone;
    std::uint32_t prev = kNone;
  };

  std::uint32_t acquire_slot_locked() GV_REQUIRES(mu_);
  void release_slot_locked(std::uint32_t idx) GV_REQUIRES(mu_);
  bool submit_locked(std::uint32_t node, const Sha256Digest& digest,
                     TokenState* waiter) GV_REQUIRES(mu_);

  const std::size_t max_batch_;
  const std::chrono::microseconds max_wait_;

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kQueue){gv::lockrank::kQueue};
  CondVar cv_;
  /// Stable slot slab; grows during warm-up only (index-addressed, so
  /// vector reallocation is safe).
  std::vector<Slot> slots_ GV_GUARDED_BY(mu_);
  std::uint32_t free_head_ GV_GUARDED_BY(mu_) = kNone;
  std::uint32_t head_ GV_GUARDED_BY(mu_) = kNone;  // FIFO front (oldest)
  std::uint32_t tail_ GV_GUARDED_BY(mu_) = kNone;
  std::size_t size_ GV_GUARDED_BY(mu_) = 0;
  std::size_t depth_hw_ GV_GUARDED_BY(mu_) = 0;
  std::size_t free_slot_count_ GV_GUARDED_BY(mu_) = 0;
  /// node -> its newest queued slot (coalescing index); node-recycling
  /// allocator so erase/insert churn stays heap-free after warm-up.
  std::unordered_map<std::uint32_t, std::uint32_t, std::hash<std::uint32_t>,
                     std::equal_to<std::uint32_t>,
                     RecyclingAllocator<std::pair<const std::uint32_t,
                                                  std::uint32_t>>>
      index_ GV_GUARDED_BY(mu_);
  bool stopping_ GV_GUARDED_BY(mu_) = false;
  bool flush_requested_ GV_GUARDED_BY(mu_) = false;
};

}  // namespace gv
