// LRU cache of served labels.
//
// A GNN label depends on the node's (private) multi-hop neighbourhood, not
// just its own feature row, so the node id must be part of the key.  Each
// entry additionally stores a SHA-256 digest of the node's feature row: a
// lookup whose digest no longer matches is treated as a miss and evicted,
// so cached labels can never survive a feature update.  Thread-safe — the
// server's worker threads fill it while request threads probe it.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/arena.hpp"
#include "sgxsim/sha256.hpp"
#include "tensor/csr.hpp"

namespace gv {

/// Digest of row `row` of a sparse feature matrix (column indices + values).
Sha256Digest feature_row_digest(const CsrMatrix& features, std::uint32_t row);

class LabelCache {
 public:
  /// `capacity` = maximum resident entries; 0 disables the cache entirely.
  explicit LabelCache(std::size_t capacity) : capacity_(capacity) {
    // Bucket growth is a warm-up event, not a steady-state one: the map
    // never holds more than `capacity` keys.
    if (capacity_ > 0) index_.reserve(capacity_);
  }

  /// Look up a node's label; moves the entry to the front on a hit.
  /// A digest mismatch (stale features) evicts the entry and misses.
  std::optional<std::uint32_t> get(std::uint32_t node, const Sha256Digest& digest);

  /// Insert/refresh an entry, evicting the least recently used if full.
  void put(std::uint32_t node, const Sha256Digest& digest, std::uint32_t label);

  /// Feature-update sweep: evict every entry whose stored digest no longer
  /// matches its node's row in `features`.  Entries for untouched rows stay
  /// resident — the deliberate locality approximation of the digest scheme
  /// (a label also depends on the multi-hop neighbourhood's features; a
  /// caller that changed many rows and wants strict freshness should
  /// clear() instead).  Returns the number of evicted entries.
  std::size_t invalidate_stale(const CsrMatrix& features);

  /// Graph-update sweep: evict the entries of exactly these nodes.  A graph
  /// mutation changes labels through the (private) neighbourhood while the
  /// feature rows — and therefore the digests — stay put, so the digest
  /// scheme cannot catch it; the caller passes the delta-derived affected
  /// set instead.  Returns the number of evicted entries.
  std::size_t invalidate_nodes(std::span<const std::uint32_t> nodes);

  void clear();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    std::uint32_t node;
    Sha256Digest digest;
    std::uint32_t label;
  };

  // Node-recycling allocators (common/arena.hpp): the evict-one/insert-one
  // churn of a full cache — and the erase/insert traffic of the stale-digest
  // sweeps — round-trips through a free list instead of the heap, keeping
  // the serving path allocation-free after warm-up.
  using Lru = std::list<Entry, RecyclingAllocator<Entry>>;
  using Index = std::unordered_map<
      std::uint32_t, Lru::iterator, std::hash<std::uint32_t>,
      std::equal_to<std::uint32_t>,
      RecyclingAllocator<std::pair<const std::uint32_t, Lru::iterator>>>;

  std::size_t capacity_;
  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kQueue);
  Lru lru_;  // front = most recently used
  Index index_;
};

}  // namespace gv
