#include "serve/submit_token.hpp"

#include "common/error.hpp"

namespace gv {

// --- TokenState --------------------------------------------------------------

void TokenState::resolve(std::uint32_t value) {
  Callback cb;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    GV_CHECK(!resolved_, "token resolved twice");
    resolved_ = true;
    value_ = value;
    cb = std::move(callback_);
    callback_ = nullptr;
  }
  cv_.notify_all();
  // Run the callback outside every lock: it may submit follow-up queries.
  if (cb) cb(value, nullptr);
  unref();
}

void TokenState::fail(std::exception_ptr error) {
  Callback cb;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    GV_CHECK(!resolved_, "token resolved twice");
    resolved_ = true;
    error_ = error;
    cb = std::move(callback_);
    callback_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb(0, error);
  unref();
}

std::uint32_t TokenState::get() {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  while (!resolved_) cv_.wait(mu_);
  if (error_) std::rethrow_exception(error_);
  return value_;
}

bool TokenState::wait_for(std::chrono::microseconds dur) {
  const auto deadline = std::chrono::steady_clock::now() + dur;
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  while (!resolved_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      return resolved_;
    }
  }
  return true;
}

void TokenState::wait() {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  while (!resolved_) cv_.wait(mu_);
}

bool TokenState::ready() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  return resolved_;
}

void TokenState::install_callback(Callback cb) {
  bool run_now = false;
  std::uint32_t value = 0;
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    GV_CHECK(!callback_, "token already has a callback");
    if (resolved_) {
      run_now = true;
      value = value_;
      error = error_;
    } else {
      callback_ = std::move(cb);
    }
  }
  if (run_now) cb(value, error);
}

void TokenState::unref() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool_->recycle(this);
  }
}

void TokenState::abandon() {
  // The producer never took ownership; drop both references at once.
  refs_.store(0, std::memory_order_release);
  pool_->recycle(this);
}

// --- TokenPool ---------------------------------------------------------------

TokenPool::TokenPool() : core_(new detail::TokenPoolCore()) {}

TokenPool::~TokenPool() {
  // With tokens still alive out there (a caller kept one past server
  // shutdown), the core lingers until the last of them recycles.
  if (core_->detach()) delete core_;
}

namespace detail {

TokenState* TokenPoolCore::acquire() {
  TokenState* s = nullptr;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    if (free_head_ == nullptr) {
      // Warm-up: grow by a chunk; steady state never reaches this.
      auto chunk = std::make_unique<TokenState[]>(kChunk);
      for (std::size_t i = 0; i < kChunk; ++i) {
        chunk[i].pool_ = this;
        chunk[i].next_free_ = free_head_;
        free_head_ = &chunk[i];
      }
      chunks_.push_back(std::move(chunk));
      capacity_ += kChunk;
      free_count_ += kChunk;
      // State change (a chunk grow is a warm-up-only event): push the new
      // occupancy to the observer instead of waiting for a pull.
      if (observer_ != nullptr) {
        observer_(observer_ctx_, capacity_, free_count_, chunks_.size());
      }
    }
    s = free_head_;
    free_head_ = s->next_free_;
    --free_count_;
    ++outstanding_;
  }
  s->next_free_ = nullptr;
  s->refs_.store(2, std::memory_order_release);
  return s;
}

void TokenPoolCore::recycle(TokenState* s) {
  // Clear resolution state OUTSIDE the pool lock (destroying a stored
  // exception_ptr may free).
  {
    MutexLock lock(s->mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    s->resolved_ = false;
    s->value_ = 0;
    s->error_ = nullptr;
    s->callback_ = nullptr;
  }
  bool last_out = false;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    s->next_free_ = free_head_;
    free_head_ = s;
    ++free_count_;
    --outstanding_;
    last_out = detached_ && outstanding_ == 0;
  }
  if (last_out) delete this;  // the owning TokenPool is long gone
}

bool TokenPoolCore::detach() {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  detached_ = true;
  if (observer_ != nullptr) {
    observer_(observer_ctx_, capacity_, free_count_, chunks_.size());
  }
  // The observer's owner (the front end's EngineProbe) dies with the
  // TokenPool; a lingering detached core must never call it again.
  observer_ = nullptr;
  observer_ctx_ = nullptr;
  return outstanding_ == 0;
}

void TokenPoolCore::set_observer(void* ctx, Observer fn) {
  std::size_t capacity = 0, free_count = 0, chunks = 0;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTokenState);
    observer_ctx_ = ctx;
    observer_ = fn;
    capacity = capacity_;
    free_count = free_count_;
    chunks = chunks_.size();
  }
  // Seed the gauges with the current occupancy right away.
  if (fn != nullptr) fn(ctx, capacity, free_count, chunks);
}

std::size_t TokenPoolCore::free_count() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  return free_count_;
}

std::size_t TokenPoolCore::capacity() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  return capacity_;
}

std::size_t TokenPoolCore::in_use() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  return outstanding_;
}

std::size_t TokenPoolCore::num_chunks() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTokenState);
  return chunks_.size();
}

}  // namespace detail

// --- SubmitBatch -------------------------------------------------------------

void SubmitBatch::wait_all() {
  for (auto& t : tokens_) {
    if (t.valid()) t.wait();
  }
}

std::vector<std::uint32_t> SubmitBatch::get_all() {
  std::vector<std::uint32_t> out;
  out.reserve(tokens_.size());
  for (auto& t : tokens_) out.push_back(t.get());
  return out;
}

}  // namespace gv
