#include "serve/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

VaultRegistry::VaultRegistry(RegistryConfig cfg) : cfg_(cfg) {
  GV_CHECK(cfg_.epc_budget_fraction > 0.0 && cfg_.epc_budget_fraction <= 1.0,
           "epc_budget_fraction must be in (0, 1]");
  budget_bytes_ = static_cast<std::size_t>(
      static_cast<double>(cfg_.cost_model.epc_bytes) * cfg_.epc_budget_fraction);
}

std::size_t VaultRegistry::estimate_enclave_bytes(const TrainedVault& vault,
                                                  const Dataset& ds) {
  GV_CHECK(vault.rectifier != nullptr, "estimate requires a trained rectifier");
  std::size_t bytes = vault.rectifier->parameter_bytes();
  // Private adjacency, in both its sealed-at-rest COO form and the CSR view
  // the rectifier multiplies against. Sized arithmetically (the normalized
  // COO holds both edge directions plus self-loops) — materializing the
  // conversion here would duplicate the O(E) work provisioning does anyway.
  const std::size_t n = ds.num_nodes();
  const std::size_t coo_nnz = ds.graph.num_directed_edges() + n;
  bytes += coo_nnz * 2 * sizeof(std::uint32_t) + n * sizeof(float);  // COO
  bytes += vault.real_adj
               ? vault.real_adj->payload_bytes()
               : (n + 1) * sizeof(std::int64_t) +
                     coo_nnz * (sizeof(std::uint32_t) + sizeof(float));  // CSR
  // Channel staging: the required embedding matrices cross in full (the
  // staged blocks drain into the rectifier inputs of the same size).
  const auto dims = vault.backbone().layer_dims();
  for (const auto idx : vault.rectifier->required_backbone_layers()) {
    GV_CHECK(idx < dims.size(), "required backbone layer out of range");
    bytes += n * dims[idx] * sizeof(float);
  }
  // Worst-case (all-nodes) rectifier activations.
  for (const auto act : vault.rectifier->activation_bytes(n)) bytes += act;
  return bytes;
}

AdmissionResult VaultRegistry::admit(const std::string& tenant, const Dataset& ds,
                                     TrainedVault vault, ServerConfig server_cfg) {
  GV_CHECK(!tenant.empty(), "tenant name must not be empty");
  GV_CHECK(vault.rectifier != nullptr, "admission requires a trained rectifier");
  AdmissionResult result;
  result.estimated_bytes = estimate_enclave_bytes(vault, ds);

  std::lock_guard<std::mutex> lock(mu_);
  const bool name_taken =
      servers_.count(tenant) > 0 ||
      std::any_of(waiting_.begin(), waiting_.end(),
                  [&](const Waiting& w) { return w.tenant == tenant; });
  if (name_taken) {
    result.decision = AdmissionDecision::kRejected;
    result.reason = "tenant name already registered";
    return result;
  }
  if (result.estimated_bytes > budget_bytes_) {
    result.decision = AdmissionDecision::kRejected;
    result.reason = "working set exceeds the platform EPC budget outright";
    return result;
  }
  if (in_use_bytes_ + result.estimated_bytes > budget_bytes_) {
    if (!cfg_.queue_when_full) {
      result.decision = AdmissionDecision::kRejected;
      result.reason = "EPC budget exhausted";
      return result;
    }
    waiting_.push_back(Waiting{tenant, ds, std::move(vault), server_cfg,
                               result.estimated_bytes});
    result.decision = AdmissionDecision::kQueued;
    result.reason = "EPC budget exhausted; queued until capacity frees";
    return result;
  }
  launch(tenant, ds, std::move(vault), server_cfg, result.estimated_bytes);
  result.decision = AdmissionDecision::kAdmitted;
  result.reason = "fits the EPC budget";
  return result;
}

void VaultRegistry::launch(const std::string& tenant, const Dataset& ds,
                           TrainedVault vault, const ServerConfig& server_cfg,
                           std::size_t estimated_bytes) {
  DeploymentOptions dopts;
  dopts.cost_model = cfg_.cost_model;
  // Distinct enclave identity per tenant, even when tenants share a dataset:
  // the name seeds the measurement, so sealing keys never collide.
  dopts.enclave_name = "gnnvault.tenant." + tenant;
  servers_[tenant] =
      std::make_shared<VaultServer>(ds, std::move(vault), dopts, server_cfg);
  reserved_bytes_[tenant] = estimated_bytes;
  in_use_bytes_ += estimated_bytes;
}

void VaultRegistry::admit_from_queue() {
  // FIFO without skipping: a large tenant at the head is not starved by
  // smaller tenants jumping the queue behind it.
  while (!waiting_.empty() &&
         in_use_bytes_ + waiting_.front().estimated_bytes <= budget_bytes_) {
    Waiting w = std::move(waiting_.front());
    waiting_.pop_front();
    launch(w.tenant, w.ds, std::move(w.vault), w.server_cfg, w.estimated_bytes);
  }
}

bool VaultRegistry::has(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return servers_.count(tenant) > 0;
}

std::shared_ptr<VaultServer> VaultRegistry::server(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(tenant);
  GV_CHECK(it != servers_.end(), "unknown or not-yet-admitted tenant: " + tenant);
  return it->second;
}

bool VaultRegistry::remove(const std::string& tenant) {
  // The victim's destructor drains in-flight batches; run it outside the
  // registry lock so one tenant's teardown cannot stall every other
  // tenant's server() lookups.
  std::shared_ptr<VaultServer> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = servers_.find(tenant);
    if (it != servers_.end()) {
      victim = std::move(it->second);
      servers_.erase(it);
      in_use_bytes_ -= reserved_bytes_[tenant];
      reserved_bytes_.erase(tenant);
      admit_from_queue();
    } else {
      const auto wit =
          std::find_if(waiting_.begin(), waiting_.end(),
                       [&](const Waiting& w) { return w.tenant == tenant; });
      if (wit == waiting_.end()) return false;
      waiting_.erase(wit);
      return true;
    }
  }
  victim.reset();  // may outlive this call if other threads hold the handle
  return true;
}

std::vector<std::string> VaultRegistry::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, server] : servers_) names.push_back(name);
  return names;
}

std::vector<std::string> VaultRegistry::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(waiting_.size());
  for (const auto& w : waiting_) names.push_back(w.tenant);
  return names;
}

std::size_t VaultRegistry::epc_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_bytes_;
}

std::size_t VaultRegistry::epc_budget() const { return budget_bytes_; }

}  // namespace gv
