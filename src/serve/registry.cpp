#include "serve/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tenant_ledger.hpp"
#include "shard/shard_planner.hpp"

namespace gv {

VaultRegistry::VaultRegistry(RegistryConfig cfg) : cfg_(cfg) {
  GV_CHECK(cfg_.epc_budget_fraction > 0.0 && cfg_.epc_budget_fraction <= 1.0,
           "epc_budget_fraction must be in (0, 1]");
  GV_CHECK(cfg_.num_platforms >= 1, "fleet needs at least one platform");
  platform_budget_bytes_ = static_cast<std::size_t>(
      static_cast<double>(cfg_.cost_model.epc_bytes) * cfg_.epc_budget_fraction);
  platform_in_use_.assign(cfg_.num_platforms, 0);
  publish_epc_gauges();
}

Sha256Digest VaultRegistry::platform_key(std::uint32_t idx) {
  if (idx == 0) return Enclave::default_platform_key();
  Sha256 h;
  h.update(std::string("gnnvault-simulated-fleet-platform-fuse-key-v1:") +
           std::to_string(idx));
  return h.finish();
}

std::size_t VaultRegistry::estimate_enclave_bytes(const TrainedVault& vault,
                                                  const Dataset& ds) {
  GV_CHECK(vault.rectifier != nullptr, "estimate requires a trained rectifier");
  std::size_t bytes = vault.rectifier->parameter_bytes();
  // Private adjacency, in both its sealed-at-rest COO form and the CSR view
  // the rectifier multiplies against. Sized arithmetically (the normalized
  // COO holds both edge directions plus self-loops) — materializing the
  // conversion here would duplicate the O(E) work provisioning does anyway.
  const std::size_t n = ds.num_nodes();
  const std::size_t coo_nnz = ds.graph.num_directed_edges() + n;
  bytes += coo_nnz * 2 * sizeof(std::uint32_t) + n * sizeof(float);  // COO
  bytes += vault.real_adj
               ? vault.real_adj->payload_bytes()
               : (n + 1) * sizeof(std::int64_t) +
                     coo_nnz * (sizeof(std::uint32_t) + sizeof(float));  // CSR
  // Channel staging: the required embedding matrices cross in full (the
  // staged blocks drain into the rectifier inputs of the same size).
  const auto dims = vault.backbone().layer_dims();
  for (const auto idx : vault.rectifier->required_backbone_layers()) {
    GV_CHECK(idx < dims.size(), "required backbone layer out of range");
    bytes += n * dims[idx] * sizeof(float);
  }
  // Worst-case (all-nodes) rectifier activations.
  for (const auto act : vault.rectifier->activation_bytes(n)) bytes += act;
  return bytes;
}

std::size_t VaultRegistry::platform_free(std::uint32_t p) const {
  return platform_budget_bytes_ > platform_in_use_[p]
             ? platform_budget_bytes_ - platform_in_use_[p]
             : 0;
}

void VaultRegistry::publish_epc_gauges() const {
  auto& reg = MetricsRegistry::global();
  for (std::uint32_t p = 0; p < platform_in_use_.size(); ++p) {
    reg.gauge("epc.headroom_bytes",
              MetricLabels::of("platform", std::to_string(p)))
        .set(double(platform_free(p)));
  }
  reg.gauge("epc.standby_in_use_bytes").set(double(standby_in_use_));
}

void VaultRegistry::push_epc_ledger_locked(const std::string& tenant) const {
  // Holding mu_ (kRegistry) while the ledger takes kTelemetry is a legal
  // rank ascent; the ledger never calls back into the registry.
  const auto rit = reservations_.find(tenant);
  if (rit == reservations_.end()) {
    TenantLedger::global().clear_epc_bytes(tenant);
    return;
  }
  std::size_t sum = 0;
  for (const auto& [platform, bytes] : rit->second) sum += bytes;
  TenantLedger::global().set_epc_bytes(tenant, sum);
}

bool VaultRegistry::place_shards(const ShardPlan& plan,
                                 std::vector<std::size_t> free,
                                 std::vector<std::uint32_t>* placement) const {
  // Worst-fit-decreasing placement of shards onto platforms.
  std::vector<std::uint32_t> by_size(plan.num_shards);
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) by_size[s] = s;
  std::stable_sort(by_size.begin(), by_size.end(), [&](std::uint32_t a,
                                                       std::uint32_t b) {
    return plan.shards[a].estimated_bytes > plan.shards[b].estimated_bytes;
  });
  for (const std::uint32_t s : by_size) {
    std::uint32_t best = cfg_.num_platforms;
    for (std::uint32_t p = 0; p < cfg_.num_platforms; ++p) {
      if (free[p] < plan.shards[s].estimated_bytes) continue;
      if (best == cfg_.num_platforms || free[p] > free[best]) best = p;
    }
    if (best == cfg_.num_platforms) return false;
    if (placement != nullptr) (*placement)[s] = best;
    free[best] -= plan.shards[s].estimated_bytes;
  }
  return true;
}

bool VaultRegistry::reserve_locked(const std::string& tenant,
                                   std::size_t estimated_bytes, bool sharded,
                                   const ShardPlan& plan,
                                   std::vector<std::uint32_t>* placement,
                                   std::vector<std::size_t>* shard_bytes) {
  if (!sharded) {
    // Fits one platform: place on the least-loaded platform with room.
    std::uint32_t best = cfg_.num_platforms;
    for (std::uint32_t p = 0; p < cfg_.num_platforms; ++p) {
      if (platform_free(p) < estimated_bytes) continue;
      if (best == cfg_.num_platforms ||
          platform_in_use_[p] < platform_in_use_[best]) {
        best = p;
      }
    }
    if (best == cfg_.num_platforms) return false;
    placement->assign(1, best);
    shard_bytes->assign(1, estimated_bytes);
  } else {
    std::vector<std::size_t> free(cfg_.num_platforms);
    for (std::uint32_t p = 0; p < cfg_.num_platforms; ++p) {
      free[p] = platform_free(p);
    }
    placement->assign(plan.num_shards, cfg_.num_platforms);
    if (!place_shards(plan, std::move(free), placement)) {
      return false;  // no room right now
    }
    shard_bytes->clear();
    shard_bytes->reserve(plan.num_shards);
    for (const auto& s : plan.shards) shard_bytes->push_back(s.estimated_bytes);
  }
  // Book the bytes and take the name NOW, under the lock; the enclaves are
  // provisioned after it is released.
  auto& reservation = reservations_[tenant];
  for (std::size_t s = 0; s < placement->size(); ++s) {
    reservation.push_back({(*placement)[s], (*shard_bytes)[s]});
    platform_in_use_[(*placement)[s]] += (*shard_bytes)[s];
  }
  provisioning_.insert(tenant);
  publish_epc_gauges();
  push_epc_ledger_locked(tenant);
  return true;
}

void VaultRegistry::release_reservation_locked(const std::string& tenant) {
  const auto rit = reservations_.find(tenant);
  if (rit != reservations_.end()) {
    for (const auto& [platform, bytes] : rit->second) {
      if (platform == kStandbyPlatform) {
        standby_in_use_ -= bytes;
      } else {
        platform_in_use_[platform] -= bytes;
      }
    }
    reservations_.erase(rit);
  }
  provisioning_.erase(tenant);
  publish_epc_gauges();
  push_epc_ledger_locked(tenant);  // clears: the reservation is gone
}

std::vector<VaultRegistry::PendingLaunch>
VaultRegistry::reserve_from_queue_locked() {
  // FIFO without skipping: a large tenant at the head is not starved by
  // smaller tenants jumping the queue behind it.
  std::vector<PendingLaunch> jobs;
  while (!waiting_.empty()) {
    Waiting& head = waiting_.front();
    PendingLaunch job;
    if (!reserve_locked(head.tenant, head.estimated_bytes, head.sharded,
                        head.plan, &job.placement, &job.shard_bytes)) {
      break;  // still no room: the head keeps its place
    }
    job.tenant = std::move(head.tenant);
    job.ds = std::move(head.ds);
    job.vault = std::move(head.vault);
    job.server_cfg = head.server_cfg;
    job.sharded = head.sharded;
    job.plan = std::move(head.plan);
    waiting_.pop_front();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void VaultRegistry::provision_and_commit(PendingLaunch&& job) {
  std::shared_ptr<VaultServer> server;
  std::shared_ptr<ShardedVaultServer> sharded;
  try {
    // The expensive part — enclave provisioning, sealing, the initial
    // sharded refresh — runs with NO registry lock held.
    if (job.sharded) {
      ShardedDeploymentOptions dopts;
      dopts.cost_model = cfg_.cost_model;
      dopts.enclave_name = "gnnvault.tenant." + job.tenant;
      dopts.platform_keys.reserve(job.plan.num_shards);
      for (std::uint32_t s = 0; s < job.plan.num_shards; ++s) {
        dopts.platform_keys.push_back(platform_key(job.placement[s]));
      }
      ShardedServerConfig scfg;
      scfg.server = job.server_cfg;
      scfg.replicate = cfg_.replicate_shards;
      sharded = std::make_shared<ShardedVaultServer>(
          job.ds, std::move(job.vault), std::move(job.plan), std::move(dopts),
          scfg);
    } else {
      DeploymentOptions dopts;
      dopts.cost_model = cfg_.cost_model;
      // Distinct enclave identity per tenant, even when tenants share a
      // dataset: the name seeds the measurement, so sealing keys never
      // collide.
      dopts.enclave_name = "gnnvault.tenant." + job.tenant;
      server = std::make_shared<VaultServer>(job.ds, std::move(job.vault),
                                             dopts, job.server_cfg);
    }
  } catch (...) {
    // ROLLBACK: release the reservation; the freed bytes may admit queued
    // tenants, so re-drain the queue before rethrowing.
    std::vector<PendingLaunch> next;
    {
      MutexLock lock(mu_);
      GV_RANK_SCOPE(lockrank::kRegistry);
      release_reservation_locked(job.tenant);
      next = reserve_from_queue_locked();
    }
    provision_all(std::move(next));
    throw;
  }
  // COMMIT: publish the live server.
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  provisioning_.erase(job.tenant);
  if (job.sharded) {
    sharded_[job.tenant] = std::move(sharded);
  } else {
    servers_[job.tenant] = std::move(server);
  }
}

void VaultRegistry::provision_all(std::vector<PendingLaunch>&& jobs) {
  for (auto& job : jobs) provision_and_commit(std::move(job));
}

AdmissionResult VaultRegistry::admit(const std::string& tenant, const Dataset& ds,
                                     TrainedVault vault, ServerConfig server_cfg) {
  GV_CHECK(!tenant.empty(), "tenant name must not be empty");
  GV_CHECK(vault.rectifier != nullptr, "admission requires a trained rectifier");
  // EngineScope: the tenant's name becomes the server's engine label and
  // its TenantLedger attribution key.
  server_cfg.tenant = tenant;
  AdmissionResult result;
  result.estimated_bytes = estimate_enclave_bytes(vault, ds);

  // Plan an oversized tenant's shards OUTSIDE the lock: planning walks the
  // whole graph, and it depends only on the tenant's own inputs and the
  // (immutable) per-platform budget.
  const bool sharded = result.estimated_bytes > platform_budget_bytes_;
  ShardPlan plan;
  if (sharded) {
    bool planned = false;
    if (cfg_.shard_oversized) {
      try {
        plan = ShardPlanner::plan_for_budget(ds, vault, platform_budget_bytes_,
                                             cfg_.max_shards);
        planned = true;
      } catch (const Error&) {
        // no plan fits a platform budget even at max_shards
      }
    }
    // Feasibility against an EMPTY fleet decides queue vs reject: a tenant
    // whose shards cannot fit even with everyone else gone must be
    // rejected, not parked at the head of the queue forever.
    if (!planned ||
        !place_shards(plan,
                      std::vector<std::size_t>(cfg_.num_platforms,
                                               platform_budget_bytes_),
                      nullptr)) {
      result.decision = AdmissionDecision::kRejected;
      result.reason = "working set exceeds the platform EPC budget outright";
      return result;
    }
    result.estimated_bytes = plan.total_bytes();
    result.num_shards = plan.num_shards;
  }

  // RESERVE under the lock: name + bytes.
  PendingLaunch job;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kRegistry);
    const bool name_taken =
        servers_.count(tenant) > 0 || sharded_.count(tenant) > 0 ||
        provisioning_.count(tenant) > 0 ||
        std::any_of(waiting_.begin(), waiting_.end(),
                    [&](const Waiting& w) { return w.tenant == tenant; });
    if (name_taken) {
      result.decision = AdmissionDecision::kRejected;
      result.reason = "tenant name already registered";
      return result;
    }
    if (!reserve_locked(tenant, result.estimated_bytes, sharded, plan,
                        &job.placement, &job.shard_bytes)) {
      if (!cfg_.queue_when_full) {
        result.decision = AdmissionDecision::kRejected;
        result.reason = sharded ? "fleet lacks capacity for the tenant's shards"
                                : "EPC budget exhausted";
        return result;
      }
      waiting_.push_back(Waiting{tenant, ds, std::move(vault), server_cfg,
                                 result.estimated_bytes, sharded,
                                 std::move(plan)});
      result.decision = AdmissionDecision::kQueued;
      result.reason = "EPC budget exhausted; queued until capacity frees";
      return result;
    }
  }

  // PROVISION + COMMIT outside the lock.
  job.tenant = tenant;
  job.ds = ds;
  job.vault = std::move(vault);
  job.server_cfg = server_cfg;
  job.sharded = sharded;
  job.plan = std::move(plan);
  if (sharded) {
    result.decision = AdmissionDecision::kAdmittedSharded;
    result.reason = "exceeds one platform's EPC budget; admitted as " +
                    std::to_string(result.num_shards) + " shards";
  } else {
    result.decision = AdmissionDecision::kAdmitted;
    result.reason =
        "fits the EPC budget of platform " + std::to_string(job.placement[0]);
  }
  provision_and_commit(std::move(job));
  return result;
}

bool VaultRegistry::has(const std::string& tenant) const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  return servers_.count(tenant) > 0 || sharded_.count(tenant) > 0;
}

bool VaultRegistry::is_sharded(const std::string& tenant) const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  return sharded_.count(tenant) > 0;
}

std::shared_ptr<VaultServer> VaultRegistry::server(const std::string& tenant) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  const auto it = servers_.find(tenant);
  GV_CHECK(it != servers_.end(), "unknown or not-yet-admitted tenant: " + tenant);
  return it->second;
}

std::shared_ptr<ShardedVaultServer> VaultRegistry::sharded_server(
    const std::string& tenant) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  const auto it = sharded_.find(tenant);
  GV_CHECK(it != sharded_.end(),
           "unknown or not-sharded tenant: " + tenant);
  return it->second;
}

bool VaultRegistry::remove(const std::string& tenant) {
  // The victim's destructor drains in-flight batches; run it outside the
  // registry lock so one tenant's teardown cannot stall every other
  // tenant's server() lookups.
  std::shared_ptr<VaultServer> victim;
  std::shared_ptr<ShardedVaultServer> sharded_victim;
  std::vector<PendingLaunch> promoted;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kRegistry);
    const auto it = servers_.find(tenant);
    const auto sit = sharded_.find(tenant);
    if (it != servers_.end() || sit != sharded_.end()) {
      if (it != servers_.end()) {
        victim = std::move(it->second);
        servers_.erase(it);
      } else {
        sharded_victim = std::move(sit->second);
        sharded_.erase(sit);
      }
      for (const auto& [platform, bytes] : reservations_[tenant]) {
        if (platform == kStandbyPlatform) {
          standby_in_use_ -= bytes;
        } else {
          platform_in_use_[platform] -= bytes;
        }
      }
      reservations_.erase(tenant);
      publish_epc_gauges();
      push_epc_ledger_locked(tenant);  // clears: the tenant is gone
      promoted = reserve_from_queue_locked();
    } else {
      const auto wit =
          std::find_if(waiting_.begin(), waiting_.end(),
                       [&](const Waiting& w) { return w.tenant == tenant; });
      if (wit == waiting_.end()) return false;
      waiting_.erase(wit);
      return true;
    }
  }
  // Promoted waiters provision OUTSIDE the lock, like direct admission.
  provision_all(std::move(promoted));
  victim.reset();  // may outlive this call if other threads hold the handle
  sharded_victim.reset();
  return true;
}

void VaultRegistry::fail_shard(const std::string& tenant, std::uint32_t shard) {
  std::shared_ptr<ShardedVaultServer> server;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kRegistry);
    const auto it = sharded_.find(tenant);
    GV_CHECK(it != sharded_.end(), "unknown or not-sharded tenant: " + tenant);
    server = it->second;
    GV_CHECK(server->replicas() != nullptr,
             "fail_shard requires the tenant admitted with replicate_shards");
    const auto& reservation = reservations_[tenant];
    GV_CHECK(shard < reservation.size(), "shard index out of range");
    GV_CHECK(reservation[shard].first != kStandbyPlatform,
             "shard already failed over to the standby platform");
  }
  // Kill + fence + async promotion outside the registry lock: promotion
  // re-runs a full sharded refresh and must not stall other tenants'
  // server() lookups.  This can throw (e.g. the standby is not promotable);
  // accounting moves only after the kill actually fenced the shard, so a
  // failed kill leaves the registry's books untouched.
  server->kill_shard(shard);
  std::vector<PendingLaunch> promoted;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kRegistry);
    // The tenant may have been removed (and even re-admitted under the same
    // name), or another fail_shard may have won the race, while the kill
    // ran.  Commit the accounting only against the SAME server we killed —
    // a fresh namesake's healthy reservation must not be touched.
    const auto sit = sharded_.find(tenant);
    if (sit == sharded_.end() || sit->second != server) return;
    const auto rit = reservations_.find(tenant);
    if (rit == reservations_.end() || shard >= rit->second.size()) return;
    auto& [platform, bytes] = rit->second[shard];
    if (platform == kStandbyPlatform) return;
    platform_in_use_[platform] -= bytes;
    standby_in_use_ += bytes;
    platform = kStandbyPlatform;
    publish_epc_gauges();
    // The dead enclave's capacity is free NOW — the promotion runs on the
    // standby platform — so queued tenants need not wait for it to land.
    promoted = reserve_from_queue_locked();
  }
  provision_all(std::move(promoted));
}

std::size_t VaultRegistry::standby_in_use() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  return standby_in_use_;
}

std::vector<std::string> VaultRegistry::tenants() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  std::vector<std::string> names;
  names.reserve(servers_.size() + sharded_.size());
  for (const auto& [name, server] : servers_) names.push_back(name);
  for (const auto& [name, server] : sharded_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> VaultRegistry::queued() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  std::vector<std::string> names;
  names.reserve(waiting_.size());
  for (const auto& w : waiting_) names.push_back(w.tenant);
  return names;
}

std::size_t VaultRegistry::epc_in_use() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  std::size_t sum = 0;
  for (const auto b : platform_in_use_) sum += b;
  return sum;
}

std::size_t VaultRegistry::epc_budget() const {
  return platform_budget_bytes_ * cfg_.num_platforms;
}

std::vector<std::size_t> VaultRegistry::platform_in_use() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kRegistry);
  return platform_in_use_;
}

}  // namespace gv
