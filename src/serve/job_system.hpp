// JobSystem: the work-stealing execution core of JobServe.
//
// Replaces the FIFO ThreadPool on the serving path.  N workers each own a
// three-lane deque (one ring per priority class); posts from a worker land
// on its own deque, posts from outside round-robin across workers.  A
// worker drains its own lanes INTERACTIVE-first, and when empty steals from
// a uniformly random victim (scanning the rest in order as fallback) —
// again highest class first, from the BACK of the victim's lane while the
// owner pops the FRONT, so steals and local pops rarely collide on the same
// job.
//
// Priority classes (tenant QoS):
//   kInteractive   batch flushes for live queries.  Always runnable.
//   kCold          cold-path recomputes: post-promotion boundary rebuilds,
//                  forced re-materializations.  Runs when no interactive
//                  work is runnable on that worker.
//   kMaintenance   migrations / replication / re-materialization sweeps.
//                  Additionally capped: at most `max_maintenance_in_flight`
//                  maintenance jobs execute at once (default workers-1,
//                  min 1), so a maintenance storm can never occupy every
//                  worker and starve interactive latency.
//
// Shutdown (stop(drain)): new posts are rejected (their cancel handler runs
// immediately), queued INTERACTIVE and COLD jobs are cancelled — for batch
// flushes the cancel handler fails every waiter with the existing "server
// shutting down" Error — while queued MAINTENANCE jobs keep draining until
// the deadline, after which the stragglers are cancelled too.  Jobs already
// executing always run to completion (workers are joined).
//
// Lock ranks: every deque mutex and the idle-signal mutex rank kJobQueue
// (82) — above the serving-path leaves (kQueue=80), below kTokenState (84),
// so a flush job may resolve tokens after dropping all queue locks and any
// code holding a serving leaf may still legally post.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"

namespace gv {

enum class JobClass : std::uint8_t {
  kInteractive = 0,
  kCold = 1,
  kMaintenance = 2,
};
inline constexpr std::size_t kNumJobClasses = 3;

/// Fleet-wide fold of the per-worker counters (stats()).  EngineScope: the
/// counters behind this struct live in worker-local relaxed atomics — a
/// worker never touches a stats mutex on the execute/steal hot path; the
/// fold happens on the (rare) pull.
struct JobSystemStats {
  std::uint64_t executed[kNumJobClasses] = {0, 0, 0};
  std::uint64_t cancelled[kNumJobClasses] = {0, 0, 0};
  std::uint64_t stolen = 0;
  /// Steal scans that found no runnable job on any victim (stolen counts
  /// the hits; attempts = stolen + steal_misses).
  std::uint64_t steal_misses = 0;
  /// Park/unpark cycles: a worker parked when it found nothing runnable,
  /// and was woken by new work (or shutdown).
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
};

/// Per-worker, per-lane probe snapshot (EngineProbe folds these into
/// labeled MetricsRegistry instruments).
struct JobWorkerSnapshot {
  std::uint64_t executed[kNumJobClasses] = {0, 0, 0};
  std::uint64_t steal_hits = 0;
  std::uint64_t steal_misses = 0;
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
  /// Current and high-water queued depth per lane of this worker's deque.
  std::size_t depth[kNumJobClasses] = {0, 0, 0};
  std::size_t depth_high_water[kNumJobClasses] = {0, 0, 0};
};

class JobSystem {
 public:
  struct Job {
    std::function<void()> run;
    /// Invoked (instead of run) when the job is cancelled at shutdown or
    /// rejected after stop().  May be empty.
    std::function<void()> cancel;
    JobClass cls = JobClass::kInteractive;
  };

  /// `max_maintenance_in_flight == 0` means max(1, workers - 1).
  explicit JobSystem(std::size_t workers,
                     std::size_t max_maintenance_in_flight = 0);
  ~JobSystem();

  JobSystem(const JobSystem&) = delete;
  JobSystem& operator=(const JobSystem&) = delete;

  /// Enqueue a job.  After stop() the cancel handler (if any) runs inline
  /// and the job is counted cancelled.
  void post(JobClass cls, std::function<void()> run,
            std::function<void()> cancel = nullptr);

  /// Shut down: cancel queued interactive/cold work, drain queued
  /// maintenance until `drain` elapses, cancel the rest, join all workers.
  /// Idempotent.
  void stop(std::chrono::milliseconds drain = std::chrono::milliseconds(0));

  /// Block until every queued job has been executed (test/bench quiesce;
  /// does not prevent concurrent posts from re-filling the queues).
  void drain_idle();

  std::size_t num_workers() const { return workers_.size(); }
  std::size_t max_maintenance_in_flight() const { return maintenance_cap_; }
  JobSystemStats stats() const;

  /// Per-worker probe snapshots (one deque-lock acquisition per worker for
  /// the depth fields; counters are relaxed reads).  Pull path only.
  std::vector<JobWorkerSnapshot> worker_snapshots() const;
  /// Maintenance jobs executing right now / the most ever concurrent.
  std::size_t maintenance_in_flight() const {
    return maintenance_running_.load(std::memory_order_relaxed);
  }
  std::size_t maintenance_high_water() const {
    return maintenance_high_water_.load(std::memory_order_relaxed);
  }

 private:
  /// Fixed-capacity-after-warm-up ring buffer of jobs.  Owner pops the
  /// front (FIFO fairness for latency), thieves pop the back.
  class JobRing {
   public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    void push_back(Job j);
    Job pop_front();
    Job pop_back();

   private:
    void grow();
    std::vector<Job> buf_;
    std::size_t head_ = 0;  // index of front
    std::size_t size_ = 0;
  };

  struct Worker {
    mutable Mutex mu GV_LOCK_RANK(gv::lockrank::kJobQueue){
        gv::lockrank::kJobQueue};
    JobRing lanes[kNumJobClasses] GV_GUARDED_BY(mu);
    /// High-water queued depth per lane (updated under mu on push — the
    /// lock is already held there, so this costs a compare).
    std::size_t depth_hw[kNumJobClasses] GV_GUARDED_BY(mu) = {0, 0, 0};
    std::thread thread;
    // xorshift steal-victim state, touched only by the owning thread.
    std::uint64_t rng = 0;
    // Worker-local telemetry: written by the owning thread only (relaxed
    // atomics so stats()/probe pulls may read concurrently).  No mutex is
    // ever taken to record a job execution or a steal.
    std::atomic<std::uint64_t> executed[kNumJobClasses]{};
    std::atomic<std::uint64_t> steal_hits{0};
    std::atomic<std::uint64_t> steal_misses{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
  };

  void worker_loop(std::size_t self);
  /// Try to pop one runnable job anywhere (own lanes first, then steal).
  /// Returns false when nothing runnable exists right now.
  bool try_run_one(std::size_t self);
  bool pop_runnable(Worker& w, bool steal, Job* out, bool* reserved_maint)
      GV_REQUIRES(w.mu);
  void execute(Job job, bool reserved_maint, Worker& me);
  void signal_work();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t maintenance_cap_ = 1;
  std::atomic<std::size_t> maintenance_running_{0};
  std::atomic<std::size_t> maintenance_high_water_{0};
  std::atomic<std::size_t> next_post_{0};
  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> running_total_{0};
  std::atomic<bool> accepting_{true};

  mutable Mutex idle_mu_ GV_LOCK_RANK(gv::lockrank::kJobQueue){
      gv::lockrank::kJobQueue};
  CondVar idle_cv_;
  std::uint64_t work_signal_ GV_GUARDED_BY(idle_mu_) = 0;
  bool stopping_ GV_GUARDED_BY(idle_mu_) = false;

  /// Cancellations happen off the hot path (post-after-stop, shutdown
  /// sweeps), so plain shared atomics are fine here.
  std::atomic<std::uint64_t> cancelled_[kNumJobClasses]{};

  // Completion signal for drain_idle(): bumps when queued_total_ hits 0.
  CondVar drained_cv_;
};

}  // namespace gv
