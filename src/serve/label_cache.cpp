#include "serve/label_cache.hpp"

#include "common/error.hpp"

namespace gv {

Sha256Digest feature_row_digest(const CsrMatrix& features, std::uint32_t row) {
  GV_CHECK(row < features.rows(), "feature row out of range");
  const auto begin = features.row_ptr()[row];
  const auto end = features.row_ptr()[row + 1];
  Sha256 h;
  const std::uint32_t* cols = features.col_idx().data() + begin;
  const float* vals = features.values().data() + begin;
  const auto count = static_cast<std::size_t>(end - begin);
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(cols), count * sizeof(std::uint32_t)));
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(vals), count * sizeof(float)));
  return h.finish();
}

std::optional<std::uint32_t> LabelCache::get(std::uint32_t node,
                                             const Sha256Digest& digest) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  const auto it = index_.find(node);
  if (it == index_.end()) return std::nullopt;
  if (it->second->digest != digest) {
    // Stale: the node's features changed since the label was cached.
    lru_.erase(it->second);
    index_.erase(it);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().label;
}

void LabelCache::put(std::uint32_t node, const Sha256Digest& digest,
                     std::uint32_t label) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  const auto it = index_.find(node);
  if (it != index_.end()) {
    it->second->digest = digest;
    it->second->label = label;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().node);
    lru_.pop_back();
  }
  lru_.push_front({node, digest, label});
  index_[node] = lru_.begin();
}

std::size_t LabelCache::invalidate_stale(const CsrMatrix& features) {
  if (capacity_ == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  std::size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool gone = it->node >= features.rows() ||
                      feature_row_digest(features, it->node) != it->digest;
    if (gone) {
      index_.erase(it->node);
      it = lru_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

std::size_t LabelCache::invalidate_nodes(std::span<const std::uint32_t> nodes) {
  if (capacity_ == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  std::size_t evicted = 0;
  for (const auto node : nodes) {
    const auto it = index_.find(node);
    if (it == index_.end()) continue;
    lru_.erase(it->second);
    index_.erase(it);
    ++evicted;
  }
  return evicted;
}

void LabelCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  lru_.clear();
  index_.clear();
}

std::size_t LabelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return lru_.size();
}

}  // namespace gv
