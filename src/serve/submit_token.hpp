// SubmitToken: the completion-token half of the JobServe serving API.
//
// The old contract threaded one std::promise<uint32_t> per query through
// MicroBatchQueue::submit; every lookup paid a promise/future shared-state
// allocation, and callers got nothing richer than .get().  SubmitToken
// replaces it:
//
//   * Cache hits return an INLINE-READY token carrying the label by value —
//     no shared state, no allocation, nothing to synchronize.
//   * Misses borrow a TokenState from a free-list pool (TokenPool); after
//     warm-up the pool stops touching the heap, which is half of the
//     "zero allocations per warm lookup" ROADMAP claim.
//   * Tokens support .get() (blocking), .wait_for(duration), .ready(), and
//     .then(callback) — the callback runs inline if the token is already
//     resolved, otherwise on the resolving job-system worker.
//   * SubmitBatch bundles the tokens of one submit_many call with
//     wait_all()/get_all() for batch-wide completion.
//
// Ownership: a TokenState starts with two references — the consumer-side
// SubmitToken and the producer (queue slot / flush job).  resolve()/fail()
// consume the producer reference; the token's destructor consumes the
// consumer one; the last release returns the state to its pool.  The pool's
// storage core outlives the TokenPool handle itself while any acquired
// state is still out in the wild, so a token may safely outlive the server
// that issued it (the std::future contract the old API gave callers).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"

namespace gv {

class TokenPool;
namespace detail {
class TokenPoolCore;
}  // namespace detail

/// Shared completion state for one pending (non-cache-hit) query.  Lives in
/// a TokenPool chunk; never heap-allocated per query after warm-up.
class TokenState {
 public:
  using Callback = std::function<void(std::uint32_t, std::exception_ptr)>;

  /// Producer side: publish the label and wake/notify the consumer.
  /// Consumes the producer reference.
  void resolve(std::uint32_t value);
  /// Producer side: publish a failure.  Consumes the producer reference.
  void fail(std::exception_ptr error);

  /// Consumer side (via SubmitToken): block until resolved, return or throw.
  std::uint32_t get();
  /// Consumer side: wait up to `dur`; true when resolved.
  bool wait_for(std::chrono::microseconds dur);
  /// Consumer side: block until resolved, success or failure (no throw).
  void wait();
  bool ready() const;
  /// Consumer side: run `cb(value, error)` on resolution (inline when
  /// already resolved, else on the resolving thread).  One callback per
  /// token.
  void install_callback(Callback cb);

  /// Drop one reference; the last one returns the state to its pool.
  void unref();
  /// Drop BOTH references without resolving (submit failed before the
  /// producer ever owned the state).
  void abandon();

 private:
  friend class TokenPool;
  friend class detail::TokenPoolCore;

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kTokenState){
      gv::lockrank::kTokenState};
  CondVar cv_;
  bool resolved_ GV_GUARDED_BY(mu_) = false;
  std::uint32_t value_ GV_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ GV_GUARDED_BY(mu_);
  Callback callback_ GV_GUARDED_BY(mu_);

  std::atomic<int> refs_{0};
  detail::TokenPoolCore* pool_ = nullptr;
  TokenState* next_free_ = nullptr;
};

namespace detail {

/// The pool's storage: chunk-allocated states plus the free list.  Heap
/// allocated and DETACHABLE — when the owning TokenPool dies with states
/// still acquired (a caller kept a SubmitToken past server shutdown), the
/// core lingers until the last such state recycles, then frees itself.
class TokenPoolCore {
 public:
  static constexpr std::size_t kChunk = 64;

  /// Occupancy observer, invoked on STATE CHANGE (a chunk grow, a detach)
  /// with the post-change figures — the PR-7 push-on-state-change gauge
  /// convention, so pool growth is visible without polling.  Called under
  /// the pool lock (kTokenState): the callback must only touch leaf state
  /// (EngineProbe sets pre-resolved gauges — atomic stores only).
  using Observer = void (*)(void* ctx, std::size_t capacity,
                            std::size_t free_count, std::size_t chunks);
  void set_observer(void* ctx, Observer fn);

  TokenState* acquire();
  void recycle(TokenState* s);
  /// Owner shutdown: returns true when the caller must delete the core now
  /// (no states outstanding); otherwise the last recycle() deletes it.
  bool detach();

  std::size_t free_count() const;
  std::size_t capacity() const;
  /// States acquired and not yet recycled.
  std::size_t in_use() const;
  std::size_t num_chunks() const;

 private:
  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kTokenState){
      gv::lockrank::kTokenState};
  TokenState* free_head_ GV_GUARDED_BY(mu_) = nullptr;
  std::size_t free_count_ GV_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<TokenState[]>> chunks_ GV_GUARDED_BY(mu_);
  std::size_t capacity_ GV_GUARDED_BY(mu_) = 0;
  /// States acquired and not yet recycled.
  std::size_t outstanding_ GV_GUARDED_BY(mu_) = 0;
  bool detached_ GV_GUARDED_BY(mu_) = false;
  void* observer_ctx_ GV_GUARDED_BY(mu_) = nullptr;
  Observer observer_ GV_GUARDED_BY(mu_) = nullptr;
};

}  // namespace detail

/// Free-list pool of TokenStates.  acquire() pops a recycled state (heap
/// only during warm-up, in chunks); the last unref() pushes it back.
class TokenPool {
 public:
  TokenPool();
  TokenPool(const TokenPool&) = delete;
  TokenPool& operator=(const TokenPool&) = delete;
  ~TokenPool();

  /// A cleared state holding 2 refs (consumer + producer).
  TokenState* acquire() { return core_->acquire(); }

  /// States currently in the free list (tests / stats).
  std::size_t free_count() const { return core_->free_count(); }
  /// Total states ever chunk-allocated.
  std::size_t capacity() const { return core_->capacity(); }
  /// States acquired and not yet recycled.
  std::size_t in_use() const { return core_->in_use(); }
  std::size_t num_chunks() const { return core_->num_chunks(); }
  /// Push-on-state-change occupancy observer (see TokenPoolCore::Observer).
  void set_observer(void* ctx, detail::TokenPoolCore::Observer fn) {
    core_->set_observer(ctx, fn);
  }

 private:
  detail::TokenPoolCore* core_;
};

/// Move-only completion token returned by ServeFrontEnd::submit.
class SubmitToken {
 public:
  SubmitToken() = default;
  /// Inline-ready token (cache hit): carries the label, owns no state.
  static SubmitToken ready_value(std::uint32_t value) {
    SubmitToken t;
    t.kind_ = Kind::kReady;
    t.value_ = value;
    return t;
  }
  /// Pending token adopting the consumer reference of `state`.
  explicit SubmitToken(TokenState* state) : kind_(Kind::kShared), state_(state) {}

  SubmitToken(SubmitToken&& o) noexcept { move_from(o); }
  SubmitToken& operator=(SubmitToken&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  SubmitToken(const SubmitToken&) = delete;
  SubmitToken& operator=(const SubmitToken&) = delete;
  ~SubmitToken() { release(); }

  bool valid() const { return kind_ != Kind::kEmpty; }
  bool ready() const {
    return kind_ == Kind::kReady || (kind_ == Kind::kShared && state_->ready());
  }

  /// Block until resolved; return the label or rethrow the failure.
  /// Unlike std::future::get, tokens stay valid after get().
  std::uint32_t get() {
    if (kind_ == Kind::kReady) return value_;
    return state_->get();
  }

  /// Wait up to `dur`; true when resolved (a ready token returns true).
  bool wait_for(std::chrono::microseconds dur) {
    if (kind_ == Kind::kReady) return true;
    return state_->wait_for(dur);
  }

  /// Block until resolved, success or failure; never throws.
  void wait() {
    if (kind_ == Kind::kShared) state_->wait();
  }

  /// Attach a completion callback: cb(value, error) with error == nullptr
  /// on success.  Runs inline when already resolved.
  void then(TokenState::Callback cb) {
    if (kind_ == Kind::kReady) {
      cb(value_, nullptr);
      return;
    }
    state_->install_callback(std::move(cb));
  }

 private:
  enum class Kind : std::uint8_t { kEmpty, kReady, kShared };

  void release() {
    if (kind_ == Kind::kShared && state_ != nullptr) state_->unref();
    kind_ = Kind::kEmpty;
    state_ = nullptr;
  }
  void move_from(SubmitToken& o) {
    kind_ = o.kind_;
    value_ = o.value_;
    state_ = o.state_;
    o.kind_ = Kind::kEmpty;
    o.state_ = nullptr;
  }

  Kind kind_ = Kind::kEmpty;
  std::uint32_t value_ = 0;
  TokenState* state_ = nullptr;
};

/// The tokens of one submit_many call, in submission order.
class SubmitBatch {
 public:
  SubmitBatch() = default;

  void reserve(std::size_t n) { tokens_.reserve(n); }
  void push_back(SubmitToken t) { tokens_.push_back(std::move(t)); }

  std::size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }
  SubmitToken& operator[](std::size_t i) { return tokens_[i]; }
  const SubmitToken& operator[](std::size_t i) const { return tokens_[i]; }
  auto begin() { return tokens_.begin(); }
  auto end() { return tokens_.end(); }
  auto begin() const { return tokens_.begin(); }
  auto end() const { return tokens_.end(); }

  /// Block until every token is resolved (success or failure).
  void wait_all();
  /// get() every token in order; rethrows the first failure encountered.
  std::vector<std::uint32_t> get_all();

 private:
  std::vector<SubmitToken> tokens_;
};

}  // namespace gv
