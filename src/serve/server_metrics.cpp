#include "serve/server_metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace gv {

namespace {
double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}
}  // namespace

std::string MetricsSnapshot::summary() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%llu req (%llu batches, mean %.1f/batch) | %.0f req/s modeled | "
                "cache %.0f%% | p50 %.3f ms p95 %.3f ms p99 %.3f ms | "
                "%llu ecalls, %.2f MB in",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(batches), mean_batch_size,
                requests_per_second, cache_hit_rate * 100.0, p50_latency_ms,
                p95_latency_ms, p99_latency_ms,
                static_cast<unsigned long long>(ecalls),
                bytes_in / (1024.0 * 1024.0));
  return buf;
}

void ServerMetrics::record_request() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
}

void ServerMetrics::record_cache_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_hits_;
}

void ServerMetrics::record_cache_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_misses_;
}

void ServerMetrics::record_batch(std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  completed_ += size;
}

void ServerMetrics::record_coalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  ++coalesced_;
}

void ServerMetrics::record_feature_update() {
  std::lock_guard<std::mutex> lock(mu_);
  ++feature_updates_;
}

void ServerMetrics::record_graph_update(std::size_t stale) {
  std::lock_guard<std::mutex> lock(mu_);
  ++graph_updates_;
  stale_label_evictions_ += stale;
}

void ServerMetrics::record_promotion_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++promotions_;
  promotion_ms_total_ += ms;
  promotion_ms_max_ = std::max(promotion_ms_max_, ms);
}

void ServerMetrics::record_latency_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (latencies_ms_.size() < kLatencyWindow) {
    latencies_ms_.push_back(ms);
  } else {
    latencies_ms_[latency_samples_ % kLatencyWindow] = ms;
  }
  ++latency_samples_;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.requests = requests_;
  s.completed = completed_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.feature_updates = feature_updates_;
  s.graph_updates = graph_updates_;
  s.stale_label_evictions = stale_label_evictions_;
  s.promotions = promotions_;
  s.mean_promotion_ms =
      promotions_ ? promotion_ms_total_ / static_cast<double>(promotions_) : 0.0;
  s.max_promotion_ms = promotion_ms_max_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  const auto probes = cache_hits_ + cache_misses_;
  s.cache_hit_rate = probes ? static_cast<double>(cache_hits_) / probes : 0.0;
  s.mean_batch_size = batches_ ? static_cast<double>(completed_) / batches_ : 0.0;
  s.wall_seconds = since_.seconds();
  std::vector<double> sorted = latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_latency_ms = percentile(sorted, 0.50);
  s.p95_latency_ms = percentile(sorted, 0.95);
  s.p99_latency_ms = percentile(sorted, 0.99);
  s.max_latency_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

void ServerMetrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = completed_ = batches_ = cache_hits_ = cache_misses_ = 0;
  coalesced_ = feature_updates_ = promotions_ = 0;
  graph_updates_ = stale_label_evictions_ = 0;
  promotion_ms_total_ = promotion_ms_max_ = 0.0;
  latencies_ms_.clear();
  latency_samples_ = 0;
  since_.reset();
}

}  // namespace gv
