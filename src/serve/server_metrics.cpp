#include "serve/server_metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace gv {

namespace {
// snprintf-append into a growable string: the summary line is no longer at
// the mercy of one fixed stack buffer sized for last month's field count.
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  if (n > 0) {
    std::string big(static_cast<std::size_t>(n) + 1, '\0');
    va_start(args, fmt);
    std::vsnprintf(big.data(), big.size(), fmt, args);
    va_end(args);
    out.append(big.c_str());
  }
}
}  // namespace

std::string MetricsSnapshot::summary() const {
  std::string out;
  out.reserve(512);
  appendf(out, "%llu req (%llu batches, mean %.1f/batch) | %.0f req/s modeled | "
               "cache %.0f%% | p50 %.3f ms p95 %.3f ms p99 %.3f ms | "
               "%llu ecalls, %.2f MB in",
          static_cast<unsigned long long>(requests),
          static_cast<unsigned long long>(batches), mean_batch_size,
          requests_per_second, cache_hit_rate * 100.0, p50_latency_ms,
          p95_latency_ms, p99_latency_ms, static_cast<unsigned long long>(ecalls),
          bytes_in / (1024.0 * 1024.0));
  if (failovers || fenced_batches || promotions || restaffs || shard_faults) {
    appendf(out, " | failover %llu (fenced %llu, promoted %llu, restaffed %llu, "
                 "faults %llu)",
            static_cast<unsigned long long>(failovers),
            static_cast<unsigned long long>(fenced_batches),
            static_cast<unsigned long long>(promotions),
            static_cast<unsigned long long>(restaffs),
            static_cast<unsigned long long>(shard_faults));
  }
  if (cold_batches || cold_queries) {
    appendf(out, " | cold %llu batches %llu queries (%llu/%llu shards "
                 "computed/touched, %llu frontier rows, %.2f MB halo)",
            static_cast<unsigned long long>(cold_batches),
            static_cast<unsigned long long>(cold_queries),
            static_cast<unsigned long long>(cold_shards_computed),
            static_cast<unsigned long long>(cold_shards_touched),
            static_cast<unsigned long long>(cold_frontier_rows),
            (cold_halo_request_bytes + cold_halo_embedding_bytes) /
                (1024.0 * 1024.0));
  }
  if (graph_updates) {
    appendf(out, " | drift %llu updates (cut growth %.2f, imbalance %.2f, "
                 "%llu stale evictions)",
            static_cast<unsigned long long>(graph_updates), drift_cut_growth,
            drift_load_imbalance,
            static_cast<unsigned long long>(stale_label_evictions));
  }
  return out;
}

void ServerMetrics::record_request() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++requests_;
}

void ServerMetrics::record_cache_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++cache_hits_;
}

void ServerMetrics::record_cache_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++cache_misses_;
}

void ServerMetrics::record_batch(std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++batches_;
  completed_ += size;
}

void ServerMetrics::record_coalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++coalesced_;
}

void ServerMetrics::record_feature_update() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++feature_updates_;
}

void ServerMetrics::record_graph_update(std::size_t stale) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++graph_updates_;
  stale_label_evictions_ += stale;
}

void ServerMetrics::record_promotion_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++promotions_;
  promotion_ms_total_ += ms;
  promotion_ms_max_ = std::max(promotion_ms_max_, ms);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  // Percentiles come from the atomic histogram OUTSIDE the counter mutex:
  // a stats() poll no longer blocks request recording while it sorts (it
  // no longer sorts at all).
  const Histogram::Snapshot lat = latency_ms_.snapshot();
  s.p50_latency_ms = lat.percentile(0.50);
  s.p95_latency_ms = lat.percentile(0.95);
  s.p99_latency_ms = lat.percentile(0.99);
  s.max_latency_ms = lat.max;
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  s.requests = requests_;
  s.completed = completed_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.feature_updates = feature_updates_;
  s.graph_updates = graph_updates_;
  s.stale_label_evictions = stale_label_evictions_;
  s.promotions = promotions_;
  s.mean_promotion_ms =
      promotions_ ? promotion_ms_total_ / static_cast<double>(promotions_) : 0.0;
  s.max_promotion_ms = promotion_ms_max_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  const auto probes = cache_hits_ + cache_misses_;
  s.cache_hit_rate = probes ? static_cast<double>(cache_hits_) / probes : 0.0;
  s.mean_batch_size = batches_ ? static_cast<double>(completed_) / batches_ : 0.0;
  s.wall_seconds = since_.seconds();
  return s;
}

void ServerMetrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  requests_ = completed_ = batches_ = cache_hits_ = cache_misses_ = 0;
  coalesced_ = feature_updates_ = promotions_ = 0;
  graph_updates_ = stale_label_evictions_ = 0;
  promotion_ms_total_ = promotion_ms_max_ = 0.0;
  latency_ms_.reset();
  since_.reset();
}

}  // namespace gv
