#include "serve/batch_queue.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/query_trace.hpp"

namespace gv {

MicroBatchQueue::MicroBatchQueue(std::size_t max_batch,
                                 std::chrono::microseconds max_wait)
    : max_batch_(std::max<std::size_t>(1, max_batch)), max_wait_(max_wait) {
  index_.reserve(64);
}

std::uint32_t MicroBatchQueue::acquire_slot_locked() {
  if (free_head_ == kNone) {
    // Warm-up growth; recycled slots keep the slab stable afterwards.
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t idx = free_head_;
  free_head_ = slots_[idx].next;
  --free_slot_count_;
  return idx;
}

void MicroBatchQueue::release_slot_locked(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.entry.waiters.clear();  // capacity retained for the next occupant
  s.prev = kNone;
  s.next = free_head_;
  free_head_ = idx;
  ++free_slot_count_;
}

bool MicroBatchQueue::submit_locked(std::uint32_t node,
                                    const Sha256Digest& digest,
                                    TokenState* waiter) {
  const auto it = index_.find(node);
  if (it != index_.end() && slots_[it->second].entry.digest == digest) {
    // Same node, same feature snapshot: ride the existing slot.
    slots_[it->second].entry.waiters.push_back(waiter);
    return true;
  }
  const std::uint32_t idx = acquire_slot_locked();
  Slot& s = slots_[idx];
  s.entry.node = node;
  s.entry.digest = digest;
  s.entry.waiters.push_back(waiter);
  s.entry.enqueued = std::chrono::steady_clock::now();
  s.entry.query_id = next_query_id();
  // Append to the FIFO tail.
  s.next = kNone;
  s.prev = tail_;
  if (tail_ != kNone) {
    slots_[tail_].next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
  ++size_;
  if (size_ > depth_hw_) depth_hw_ = size_;
  // Point the index at the newest entry for this node (a digest mismatch
  // means the features changed between the two submissions; the stale
  // entry simply stops coalescing).
  if (it != index_.end()) {
    it->second = idx;
  } else {
    index_.emplace(node, idx);
  }
  return false;
}

bool MicroBatchQueue::submit(std::uint32_t node, const Sha256Digest& digest,
                             TokenState* waiter) {
  bool coalesced = false;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    GV_CHECK(!stopping_, "queue is shutting down");
    coalesced = submit_locked(node, digest, waiter);
  }
  cv_.notify_one();
  return coalesced;
}

std::size_t MicroBatchQueue::submit_many(
    std::span<const std::uint32_t> nodes,
    std::span<const Sha256Digest> digests,
    std::span<TokenState* const> waiters) {
  GV_CHECK(nodes.size() == digests.size() && nodes.size() == waiters.size(),
           "submit_many spans must be parallel");
  std::size_t coalesced = 0;
  {
    // The whole client batch rides ONE lock acquisition — the old front
    // ends paid one lock round-trip (and one wake) per node.
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    GV_CHECK(!stopping_, "queue is shutting down");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (submit_locked(nodes[i], digests[i], waiters[i])) ++coalesced;
    }
  }
  cv_.notify_all();
  return coalesced;
}

bool MicroBatchQueue::next_batch(Batch* out) {
  out->count = 0;
  if (out->entries.size() < max_batch_) out->entries.resize(max_batch_);
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  for (;;) {
    // Explicit wait loop (not the predicate overload) so every access to
    // the guarded queue state stays inside this REQUIRES-checked body.
    while (!stopping_ && size_ == 0) cv_.wait(mu_);
    if (size_ == 0) {
      if (stopping_) return false;
      continue;
    }
    // Dynamic micro-batching: grow the batch until it is full, the OLDEST
    // entry's deadline passes, or a flush/shutdown short-circuits it.  The
    // deadline is recomputed from the current front on every wake-up:
    // another worker may have drained the queue while we waited, and the
    // fresh entries that arrived since deserve their own full wait — a
    // batch must never flush early on a drained batch's leftover deadline.
    while (size_ < max_batch_ && !stopping_ && !flush_requested_) {
      const auto deadline = slots_[head_].entry.enqueued + max_wait_;
      if (std::chrono::steady_clock::now() >= deadline) break;
      cv_.wait_until(mu_, deadline);
      if (size_ == 0) break;  // another worker drained it
    }
    if (size_ == 0) {
      if (stopping_) return false;
      continue;
    }
    const std::size_t take = std::min(size_, max_batch_);
    for (std::size_t i = 0; i < take; ++i) {
      const std::uint32_t idx = head_;
      Slot& s = slots_[idx];
      const auto it = index_.find(s.entry.node);
      if (it != index_.end() && it->second == idx) index_.erase(it);
      Entry& dst = out->entries[i];
      dst.node = s.entry.node;
      dst.digest = s.entry.digest;
      dst.enqueued = s.entry.enqueued;
      dst.query_id = s.entry.query_id;
      // Swap waiter vectors: the slot inherits the batch entry's retained
      // capacity, the batch entry takes the waiters — capacities circulate
      // between slab and batch pool without ever hitting the heap.
      dst.waiters.swap(s.entry.waiters);
      head_ = s.next;
      if (head_ != kNone) {
        slots_[head_].prev = kNone;
      } else {
        tail_ = kNone;
      }
      release_slot_locked(idx);
      --size_;
    }
    out->count = take;
    if (size_ == 0) flush_requested_ = false;
    return true;
  }
}

void MicroBatchQueue::flush() {
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    if (size_ == 0) return;
    flush_requested_ = true;
  }
  cv_.notify_all();
}

void MicroBatchQueue::stop() {
  std::vector<TokenState*> orphans;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    if (stopping_) return;
    stopping_ = true;
    for (std::uint32_t idx = head_; idx != kNone;) {
      Slot& s = slots_[idx];
      for (TokenState* w : s.entry.waiters) orphans.push_back(w);
      const std::uint32_t next = s.next;
      release_slot_locked(idx);
      idx = next;
    }
    head_ = tail_ = kNone;
    size_ = 0;
    index_.clear();
  }
  cv_.notify_all();
  // Entries that never made it into a batch must not die silently when the
  // queue is destroyed: fail their waiters with an explicit shutdown error
  // they can report.
  const auto err = std::make_exception_ptr(Error("server shutting down"));
  for (TokenState* w : orphans) w->fail(err);
}

std::size_t MicroBatchQueue::pending() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return size_;
}

std::size_t MicroBatchQueue::depth_high_water() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return depth_hw_;
}

std::size_t MicroBatchQueue::slot_capacity() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return slots_.size();
}

std::size_t MicroBatchQueue::free_slots() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return free_slot_count_;
}

std::size_t MicroBatchQueue::index_size() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return index_.size();
}

}  // namespace gv
