#include "serve/batch_queue.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/query_trace.hpp"

namespace gv {

MicroBatchQueue::MicroBatchQueue(std::size_t max_batch,
                                 std::chrono::microseconds max_wait)
    : max_batch_(std::max<std::size_t>(1, max_batch)), max_wait_(max_wait) {}

bool MicroBatchQueue::submit(std::uint32_t node, const Sha256Digest& digest,
                             std::promise<std::uint32_t> waiter) {
  bool coalesced = false;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    GV_CHECK(!stopping_, "queue is shutting down");
    const auto it = index_.find(node);
    if (it != index_.end() && it->second->digest == digest) {
      // Same node, same feature snapshot: ride the existing slot.
      it->second->waiters.push_back(std::move(waiter));
      coalesced = true;
    } else {
      Entry e;
      e.node = node;
      e.digest = digest;
      e.waiters.push_back(std::move(waiter));
      e.enqueued = std::chrono::steady_clock::now();
      e.query_id = next_query_id();
      queue_.push_back(std::move(e));
      // Point the index at the newest entry for this node (a digest
      // mismatch means the features changed between the two submissions;
      // the stale entry simply stops coalescing).
      index_[node] = std::prev(queue_.end());
    }
  }
  cv_.notify_one();
  return coalesced;
}

std::vector<MicroBatchQueue::Entry> MicroBatchQueue::next_batch() {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  for (;;) {
    // Explicit wait loop (not the predicate overload) so every access to
    // the guarded queue state stays inside this REQUIRES-checked body.
    while (!stopping_ && queue_.empty()) cv_.wait(mu_);
    if (queue_.empty()) {
      if (stopping_) return {};
      continue;
    }
    // Dynamic micro-batching: grow the batch until it is full, the OLDEST
    // entry's deadline passes, or a flush/shutdown short-circuits it.  The
    // deadline is recomputed from the current front on every wake-up:
    // another worker may have drained the queue while we waited, and the
    // fresh entries that arrived since deserve their own full wait — a
    // batch must never flush early on a drained batch's leftover deadline.
    while (queue_.size() < max_batch_ && !stopping_ && !flush_requested_) {
      const auto deadline = queue_.front().enqueued + max_wait_;
      if (std::chrono::steady_clock::now() >= deadline) break;
      cv_.wait_until(mu_, deadline);
      if (queue_.empty()) break;  // another worker drained it
    }
    if (queue_.empty()) {
      if (stopping_) return {};
      continue;
    }
    const std::size_t take = std::min(queue_.size(), max_batch_);
    std::vector<Entry> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      const auto it = queue_.begin();
      const auto idx = index_.find(it->node);
      if (idx != index_.end() && idx->second == it) index_.erase(idx);
      batch.push_back(std::move(*it));
      queue_.erase(it);
    }
    if (queue_.empty()) flush_requested_ = false;
    return batch;
  }
}

void MicroBatchQueue::flush() {
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    if (queue_.empty()) return;
    flush_requested_ = true;
  }
  cv_.notify_all();
}

void MicroBatchQueue::stop() {
  std::list<Entry> orphans;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kQueue);
    stopping_ = true;
    orphans.swap(queue_);
    index_.clear();
  }
  cv_.notify_all();
  // Entries that never made it into a batch must not die as broken_promise
  // when the queue is destroyed: fail their waiters with an explicit
  // shutdown error they can report.
  const auto err = std::make_exception_ptr(Error("server shutting down"));
  for (auto& e : orphans) {
    for (auto& waiter : e.waiters) waiter.set_exception(err);
  }
}

std::size_t MicroBatchQueue::pending() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kQueue);
  return queue_.size();
}

}  // namespace gv
