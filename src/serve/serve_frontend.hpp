// ServeFrontEnd: the unified JobServe serving front end.
//
// Before this redesign, VaultServer and ShardedVaultServer each hand-rolled
// the same submit / submit_many / query / worker-loop / execute-batch
// machinery around a MicroBatchQueue and a FIFO ThreadPool.  ServeFrontEnd
// owns that machinery ONCE — both servers now compose it and plug in a
// ServeBackend that answers "what are the labels of these nodes":
//
//   callers ── submit(node) ─▶ LabelCache probe ─ hit ─▶ inline-ready token
//                   │ miss                                  (zero alloc)
//                   ▼
//            MicroBatchQueue  (coalescing, deadline micro-batching,
//                   │          pooled slots — zero alloc after warm-up)
//                   ▼
//            dispatcher thread ── pops batches, posts INTERACTIVE flush
//                   │             jobs (pooled Batch + arena)
//                   ▼
//            JobSystem workers ── work-stealing, 3 priority classes;
//                   │             maintenance/cold work (migrations,
//                   │             recomputes) rides the SAME workers at
//                   ▼             lower priority, capped in flight
//            ServeBackend::execute  (one ecall / one routed fan-out)
//                   │
//            tokens resolve; labels cached; QueryLens stages recorded
//
// The observability contract of the old worker loops survives verbatim:
// the per-entry `queue` stage, the async "serve/queue_wait" slice labeled
// with the oldest entry's query id, the QueryScope of the representative
// (first) entry, the "serve/batch_flush" span with batch_size/waiters args
// and the modeled-seconds delta, the `flush` stage, and record_batch
// landing BEFORE any token resolves.
//
// Shutdown ordering (stop()): the queue rejects new work and fails queued
// INTERACTIVE waiters with the existing "server shutting down" Error; the
// dispatcher exits; the job system cancels queued interactive/cold jobs
// (their cancel handlers fail the batch's waiters the same way) while
// queued MAINTENANCE drains bounded by cfg.shutdown_drain; in-flight jobs
// always complete.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"
#include "serve/batch_queue.hpp"
#include "serve/job_system.hpp"
#include "serve/label_cache.hpp"
#include "serve/server_metrics.hpp"
#include "serve/submit_token.hpp"

namespace gv {

class EngineProbe;

struct ServerConfig {
  /// Flush a batch as soon as this many requests are pending.
  std::size_t max_batch = 32;
  /// ... or when the oldest pending request has waited this long.
  std::chrono::microseconds max_wait{2000};
  /// JobSystem workers executing batch flushes and background jobs (each
  /// batch is one serialized ecall; extra workers overlap untrusted-side
  /// work with enclave execution).
  std::size_t worker_threads = 1;
  /// LRU label-cache entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Maintenance jobs allowed in flight at once (tenant QoS: interactive
  /// work can never be starved of workers).  0 = max(1, worker_threads-1).
  std::size_t max_maintenance_in_flight = 0;
  /// Shutdown: how long queued MAINTENANCE jobs may keep draining after
  /// stop() before being cancelled.
  std::chrono::milliseconds shutdown_drain{200};
  /// Tenant this engine serves — the `engine` label on every EngineProbe
  /// instrument and the TenantLedger attribution key.  VaultRegistry
  /// admission overwrites it with the admitted tenant's name.
  std::string tenant = "default";
};

/// What a server plugs into the front end: the label computation (and the
/// cache-key digests that go with it).
class ServeBackend {
 public:
  struct BatchResult {
    /// False when the labels must not be cached (e.g. the ownership epoch
    /// moved mid-batch and digests can no longer vouch for them).
    bool cacheable = true;
  };

  virtual ~ServeBackend() = default;

  /// Cache-key digest of the node's current feature row (submit path).
  virtual Sha256Digest row_digest(std::uint32_t node) const = 0;

  /// Compute labels[i] for nodes[i] (one batch = one ecall / one routed
  /// fan-out).  When `digests` is non-empty (caching on), also fill
  /// digests[i] with the digest of the snapshot the label was computed
  /// against.  Runs on a JobSystem worker under the batch's QueryScope.
  virtual BatchResult execute(std::span<const std::uint32_t> nodes,
                              std::span<std::uint32_t> labels,
                              std::span<Sha256Digest> digests) = 0;

  /// Total modeled SGX seconds accumulated so far (batch_flush span delta).
  virtual double modeled_seconds_total() const = 0;
};

class ServeFrontEnd {
 public:
  /// `num_nodes` bounds submit()'s node ids (grows via set_num_nodes).
  /// The backend must outlive the front end.
  ServeFrontEnd(ServeBackend& backend, const ServerConfig& cfg,
                std::size_t num_nodes);
  ~ServeFrontEnd();

  ServeFrontEnd(const ServeFrontEnd&) = delete;
  ServeFrontEnd& operator=(const ServeFrontEnd&) = delete;

  /// Asynchronous per-node label query.  Cache hits return an inline-ready
  /// token; misses enqueue a pooled token — zero heap either way after
  /// warm-up.  Throws gv::Error after stop().
  SubmitToken submit(std::uint32_t node);

  /// Node-subset query: one token per node, preserving order.  All cache
  /// misses enqueue under ONE queue-lock acquisition.
  SubmitBatch submit_many(std::span<const std::uint32_t> nodes);

  /// Convenience blocking query.
  std::uint32_t query(std::uint32_t node);

  /// Background (non-interactive) work sharing the serving workers:
  /// kCold for demand recomputes, kMaintenance for migrations /
  /// replication / re-materialization sweeps.  `on_cancel` runs instead of
  /// `fn` if the job is shed at shutdown.
  void post_background(JobClass cls, std::function<void()> fn,
                       std::function<void()> on_cancel = nullptr);

  /// Force-flush pending requests without waiting for the deadline.
  void flush();
  /// Pending (queued, unflushed) requests; coalesced duplicates count once.
  std::size_t pending() const;

  /// Shutdown (idempotent; also run by the destructor): fail queued
  /// interactive work, drain maintenance bounded by cfg.shutdown_drain,
  /// join dispatcher + workers.
  void stop();

  /// Grow the valid node-id range (update_graph node adds).
  void set_num_nodes(std::size_t n) { num_nodes_.store(n); }
  std::size_t num_nodes() const { return num_nodes_.load(); }

  LabelCache& cache() { return cache_; }
  const LabelCache& cache() const { return cache_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  JobSystem& jobs() { return jobs_; }
  const ServerConfig& config() const { return cfg_; }
  /// EngineScope probe for this engine (labeled `engine=cfg.tenant`).
  EngineProbe& probe() { return *probe_; }

 private:
  using Batch = MicroBatchQueue::Batch;

  void dispatcher_loop();
  void execute_batch(Batch& b);
  /// Fail every waiter of an undispatched batch with the shutdown error.
  void fail_batch_shutdown(Batch& b);

  Batch* acquire_batch();
  void release_batch(Batch* b);

  ServeBackend& backend_;
  ServerConfig cfg_;
  LabelCache cache_;
  ServerMetrics metrics_;
  std::atomic<std::size_t> num_nodes_;

  /// Declared BEFORE the engine pieces it observes: the token pool's
  /// detach-time observer callback and the dtor's final pull must find the
  /// probe alive while queue_/tokens_/jobs_ are torn down.
  std::unique_ptr<EngineProbe> probe_;

  MicroBatchQueue queue_;
  TokenPool tokens_;
  JobSystem jobs_;

  /// Pooled batches cycling between the dispatcher and flush jobs; their
  /// entry/waiter capacities and arena blocks are retained across reuse.
  mutable Mutex pool_mu_ GV_LOCK_RANK(gv::lockrank::kJobQueue){
      gv::lockrank::kJobQueue};
  std::vector<std::unique_ptr<Batch>> all_batches_ GV_GUARDED_BY(pool_mu_);
  std::vector<Batch*> free_batches_ GV_GUARDED_BY(pool_mu_);

  std::thread dispatcher_;
  std::atomic<bool> stopped_{false};
};

}  // namespace gv
