#include "serve/vault_server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

VaultServer::VaultServer(const Dataset& ds, TrainedVault vault,
                         DeploymentOptions dopts, ServerConfig cfg)
    : features_(ds.features),
      cfg_(cfg),
      deployment_(ds, std::move(vault), dopts),
      cache_(cfg.cache_capacity),
      pool_(std::max<std::size_t>(1, cfg.worker_threads)) {
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  cfg_.worker_threads = pool_.size();
  workers_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    workers_.push_back(pool_.submit([this] { worker_loop(); }));
  }
}

VaultServer::~VaultServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    try {
      w.get();
    } catch (...) {
      // Worker loops only throw on catastrophic failure; shutdown proceeds.
    }
  }
}

std::future<std::uint32_t> VaultServer::submit(std::uint32_t node) {
  GV_CHECK(node < features_.rows(), "query node out of range");
  metrics_.record_request();
  Sha256Digest digest{};  // only computed (and consulted) when caching is on
  if (cache_.enabled()) {
    digest = feature_row_digest(features_, node);
    if (const auto hit = cache_.get(node, digest)) {
      metrics_.record_cache_hit();
      metrics_.record_latency_ms(0.0);
      std::promise<std::uint32_t> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
    metrics_.record_cache_miss();
  }
  Pending req;
  req.node = node;
  req.digest = digest;
  req.enqueued = std::chrono::steady_clock::now();
  std::future<std::uint32_t> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    GV_CHECK(!stopping_, "VaultServer is shutting down");
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

std::vector<std::future<std::uint32_t>> VaultServer::submit_many(
    std::span<const std::uint32_t> nodes) {
  std::vector<std::future<std::uint32_t>> futs;
  futs.reserve(nodes.size());
  for (const auto node : nodes) futs.push_back(submit(node));
  return futs;
}

std::uint32_t VaultServer::query(std::uint32_t node) { return submit(node).get(); }

void VaultServer::flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;
    flush_requested_ = true;
  }
  cv_.notify_all();
}

std::size_t VaultServer::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

MetricsSnapshot VaultServer::stats() const {
  MetricsSnapshot s = metrics_.snapshot();
  const CostMeter m = deployment_.enclave().meter_snapshot();
  s.ecalls = m.ecalls;
  s.bytes_in = m.bytes_in;
  s.modeled_seconds = m.total_seconds(deployment_.cost_model());
  const auto served = s.completed + s.cache_hits;
  s.requests_per_second =
      s.modeled_seconds > 0.0 ? static_cast<double>(served) / s.modeled_seconds : 0.0;
  return s;
}

void VaultServer::reset_stats() {
  metrics_.reset();
  deployment_.reset_meter();
}

const std::vector<Matrix>& VaultServer::backbone_outputs() {
  // The backbone is untrusted-world state over a fixed feature snapshot:
  // run it once and serve every batch from the cached embeddings.
  std::call_once(backbone_once_,
                 [&] { backbone_outputs_ = deployment_.run_backbone(features_); });
  return backbone_outputs_;
}

void VaultServer::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Dynamic micro-batching: grow the batch until it is full, the oldest
      // request's deadline passes, or a flush/shutdown short-circuits it.
      const auto deadline = queue_.front().enqueued + cfg_.max_wait;
      while (queue_.size() < cfg_.max_batch && !stopping_ && !flush_requested_) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
        if (queue_.empty()) break;  // another worker drained it
      }
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const std::size_t take = std::min(queue_.size(), cfg_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (queue_.empty()) flush_requested_ = false;
    }
    execute_batch(std::move(batch));
  }
}

void VaultServer::execute_batch(std::vector<Pending> batch) {
  std::vector<std::uint32_t> nodes;
  nodes.reserve(batch.size());
  for (const auto& p : batch) nodes.push_back(p.node);
  try {
    const auto& outputs = backbone_outputs();
    // The whole batch rides ONE ecall; only its labels come back.
    const auto labels = deployment_.infer_labels_batched(outputs, nodes);
    const auto done = std::chrono::steady_clock::now();
    // Account the batch before resolving any promise, so a caller observing
    // its future completed also observes the batch in stats().
    metrics_.record_batch(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      cache_.put(batch[i].node, batch[i].digest, labels[i]);
      metrics_.record_latency_ms(
          std::chrono::duration<double, std::milli>(done - batch[i].enqueued)
              .count());
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(labels[i]);
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (auto& p : batch) p.promise.set_exception(err);
  }
}

}  // namespace gv
