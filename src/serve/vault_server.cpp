#include "serve/vault_server.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace gv {

VaultServer::VaultServer(const Dataset& ds, TrainedVault vault,
                         DeploymentOptions dopts, ServerConfig cfg)
    : cfg_(cfg),
      deployment_(ds, std::move(vault), dopts),
      cache_(cfg.cache_capacity),
      num_nodes_(ds.features.rows()),
      queue_(cfg.max_batch, cfg.max_wait),
      pool_(std::max<std::size_t>(1, cfg.worker_threads)) {
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  cfg_.worker_threads = pool_.size();
  snap_ = std::make_shared<Snapshot>();
  snap_->features = ds.features;
  workers_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    workers_.push_back(pool_.submit([this] { worker_loop(); }));
  }
}

VaultServer::~VaultServer() {
  queue_.stop();
  for (auto& w : workers_) {
    try {
      w.get();
    } catch (...) {
      // Worker loops only throw on catastrophic failure; shutdown proceeds.
    }
  }
}

std::shared_ptr<VaultServer::Snapshot> VaultServer::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return snap_;
}

const CsrMatrix& VaultServer::features() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return snap_->features;
}

std::future<std::uint32_t> VaultServer::submit(std::uint32_t node) {
  GV_CHECK(node < num_nodes_, "query node out of range");
  metrics_.record_request();
  Sha256Digest digest{};  // only computed (and consulted) when caching is on
  if (cache_.enabled()) {
    const auto snap = current_snapshot();
    digest = feature_row_digest(snap->features, node);
    if (const auto hit = cache_.get(node, digest)) {
      metrics_.record_cache_hit();
      metrics_.record_latency_ms(0.0);
      std::promise<std::uint32_t> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
    metrics_.record_cache_miss();
  }
  std::promise<std::uint32_t> promise;
  std::future<std::uint32_t> fut = promise.get_future();
  if (queue_.submit(node, digest, std::move(promise))) {
    metrics_.record_coalesced();
  }
  return fut;
}

std::vector<std::future<std::uint32_t>> VaultServer::submit_many(
    std::span<const std::uint32_t> nodes) {
  std::vector<std::future<std::uint32_t>> futs;
  futs.reserve(nodes.size());
  for (const auto node : nodes) futs.push_back(submit(node));
  return futs;
}

std::uint32_t VaultServer::query(std::uint32_t node) { return submit(node).get(); }

void VaultServer::update_features(const CsrMatrix& new_features) {
  GV_CHECK(new_features.rows() == num_nodes_,
           "feature update must keep the node set");
  auto fresh = std::make_shared<Snapshot>();
  fresh->features = new_features;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    GV_CHECK(new_features.cols() == snap_->features.cols(),
             "feature update must keep the feature dimension");
    snap_ = std::move(fresh);
  }
  // Digest-based invalidation: entries for rows that actually changed are
  // evicted; untouched rows keep their labels (see LabelCache docs for the
  // locality approximation this accepts).
  cache_.invalidate_stale(new_features);
  metrics_.record_feature_update();
}

void VaultServer::flush() { queue_.flush(); }

std::size_t VaultServer::pending() const { return queue_.pending(); }

MetricsSnapshot VaultServer::stats() const {
  MetricsSnapshot s = metrics_.snapshot();
  const CostMeter m = deployment_.enclave().meter_snapshot();
  s.ecalls = m.ecalls;
  s.bytes_in = m.bytes_in;
  s.modeled_seconds = m.total_seconds(deployment_.cost_model());
  const auto served = s.completed + s.cache_hits;
  s.requests_per_second =
      s.modeled_seconds > 0.0 ? static_cast<double>(served) / s.modeled_seconds : 0.0;
  return s;
}

void VaultServer::reset_stats() {
  metrics_.reset();
  deployment_.reset_meter();
}

void VaultServer::worker_loop() {
  for (;;) {
    auto batch = queue_.next_batch();
    if (batch.empty()) return;  // stopped and drained
    execute_batch(std::move(batch));
  }
}

void VaultServer::execute_batch(std::vector<MicroBatchQueue::Entry> batch) {
  std::vector<std::uint32_t> nodes;
  nodes.reserve(batch.size());
  std::size_t waiters = 0;
  auto oldest = std::chrono::steady_clock::now();
  for (const auto& e : batch) {
    nodes.push_back(e.node);
    waiters += e.waiters.size();
    oldest = std::min(oldest, e.enqueued);
  }
  const auto flush_start = std::chrono::steady_clock::now();
  // Queue stage, per entry: enqueue -> flush start.  The oldest entry also
  // labels the async queue_wait slice with its query id.
  std::uint64_t oldest_qid = 0;
  for (const auto& e : batch) {
    if (e.enqueued == oldest) oldest_qid = e.query_id;
    record_query_stage(
        QueryStage::kQueue,
        std::chrono::duration<double>(flush_start - e.enqueued).count());
  }
  // The wait the batch's oldest request spent in the micro-batch queue,
  // reconstructed from its enqueue timestamp (no-op when tracing is off).
  TraceRecorder::instance().emit_async("serve", "queue_wait", oldest,
                                 flush_start, 0.0,
                                 {{"batch_size", double(batch.size())},
                                  {"query_id", double(oldest_qid)}});
  // The flush runs in the scope of the batch's first entry — a multi-query
  // batch attributes its shared spans to that representative query (the
  // batch is one causal unit: one route, one set of ecalls).
  QueryScope qscope(batch.front().query_id);
  TraceSpan span("serve", "batch_flush");
  span.arg("batch_size", double(batch.size()));
  span.arg("waiters", double(waiters));
  double modeled_before = 0.0;
  if (span.active()) {
    modeled_before = deployment_.enclave().meter_snapshot().total_seconds(
        deployment_.cost_model());
  }
  try {
    // Pin the snapshot this batch computes against; a concurrent
    // update_features swaps the server's pointer but cannot mutate ours.
    const auto snap = current_snapshot();
    std::call_once(snap->backbone_once, [&] {
      // The backbone is untrusted-world state over a fixed feature
      // snapshot: run it once and serve every batch from the embeddings.
      snap->outputs = deployment_.run_backbone(snap->features);
    });
    // The whole batch rides ONE ecall; only its labels come back.
    const auto ecall_start = std::chrono::steady_clock::now();
    const auto labels = deployment_.infer_labels_batched(snap->outputs, nodes);
    const auto done = std::chrono::steady_clock::now();
    record_query_stage(QueryStage::kEcall,
                       std::chrono::duration<double>(done - ecall_start).count());
    record_query_stage(QueryStage::kFlush,
                       std::chrono::duration<double>(done - flush_start).count());
    if (span.active()) {
      span.modeled_seconds(deployment_.enclave().meter_snapshot().total_seconds(
                               deployment_.cost_model()) -
                           modeled_before);
    }
    // Account the batch before resolving any promise, so a caller observing
    // its future completed also observes the batch in stats().
    metrics_.record_batch(waiters);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (cache_.enabled()) {
        // Re-derive the digest from the snapshot the label was computed
        // against (the submit-time digest may predate a feature update).
        cache_.put(batch[i].node, feature_row_digest(snap->features, batch[i].node),
                   labels[i]);
      }
      const double ms =
          std::chrono::duration<double, std::milli>(done - batch[i].enqueued)
              .count();
      for (std::size_t w = 0; w < batch[i].waiters.size(); ++w) {
        metrics_.record_latency_ms(ms);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (auto& waiter : batch[i].waiters) waiter.set_value(labels[i]);
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (auto& e : batch) {
      for (auto& waiter : e.waiters) waiter.set_exception(err);
    }
  }
}

}  // namespace gv
