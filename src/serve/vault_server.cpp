#include "serve/vault_server.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/query_trace.hpp"
#include "obs/tenant_ledger.hpp"

namespace gv {

VaultServer::VaultServer(const Dataset& ds, TrainedVault vault,
                         DeploymentOptions dopts, ServerConfig cfg)
    : deployment_(ds, std::move(vault), dopts),
      snap_(std::make_shared<Snapshot>()),
      frontend_(*this, cfg, ds.features.rows()) {
  // The front end's threads are already up, but no query can reach the
  // backend until this constructor returns the server to a caller.
  snap_->features = ds.features;
  // EngineScope: attribute this engine's metered usage to its tenant.  A
  // single-enclave server has no attested channels, so the channel columns
  // stay zero.
  TenantLedger::global().register_provider(
      this, frontend_.config().tenant, [this] {
        const MetricsSnapshot s = stats();
        TenantUsage u;
        u.modeled_seconds = s.modeled_seconds;
        u.ecalls = s.ecalls;
        u.batches = s.batches;
        u.cache_hits = s.cache_hits;
        u.cache_misses = s.cache_misses;
        return u;
      });
}

VaultServer::~VaultServer() {
  // Unregister FIRST (it blocks out any in-flight ledger call): the
  // provider reads state the teardown below destroys.
  TenantLedger::global().unregister(this);
  frontend_.stop();
}

std::shared_ptr<VaultServer::Snapshot> VaultServer::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return snap_;
}

const CsrMatrix& VaultServer::features() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return snap_->features;
}

Sha256Digest VaultServer::row_digest(std::uint32_t node) const {
  const auto snap = current_snapshot();
  return feature_row_digest(snap->features, node);
}

double VaultServer::modeled_seconds_total() const {
  return deployment_.enclave().meter_snapshot().total_seconds(
      deployment_.cost_model());
}

ServeBackend::BatchResult VaultServer::execute(
    std::span<const std::uint32_t> nodes, std::span<std::uint32_t> labels,
    std::span<Sha256Digest> digests) {
  // Pin the snapshot this batch computes against; a concurrent
  // update_features swaps the server's pointer but cannot mutate ours.
  const auto snap = current_snapshot();
  std::call_once(snap->backbone_once, [&] {
    // The backbone is untrusted-world state over a fixed feature snapshot:
    // run it once and serve every batch from the embeddings.
    snap->outputs = deployment_.run_backbone(snap->features);
  });
  // The whole batch rides ONE ecall; only its labels come back.
  const auto ecall_start = std::chrono::steady_clock::now();
  const auto out = deployment_.infer_labels_batched(snap->outputs, nodes);
  record_query_stage(QueryStage::kEcall,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ecall_start)
                         .count());
  std::copy(out.begin(), out.end(), labels.begin());
  // Re-derive cache digests from the snapshot the labels were computed
  // against (the submit-time digest may predate a feature update).
  for (std::size_t i = 0; i < digests.size(); ++i) {
    digests[i] = feature_row_digest(snap->features, nodes[i]);
  }
  return BatchResult{true};
}

void VaultServer::update_features(const CsrMatrix& new_features) {
  GV_CHECK(new_features.rows() == frontend_.num_nodes(),
           "feature update must keep the node set");
  auto fresh = std::make_shared<Snapshot>();
  fresh->features = new_features;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    GV_CHECK(new_features.cols() == snap_->features.cols(),
             "feature update must keep the feature dimension");
    snap_ = std::move(fresh);
  }
  // Digest-based invalidation: entries for rows that actually changed are
  // evicted; untouched rows keep their labels (see LabelCache docs for the
  // locality approximation this accepts).
  frontend_.cache().invalidate_stale(new_features);
  frontend_.metrics().record_feature_update();
}

MetricsSnapshot VaultServer::stats() const {
  MetricsSnapshot s = frontend_.metrics().snapshot();
  const CostMeter m = deployment_.enclave().meter_snapshot();
  s.ecalls = m.ecalls;
  s.bytes_in = m.bytes_in;
  s.modeled_seconds = m.total_seconds(deployment_.cost_model());
  const auto served = s.completed + s.cache_hits;
  s.requests_per_second =
      s.modeled_seconds > 0.0 ? static_cast<double>(served) / s.modeled_seconds : 0.0;
  return s;
}

void VaultServer::reset_stats() {
  frontend_.metrics().reset();
  deployment_.reset_meter();
}

}  // namespace gv
