#include "serve/job_system.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

namespace {
// Which JobSystem (if any) owns the current thread, so posts from inside a
// job land on the posting worker's own deque (no cross-worker hop, no
// steal needed for the common produce-consume chain).
thread_local JobSystem* tls_system = nullptr;
thread_local std::size_t tls_worker = 0;
}  // namespace

// --- JobRing -----------------------------------------------------------------

void JobSystem::JobRing::grow() {
  const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
  std::vector<Job> next(cap);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = std::move(buf_[(head_ + i) % buf_.size()]);
  }
  buf_ = std::move(next);
  head_ = 0;
}

void JobSystem::JobRing::push_back(Job j) {
  if (size_ == buf_.size()) grow();
  buf_[(head_ + size_) % buf_.size()] = std::move(j);
  ++size_;
}

JobSystem::Job JobSystem::JobRing::pop_front() {
  Job j = std::move(buf_[head_]);
  head_ = (head_ + 1) % buf_.size();
  --size_;
  return j;
}

JobSystem::Job JobSystem::JobRing::pop_back() {
  Job j = std::move(buf_[(head_ + size_ - 1) % buf_.size()]);
  --size_;
  return j;
}

// --- JobSystem ---------------------------------------------------------------

JobSystem::JobSystem(std::size_t workers, std::size_t max_maintenance_in_flight) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  maintenance_cap_ = max_maintenance_in_flight != 0
                         ? max_maintenance_in_flight
                         : std::max<std::size_t>(1, n - 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

JobSystem::~JobSystem() { stop(); }

void JobSystem::post(JobClass cls, std::function<void()> run,
                     std::function<void()> cancel) {
  const auto ci = static_cast<std::size_t>(cls);
  std::size_t target;
  if (tls_system == this) {
    target = tls_worker;
  } else {
    target = next_post_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  bool accepted = false;
  {
    Worker& w = *workers_[target];
    MutexLock lock(w.mu);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    // Checked under the deque lock: stop() flips accepting_ BEFORE sweeping
    // each deque under this same lock, so a post that lands after the sweep
    // is guaranteed to observe accepting_ == false here.
    if (accepting_.load(std::memory_order_acquire)) {
      Job j;
      j.run = std::move(run);
      j.cancel = std::move(cancel);
      j.cls = cls;
      w.lanes[ci].push_back(std::move(j));
      if (w.lanes[ci].size() > w.depth_hw[ci]) w.depth_hw[ci] = w.lanes[ci].size();
      queued_total_.fetch_add(1, std::memory_order_relaxed);
      accepted = true;
    }
  }
  if (!accepted) {
    if (cancel) cancel();
    cancelled_[ci].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  signal_work();
}

bool JobSystem::pop_runnable(Worker& w, bool steal, Job* out,
                             bool* reserved_maint) {
  for (std::size_t c = 0; c < kNumJobClasses; ++c) {
    JobRing& lane = w.lanes[c];
    if (lane.empty()) continue;
    if (c == static_cast<std::size_t>(JobClass::kMaintenance)) {
      // Reserve a maintenance slot BEFORE popping so the cap is never
      // transiently exceeded across workers.
      std::size_t cur = maintenance_running_.load(std::memory_order_relaxed);
      bool got = false;
      while (cur < maintenance_cap_) {
        if (maintenance_running_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_acq_rel)) {
          got = true;
          break;
        }
      }
      if (!got) continue;  // cap saturated: this lane is not runnable now
      *reserved_maint = true;
      // Cap-occupancy high-water (EngineProbe gauge); maintenance pops are
      // rare, so the CAS loop never spins in practice.
      std::size_t now = cur + 1;
      std::size_t hw = maintenance_high_water_.load(std::memory_order_relaxed);
      while (now > hw && !maintenance_high_water_.compare_exchange_weak(
                             hw, now, std::memory_order_relaxed)) {
      }
    }
    *out = steal ? lane.pop_back() : lane.pop_front();
    queued_total_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool JobSystem::try_run_one(std::size_t self) {
  Worker& me = *workers_[self];
  Job job;
  bool reserved = false;
  bool found = false;
  {
    MutexLock lock(me.mu);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    found = pop_runnable(me, /*steal=*/false, &job, &reserved);
  }
  if (found) {
    execute(std::move(job), reserved, me);
    return true;
  }
  if (workers_.size() == 1) return false;
  // Steal: start at a random victim, fall back to scanning the rest.
  me.rng ^= me.rng << 13;
  me.rng ^= me.rng >> 7;
  me.rng ^= me.rng << 17;
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(me.rng % n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == self) continue;
    Worker& victim = *workers_[v];
    {
      MutexLock lock(victim.mu);
      GV_RANK_SCOPE(lockrank::kJobQueue);
      found = pop_runnable(victim, /*steal=*/true, &job, &reserved);
    }
    if (found) {
      me.steal_hits.fetch_add(1, std::memory_order_relaxed);
      execute(std::move(job), reserved, me);
      return true;
    }
  }
  me.steal_misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void JobSystem::execute(Job job, bool reserved_maint, Worker& me) {
  running_total_.fetch_add(1, std::memory_order_relaxed);
  try {
    if (job.run) job.run();
  } catch (...) {
    // Jobs own their error reporting (flush jobs fail their waiters); a
    // leaked exception must not take the worker down.
  }
  if (reserved_maint) {
    maintenance_running_.fetch_sub(1, std::memory_order_acq_rel);
  }
  running_total_.fetch_sub(1, std::memory_order_relaxed);
  // Worker-local count: one relaxed add, no stats mutex on the hot path.
  me.executed[static_cast<std::size_t>(job.cls)].fetch_add(
      1, std::memory_order_relaxed);
  // A finished maintenance job frees a cap slot; sleeping workers (and
  // drain_idle waiters) must recheck.
  signal_work();
}

void JobSystem::signal_work() {
  {
    MutexLock lock(idle_mu_);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    ++work_signal_;
  }
  idle_cv_.notify_all();
  drained_cv_.notify_all();
}

void JobSystem::worker_loop(std::size_t self) {
  tls_system = this;
  tls_worker = self;
  Worker& me = *workers_[self];
  me.rng = 0x9e3779b97f4a7c15ull ^ (0xbf58476d1ce4e5b9ull * (self + 1));
  for (;;) {
    std::uint64_t seen;
    {
      MutexLock lock(idle_mu_);
      GV_RANK_SCOPE(lockrank::kJobQueue);
      seen = work_signal_;
    }
    if (try_run_one(self)) continue;
    MutexLock lock(idle_mu_);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    bool parked = false;
    while (work_signal_ == seen && !stopping_) {
      if (!parked) {
        parked = true;
        me.parks.fetch_add(1, std::memory_order_relaxed);
      }
      idle_cv_.wait(idle_mu_);
    }
    if (parked) me.unparks.fetch_add(1, std::memory_order_relaxed);
    if (stopping_ && work_signal_ == seen) return;
    // stopping_ with a changed signal: drain whatever is still runnable
    // (the shutdown drain window) before exiting.
    if (stopping_) continue;
  }
}

void JobSystem::stop(std::chrono::milliseconds drain) {
  bool expected = true;
  if (!accepting_.compare_exchange_strong(expected, false)) return;

  // Phase 1: cancel queued INTERACTIVE and COLD work.  accepting_ is
  // already false, so post() cannot add to a lane after we sweep it.
  std::vector<Job> cancelled;
  for (auto& wp : workers_) {
    MutexLock lock(wp->mu);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    for (std::size_t c = 0; c < 2; ++c) {
      JobRing& lane = wp->lanes[c];
      while (!lane.empty()) {
        cancelled.push_back(lane.pop_front());
        queued_total_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  // Phase 2: let queued MAINTENANCE drain, bounded by the deadline.
  const auto deadline = std::chrono::steady_clock::now() + drain;
  for (;;) {
    std::size_t queued_maint = 0;
    for (auto& wp : workers_) {
      MutexLock lock(wp->mu);
      GV_RANK_SCOPE(lockrank::kJobQueue);
      queued_maint +=
          wp->lanes[static_cast<std::size_t>(JobClass::kMaintenance)].size();
    }
    if (queued_maint == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    signal_work();  // cap slots may have freed; keep workers chewing
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Phase 3: cancel maintenance stragglers that missed the deadline.
  for (auto& wp : workers_) {
    MutexLock lock(wp->mu);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    JobRing& lane = wp->lanes[static_cast<std::size_t>(JobClass::kMaintenance)];
    while (!lane.empty()) {
      cancelled.push_back(lane.pop_front());
      queued_total_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  for (auto& j : cancelled) {
    if (j.cancel) j.cancel();
  }
  for (const auto& j : cancelled) {
    cancelled_[static_cast<std::size_t>(j.cls)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Phase 4: wake everyone and join (in-flight jobs run to completion).
  {
    MutexLock lock(idle_mu_);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    stopping_ = true;
    ++work_signal_;
  }
  idle_cv_.notify_all();
  for (auto& wp : workers_) {
    if (wp->thread.joinable()) wp->thread.join();
  }
  drained_cv_.notify_all();
}

void JobSystem::drain_idle() {
  MutexLock lock(idle_mu_);
  GV_RANK_SCOPE(lockrank::kJobQueue);
  while (queued_total_.load(std::memory_order_relaxed) != 0 ||
         running_total_.load(std::memory_order_relaxed) != 0) {
    drained_cv_.wait(idle_mu_);
  }
}

JobSystemStats JobSystem::stats() const {
  JobSystemStats s;
  for (const auto& wp : workers_) {
    for (std::size_t c = 0; c < kNumJobClasses; ++c) {
      s.executed[c] += wp->executed[c].load(std::memory_order_relaxed);
    }
    s.stolen += wp->steal_hits.load(std::memory_order_relaxed);
    s.steal_misses += wp->steal_misses.load(std::memory_order_relaxed);
    s.parks += wp->parks.load(std::memory_order_relaxed);
    s.unparks += wp->unparks.load(std::memory_order_relaxed);
  }
  for (std::size_t c = 0; c < kNumJobClasses; ++c) {
    s.cancelled[c] = cancelled_[c].load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<JobWorkerSnapshot> JobSystem::worker_snapshots() const {
  std::vector<JobWorkerSnapshot> out(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    JobWorkerSnapshot& s = out[i];
    for (std::size_t c = 0; c < kNumJobClasses; ++c) {
      s.executed[c] = w.executed[c].load(std::memory_order_relaxed);
    }
    s.steal_hits = w.steal_hits.load(std::memory_order_relaxed);
    s.steal_misses = w.steal_misses.load(std::memory_order_relaxed);
    s.parks = w.parks.load(std::memory_order_relaxed);
    s.unparks = w.unparks.load(std::memory_order_relaxed);
    MutexLock lock(w.mu);
    GV_RANK_SCOPE(lockrank::kJobQueue);
    for (std::size_t c = 0; c < kNumJobClasses; ++c) {
      s.depth[c] = w.lanes[c].size();
      s.depth_high_water[c] = w.depth_hw[c];
    }
  }
  return out;
}

}  // namespace gv
