// VaultServer: concurrent, batched secure-inference serving.
//
// `VaultDeployment::infer_labels` answers one whole-graph query per ecall;
// at serving scale (the ROADMAP's millions of users asking for individual
// node labels) each request would pay the full ECALL transition plus a full
// embedding transfer.  The server coalesces requests instead:
//
//   caller threads --> submit(node) --> [dynamic micro-batch queue]
//                                             |  flush on max_batch
//                                             |  or max-wait deadline
//                                     ThreadPool worker loop
//                                             |  ONE ecall per batch
//                                     VaultDeployment::infer_labels_batched
//                                             |
//                       futures resolve with label-only results
//
// The public backbone runs ONCE per feature snapshot (untrusted-side cache
// of its embeddings); each flushed batch then costs one embedding push plus
// one ecall, so the fixed SGX costs amortize across the batch (the paper's
// Sec. III-C overhead analysis is exactly the cost this removes).  A small
// LRU label cache short-circuits repeat queries before they ever enqueue.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/deployment.hpp"
#include "serve/label_cache.hpp"
#include "serve/server_metrics.hpp"

namespace gv {

struct ServerConfig {
  /// Flush a batch as soon as this many requests are pending.
  std::size_t max_batch = 32;
  /// ... or when the oldest pending request has waited this long.
  std::chrono::microseconds max_wait{2000};
  /// Worker threads draining the queue (each batch is one serialized ecall;
  /// extra workers overlap untrusted-side work with enclave execution).
  std::size_t worker_threads = 1;
  /// LRU label-cache entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
};

class VaultServer {
 public:
  /// Deploys `vault` into its own enclave and starts the worker loop.
  /// `ds` provides the private graph (sealed into the enclave) and the
  /// feature snapshot served until shutdown.
  VaultServer(const Dataset& ds, TrainedVault vault, DeploymentOptions dopts = {},
              ServerConfig cfg = {});
  /// Drains pending requests, then stops the workers.
  ~VaultServer();

  VaultServer(const VaultServer&) = delete;
  VaultServer& operator=(const VaultServer&) = delete;

  /// Asynchronous per-node label query.
  std::future<std::uint32_t> submit(std::uint32_t node);
  /// Node-subset query: one future per node, preserving order.
  std::vector<std::future<std::uint32_t>> submit_many(
      std::span<const std::uint32_t> nodes);
  /// Convenience blocking query.
  std::uint32_t query(std::uint32_t node);

  /// Force-flush pending requests without waiting for the deadline.
  void flush();
  /// Pending (queued, unflushed) requests.
  std::size_t pending() const;

  /// Counters, percentiles, and meter-derived fields, merged.
  MetricsSnapshot stats() const;
  void reset_stats();

  VaultDeployment& deployment() { return deployment_; }
  const VaultDeployment& deployment() const { return deployment_; }
  const ServerConfig& config() const { return cfg_; }
  const CsrMatrix& features() const { return features_; }

 private:
  struct Pending {
    std::uint32_t node;
    Sha256Digest digest;
    std::promise<std::uint32_t> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void execute_batch(std::vector<Pending> batch);
  const std::vector<Matrix>& backbone_outputs();

  CsrMatrix features_;
  ServerConfig cfg_;
  VaultDeployment deployment_;
  LabelCache cache_;
  ServerMetrics metrics_;

  std::once_flag backbone_once_;
  std::vector<Matrix> backbone_outputs_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool flush_requested_ = false;

  ThreadPool pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace gv
