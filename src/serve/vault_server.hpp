// VaultServer: concurrent, batched secure-inference serving.
//
// `VaultDeployment::infer_labels` answers one whole-graph query per ecall;
// at serving scale (the ROADMAP's millions of users asking for individual
// node labels) each request would pay the full ECALL transition plus a full
// embedding transfer.  The server coalesces requests instead:
//
//   caller threads --> submit(node) --> [ServeFrontEnd: cache, dynamic
//                                        micro-batch queue, JobSystem]
//                                             |  duplicate nodes coalesce
//                                             |  flush on max_batch
//                                             |  or max-wait deadline
//                                             |  ONE ecall per batch
//                                     VaultDeployment::infer_labels_batched
//                                             |
//                     SubmitTokens resolve with label-only results
//
// The public backbone runs ONCE per feature snapshot (untrusted-side cache
// of its embeddings); each flushed batch then costs one embedding push plus
// one ecall, so the fixed SGX costs amortize across the batch (the paper's
// Sec. III-C overhead analysis is exactly the cost this removes).  A small
// LRU label cache short-circuits repeat queries before they ever enqueue;
// duplicate queries already in flight share one batch slot and fan the
// result out to every waiting token.  update_features() swaps in a new
// snapshot for a live graph: the backbone recomputes lazily and cached
// labels are invalidated by feature-row digest.
//
// Since the JobServe redesign, every piece of the serving front — the
// submit/cache/coalesce path, micro-batching, dispatch, priority classes,
// completion tokens — lives in serve/serve_frontend.hpp, shared with
// ShardedVaultServer.  VaultServer is the ServeBackend: it pins feature
// snapshots and turns a node batch into one enclave ecall.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/annotations.hpp"
#include "core/deployment.hpp"
#include "serve/serve_frontend.hpp"

namespace gv {

class VaultServer : private ServeBackend {
 public:
  /// Deploys `vault` into its own enclave and starts the serving front end.
  /// `ds` provides the private graph (sealed into the enclave) and the
  /// initial feature snapshot.
  VaultServer(const Dataset& ds, TrainedVault vault, DeploymentOptions dopts = {},
              ServerConfig cfg = {});
  /// Fails pending requests with "server shutting down", then stops the
  /// workers (in-flight batches complete).
  ~VaultServer();

  VaultServer(const VaultServer&) = delete;
  VaultServer& operator=(const VaultServer&) = delete;

  /// Asynchronous per-node label query.
  SubmitToken submit(std::uint32_t node) { return frontend_.submit(node); }
  /// Node-subset query: one token per node, preserving order; the whole
  /// miss set enqueues under one queue-lock acquisition.
  SubmitBatch submit_many(std::span<const std::uint32_t> nodes) {
    return frontend_.submit_many(nodes);
  }
  /// Convenience blocking query.
  std::uint32_t query(std::uint32_t node) { return frontend_.query(node); }

  /// Swap in a new feature snapshot (same node set and feature dim): the
  /// backbone embeddings recompute lazily on the next batch, and cached
  /// labels whose feature-row digest changed are evicted.  Requests already
  /// queued resolve against the NEW snapshot.
  void update_features(const CsrMatrix& new_features);

  /// Force-flush pending requests without waiting for the deadline.
  void flush() { frontend_.flush(); }
  /// Pending (queued, unflushed) requests; coalesced duplicates count once.
  std::size_t pending() const { return frontend_.pending(); }

  /// Counters, percentiles, and meter-derived fields, merged.
  MetricsSnapshot stats() const;
  void reset_stats();

  VaultDeployment& deployment() { return deployment_; }
  const VaultDeployment& deployment() const { return deployment_; }
  const ServerConfig& config() const { return frontend_.config(); }
  /// The shared serving front end (priority-class job posting, QoS knobs).
  ServeFrontEnd& front_end() { return frontend_; }
  /// Current feature snapshot (stable reference only between updates).
  const CsrMatrix& features() const;

 private:
  /// One immutable feature snapshot plus its lazily computed backbone
  /// embeddings; batches pin the snapshot they were executed against, so
  /// update_features never races an in-flight batch.
  struct Snapshot {
    CsrMatrix features;
    std::once_flag backbone_once;
    std::vector<Matrix> outputs;
  };

  std::shared_ptr<Snapshot> current_snapshot() const;

  // ServeBackend: one batch = one ecall against the pinned snapshot.
  Sha256Digest row_digest(std::uint32_t node) const override;
  BatchResult execute(std::span<const std::uint32_t> nodes,
                      std::span<std::uint32_t> labels,
                      std::span<Sha256Digest> digests) override;
  double modeled_seconds_total() const override;

  VaultDeployment deployment_;

  mutable std::mutex snap_mu_ GV_LOCK_RANK(gv::lockrank::kServerSnap);
  std::shared_ptr<Snapshot> snap_;

  /// Last member: its destructor stops the serving threads before anything
  /// they touch is torn down.
  ServeFrontEnd frontend_;
};

}  // namespace gv
