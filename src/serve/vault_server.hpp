// VaultServer: concurrent, batched secure-inference serving.
//
// `VaultDeployment::infer_labels` answers one whole-graph query per ecall;
// at serving scale (the ROADMAP's millions of users asking for individual
// node labels) each request would pay the full ECALL transition plus a full
// embedding transfer.  The server coalesces requests instead:
//
//   caller threads --> submit(node) --> [dynamic micro-batch queue]
//                                             |  duplicate nodes coalesce
//                                             |  flush on max_batch
//                                             |  or max-wait deadline
//                                     ThreadPool worker loop
//                                             |  ONE ecall per batch
//                                     VaultDeployment::infer_labels_batched
//                                             |
//                       futures resolve with label-only results
//
// The public backbone runs ONCE per feature snapshot (untrusted-side cache
// of its embeddings); each flushed batch then costs one embedding push plus
// one ecall, so the fixed SGX costs amortize across the batch (the paper's
// Sec. III-C overhead analysis is exactly the cost this removes).  A small
// LRU label cache short-circuits repeat queries before they ever enqueue;
// duplicate queries already in flight share one batch slot and fan the
// result out to every waiting future.  update_features() swaps in a new
// snapshot for a live graph: the backbone recomputes lazily and cached
// labels are invalidated by feature-row digest.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/deployment.hpp"
#include "serve/batch_queue.hpp"
#include "serve/label_cache.hpp"
#include "serve/server_metrics.hpp"
#include "common/annotations.hpp"

namespace gv {

struct ServerConfig {
  /// Flush a batch as soon as this many requests are pending.
  std::size_t max_batch = 32;
  /// ... or when the oldest pending request has waited this long.
  std::chrono::microseconds max_wait{2000};
  /// Worker threads draining the queue (each batch is one serialized ecall;
  /// extra workers overlap untrusted-side work with enclave execution).
  std::size_t worker_threads = 1;
  /// LRU label-cache entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
};

class VaultServer {
 public:
  /// Deploys `vault` into its own enclave and starts the worker loop.
  /// `ds` provides the private graph (sealed into the enclave) and the
  /// initial feature snapshot.
  VaultServer(const Dataset& ds, TrainedVault vault, DeploymentOptions dopts = {},
              ServerConfig cfg = {});
  /// Drains pending requests, then stops the workers.
  ~VaultServer();

  VaultServer(const VaultServer&) = delete;
  VaultServer& operator=(const VaultServer&) = delete;

  /// Asynchronous per-node label query.
  std::future<std::uint32_t> submit(std::uint32_t node);
  /// Node-subset query: one future per node, preserving order.
  std::vector<std::future<std::uint32_t>> submit_many(
      std::span<const std::uint32_t> nodes);
  /// Convenience blocking query.
  std::uint32_t query(std::uint32_t node);

  /// Swap in a new feature snapshot (same node set and feature dim): the
  /// backbone embeddings recompute lazily on the next batch, and cached
  /// labels whose feature-row digest changed are evicted.  Requests already
  /// queued resolve against the NEW snapshot.
  void update_features(const CsrMatrix& new_features);

  /// Force-flush pending requests without waiting for the deadline.
  void flush();
  /// Pending (queued, unflushed) requests; coalesced duplicates count once.
  std::size_t pending() const;

  /// Counters, percentiles, and meter-derived fields, merged.
  MetricsSnapshot stats() const;
  void reset_stats();

  VaultDeployment& deployment() { return deployment_; }
  const VaultDeployment& deployment() const { return deployment_; }
  const ServerConfig& config() const { return cfg_; }
  /// Current feature snapshot (stable reference only between updates).
  const CsrMatrix& features() const;

 private:
  /// One immutable feature snapshot plus its lazily computed backbone
  /// embeddings; batches pin the snapshot they were executed against, so
  /// update_features never races an in-flight batch.
  struct Snapshot {
    CsrMatrix features;
    std::once_flag backbone_once;
    std::vector<Matrix> outputs;
  };

  std::shared_ptr<Snapshot> current_snapshot() const;
  void worker_loop();
  void execute_batch(std::vector<MicroBatchQueue::Entry> batch);

  ServerConfig cfg_;
  VaultDeployment deployment_;
  LabelCache cache_;
  ServerMetrics metrics_;
  const std::size_t num_nodes_;

  mutable std::mutex snap_mu_ GV_LOCK_RANK(gv::lockrank::kServerSnap);
  std::shared_ptr<Snapshot> snap_;

  MicroBatchQueue queue_;
  ThreadPool pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace gv
