// Serving-side observability: request/batch/cache counters plus a
// log-bucketed latency histogram from which the snapshot estimates
// p50/p95/p99 in O(buckets) — no copy, no sort, and recording a latency
// sample never takes the metrics mutex.
//
// The SGX cost model charges modeled time (ecall transitions, MEE-encrypted
// copies, paging) rather than sleeping, so the snapshot reports both wall
// seconds and modeled seconds; requests/sec is computed against the modeled
// serving time, which is what batching actually improves.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "common/annotations.hpp"

namespace gv {

struct MetricsSnapshot {
  std::uint64_t requests = 0;        // submitted (cache hits included)
  std::uint64_t completed = 0;       // resolved through a batch
  std::uint64_t batches = 0;         // flushed batches == batched ecalls
  std::uint64_t coalesced = 0;       // duplicate in-flight queries that rode
                                     // an already queued node's slot
  std::uint64_t failovers = 0;       // shard batches served by a replica or
                                     // a just-promoted PRIMARY (spliced in
                                     // from the ShardRouter)
  std::uint64_t fenced_batches = 0;  // shard batches that waited out a
                                     // promotion fence (from the router)
  std::uint64_t cold_batches = 0;    // shard batches served demand-driven
                                     // through the cold cross-shard path
                                     // (un-materialized label store)
  std::uint64_t promotions = 0;      // replicas promoted to PRIMARY
  std::uint64_t restaffs = 0;        // gen-2 standbys auto-provisioned after
                                     // a promotion (from the ReplicaManager)
  std::uint64_t shard_faults = 0;    // dead shards detected from a failed
                                     // ecall (vs an explicit kill_shard;
                                     // spliced in from the deployment)
  std::uint64_t feature_updates = 0; // backbone snapshot refreshes
  std::uint64_t graph_updates = 0;   // private-graph mutations applied
                                     // (GraphDrift update_graph calls)
  std::uint64_t stale_label_evictions = 0;  // label-store entries + cache
                                            // entries invalidated by graph
                                            // updates
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t ecalls = 0;          // enclave transitions (from the meter)
  std::uint64_t bytes_in = 0;        // untrusted -> enclave copies

  // Cold cross-shard path, aggregated from the per-query ColdSubsetStats
  // the deployment reports (previously computed and discarded).
  std::uint64_t cold_queries = 0;          // cold subset inferences served
  std::uint64_t cold_shards_computed = 0;  // shards that ran layer compute
  std::uint64_t cold_shards_touched = 0;   // computed + halo-pulled-from
  std::uint64_t cold_frontier_rows = 0;    // cross-shard frontier expansions
  std::uint64_t cold_halo_request_bytes = 0;    // frontier row-id requests
  std::uint64_t cold_halo_embedding_bytes = 0;  // pulled halo embeddings
  std::uint64_t cold_backbone_cache_hits = 0;   // cold queries that reused a
                                                // materialized backbone

  // GraphDrift health (latest DriftTracker readings, 0 until drift occurs).
  double drift_cut_growth = 0.0;      // fraction of new edges crossing shards
  double drift_load_imbalance = 0.0;  // max shard load / mean shard load

  double cache_hit_rate = 0.0;       // hits / (hits + misses)
  double mean_batch_size = 0.0;
  double wall_seconds = 0.0;         // since server start / metrics reset
  double modeled_seconds = 0.0;      // meter total under the cost model
  double requests_per_second = 0.0;  // completed+hits over modeled seconds
  double p50_latency_ms = 0.0;       // queue-to-completion, wall clock,
                                     // histogram-estimated (<=9% rel. error)
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double mean_promotion_ms = 0.0;    // wall time from kill to the promoted
                                     // PRIMARY serving again
  double max_promotion_ms = 0.0;

  std::string summary() const;
};

class ServerMetrics {
 public:
  void record_request();
  void record_cache_hit();
  void record_cache_miss();
  /// One flushed batch resolving `size` requests (coalesced waiters count).
  void record_batch(std::size_t size);
  /// A duplicate in-flight query coalesced onto a queued node's slot.
  void record_coalesced();
  /// A feature-snapshot refresh (update_features).
  void record_feature_update();
  /// A private-graph mutation (update_graph) that invalidated `stale`
  /// label-store/cache entries.
  void record_graph_update(std::size_t stale);
  /// One replica promotion to PRIMARY and its kill-to-serving wall latency.
  void record_promotion_ms(double ms);
  /// Queue-to-completion latency of one request.  Lock-free: lands in the
  /// log-bucketed histogram without touching the counter mutex.
  void record_latency_ms(double ms) { latency_ms_.record(ms); }

  /// Counters + percentiles; the caller merges in meter-derived fields.
  /// O(histogram buckets) — never copies or sorts a sample window.
  MetricsSnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
  Stopwatch since_;
  std::uint64_t requests_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t feature_updates_ = 0;
  std::uint64_t graph_updates_ = 0;
  std::uint64_t stale_label_evictions_ = 0;
  std::uint64_t promotions_ = 0;
  double promotion_ms_total_ = 0.0;
  double promotion_ms_max_ = 0.0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  Histogram latency_ms_;  // not guarded by mu_: internally atomic
};

}  // namespace gv
