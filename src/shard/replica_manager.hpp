// ReplicaManager: warm-standby failover AND full promotion for sharded
// vaults.
//
// A shard enclave can die (machine reboot, enclave teardown, EPC pressure
// eviction); without a standby, every query for its nodes fails until the
// vendor re-provisions.  The manager keeps one replica enclave per shard on
// a STANDBY platform:
//
//   * package replication — the primary shard ships its package (weights +
//     sub-adjacency + halo routing) over a mutually attested channel; the
//     standby re-seals it under ITS platform key, so the replica can
//     relaunch from local sealed storage without the vendor in the loop.
//     Sealed blobs never move across platforms directly (they cannot: the
//     sealing key binds to the platform fuse key) — re-sealing after an
//     attested transfer is the only sound path.
//   * label-store replication — after every refresh the primary streams its
//     owned labels (labels may cross enclave-to-enclave channels), so
//     failover is warm: the replica answers lookups immediately.
//
// Each replica runs a small state machine:
//
//   STANDBY    warm copy; may answer label-only lookups, but ONLY while its
//              store matches the deployment's current refresh epoch — a
//              standby that missed a feature update refuses to serve stale
//              labels.
//   PROMOTING  the primary died and promotion is in flight: the standby
//              unseals its re-sealed package, the deployment adopts its
//              enclave (rebuilding rectifier + sub-adjacency and re-running
//              the attested handshake with the surviving shards), and the
//              label store is re-materialized from the CURRENT feature
//              snapshot.  Routers fence queries for the shard until this
//              completes (shard/shard_router.hpp).
//   PRIMARY    promotion landed: the former standby IS the shard's enclave
//              now; the replica slot is empty until restaff() provisions a
//              fresh standby, after which a second failover can follow.
//
// Replication runs asynchronously off the serving path; ShardRouter fails
// a query batch over to the replica when the primary shard is dead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/thread_safety.hpp"
#include "shard/sharded_deployment.hpp"

namespace gv {

/// Role of the standby replica provisioned for one shard.
enum class ReplicaState { kStandby, kPromoting, kPrimary };

const char* replica_state_name(ReplicaState s);

struct ReplicaConfig {
  /// Platform fuse key of the standby machine hosting the replicas.
  Sha256Digest standby_platform_key = standby_platform_default_key();
  /// After a successful promotion, automatically provision a generation-2
  /// standby (on a fresh derived platform key) and replicate into it, so a
  /// second failover needs no manual restaff() call.
  bool auto_restaff = false;

  static Sha256Digest standby_platform_default_key();
  /// Platform key of the `generation`-th auto-restaffed standby machine.
  static Sha256Digest standby_generation_key(std::uint32_t shard,
                                             std::uint32_t generation);
};

class ReplicaManager {
 public:
  ReplicaManager(ShardedVaultDeployment& primary, ReplicaConfig cfg = {});
  /// Joins any in-flight async replication.
  ~ReplicaManager();

  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// Replicate every shard's package (and label store, if the primary has
  /// refreshed) in a background thread.
  void replicate_async();
  /// Synchronous variant.
  void replicate_all();
  /// Block until the last replicate_async finishes.
  void wait_ready();
  bool ready(std::uint32_t shard) const;

  /// Re-ship every live primary shard's label store (after a feature
  /// refresh).  Dead primaries keep their last replicated labels.
  void sync_labels();

  // --- Promotion to PRIMARY. ---------------------------------------------
  ReplicaState state(std::uint32_t shard) const;
  /// Fence the shard for promotion: STANDBY -> PROMOTING.  Call the moment
  /// the primary is observed dead; from here routers block (or fail fast)
  /// instead of reading the standby's store, and promote() finishes the
  /// takeover.  Throws when the replica is unreplicated, already promoting
  /// or promoted, or the primary is still alive.
  void begin_promotion(std::uint32_t shard);
  /// Full promotion (synchronous; enters PROMOTING itself if
  /// begin_promotion was not called first).  The standby enclave unseals
  /// its re-sealed package and the deployment adopts it — rebuilding the
  /// rectifier and sub-adjacency and re-running the attested-channel
  /// handshake with every surviving shard.  The label store then comes from
  /// one of two places: when the standby's replicated store was synced at
  /// the CURRENT refresh epoch (the common case), it is adopted as-is —
  /// bit-identical to a recompute and already inside the promoted enclave,
  /// so the fencing window pays no forward at all; otherwise
  /// `rematerialize` rebuilds it from the current snapshot.  Prefer
  /// ShardedVaultDeployment::rematerialize_shard for that callback
  /// (shard-local cold forward with halo pulls from the survivors'
  /// retained boundary stores; no epoch bump, no fleet-wide label re-ship)
  /// over a full refresh, which re-runs every shard's forward and
  /// dominates the fencing window.  Only after the store is in place does
  /// the state flip to PRIMARY and fenced queries unblock.  Returns the
  /// promotion latency in wall milliseconds.
  double promote(std::uint32_t shard, const std::function<void()>& rematerialize);
  /// Block until `shard` leaves PROMOTING; false on timeout.
  bool await_promotion(std::uint32_t shard,
                       std::chrono::milliseconds timeout) const;
  /// Provision a fresh standby in an empty replica slot — after a
  /// completed promotion (PRIMARY -> STANDBY, unreplicated) or after a
  /// failed one consumed the standby enclave — under `platform_key`, so
  /// another failover can follow.  Requires the shard's primary alive;
  /// replicate afterwards to warm it.
  void restaff(std::uint32_t shard, const Sha256Digest& platform_key);

  /// Standbys auto-provisioned after promotions (cfg.auto_restaff).
  std::uint64_t restaffs() const { return restaffs_.load(); }

  /// Label-only lookup served by the replica enclave.  Refuses to serve
  /// when the store is stale (the primary refreshed after the last label
  /// sync) or the replica was already promoted.
  std::vector<std::uint32_t> lookup(std::uint32_t shard,
                                    std::span<const std::uint32_t> nodes,
                                    double* modeled_delta = nullptr);

  Enclave& replica_enclave(std::uint32_t shard);
  /// The shard package re-sealed under the STANDBY platform key.
  const SealedBlob& sealed_payload(std::uint32_t shard) const;
  /// Plaintext bytes shipped over the replication channels, by kind.
  std::uint64_t package_bytes() const;
  std::uint64_t label_bytes() const;

 private:
  struct Replica {
    /// Guards the slot's non-atomic state (enclave, channel, payload,
    /// labels, sealed) against a lookup racing the promotion that consumes
    /// them; never held across rematerialize.
    std::mutex mu GV_LOCK_RANK(gv::lockrank::kReplicaSlot);
    std::unique_ptr<Enclave> enclave;
    std::unique_ptr<AttestedChannel> channel;  // primary <-> standby
    std::atomic<bool> ready{false};
    std::atomic<ReplicaState> state{ReplicaState::kStandby};
    /// Refresh epoch of the primary when the label store was last synced.
    std::atomic<std::uint64_t> synced_epoch{0};
    /// Topology version of the primary when the package was replicated: a
    /// package that predates a graph update or migration describes a
    /// retired topology and must never be promoted (re-replicate first).
    std::atomic<std::uint64_t> synced_topology{0};
    /// Auto-restaff generation (0 = the provisioning-time standby).
    std::uint32_t generation = 0;
    Sha256Digest platform_key{};
    // Enclave-held state (only touched inside ecalls):
    ShardPayload payload;
    GV_SECRET std::vector<std::uint32_t> labels;
    SealedBlob sealed;
  };

  /// Replicates one shard; caller holds replicate_mu_ (promotion and the
  /// replication pass must not interleave traffic into the same enclave).
  void replicate_one(std::uint32_t shard) GV_REQUIRES(replicate_mu_);
  /// sync_labels body; caller holds replicate_mu_.
  void sync_labels_locked() GV_REQUIRES(replicate_mu_);
  /// restaff body; caller holds replicate_mu_.
  void restaff_locked(std::uint32_t shard, const Sha256Digest& platform_key)
      GV_REQUIRES(replicate_mu_);

  ShardedVaultDeployment* primary_;
  ReplicaConfig cfg_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> restaffs_{0};
  std::future<void> pending_;
  // Serializes replicate_all / sync_labels / promote.
  Mutex replicate_mu_ GV_LOCK_RANK(gv::lockrank::kReplicate);
  mutable std::mutex promote_mu_ GV_LOCK_RANK(gv::lockrank::kReplicaSlot);
  mutable std::condition_variable promote_cv_;
};

}  // namespace gv
