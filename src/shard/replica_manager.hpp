// ReplicaManager: warm-standby failover for sharded vaults.
//
// A shard enclave can die (machine reboot, enclave teardown, EPC pressure
// eviction); without a standby, every query for its nodes fails until the
// vendor re-provisions.  The manager keeps one replica enclave per shard on
// a STANDBY platform:
//
//   * package replication — the primary shard ships its package (weights +
//     sub-adjacency + halo routing) over a mutually attested channel; the
//     standby re-seals it under ITS platform key, so the replica can
//     relaunch from local sealed storage without the vendor in the loop.
//     Sealed blobs never move across platforms directly (they cannot: the
//     sealing key binds to the platform fuse key) — re-sealing after an
//     attested transfer is the only sound path.
//   * label-store replication — after every refresh the primary streams its
//     owned labels (labels may cross enclave-to-enclave channels), so
//     failover is warm: the replica answers lookups immediately.
//
// Replication runs asynchronously off the serving path; ShardRouter fails
// a query batch over to the replica when the primary shard is dead.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "shard/sharded_deployment.hpp"

namespace gv {

struct ReplicaConfig {
  /// Platform fuse key of the standby machine hosting the replicas.
  Sha256Digest standby_platform_key = standby_platform_default_key();

  static Sha256Digest standby_platform_default_key();
};

class ReplicaManager {
 public:
  ReplicaManager(ShardedVaultDeployment& primary, ReplicaConfig cfg = {});
  /// Joins any in-flight async replication.
  ~ReplicaManager();

  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// Replicate every shard's package (and label store, if the primary has
  /// refreshed) in a background thread.
  void replicate_async();
  /// Synchronous variant.
  void replicate_all();
  /// Block until the last replicate_async finishes.
  void wait_ready();
  bool ready(std::uint32_t shard) const;

  /// Re-ship every live primary shard's label store (after a feature
  /// refresh).  Dead primaries keep their last replicated labels.
  void sync_labels();

  /// Label-only lookup served by the replica enclave.
  std::vector<std::uint32_t> lookup(std::uint32_t shard,
                                    std::span<const std::uint32_t> nodes,
                                    double* modeled_delta = nullptr);

  Enclave& replica_enclave(std::uint32_t shard);
  /// The shard package re-sealed under the STANDBY platform key.
  const SealedBlob& sealed_payload(std::uint32_t shard) const;
  /// Plaintext bytes shipped over the replication channels, by kind.
  std::uint64_t package_bytes() const;
  std::uint64_t label_bytes() const;

 private:
  struct Replica {
    std::unique_ptr<Enclave> enclave;
    std::unique_ptr<AttestedChannel> channel;  // primary <-> standby
    std::atomic<bool> ready{false};
    // Enclave-held state (only touched inside ecalls):
    ShardPayload payload;
    std::vector<std::uint32_t> labels;
    SealedBlob sealed;
  };

  void replicate_one(std::uint32_t shard);

  ShardedVaultDeployment* primary_;
  ReplicaConfig cfg_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::future<void> pending_;
  std::mutex replicate_mu_;  // serializes replicate_all / sync_labels
};

}  // namespace gv
