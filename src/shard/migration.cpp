#include "shard/migration.hpp"

#include <algorithm>

#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gv {

MigrationStats MigrationExecutor::execute(std::span<const NodeMove> moves) {
  MigrationStats stats;
  TraceSpan span("drift", "migration");
  span.arg("moves", double(moves.size()));
  const std::uint64_t transfer_before = deployment_->halo_transfer_bytes();
  const std::uint64_t wire_before = deployment_->halo_padded_bytes();
  Stopwatch watch;
  double fence_sum = 0.0;
  for (const NodeMove& m : moves) {
    if (deployment_->owner(m.node) == m.to) {
      ++stats.moves_skipped;
      continue;
    }
    const double fence_ms = deployment_->move_node(m.node, m.to);
    fence_sum += fence_ms;
    stats.max_fence_ms = std::max(stats.max_fence_ms, fence_ms);
    ++stats.moves_executed;
  }
  stats.total_ms = watch.seconds() * 1e3;
  stats.mean_fence_ms =
      stats.moves_executed > 0 ? fence_sum / stats.moves_executed : 0.0;
  stats.transfer_bytes = deployment_->halo_transfer_bytes() - transfer_before;
  stats.wire_bytes = deployment_->halo_padded_bytes() - wire_before;
  span.arg("moves_executed", double(stats.moves_executed));
  span.arg("wire_bytes", double(stats.wire_bytes));
  auto& reg = MetricsRegistry::global();
  reg.counter("migration.moves").add(stats.moves_executed);
  reg.counter("migration.wire_bytes").add(stats.wire_bytes);
  reg.histogram("migration.fence_ms").record(stats.max_fence_ms);
  return stats;
}

}  // namespace gv
