// GraphDrift: live mutation of the private graph behind a ShardVault fleet.
//
// The paper's threat model protects a PRIVATE graph, but a production graph
// is not frozen at provisioning: edges appear and disappear, nodes join.
// GraphDrift is the vendor-facing half of that story —
//
//   GraphDelta        one batch of mutations (edge inserts/deletes, node
//                     adds), applied by ShardedVaultDeployment::update_graph
//                     inside the owning enclaves (sorted-CSR maintenance of
//                     each shard's owned x closure sub-adjacency, degree
//                     renormalization of touched rows, digest-based
//                     invalidation of affected label-store entries and
//                     retained boundary activations);
//   DriftTracker      accumulates per-shard cut-growth and load-imbalance
//                     metrics across updates and answers "is the old LDG
//                     plan rotten enough to rebalance?"; its drift-node set
//                     seeds ShardPlanner::plan_diff, which emits a minimal
//                     move-set instead of a full re-partition;
//   apply_delta /     the vendor-side mirror: apply the same delta to a
//   revault_on        plain Dataset and rebuild a single-enclave oracle on
//                     the mutated graph, so tests and benches can pin the
//                     sharded mutation path bit-exactly against ground
//                     truth.
//
// The executor that turns a plan-diff move-set into live node migrations
// (over the attested channels, with per-move router fencing) lives in
// shard/migration.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "shard/shard_planner.hpp"

namespace gv {

/// One batch of private-graph mutations.  Application order is fixed and
/// mirrored by apply_delta: node adds first (node i of `node_adds` becomes
/// global id n+i), then edge deletes, then edge inserts.  Self-loops and
/// duplicate/missing edges are no-ops, exactly like Graph::add_edge /
/// Graph::remove_edge, so the sharded and oracle applications agree on
/// every degenerate input.
struct GraphDelta {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_inserts;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_deletes;
  /// Sparse feature rows ((column, value) pairs) of appended nodes.  The
  /// deployment only needs the COUNT (features arrive with each snapshot);
  /// the rows let apply_delta extend the vendor's Dataset identically.
  std::vector<std::vector<std::pair<std::uint32_t, float>>> node_adds;

  bool empty() const {
    return edge_inserts.empty() && edge_deletes.empty() && node_adds.empty();
  }
};

/// Telemetry of one applied update (returned by update_graph).
struct GraphUpdateStats {
  std::size_t edges_inserted = 0;      // applied (duplicates skipped)
  std::size_t edges_deleted = 0;       // applied (missing skipped)
  std::size_t nodes_added = 0;
  std::size_t cut_edges_inserted = 0;  // applied inserts crossing shards
  std::size_t cut_edges_deleted = 0;
  std::size_t shards_touched = 0;      // shards with any structural/value change
  std::size_t rows_renormalized = 0;   // owned rows whose values were recomputed
  std::size_t channels_created = 0;    // new attested channels (new halo pairs)
  /// (node, shard) of every appended node, in add order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> added_nodes;
  /// Owned rows whose adjacency-row digest actually changed (global ids,
  /// sorted).  Seeds both the stale-label BFS and the drift-node set.
  std::vector<std::uint32_t> changed_rows;
  /// Nodes whose materialized label can no longer be trusted: everything
  /// within L-1 hops of a changed row on the mutated graph (global ids,
  /// sorted).  These label-store entries are invalidated; the cold
  /// cross-shard path recomputes them on demand.
  std::vector<std::uint32_t> stale_nodes;
  /// Label-store entries NEWLY invalidated by this update (excludes
  /// entries that were already stale and nodes on un-materialized stores).
  std::size_t store_entries_invalidated = 0;
};

/// Accumulates drift between (re)plans: how much has the live graph walked
/// away from the LDG plan the fleet was provisioned with?
class DriftTracker {
 public:
  struct Thresholds {
    /// Rebalance when applied cut-edge inserts since the baseline exceed
    /// this fraction of the baseline cut.
    double max_cut_growth = 0.10;
    /// Rebalance when (max owned) / (mean owned) exceeds this.
    double max_load_imbalance = 1.25;
  };

  explicit DriftTracker(const ShardPlan& baseline) { reset(baseline); }

  /// Fold one applied update into the drift metrics.
  void record(const GraphUpdateStats& stats);

  /// Sorted unique nodes whose neighbourhood changed since the baseline —
  /// the only nodes ShardPlanner::plan_diff re-places.
  const std::vector<std::uint32_t>& drift_nodes() const { return drift_; }

  std::size_t baseline_cut() const { return baseline_cut_; }
  std::size_t cut_inserted() const { return cut_inserted_; }
  std::size_t cut_deleted() const { return cut_deleted_; }
  /// (max owned) / (mean owned) over the tracked per-shard node counts.
  double load_imbalance() const;
  /// Cut-growth fraction vs the baseline cut (0 when the baseline had none).
  double cut_growth() const;

  bool should_rebalance(const Thresholds& t) const {
    return cut_growth() > t.max_cut_growth ||
           load_imbalance() > t.max_load_imbalance;
  }
  bool should_rebalance() const { return should_rebalance(Thresholds{}); }

  /// Re-anchor on a fresh plan (after a migration or re-provision).
  void reset(const ShardPlan& baseline);

 private:
  std::size_t baseline_cut_ = 0;
  std::size_t cut_inserted_ = 0;
  std::size_t cut_deleted_ = 0;
  std::vector<std::size_t> owned_count_;
  std::vector<std::uint32_t> drift_;  // sorted unique
};

/// Apply `delta` to a plain Dataset in place — the vendor-side mirror of
/// ShardedVaultDeployment::update_graph (same ordering, same no-op
/// semantics).  Appended nodes get the delta's feature rows and label 0.
void apply_delta(Dataset& ds, const GraphDelta& delta);

/// Extend a trained vault's PUBLIC backbone to `num_nodes` total nodes:
/// appended nodes join the substitute graph isolated (self-loop weight 1 in
/// Â), so every pre-existing node's backbone embedding is bit-identical.
/// The private rectifier is untouched.  No-op when the node count already
/// matches or the backbone is feature-only (MLP).
void extend_backbone(TrainedVault& vault, std::size_t num_nodes);

/// Build a single-enclave oracle deployed on the mutated dataset: same
/// trained weights, rectifier rebuilt over `mutated.graph`, backbone
/// extended for any appended nodes.  `vault` itself is not modified.
TrainedVault revault_on(const TrainedVault& vault, const Dataset& mutated);

}  // namespace gv
