// ShardedVaultServer: VaultServer semantics for a tenant that spans N
// shard enclaves.
//
// The serving front is the same JobServe ServeFrontEnd VaultServer uses
// (serve/serve_frontend.hpp), including duplicate-query coalescing, the LRU
// label cache, pooled batches/tokens, and the work-stealing priority job
// system.  The back end differs: a refresh materializes every node's label
// via the layer-synchronous sharded forward (halo exchange over attested
// channels), and each flushed batch then becomes one label-only lookup
// ecall per touched shard, merged by the ShardRouter.  With replication
// enabled, a killed shard's queries transparently fail over to its warm
// replica and the failover is recorded in the metrics.
//
// Tenant QoS on the shared workers: batch flushes run INTERACTIVE; the
// post-promotion boundary rebuild runs as a COLD job (it is exactly the
// demand recompute class — queries are already flowing when it starts);
// callers can post migration / re-materialization sweeps as MAINTENANCE
// through front_end().post_background(), capped in flight so they never
// starve interactive latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "serve/serve_frontend.hpp"
#include "serve/vault_server.hpp"
#include "shard/graph_drift.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_deployment.hpp"

namespace gv {

struct ShardedServerConfig {
  ServerConfig server{};
  /// Keep a warm replica of every shard on the standby platform.
  bool replicate = false;
  Sha256Digest standby_platform_key = ReplicaConfig::standby_platform_default_key();
  /// Run the full-fleet refresh at construction (label stores warm before
  /// the first query).  When false the server starts COLD: queries are
  /// served demand-driven through the cross-shard cold path until the
  /// first update_features materializes the stores — the store hierarchy
  /// is LabelCache -> shard stores -> cold cross-shard forward, and the
  /// first two are caches over the third.
  bool materialize_on_start = true;
  /// After every successful promotion, automatically provision + replicate
  /// a gen-2 standby so back-to-back failovers need no operator.
  bool auto_restaff = true;
};

class ShardedVaultServer : private ServeBackend {
 public:
  /// Provisions one enclave per plan shard, runs the initial refresh over
  /// `ds.features`, kicks off async replication (when configured), and
  /// starts the serving front end.
  ShardedVaultServer(const Dataset& ds, TrainedVault vault, ShardPlan plan,
                     ShardedDeploymentOptions dopts = {},
                     ShardedServerConfig cfg = {});
  ~ShardedVaultServer();

  ShardedVaultServer(const ShardedVaultServer&) = delete;
  ShardedVaultServer& operator=(const ShardedVaultServer&) = delete;

  SubmitToken submit(std::uint32_t node) { return frontend_.submit(node); }
  SubmitBatch submit_many(std::span<const std::uint32_t> nodes) {
    return frontend_.submit_many(nodes);
  }
  std::uint32_t query(std::uint32_t node) { return frontend_.query(node); }

  /// New feature snapshot: joins any in-flight promotion, re-runs the
  /// sharded forward (all shards must be alive), re-ships replica label
  /// stores, and evicts cache entries whose feature-row digest changed.
  void update_features(const CsrMatrix& new_features);

  /// GraphDrift: apply private-graph mutations WITHOUT a refresh.  The
  /// deltas land inside the owning enclaves; label-store and cache entries
  /// within the rectifier's receptive field of a change are invalidated
  /// and serve demand-driven (healing the store) until the next refresh.
  /// `new_features` is the snapshot queries use from now on — identical
  /// rows for existing nodes, one appended row per added node (pass the
  /// current snapshot when the delta adds no nodes).  Standby replicas are
  /// re-replicated afterwards: the old packages describe a retired
  /// topology and may no longer promote.
  GraphUpdateStats update_graph(const GraphDelta& delta,
                                const CsrMatrix& new_features);

  /// Kill a shard's primary enclave.  With replication, the standby is
  /// fenced (PROMOTING) before this returns and promoted asynchronously:
  /// it rebuilds the rectifier and sub-adjacency from its re-sealed
  /// package, re-runs the attested handshake with the surviving shards,
  /// rejoins the halo exchange, and INCREMENTALLY re-materializes only the
  /// adopted shard's label store from the CURRENT feature snapshot (a
  /// shard-local cold forward with halo pulls from the survivors' retained
  /// boundary stores — not a full-fleet refresh); queries for the shard
  /// block on the router fence until the promotion lands, then hit the new
  /// PRIMARY.  Without replication, queries for the shard throw until
  /// re-provisioned.
  void kill_shard(std::uint32_t shard);

  void flush() { frontend_.flush(); }
  std::size_t pending() const { return frontend_.pending(); }

  /// Control-plane quiesce: join the in-flight async promotion, if any
  /// (rethrows its failure).  After it returns, the promoted shard's
  /// re-materialization and boundary rebuild have fully landed in the
  /// deployment's cost meters — benches call this before stats() so the
  /// modeled total does not depend on where the snapshot races the
  /// promotion pipeline.
  void join_promotion();

  MetricsSnapshot stats() const;

  ShardedVaultDeployment& deployment() { return deployment_; }
  const ShardedVaultDeployment& deployment() const { return deployment_; }
  ShardRouter& router() { return *router_; }
  ReplicaManager* replicas() { return replicas_.get(); }
  const ShardedServerConfig& config() const { return cfg_; }
  /// The shared serving front end (priority-class job posting, QoS knobs).
  ServeFrontEnd& front_end() { return frontend_; }
  /// Current feature snapshot (shared handle: stays valid across a
  /// concurrent update_features).
  std::shared_ptr<const CsrMatrix> features() const;

 private:
  // ServeBackend: one batch = one routed fan-out over the shard fleet.
  Sha256Digest row_digest(std::uint32_t node) const override;
  BatchResult execute(std::span<const std::uint32_t> nodes,
                      std::span<std::uint32_t> labels,
                      std::span<Sha256Digest> digests) override;
  double modeled_seconds_total() const override;

  /// Fence the standby + launch the async promotion (caller holds
  /// promotion_mu_; the deployment-side shard is already dead).
  void launch_promotion(std::uint32_t shard);
  /// Dead-shard detection callback: a serving ecall died on `shard`.
  void handle_shard_failure(std::uint32_t shard);
  /// Fold one cold query's telemetry into the aggregate counters and the
  /// global MetricsRegistry (previously computed and discarded).
  void record_cold_stats(const ColdSubsetStats& stats);

  ShardedServerConfig cfg_;
  ShardedVaultDeployment deployment_;
  std::unique_ptr<ReplicaManager> replicas_;
  std::unique_ptr<ShardRouter> router_;
  /// GraphDrift health since construction: update_graph folds each applied
  /// update in and stats() surfaces the current cut-growth / imbalance.
  mutable std::mutex drift_mu_ GV_LOCK_RANK(gv::lockrank::kServerState);
  DriftTracker drift_;
  /// Cold cross-shard path telemetry, aggregated per query.
  std::atomic<std::uint64_t> cold_queries_{0};
  std::atomic<std::uint64_t> cold_shards_computed_{0};
  std::atomic<std::uint64_t> cold_shards_touched_{0};
  std::atomic<std::uint64_t> cold_frontier_rows_{0};
  std::atomic<std::uint64_t> cold_halo_request_bytes_{0};
  std::atomic<std::uint64_t> cold_halo_embedding_bytes_{0};
  std::atomic<std::uint64_t> cold_backbone_cache_hits_{0};

  mutable std::mutex snap_mu_ GV_LOCK_RANK(gv::lockrank::kServerSnap);
  std::shared_ptr<const CsrMatrix> features_;
  /// features_fingerprint(*features_), hashed once per snapshot so cold
  /// batches do not pay an O(nnz) scan per query.  Guarded by snap_mu_.
  std::uint64_t features_fp_ = 0;

  /// Control-plane mutex: serializes kill_shard / update_features /
  /// shutdown against each other and guards promotion_ (std::future is not
  /// thread-safe for concurrent get/assign).  Never taken by the data
  /// plane (job workers, router) or the promotion thread itself.
  std::mutex promotion_mu_ GV_LOCK_RANK(gv::lockrank::kServerControl);
  std::future<void> promotion_;  // in-flight replica promotion

  /// Last member: its destructor stops the serving threads before anything
  /// they touch is torn down (the explicit ~ShardedVaultServer still joins
  /// the promotion first — it may be waiting on a COLD job).
  ServeFrontEnd frontend_;
};

}  // namespace gv
