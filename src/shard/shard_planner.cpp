#include "shard/shard_planner.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "graph/partition.hpp"

namespace gv {

std::size_t ShardPlan::max_shard_bytes() const {
  std::size_t mx = 0;
  for (const auto& s : shards) mx = std::max(mx, s.estimated_bytes);
  return mx;
}

std::size_t ShardPlan::total_bytes() const {
  std::size_t sum = 0;
  for (const auto& s : shards) sum += s.estimated_bytes;
  return sum;
}

namespace {

/// Sum of the embedding widths a node's rows occupy in enclave memory: the
/// required backbone layers (kept closure rows) plus every rectifier layer's
/// output channels.
std::size_t per_node_embedding_floats(const TrainedVault& vault) {
  const auto dims = vault.backbone().layer_dims();
  std::size_t floats = 0;
  for (const auto idx : vault.rectifier->required_backbone_layers()) {
    floats += dims[idx];
  }
  for (const auto ch : vault.rectifier->config().channels) floats += ch;
  return floats;
}

/// Per-node working-set weights shared by plan() and plan_diff(): the
/// node's Â row (COO + CSR share) plus its rows of every enclave-resident
/// embedding.
std::vector<double> node_weights(const Graph& g, const TrainedVault& vault) {
  const std::size_t emb_floats = per_node_embedding_floats(vault);
  const auto deg = g.degrees();
  std::vector<double> weights(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    const double nnz_v = static_cast<double>(deg[v]) + 1.0;  // + self-loop
    weights[v] = nnz_v * (3 * sizeof(std::uint32_t) + sizeof(float)) +
                 static_cast<double>(emb_floats) * sizeof(float);
  }
  return weights;
}

/// Fill shards[].{nodes,closure_nodes,adj_nnz,estimated_bytes} and
/// cut_edges from an owner assignment already stored in `plan`.
void fill_plan_infos(ShardPlan& plan, const Dataset& ds,
                     const TrainedVault& vault) {
  const Graph& g = ds.graph;
  const std::uint32_t n = g.num_nodes();
  const auto deg = g.degrees();
  plan.shards.assign(plan.num_shards, ShardInfo{});
  for (std::uint32_t v = 0; v < n; ++v) {
    plan.shards[plan.owner[v]].nodes.push_back(v);  // ascending v => sorted
  }
  std::vector<std::uint32_t> mark(n, UINT32_MAX);
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    ShardInfo& info = plan.shards[s];
    std::size_t closure = 0;
    std::size_t nnz = 0;
    auto touch = [&](std::uint32_t v) {
      if (mark[v] != s) {
        mark[v] = s;
        ++closure;
      }
    };
    for (const std::uint32_t v : info.nodes) {
      touch(v);
      nnz += deg[v] + 1;
      for (const std::uint32_t u : g.neighbors(v)) touch(u);
    }
    info.closure_nodes = closure;
    info.adj_nnz = nnz;
    info.estimated_bytes = ShardPlanner::estimate_shard_bytes(
        vault, n, info.nodes.size(), closure, nnz);
  }
  plan.cut_edges = count_cut_edges(g, plan.owner);
}

}  // namespace

std::size_t ShardPlanner::estimate_shard_bytes(const TrainedVault& vault,
                                               std::size_t total_nodes,
                                               std::size_t owned_nodes,
                                               std::size_t closure_nodes,
                                               std::size_t adj_nnz) {
  GV_CHECK(vault.rectifier != nullptr, "estimate requires a trained rectifier");
  // Replicated rectifier weights.
  std::size_t bytes = vault.rectifier->parameter_bytes();
  // Sub-adjacency: COO triples (sealed form kept resident) + the CSR view
  // the shard multiplies against.
  bytes += adj_nnz * (2 * sizeof(std::uint32_t) + sizeof(float));
  bytes += (owned_nodes + 1) * sizeof(std::int64_t) +
           adj_nnz * (sizeof(std::uint32_t) + sizeof(float));
  const auto dims = vault.backbone().layer_dims();
  std::size_t max_required_dim = 0;
  // Kept closure rows of every required backbone embedding.
  for (const auto idx : vault.rectifier->required_backbone_layers()) {
    bytes += closure_nodes * dims[idx] * sizeof(float);
    max_required_dim = std::max(max_required_dim, dims[idx]);
  }
  // Streaming chunk staged while filtering the full public matrices.
  bytes += std::min(total_nodes, kStreamChunkRows) * max_required_dim * sizeof(float);
  // Per-layer activations: assembled closure input + owned output.
  for (const auto ch : vault.rectifier->config().channels) {
    bytes += (closure_nodes + owned_nodes) * ch * sizeof(float);
  }
  // Enclave-resident label store.
  bytes += owned_nodes * sizeof(std::uint32_t);
  return bytes;
}

ShardPlan ShardPlanner::plan(const Dataset& ds, const TrainedVault& vault,
                             std::uint32_t num_shards, double balance_slack) {
  GV_CHECK(vault.rectifier != nullptr, "planning requires a trained rectifier");
  GV_CHECK(num_shards >= 1, "need at least one shard");
  const Graph& g = ds.graph;
  const std::uint32_t n = g.num_nodes();
  GV_CHECK(num_shards <= std::max(1u, n), "more shards than nodes");

  const std::vector<double> weights = node_weights(g, vault);
  const PartitionResult part =
      greedy_edge_cut_partition(g, num_shards, weights, balance_slack);

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.owner = part.owner;
  fill_plan_infos(plan, ds, vault);
  return plan;
}

PlanDiff ShardPlanner::plan_diff(const Dataset& ds, const TrainedVault& vault,
                                 const ShardPlan& old_plan,
                                 std::span<const std::uint32_t> drift_nodes,
                                 double balance_slack, double min_gain,
                                 std::size_t max_passes) {
  const Graph& g = ds.graph;
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t K = old_plan.num_shards;
  GV_CHECK(K >= 1, "plan_diff needs a valid old plan");
  GV_CHECK(old_plan.owner.size() == n,
           "old plan covers a different node count (appended nodes must "
           "already carry an owner — pass the deployment's live plan)");
  GV_CHECK(balance_slack >= 1.0, "slack must be >= 1");

  PlanDiff out;
  out.plan.num_shards = K;
  out.plan.owner = old_plan.owner;
  if (K == 1 || n == 0) {
    fill_plan_infos(out.plan, ds, vault);
    return out;
  }

  const std::vector<double> weights = node_weights(g, vault);
  std::vector<double> part_weight(K, 0.0);
  double total = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    part_weight[out.plan.owner[v]] += weights[v];
    total += weights[v];
  }
  double cap = balance_slack * total / K;
  for (std::uint32_t v = 0; v < n; ++v) cap = std::max(cap, weights[v]);

  // Drift-only LDG: re-score ONLY the drift nodes, against the LIVE owner
  // map, until a pass moves nothing (fixpoint) — which is exactly what
  // makes a second plan_diff on the output a no-op.  Everything outside
  // the drift set stays put by construction: an incremental re-plan must
  // not shuffle healthy shards.
  std::vector<std::uint32_t> drift(drift_nodes.begin(), drift_nodes.end());
  std::sort(drift.begin(), drift.end());
  drift.erase(std::unique(drift.begin(), drift.end()), drift.end());
  std::vector<double> nbr_in_part(K, 0.0);
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool moved = false;
    for (const std::uint32_t v : drift) {
      GV_CHECK(v < n, "drift node out of range");
      std::fill(nbr_in_part.begin(), nbr_in_part.end(), 0.0);
      for (const std::uint32_t u : g.neighbors(v)) {
        nbr_in_part[out.plan.owner[u]] += 1.0;
      }
      const std::uint32_t cur = out.plan.owner[v];
      auto score = [&](std::uint32_t p) {
        const double headroom = 1.0 - part_weight[p] / cap;
        return (nbr_in_part[p] + 1e-3) * headroom;
      };
      std::uint32_t best = cur;
      double best_score = score(cur);
      for (std::uint32_t p = 0; p < K; ++p) {
        if (p == cur || part_weight[p] + weights[v] > cap) continue;
        if (score(p) > best_score) {
          best_score = score(p);
          best = p;
        }
      }
      // Churn damping: moving a node re-seals two shards and fences the
      // router — only do it for a clearly better placement.
      if (best != cur && best_score > score(cur) * (1.0 + min_gain)) {
        part_weight[cur] -= weights[v];
        part_weight[best] += weights[v];
        out.plan.owner[v] = best;
        moved = true;
      }
    }
    ++out.passes;
    if (!moved) break;
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (out.plan.owner[v] != old_plan.owner[v]) {
      out.moves.push_back({v, old_plan.owner[v], out.plan.owner[v]});
    }
  }
  fill_plan_infos(out.plan, ds, vault);
  return out;
}

ShardPlan ShardPlanner::plan_for_budget(const Dataset& ds, const TrainedVault& vault,
                                        std::size_t shard_budget_bytes,
                                        std::uint32_t max_shards) {
  GV_CHECK(shard_budget_bytes > 0, "shard budget must be positive");
  GV_CHECK(max_shards >= 1, "max_shards must be positive");
  // First candidate: assume perfect splitting of the single-shard estimate,
  // then walk upward (halo replication makes shards superlinear, so the
  // first candidate can undershoot).
  const ShardPlan single = plan(ds, vault, 1);
  std::uint32_t k = static_cast<std::uint32_t>(std::min<std::size_t>(
      max_shards,
      std::max<std::size_t>(
          1, (single.max_shard_bytes() + shard_budget_bytes - 1) /
                 shard_budget_bytes)));
  if (k == 1 && single.max_shard_bytes() <= shard_budget_bytes) return single;
  for (; k <= max_shards; ++k) {
    ShardPlan candidate = k == 1 ? single : plan(ds, vault, k);
    if (candidate.max_shard_bytes() <= shard_budget_bytes) return candidate;
  }
  throw Error("tenant does not fit the per-shard budget even at max_shards");
}

std::vector<ShardPayload> ShardPlanner::build_payloads(const Dataset& ds,
                                                       const TrainedVault& vault,
                                                       const ShardPlan& plan) {
  GV_CHECK(plan.num_shards >= 1 && plan.shards.size() == plan.num_shards,
           "malformed shard plan");
  GV_CHECK(plan.owner.size() == ds.num_nodes(), "plan covers a different graph");
  // The shard sub-adjacencies carry the GLOBAL enclave-form values (the same
  // construction VaultDeployment seals), so each owned row's neighbor sum
  // runs over identical floats in identical (ascending-column) order and the
  // sharded forward is bit-exact against the single-enclave one.
  const CsrMatrix global_adj =
      Graph::csr_from_coo_normalized(ds.graph.to_coo_normalized());
  const auto weights = vault.rectifier->serialize_weights();
  const auto deg = ds.graph.degrees();

  const std::uint32_t n = ds.num_nodes();
  std::vector<ShardPayload> payloads(plan.num_shards);
  std::vector<std::uint32_t> local_col(n, 0);
  std::vector<std::uint32_t> mark(n, UINT32_MAX);
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    ShardPayload& p = payloads[s];
    p.shard_index = s;
    p.num_shards = plan.num_shards;
    p.owned = plan.shards[s].nodes;
    p.rectifier_weights = weights;
    p.halo_out.resize(plan.num_shards);

    // Closure = sorted union of owned rows' columns (includes owned via the
    // self-loops Â carries).
    const auto& row_ptr = global_adj.row_ptr();
    const auto& col_idx = global_adj.col_idx();
    const auto& values = global_adj.values();
    for (const std::uint32_t v : p.owned) {
      for (std::int64_t i = row_ptr[v]; i < row_ptr[v + 1]; ++i) {
        const std::uint32_t u = col_idx[i];
        if (mark[u] != s) {
          mark[u] = s;
          p.closure.push_back(u);
        }
      }
      if (mark[v] != s) {  // isolated node guard (Â always has the loop)
        mark[v] = s;
        p.closure.push_back(v);
      }
    }
    std::sort(p.closure.begin(), p.closure.end());
    for (std::uint32_t j = 0; j < p.closure.size(); ++j) {
      local_col[p.closure[j]] = j;
    }
    // Private-graph degree of every closure node: what GraphDrift needs to
    // renormalize touched rows bit-exactly after an edge insert/delete.
    p.closure_deg.reserve(p.closure.size());
    for (const std::uint32_t u : p.closure) p.closure_deg.push_back(deg[u]);

    // Rows in owned order, columns remapped to closure positions; ascending
    // global column order is preserved because the remap is monotone.
    p.adj_row.reserve(plan.shards[s].adj_nnz);
    p.adj_col.reserve(plan.shards[s].adj_nnz);
    p.adj_val.reserve(plan.shards[s].adj_nnz);
    for (std::uint32_t i = 0; i < p.owned.size(); ++i) {
      const std::uint32_t v = p.owned[i];
      for (std::int64_t k = row_ptr[v]; k < row_ptr[v + 1]; ++k) {
        p.adj_row.push_back(i);
        p.adj_col.push_back(local_col[col_idx[k]]);
        p.adj_val.push_back(values[k]);
      }
    }
  }

  // Halo routing: shard owner(u) must send u's embeddings to every shard s
  // whose closure contains u but does not own it.
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    for (const std::uint32_t u : payloads[s].closure) {
      const std::uint32_t t = plan.owner[u];
      if (t != s) payloads[t].halo_out[s].push_back(u);
    }
  }
  for (auto& p : payloads) {
    for (auto& h : p.halo_out) std::sort(h.begin(), h.end());
  }
  return payloads;
}

}  // namespace gv
