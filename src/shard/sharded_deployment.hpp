// ShardedVaultDeployment: one tenant's rectifier across N shard enclaves.
//
// Each shard is its own Enclave (own sealed shard package, possibly its own
// SGX platform) holding: the replicated rectifier weights, the shard's rows
// of the GLOBAL normalized private adjacency (columns spanning the one-hop
// closure), and the halo routing lists derived from the cut edges.  A
// refresh runs the public backbone once in the untrusted world, then a
// layer-synchronous sharded rectifier forward:
//
//   stream   the full public embedding matrices are pushed to every shard
//            in fixed-size chunks; each enclave keeps only its closure rows
//            (the untrusted side's access pattern is the full matrix, so it
//            learns nothing about shard neighbourhoods);
//   compute  layer k: every shard multiplies its owned rows of Â against
//            its closure input rows — bit-exact against the unsharded
//            forward because values and column order match the global CSR;
//   exchange boundary-node embeddings cross mutually attested
//            enclave-to-enclave channels (sgxsim/attested_channel.hpp) to
//            become the halo part of the next layer's closure input.  ONLY
//            embeddings and labels ride these channels; the cut edges and
//            sub-adjacencies never leave any enclave.
//
// The final layer's argmax lands in an enclave-resident label store per
// shard; serving is then a label-only lookup ecall into the owner shard
// (one per routed micro-batch), and the paper's label-only output invariant
// (Sec. IV-E) holds shard-locally and globally.
//
// COLD PATH (demand-driven).  Materialized label stores are a CACHE, not
// the only source of truth: infer_labels_subset_cold computes labels for an
// arbitrary node subset by walking the query's L-hop frontier ACROSS shard
// boundaries — each shard expands one hop inside its own enclave (the
// adjacency never leaves), boundary columns become halo-pull requests over
// the attested channels, and only the frontier's shards do any work.  When
// the fleet is warm, a shard's boundary-row activations retained at the
// last refresh answer pulls without recompute, so a cold query touches its
// owner shards plus store-serving neighbors instead of the whole fleet.
// The same machinery gives promotions an incremental re-materialization
// (rematerialize_shard): only the adopted shard's store is rebuilt, via a
// shard-local forward with halo pulls from the survivors.
// GRAPHDRIFT (live mutation + rebalancing).  The private graph is NOT
// frozen at provisioning: update_graph applies edge/node deltas inside the
// owning enclaves (sorted-row maintenance of each owned x closure
// sub-adjacency, bit-exact degree renormalization of touched rows,
// digest-based invalidation of the label-store entries and retained
// boundary activations the delta can reach), and move_node migrates one
// node between live shards over the attested channels (new audited
// node-transfer payload kind) behind a per-node router fence, flipping a
// copy-on-write owner map so no query ever observes split ownership.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/annotations.hpp"
#include "core/pipeline.hpp"
#include "shard/graph_drift.hpp"
#include "shard/shard_planner.hpp"
#include "sgxsim/attested_channel.hpp"
#include "sgxsim/channel.hpp"
#include "sgxsim/enclave.hpp"

namespace gv {

/// Telemetry of one cold cross-shard subset query.
struct ColdSubsetStats {
  /// Shards that ran rectifier layers for this query.
  std::size_t shards_computed = 0;
  /// shards_computed plus shards that only served halo pulls from their
  /// retained boundary stores.
  std::size_t shards_touched = 0;
  /// Total output-frontier rows computed, summed over layers and shards.
  std::size_t frontier_rows = 0;
  /// Plaintext bytes of halo-pull requests / pulled embeddings that crossed
  /// inter-shard attested channels for this query.
  std::uint64_t halo_request_bytes = 0;
  std::uint64_t halo_embedding_bytes = 0;
  /// Modeled seconds added by this query (critical path across shards,
  /// untrusted backbone included unless it was a cache hit).
  double modeled_seconds = 0.0;
  /// The untrusted backbone outputs were reused from the last forward over
  /// an identical feature snapshot.
  bool backbone_cache_hit = false;
};

struct ShardedDeploymentOptions {
  SgxCostModel cost_model{};
  /// Enclave name prefix; empty -> "shardvault.<dataset>".  Shard i becomes
  /// "<prefix>.shard<i>".
  std::string enclave_name;
  /// Platform sealing key per shard (one entry per shard, or empty for the
  /// default platform everywhere).  Distinct keys model shards placed on
  /// distinct SGX machines.
  std::vector<Sha256Digest> platform_keys;
  /// Seal shard packages at rest and unseal on load.
  bool seal_artifacts = true;
};

class ShardedVaultDeployment {
 public:
  ShardedVaultDeployment(const Dataset& ds, TrainedVault vault, ShardPlan plan,
                         ShardedDeploymentOptions opts = {});

  /// Backbone + layer-synchronous sharded forward; fills every live shard's
  /// label store.  Requires all shards alive (replicas cover reads, not
  /// refreshes).  Serialized against itself and infer_labels.
  void refresh(const CsrMatrix& features);
  bool refreshed() const { return refreshed_; }

  /// Number of completed refreshes.  Label stores (and replica copies) are
  /// stamped with the epoch they were materialized under, which is how a
  /// standby's store is detected as stale after a feature update it missed.
  std::uint64_t refresh_epoch() const { return epoch_.load(); }

  /// refresh() + gather every shard's owned labels (label-only exits).
  std::vector<std::uint32_t> infer_labels(const CsrMatrix& features);

  /// Cold cross-shard subset inference: labels for `nodes` (query order,
  /// duplicates allowed) computed on demand by walking the L-hop frontier
  /// across shard boundaries — no refresh, no label stores required.  Every
  /// frontier shard must be alive; shards outside the frontier are never
  /// touched.  Halo embeddings are pulled over the attested channels
  /// (store-served from boundary activations retained at the last refresh
  /// when the snapshot matches, recomputed shard-locally otherwise); the
  /// public backbone matrices are still streamed in full to each computing
  /// shard, exactly like a refresh, so the untrusted access pattern carries
  /// no frontier information.  Bit-exact against the single-enclave oracle.
  std::vector<std::uint32_t> infer_labels_subset_cold(
      const CsrMatrix& features, std::span<const std::uint32_t> nodes,
      ColdSubsetStats* stats = nullptr);
  /// Overload taking a precomputed features_fingerprint(features): callers
  /// serving many cold queries off one pinned snapshot (the server) hash it
  /// once instead of per query.
  std::vector<std::uint32_t> infer_labels_subset_cold(
      const CsrMatrix& features, std::uint64_t fingerprint,
      std::span<const std::uint32_t> nodes, ColdSubsetStats* stats = nullptr);

  /// Fast 64-bit content fingerprint of a feature snapshot (word-folded,
  /// NOT cryptographic — it keys the untrusted backbone cache and the
  /// stores-fresh check, both correctness caches over public inputs, and
  /// must stay cheap enough to pay per snapshot).
  static std::uint64_t features_fingerprint(const CsrMatrix& features);

  /// Incremental promotion re-materialization: rebuild ONLY `shard`'s label
  /// store (and retained boundary activations) via a shard-local cold
  /// forward with halo pulls from the surviving shards' retained stores,
  /// instead of re-running the whole fleet's refresh.  Requires a completed
  /// refresh and `features` to be the snapshot of that refresh (otherwise
  /// the surviving stores would be inconsistent with the new one — use
  /// refresh() for a snapshot change).  Does not bump the refresh epoch:
  /// the snapshot did not move, so standby label stores stay fresh.
  void rematerialize_shard(std::uint32_t shard, const CsrMatrix& features);

  /// True when `shard` is alive and its enclave label store is materialized
  /// (false for a just-adopted shard until rematerialize_shard/refresh, and
  /// for every shard before the first refresh) — the router sends lookups
  /// for un-materialized stores down the cold path instead of failing.
  bool store_materialized(std::uint32_t shard) const;

  /// Install a label store into an adopted shard without any forward —
  /// used by ReplicaManager::promote when the standby's replicated store is
  /// provably fresh (synced at the current refresh epoch): those labels are
  /// bit-identical to what a re-materialization would compute, and they
  /// already live inside the very enclave that was adopted.  `labels` must
  /// cover the shard's owned nodes in owned order.
  void install_labels(std::uint32_t shard, std::vector<std::uint32_t> labels);

  /// Release the untrusted backbone-output cache (it holds full embedding
  /// matrices in host RAM; the next refresh or cold query recomputes).
  void drop_backbone_cache();

  // --- GraphDrift: live private-graph mutation. --------------------------
  /// Apply one batch of topology deltas inside the owning enclaves.  Each
  /// touched shard's sorted adjacency rows are edited in place, rows whose
  /// endpoints changed degree are renormalized from the integer degrees
  /// (bit-exact vs a from-scratch normalization of the mutated graph), and
  /// label-store entries / retained boundary activations within the
  /// rectifier's receptive field of a changed row are invalidated — the
  /// cold cross-shard path recomputes them on demand (and heals the store
  /// as it does).  Appended nodes go to the least-loaded shard.  Requires
  /// every shard alive.  `features_after`, when non-null, is the feature
  /// snapshot queries will use AFTER this update (old rows unchanged, one
  /// appended row per added node): it lets the unaffected shards' retained
  /// stores keep serving; without it a node add conservatively drops the
  /// store fingerprint.  Bumps the refresh epoch (standby label stores go
  /// stale-refusing) and the topology version (standby packages must
  /// re-replicate before they can promote).
  /// `before_unfence`, when set, runs after the update is fully applied
  /// but while the router fence is STILL UP — the hook a server uses to
  /// swap its feature snapshot atomically with the topology, so no query
  /// ever pairs the new node count with the old snapshot (or vice versa).
  GraphUpdateStats update_graph(
      const GraphDelta& delta, const CsrMatrix* features_after = nullptr,
      const std::function<void()>& before_unfence = {});

  /// Current node count (grows with node adds).
  std::size_t num_nodes() const;

  /// Immutable snapshot of the node -> shard owner map.  Copy-on-write:
  /// migrations and node adds swap the whole vector, so a router groups an
  /// entire batch against one consistent snapshot.
  std::shared_ptr<const std::vector<std::uint32_t>> owner_snapshot() const;
  /// Bumped once per committed ownership change (migration move/node add)
  /// AND per applied graph update: a router batch that raced either
  /// regroups against fresh state and retries instead of surfacing an
  /// internal consistency error.
  std::uint64_t ownership_epoch() const { return ownership_epoch_.load(); }
  /// Monotone version of the private topology (mutations AND migrations).
  /// Replicated packages are stamped with it: a standby whose package
  /// predates the live topology must re-replicate before it may promote.
  std::uint64_t topology_version() const { return topology_version_.load(); }

  /// Move one node between two live shards: extract its adjacency row,
  /// degrees, and current label inside the losing enclave, ship them over
  /// the attested channel as a sealed node-transfer payload, install them
  /// in the gaining enclave, flip the owner map, and only then retire the
  /// old row.  The node is fenced for the duration (await_moves), so no
  /// query observes split ownership; every other node serves throughout.
  /// Returns the fence window in wall milliseconds.  Refuses to empty a
  /// shard.  Typically driven by MigrationExecutor (shard/migration.hpp).
  double move_node(std::uint32_t node, std::uint32_t to);

  /// Block until none of `nodes` is mid-migration and no update_graph is
  /// mid-flight; false on timeout.
  bool await_moves(std::span<const std::uint32_t> nodes,
                   std::chrono::milliseconds timeout) const;

  /// Label-store entries of `shard` invalidated by graph updates and not
  /// yet recomputed (cold write-back, rematerialize, or refresh heal them).
  std::size_t stale_store_entries(std::uint32_t shard) const;
  /// For each of `nodes` (all owned by `shard`): 1 = the stored label was
  /// invalidated by a graph update — route it through the cold path.
  std::vector<char> stale_mask(std::uint32_t shard,
                               std::span<const std::uint32_t> nodes);

  /// True when `shard`'s retained boundary activations match the current
  /// stores (cold halo pulls are store-served without recompute).
  bool retained_valid(std::uint32_t shard) const;

  /// Rebuild ONLY `shard`'s retained boundary-row activations via a
  /// boundary-restricted cold forward (halo pulls from the survivors) —
  /// the missing piece after a warm-adopt promotion, whose installed label
  /// store is bit-fresh but whose enclave holds no activations.  Same
  /// snapshot requirements as rematerialize_shard; the label store is
  /// untouched.
  void rebuild_boundary_retained(std::uint32_t shard, const CsrMatrix& features);

  // --- Dead-shard detection. ---------------------------------------------
  /// A serving-path ecall that dies (EnclaveFailure) marks the shard dead
  /// and invokes this handler with the shard index — the hook the server
  /// uses to trigger the same fence + promote path an explicit kill_shard
  /// takes, without anyone having to notice the crash first.
  void set_shard_failure_handler(std::function<void(std::uint32_t)> handler);
  /// Dead shards detected from a failed ecall (vs explicit kill_shard).
  std::uint64_t shard_faults() const { return shard_faults_.load(); }

  /// Label-only lookup into one shard's enclave label store. `nodes` must
  /// all be owned by `shard`.  `modeled_delta`, when non-null, receives the
  /// modeled seconds this lookup added to the shard's meter (the router
  /// takes a max across shards touched by one batch — distinct shard
  /// enclaves serve in parallel).
  std::vector<std::uint32_t> lookup(std::uint32_t shard,
                                    std::span<const std::uint32_t> nodes,
                                    double* modeled_delta = nullptr);

  std::uint32_t num_shards() const { return plan_.num_shards; }
  std::uint32_t owner(std::uint32_t node) const;
  const ShardPlan& plan() const { return plan_; }
  const TrainedVault& vault() const { return vault_; }

  /// Simulate a shard enclave crash: subsequent lookups throw until a
  /// replica takes over (shard/replica_manager.hpp).
  void kill_shard(std::uint32_t shard);
  bool shard_alive(std::uint32_t shard) const;

  Enclave& shard_enclave(std::uint32_t shard);
  const Enclave& shard_enclave(std::uint32_t shard) const;
  const Sha256Digest& shard_platform_key(std::uint32_t shard) const;
  /// The shard package sealed under the shard's own platform key (empty
  /// unless seal_artifacts).
  const SealedBlob& sealed_payload(std::uint32_t shard) const;

  // --- Replication hooks (used by ReplicaManager). -----------------------
  /// Build an enclave with the SAME measurement as the shards (identical
  /// code identity => attestation succeeds, sealing keys differ by
  /// platform), e.g. a standby replica on another platform.
  std::unique_ptr<Enclave> make_peer_enclave(std::uint32_t shard,
                                             const Sha256Digest& platform_key) const;
  /// From inside shard's enclave, ship its package / label store to the
  /// peer endpoint of `ch` (encrypted under the attested session key).
  void send_payload(std::uint32_t shard, AttestedChannel& ch);
  void send_labels(std::uint32_t shard, AttestedChannel& ch);

  /// Adopt a promoted replica as the new PRIMARY of a dead shard: install
  /// its enclave (same measurement, standby platform key), rebuild the
  /// rectifier and sub-adjacency from `payload` (unsealed from the
  /// re-sealed blob INSIDE the promoted enclave by the caller), and re-run
  /// the attested-channel handshake with every surviving halo neighbor so
  /// the shard rejoins the layer-synchronous exchange.  Arguments are
  /// consumed (moved from) ONLY once every precondition has passed — a
  /// rejected adoption leaves the caller's standby slot fully intact.  The
  /// adopted shard's label store is EMPTY afterwards — callers must
  /// re-materialize via refresh() before routing a lookup to it
  /// (ReplicaManager::promote drives exactly that sequence under the
  /// router's promotion fence).
  void adopt_shard(std::uint32_t shard, std::unique_ptr<Enclave>& enclave,
                   ShardPayload& payload, SealedBlob& sealed,
                   const Sha256Digest& platform_key);

  // --- Audit + cost accounting. ------------------------------------------
  /// Plaintext bytes that crossed INTER-SHARD channels, by payload kind.
  /// Tests assert package_bytes == 0 and label_bytes == 0 on these: halo
  /// traffic is embeddings, halo-pull requests, and (during migration
  /// only) audited node-transfer payloads — the one kind allowed to carry
  /// adjacency rows, which is why it is counted separately.
  std::uint64_t halo_kind_bytes(AttestedChannel::PayloadKind kind) const;
  std::uint64_t halo_embedding_bytes() const;
  std::uint64_t halo_label_bytes() const;
  std::uint64_t halo_package_bytes() const;
  std::uint64_t halo_request_bytes() const;
  std::uint64_t halo_transfer_bytes() const;
  /// Wire bytes incl. the power-of-two bucket padding that hides cut /
  /// frontier / move-set cardinalities from the untrusted relay.
  std::uint64_t halo_padded_bytes() const;
  /// Publish the per-kind channel byte audit (and the padded wire total,
  /// whose delta over the payload sum is what the padding spent) as
  /// `channel_kind`-labeled gauges in the global MetricsRegistry.  Also
  /// audits the padding invariant per channel (padded >= logical payload);
  /// a violation would mean block sizes started leaking cardinalities and
  /// trips the FlightRecorder with a channel_anomaly fault.
  void publish_channel_audit() const;
  /// Publish per-shard EPC headroom (modeled EPC budget minus the shard
  /// enclave's current ledger bytes) as `epc.shard_headroom_bytes{shard=}`
  /// gauges — pushed on every state change (refresh, drift update,
  /// adoption), not only when stats() is pulled.
  void publish_epc_gauges() const;

  /// Modeled seconds so far: untrusted backbone + the critical path of the
  /// sharded forward (per phase, the slowest shard — shards run on separate
  /// enclaves/platforms and proceed in parallel between barriers).
  double modeled_seconds() const;
  /// Sum of every shard's meter (total work, not critical path).
  CostMeter aggregate_meter() const;
  const SgxCostModel& cost_model() const { return opts_.cost_model; }
  std::size_t max_shard_peak_bytes() const;

 private:
  struct Shard {
    std::unique_ptr<Enclave> enclave;
    std::unique_ptr<OneWayChannel> stream;  // untrusted -> enclave staging
    /// Serving-vs-adoption guard: lookups hold it shared for their whole
    /// body; adopt_shard holds it exclusive while it swaps the enclave and
    /// every container a lookup reads.  A straggler that slipped past the
    /// router's promotion fence therefore drains BEFORE the swap — a hard
    /// guarantee where the pre-GraphDrift code had a timing assumption.
    mutable std::shared_mutex access_mu GV_LOCK_RANK(gv::lockrank::kShardAccess);
    std::atomic<bool> alive{true};
    /// Label store materialized (refresh or rematerialize_shard) and not
    /// since invalidated by an adoption.
    std::atomic<bool> store_ready{false};
    /// Retained boundary activations correspond to the last refresh
    /// snapshot (cleared by adoption; restored by rematerialize_shard).
    std::atomic<bool> retained_valid{false};
    // Enclave-held state (only touched inside ecalls).  GV_SECRET marks
    // everything adjacency- or label-derived; bb_rows stays unmarked — the
    // backbone embeddings are public by the paper's threat model.
    ShardPayload payload;
    GV_SECRET std::shared_ptr<const CsrMatrix> sub_adj;  // owned x closure
    std::unique_ptr<Rectifier> rectifier;
    std::vector<Matrix> bb_rows;    // closure rows per backbone layer index
    GV_SECRET Matrix h_owned;   // current layer output (owned rows)
    GV_SECRET Matrix h_closure; // assembled next-layer input (closure rows)
    GV_SECRET std::vector<std::uint32_t> labels;  // label store
    SealedBlob sealed;
    /// Union of halo_out[*] as owned-local row indices (sorted): the rows
    /// whose activations any peer can ever pull cold.
    std::vector<std::uint32_t> boundary_rows;
    // --- GraphDrift mutable topology (enclave-held). ----------------------
    /// Adjacency rows keyed by owned-local index, columns as GLOBAL node
    /// ids in ascending order with the GLOBAL Â value: the mutable source
    /// of truth that payload.adj_* / sub_adj / the rectifier CSR are
    /// regenerated from after a mutation.  Ascending global columns keep
    /// the FP summation order of the unsharded forward.
    GV_SECRET std::vector<std::vector<std::pair<std::uint32_t, float>>> adj_rows;
    /// 1/sqrt(closure_deg + 1) per closure node, recomputed from the
    /// integer degree whenever it changes (bit-exact renormalization).
    GV_SECRET std::vector<float> closure_dinv;
    /// Owned rows referencing each closure node (self-loops included):
    /// a column whose count drops to zero leaves the closure.
    std::vector<std::uint32_t> closure_refs;
    /// FNV digest of each owned row's (cols, values): rows whose digest
    /// survives a delta keep their labels; changed digests seed the
    /// stale-label BFS.
    GV_SECRET std::vector<std::uint64_t> row_digest;
    /// Label-store entries invalidated by a graph update (1 = stale).
    std::vector<char> label_stale;
    std::atomic<std::size_t> stale_count{0};
    /// Boundary-row activations per rectifier layer 0..L-2, retained at
    /// refresh so cold halo pulls need no recompute (rows ~ boundary_rows).
    GV_SECRET std::vector<Matrix> retained;
    /// Transient cold-query state (reset per query, inside ecalls).
    struct Cold {
      std::vector<std::vector<std::uint32_t>> out_rows;  // [layer] owned-local
      std::vector<std::vector<std::uint32_t>> in_cols;   // [layer] closure-local
      /// serve_live[k][t]: owned-local rows of layer k's output shard t
      /// asked for, answered from the freshly computed frontier;
      /// serve_store[k][t]: same, answered from the retained store.
      std::vector<std::vector<std::vector<std::uint32_t>>> serve_live;
      std::vector<std::vector<std::vector<std::uint32_t>>> serve_store;
      std::vector<Matrix> bb;                            // staged rows per backbone idx
      std::vector<std::vector<std::uint32_t>> bb_need;   // closure-local per backbone idx
      Matrix h;  // latest computed layer output (rows ~ out_rows[k])
      /// QueryLens id of the query this shard is serving halo pulls for —
      /// set ONLY from a received halo request's sealed trailer (never by
      /// the local coordinator), so peer-side halo-serve spans are
      /// genuinely channel-attributed.  0 = untraced.
      std::uint64_t query_id = 0;
    } cold;
  };

  void provision_shard(Shard& shard, ShardPayload payload);
  /// Rebuild the enclave-held state (sub-adjacency CSR, rectifier, memory
  /// ledger) from `shard.payload` inside `shard.enclave` — shared by initial
  /// provisioning and replica adoption.
  void install_payload(Shard& shard);
  /// Regenerate sub_adj / payload.adj_* / boundary_rows / the rectifier
  /// CSR / the sealed blob from the (mutated) adj_rows + closure arrays.
  /// Must run inside an ecall on `shard.enclave`.
  void rebuild_topology_locked(Shard& shard);
  /// Dead-shard bookkeeping for a serving ecall that threw EnclaveFailure:
  /// marks the shard dead, counts the fault, and invokes the failure
  /// handler.  Callers MUST have released the shard's access_mu first —
  /// the handler may join a promotion that needs it exclusively.
  void on_enclave_failure(std::uint32_t shard);
  /// Cold-path variant of the bookkeeping: marks the shard dead and counts
  /// the fault, but only RECORDS it (pending_fault_) — the caller holds
  /// infer_mu_, which the handler's promotion join would need via
  /// adopt_shard.  The serving entry points invoke notify_pending_fault()
  /// after releasing the lock.
  template <typename F>
  auto cold_ecall(std::uint32_t shard, F&& body) -> decltype(body());
  void mark_cold_fault(std::uint32_t shard);
  void notify_pending_fault();
  /// Swap in a fresh owner-map snapshot (caller mutated plan_.owner under
  /// infer_mu_) and bump the ownership epoch.
  void publish_owner_map();
  AttestedChannel* channel(std::uint32_t s, std::uint32_t t);
  /// channel(s, t), creating (and handshaking) it when the pair had no
  /// halo overlap at provisioning time — drift and migration can mint new
  /// neighbor pairs.  Caller holds infer_mu_.
  AttestedChannel& ensure_channel(std::uint32_t s, std::uint32_t t,
                                  std::size_t* created);
  void stream_backbone_rows(const std::vector<Matrix>& outputs);
  /// The oblivious streaming protocol shared by refresh and the cold path:
  /// push the FULL matrix to `sh` in fixed-size chunks (the untrusted
  /// access pattern carries no row-selection information) and run
  /// `scatter(block, r0)` inside a per-chunk ecall — the enclave-side
  /// selection of which rows to keep stays inside the enclave.
  template <typename Scatter>
  void stream_full_matrix(Shard& sh, const Matrix& full, Scatter&& scatter);
  /// What a cold forward installs into `retain_shard` on its way through.
  enum class RetainMode {
    kNone,      // plain query (stale store entries are still healed)
    kFull,      // labels + boundary activations (`nodes` = full owned set)
    kBoundary,  // boundary activations only (`nodes` = boundary rows)
  };
  /// Shared cold forward (caller holds infer_mu_; `fingerprint` is
  /// features_fingerprint(features), hashed once per entry point).
  std::vector<std::uint32_t> cold_forward(const CsrMatrix& features,
                                          std::uint64_t fingerprint,
                                          std::span<const std::uint32_t> nodes,
                                          ColdSubsetStats* stats,
                                          std::uint32_t retain_shard,
                                          RetainMode retain_mode);
  /// Backbone outputs for `features`, reusing the cache when the
  /// fingerprint matches the last forward (caller holds infer_mu_).
  const std::vector<Matrix>& backbone_for(const CsrMatrix& features,
                                          std::uint64_t fingerprint,
                                          bool* cache_hit);
  /// Run `body(s)` for every shard; adds the slowest shard's meter delta to
  /// the parallel-time accumulator (one synchronized phase).  `phase` names
  /// the interval in the VaultScope trace ("fleet" category); when `layer`
  /// is >= 0 it is attached as a span arg so per-layer halo exchange is
  /// visible in the exported timeline.  The span's modeled clock is the
  /// same slowest-shard delta the accumulator absorbs.
  template <typename F>
  void parallel_phase(const char* phase, std::int64_t layer, F&& body);
  template <typename F>
  void parallel_phase(const char* phase, F&& body);
  double meter_seconds(const Shard& s) const;

  TrainedVault vault_;
  ShardPlan plan_;
  ShardedDeploymentOptions opts_;
  std::vector<std::size_t> required_layers_;
  /// Untrusted degree ledger (one entry per node): mutation metadata the
  /// coordinator needs to hand each enclave the absolute degrees its
  /// renormalization must use.  Like the plan's owner map, it is
  /// vendor-context serving metadata — the edges themselves never leave
  /// the enclaves.  Guarded by infer_mu_.
  std::vector<std::uint32_t> degrees_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Dead enclaves replaced by promoted replicas, kept alive so stragglers
  /// mid-ecall at adoption time never dangle.
  std::vector<std::unique_ptr<Enclave>> retired_enclaves_;
  /// channels_[s * K + t] for s < t; null when no halo overlap either way.
  std::vector<std::unique_ptr<AttestedChannel>> channels_;
  std::unique_ptr<std::mutex> infer_mu_ GV_LOCK_RANK(gv::lockrank::kDeployment) =
      std::make_unique<std::mutex>();
  std::atomic<bool> refreshed_{false};
  /// Store epoch: completed refreshes PLUS applied graph updates and
  /// migrations — anything after which a replica's last-synced label store
  /// may no longer be byte-identical to the primary's.  Replicated stores
  /// stamped with an older epoch fail safe (refuse to serve / warm-adopt).
  std::atomic<std::uint64_t> epoch_{0};
  // --- GraphDrift coordination state. ------------------------------------
  /// Copy-on-write owner map (routers snapshot it per batch); swapped
  /// under owner_mu_ by publish_owner_map.
  std::shared_ptr<const std::vector<std::uint32_t>> owner_map_;
  mutable std::unique_ptr<std::mutex> owner_mu_ GV_LOCK_RANK(gv::lockrank::kMoveFence) =
      std::make_unique<std::mutex>();
  std::atomic<std::uint64_t> ownership_epoch_{0};
  std::atomic<std::uint64_t> topology_version_{0};
  std::atomic<std::uint64_t> shard_faults_{0};
  /// Shard whose enclave died under a cold-path ecall, awaiting handler
  /// notification outside infer_mu_ (UINT32_MAX = none).
  std::atomic<std::uint32_t> pending_fault_{0xffffffffu};
  /// Per-node migration fences + the global update_graph fence.
  mutable std::unique_ptr<std::mutex> move_mu_ GV_LOCK_RANK(gv::lockrank::kMoveFence) =
      std::make_unique<std::mutex>();
  mutable std::unique_ptr<std::condition_variable> move_cv_ =
      std::make_unique<std::condition_variable>();
  std::vector<std::uint32_t> moving_;  // sorted; guarded by move_mu_
  bool update_fence_ = false;          // guarded by move_mu_
  std::atomic<std::size_t> moving_count_{0};
  std::function<void(std::uint32_t)> failure_handler_;  // guarded by handler_mu_
  mutable std::unique_ptr<std::mutex> handler_mu_ GV_LOCK_RANK(gv::lockrank::kMoveFence) =
      std::make_unique<std::mutex>();
  // Untrusted-world backbone output cache (the embeddings are public; only
  // the fingerprint comparison decides reuse).  Guarded by infer_mu_.
  std::vector<Matrix> bb_cache_;
  std::uint64_t bb_fingerprint_ = 0;
  bool have_bb_cache_ = false;
  /// Snapshot fingerprint the materialized label stores + retained boundary
  /// activations correspond to (set at the end of refresh).
  std::uint64_t store_fingerprint_ = 0;
  bool have_store_fingerprint_ = false;
  // Atomics: stats() readers poll while refresh/infer_labels accumulate.
  std::atomic<double> untrusted_seconds_{0.0};
  std::atomic<double> parallel_seconds_{0.0};
};

}  // namespace gv
