#include "shard/graph_drift.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"

namespace gv {

void DriftTracker::record(const GraphUpdateStats& stats) {
  cut_inserted_ += stats.cut_edges_inserted;
  cut_deleted_ += stats.cut_edges_deleted;
  for (const auto& [node, shard] : stats.added_nodes) {
    if (shard < owned_count_.size()) ++owned_count_[shard];
    drift_.push_back(node);
  }
  drift_.insert(drift_.end(), stats.changed_rows.begin(),
                stats.changed_rows.end());
  std::sort(drift_.begin(), drift_.end());
  drift_.erase(std::unique(drift_.begin(), drift_.end()), drift_.end());
  // Publish the current health readings so a registry export (or an
  // Autopilot-style control loop) sees drift without holding the tracker.
  auto& reg = MetricsRegistry::global();
  reg.gauge("drift.cut_growth").set(cut_growth());
  reg.gauge("drift.load_imbalance").set(load_imbalance());
}

double DriftTracker::load_imbalance() const {
  if (owned_count_.empty()) return 1.0;
  std::size_t total = 0, mx = 0;
  for (const auto c : owned_count_) {
    total += c;
    mx = std::max(mx, c);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(owned_count_.size());
  return static_cast<double>(mx) / mean;
}

double DriftTracker::cut_growth() const {
  if (baseline_cut_ == 0) return cut_inserted_ > 0 ? 1.0 : 0.0;
  return static_cast<double>(cut_inserted_) /
         static_cast<double>(baseline_cut_);
}

void DriftTracker::reset(const ShardPlan& baseline) {
  baseline_cut_ = baseline.cut_edges;
  cut_inserted_ = cut_deleted_ = 0;
  owned_count_.assign(baseline.num_shards, 0);
  for (std::uint32_t s = 0; s < baseline.num_shards; ++s) {
    owned_count_[s] = baseline.shards[s].nodes.size();
  }
  drift_.clear();
}

void apply_delta(Dataset& ds, const GraphDelta& delta) {
  const std::uint32_t n_old = ds.num_nodes();
  // Node adds first: inserts may reference the new ids.
  ds.graph.add_nodes(static_cast<std::uint32_t>(delta.node_adds.size()));
  if (!delta.node_adds.empty()) {
    auto entries = ds.features.to_coo();
    for (std::size_t i = 0; i < delta.node_adds.size(); ++i) {
      const std::uint32_t row = n_old + static_cast<std::uint32_t>(i);
      for (const auto& [col, val] : delta.node_adds[i]) {
        GV_CHECK(col < ds.features.cols(), "added-node feature column out of range");
        entries.push_back({row, col, val});
      }
      ds.labels.push_back(0);
    }
    ds.features = CsrMatrix::from_coo(ds.graph.num_nodes(), ds.features.cols(),
                                      std::move(entries));
  }
  for (const auto& [a, b] : delta.edge_deletes) ds.graph.remove_edge(a, b);
  for (const auto& [a, b] : delta.edge_inserts) {
    GV_CHECK(a < ds.graph.num_nodes() && b < ds.graph.num_nodes(),
             "edge insert endpoint out of range");
    ds.graph.add_edge(a, b);
  }
}

void extend_backbone(TrainedVault& vault, std::size_t num_nodes) {
  if (vault.backbone_gcn == nullptr) return;  // MLP: rows are independent
  const std::size_t have = vault.substitute_graph.num_nodes();
  if (num_nodes == have) return;
  GV_CHECK(num_nodes > have, "backbone cannot shrink below its node count");
  // Appended nodes are isolated in the substitute graph: degree 0, so their
  // Â self-loop is exactly 1.0 and no pre-existing node's degree (or Â row)
  // moves — old backbone embeddings stay bit-identical.
  Graph sub = vault.substitute_graph;
  sub.add_nodes(static_cast<std::uint32_t>(num_nodes - have));
  auto adj = std::make_shared<const CsrMatrix>(sub.gcn_normalized());

  GcnConfig gc;
  gc.input_dim = vault.backbone_gcn->layer(0).in_dim();
  gc.channels = vault.backbone_gcn->layer_dims();
  gc.dropout = 0.0f;
  Rng rng(1);
  auto model = std::make_shared<GcnModel>(gc, adj, rng);
  for (std::size_t k = 0; k < model->num_layers(); ++k) {
    model->layer(k).weight().value = vault.backbone_gcn->layer(k).weight().value;
    model->layer(k).bias().value = vault.backbone_gcn->layer(k).bias().value;
  }
  vault.substitute_graph = std::move(sub);
  vault.substitute_adj = std::move(adj);
  vault.backbone_gcn = std::move(model);
}

TrainedVault revault_on(const TrainedVault& vault, const Dataset& mutated) {
  GV_CHECK(vault.rectifier != nullptr, "revault requires a trained rectifier");
  TrainedVault out = vault;
  extend_backbone(out, mutated.num_nodes());
  out.real_adj =
      std::make_shared<const CsrMatrix>(mutated.graph.gcn_normalized());
  Rng rng(1);
  out.rectifier = std::make_shared<Rectifier>(vault.rectifier->config(),
                                              out.backbone().layer_dims(),
                                              out.real_adj, rng);
  out.rectifier->deserialize_weights(vault.rectifier->serialize_weights());
  return out;
}

}  // namespace gv
