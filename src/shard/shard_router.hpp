// ShardRouter: splits a micro-batch by shard ownership, fans label lookups
// out to the owner enclaves (or their replicas on failover), and merges the
// results back into request order.
//
// Ownership (node -> shard) is serving metadata: the router must see it to
// route.  What it never sees is WHY two nodes share a shard — the cut
// edges, sub-adjacencies, and halo lists stay inside enclaves.  Distinct
// shards serve their sub-batches on distinct enclaves (typically distinct
// platforms), so one routed batch's modeled time is the slowest touched
// shard, not the sum.
//
// Promotion fencing: while a shard is PROMOTING (its primary died and the
// standby is rebuilding + re-materializing; shard/replica_manager.hpp), the
// router holds that shard's sub-batches on the fence until the promotion
// lands — or fails fast after `fence_timeout` — and NEVER reads the
// standby's pre-promotion label store.
//
// Cold misses: a live shard whose label store is NOT materialized (never
// refreshed, or just adopted) is not an error — the router sends those
// sub-batches down the cold cross-shard path (set_cold_path), treating the
// materialized stores as a cache over demand-driven inference rather than
// the only source of truth.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "shard/replica_manager.hpp"
#include "shard/sharded_deployment.hpp"
#include "common/annotations.hpp"

namespace gv {

class ShardRouter {
 public:
  /// `replicas` may be null (no failover: a dead shard's queries throw).
  ShardRouter(ShardedVaultDeployment& deployment, ReplicaManager* replicas = nullptr);

  /// Labels for `nodes` in request order.  Sub-batches for a PROMOTING
  /// shard block on the fence until the promoted PRIMARY serves them;
  /// sub-batches for a live shard with an un-materialized store go down the
  /// cold path; store entries invalidated by a graph update are split onto
  /// the cold path (which heals them) while the fresh remainder serves
  /// warm; nodes mid-migration wait on the per-move fence, and a batch
  /// that raced an ownership flip regroups against a fresh owner snapshot;
  /// sub-batches for dead shards fail over to ready (and epoch-fresh)
  /// replicas; throws gv::Error when nobody can answer.
  std::vector<std::uint32_t> route(std::span<const std::uint32_t> nodes);

  /// Demand-driven fallback for un-materialized label stores (typically
  /// ShardedVaultDeployment::infer_labels_subset_cold under the server's
  /// current feature snapshot).  The callee accounts its own modeled time.
  using ColdPathFn =
      std::function<std::vector<std::uint32_t>(std::span<const std::uint32_t>)>;
  void set_cold_path(ColdPathFn fn) { cold_path_ = std::move(fn); }

  /// Routed sub-batches answered by a replica or a just-promoted PRIMARY.
  std::uint64_t failovers() const { return failovers_.load(); }
  /// Routed sub-batches served through the cold cross-shard path.
  std::uint64_t cold_batches() const { return cold_batches_.load(); }
  /// Routed sub-batches that waited out a promotion fence.
  std::uint64_t fenced() const { return fenced_.load(); }
  /// Fencing policy for a PROMOTING shard: block up to this long for the
  /// promotion to land, then fail fast.  Zero = always fail fast.
  void set_fence_timeout(std::chrono::milliseconds timeout) {
    fence_timeout_ = timeout;
  }
  /// Modeled seconds of all routed batches (max across shards per batch).
  double modeled_seconds() const;
  /// Sub-batches dispatched to each shard so far (load-balance telemetry).
  std::vector<std::uint64_t> per_shard_batches() const;

 private:
  /// One grouping + serving attempt against a single owner-map snapshot.
  std::vector<std::uint32_t> route_once(std::span<const std::uint32_t> nodes);

  ShardedVaultDeployment* deployment_;
  ReplicaManager* replicas_;
  ColdPathFn cold_path_;
  std::chrono::milliseconds fence_timeout_{30000};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> fenced_{0};
  std::atomic<std::uint64_t> cold_batches_{0};
  mutable std::mutex stats_mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
  double modeled_seconds_ = 0.0;
  std::vector<std::uint64_t> per_shard_batches_;
};

}  // namespace gv
