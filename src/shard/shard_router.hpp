// ShardRouter: splits a micro-batch by shard ownership, fans label lookups
// out to the owner enclaves (or their replicas on failover), and merges the
// results back into request order.
//
// Ownership (node -> shard) is serving metadata: the router must see it to
// route.  What it never sees is WHY two nodes share a shard — the cut
// edges, sub-adjacencies, and halo lists stay inside enclaves.  Distinct
// shards serve their sub-batches on distinct enclaves (typically distinct
// platforms), so one routed batch's modeled time is the slowest touched
// shard, not the sum.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "shard/replica_manager.hpp"
#include "shard/sharded_deployment.hpp"

namespace gv {

class ShardRouter {
 public:
  /// `replicas` may be null (no failover: a dead shard's queries throw).
  ShardRouter(ShardedVaultDeployment& deployment, ReplicaManager* replicas = nullptr);

  /// Labels for `nodes` in request order.  Sub-batches for dead shards fail
  /// over to ready replicas; throws gv::Error when neither can answer.
  std::vector<std::uint32_t> route(std::span<const std::uint32_t> nodes);

  /// Routed sub-batches answered by a replica.
  std::uint64_t failovers() const { return failovers_.load(); }
  /// Modeled seconds of all routed batches (max across shards per batch).
  double modeled_seconds() const;
  /// Sub-batches dispatched to each shard so far (load-balance telemetry).
  std::vector<std::uint64_t> per_shard_batches() const;

 private:
  ShardedVaultDeployment* deployment_;
  ReplicaManager* replicas_;
  std::atomic<std::uint64_t> failovers_{0};
  mutable std::mutex stats_mu_;
  double modeled_seconds_ = 0.0;
  std::vector<std::uint64_t> per_shard_batches_;
};

}  // namespace gv
