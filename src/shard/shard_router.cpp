#include "shard/shard_router.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace {

/// Seconds elapsed since `start` — the router's stage-timing helper.
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

namespace gv {

ShardRouter::ShardRouter(ShardedVaultDeployment& deployment,
                         ReplicaManager* replicas)
    : deployment_(&deployment),
      replicas_(replicas),
      per_shard_batches_(deployment.num_shards(), 0) {}

std::vector<std::uint32_t> ShardRouter::route(
    std::span<const std::uint32_t> nodes) {
  // Migration/update retry loop: ownership is read from one immutable
  // snapshot per attempt; if a migration flips an owner mid-batch the
  // lookup throws, the ownership epoch has moved, and the batch regroups
  // against a fresh snapshot.  Bounded — each retry needs a racing move.
  for (int attempt = 0;; ++attempt) {
    // Per-node migration fences + the global graph-update fence: no lookup
    // may observe split ownership or a not-yet-invalidated store entry.
    const auto fence_start = std::chrono::steady_clock::now();
    GV_CHECK(deployment_->await_moves(nodes, fence_timeout_),
             "migration / graph update did not complete within the fence "
             "timeout");
    record_query_stage(QueryStage::kFence, seconds_since(fence_start));
    const std::uint64_t epoch0 = deployment_->ownership_epoch();
    try {
      return route_once(nodes);
    } catch (const Error&) {
      if (attempt >= 3 || deployment_->ownership_epoch() == epoch0) throw;
      // An ownership change landed under this batch: regroup and retry.
    }
  }
}

std::vector<std::uint32_t> ShardRouter::route_once(
    std::span<const std::uint32_t> nodes) {
  TraceSpan route_span("route", "route_batch");
  route_span.arg("nodes", double(nodes.size()));
  const std::uint32_t num_shards = deployment_->num_shards();
  const auto owner = deployment_->owner_snapshot();
  // Split by ownership, remembering each node's position in the request.
  std::vector<std::vector<std::uint32_t>> shard_nodes(num_shards);
  std::vector<std::vector<std::size_t>> shard_positions(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    GV_CHECK(nodes[i] < owner->size(), "query node out of range");
    const std::uint32_t s = (*owner)[nodes[i]];
    shard_nodes[s].push_back(nodes[i]);
    shard_positions[s].push_back(i);
  }

  std::vector<std::uint32_t> out(nodes.size(), 0);
  double slowest = 0.0;
  std::vector<std::uint32_t> touched;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (shard_nodes[s].empty()) continue;
    touched.push_back(s);
    double delta = 0.0;
    std::vector<std::uint32_t> labels;
    TraceSpan shard_span("route", "shard_lookup");
    shard_span.arg("shard", double(s));
    shard_span.arg("nodes", double(shard_nodes[s].size()));
    // The kill -> fence transition is not atomic (kill_shard kills the
    // primary, THEN flips the replica to PROMOTING), so a state observed
    // here can be fenced by the time the lookup runs; one retry through the
    // fence covers every interleaving.
    for (bool retried = false;; retried = true) {
      bool after_fence = false;
      if (replicas_ != nullptr &&
          replicas_->state(s) == ReplicaState::kPromoting) {
        // Promotion fence: the shard has no trustworthy label store right
        // now (the primary is dead, the standby is mid-rebuild).  Wait for
        // the promotion to land rather than EVER returning a pre-promotion
        // label, then serve through the normal path below (so a cold walk
        // after the fence still enjoys the frontier-fence retry).
        {
          TraceSpan fence_span("route", "promotion_fence_wait");
          fence_span.arg("shard", double(s));
          const auto fence_start = std::chrono::steady_clock::now();
          GV_CHECK(replicas_->await_promotion(s, fence_timeout_),
                   "shard promotion did not complete within the fence timeout");
          record_query_stage(QueryStage::kFence, seconds_since(fence_start));
        }
        fenced_.fetch_add(1);
        GV_CHECK(deployment_->shard_alive(s), "shard promotion failed");
        after_fence = true;
      }
      bool used_cold = false;
      try {
        if (deployment_->shard_alive(s)) {
          if (!deployment_->store_materialized(s) && cold_path_ != nullptr) {
            // Un-materialized store on a live shard (never refreshed, or a
            // cold-start fleet's freshly promoted PRIMARY): the store is
            // only a cache — serve demand-driven through the cold
            // cross-shard path.  Its modeled time lands on the
            // deployment's meter, not on this batch's lookup delta.
            used_cold = true;
            labels = cold_path_(shard_nodes[s]);
            cold_batches_.fetch_add(1);
          } else if (cold_path_ != nullptr &&
                     deployment_->stale_store_entries(s) > 0) {
            // Graph drift invalidated part of this shard's store: serve
            // the still-fresh entries from the store and only the stale
            // ones demand-driven (the cold forward writes the recomputed
            // labels back, healing the store as traffic touches it).
            const auto mask = deployment_->stale_mask(s, shard_nodes[s]);
            std::vector<std::uint32_t> fresh, stale;
            std::vector<std::size_t> fresh_at, stale_at;
            for (std::size_t i = 0; i < mask.size(); ++i) {
              (mask[i] ? stale : fresh).push_back(shard_nodes[s][i]);
              (mask[i] ? stale_at : fresh_at).push_back(i);
            }
            labels.assign(shard_nodes[s].size(), 0);
            if (!fresh.empty()) {
              const auto ecall_start = std::chrono::steady_clock::now();
              const auto got = deployment_->lookup(s, fresh, &delta);
              record_query_stage(QueryStage::kEcall, seconds_since(ecall_start));
              for (std::size_t i = 0; i < got.size(); ++i) {
                labels[fresh_at[i]] = got[i];
              }
            }
            if (!stale.empty()) {
              used_cold = true;
              const auto got = cold_path_(stale);
              for (std::size_t i = 0; i < got.size(); ++i) {
                labels[stale_at[i]] = got[i];
              }
              cold_batches_.fetch_add(1);
            }
          } else {
            const auto ecall_start = std::chrono::steady_clock::now();
            labels = deployment_->lookup(s, shard_nodes[s], &delta);
            record_query_stage(QueryStage::kEcall, seconds_since(ecall_start));
          }
          // Served by a freshly promoted PRIMARY: a failover from the
          // router's point of view.
          if (after_fence) failovers_.fetch_add(1);
          break;
        }
        GV_CHECK(replicas_ != nullptr,
                 "shard enclave is down and no replica is ready");
        const auto ecall_start = std::chrono::steady_clock::now();
        labels = replicas_->lookup(s, shard_nodes[s], &delta);
        record_query_stage(QueryStage::kEcall, seconds_since(ecall_start));
        failovers_.fetch_add(1);
        break;
      } catch (const Error&) {
        // A kill (and its fence) may have landed between our checks and the
        // lookup — the primary died under us, the standby got fenced
        // (kill_shard -> begin_promotion), or a cold walk hit a FRONTIER
        // shard mid-promotion.  Wait the fences out and go around once.
        // Anything else — or a second failure — is real.
        if (retried || replicas_ == nullptr) throw;
        bool frontier_fenced = false;
        for (std::uint32_t t = 0; t < num_shards; ++t) {
          if (t == s || replicas_->state(t) != ReplicaState::kPromoting) continue;
          {
            TraceSpan fence_span("route", "promotion_fence_wait");
            fence_span.arg("shard", double(t));
            const auto fence_start = std::chrono::steady_clock::now();
            GV_CHECK(replicas_->await_promotion(t, fence_timeout_),
                     "frontier shard promotion did not complete within the "
                     "fence timeout");
            record_query_stage(QueryStage::kFence, seconds_since(fence_start));
          }
          fenced_.fetch_add(1);
          frontier_fenced = true;
        }
        // A cold walk's failed frontier shard may have finished promoting
        // between the throw and the state scan above — a cold attempt is
        // idempotent, so it always earns its one retry.  Likewise a shard
        // that is ALIVE again by now: a dead-shard-detection promotion can
        // land (and auto-restaff can flip the slot back to STANDBY) before
        // this thread even reaches the catch, and the retry then serves
        // from the already-promoted PRIMARY.
        if (!frontier_fenced && !used_cold && !deployment_->shard_alive(s) &&
            replicas_->state(s) == ReplicaState::kStandby) {
          throw;
        }
      }
    }
    shard_span.modeled_seconds(delta);
    slowest = std::max(slowest, delta);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      out[shard_positions[s][i]] = labels[i];
    }
  }
  route_span.modeled_seconds(slowest);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    modeled_seconds_ += slowest;
    for (const auto s : touched) ++per_shard_batches_[s];
  }
  return out;
}

double ShardRouter::modeled_seconds() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return modeled_seconds_;
}

std::vector<std::uint64_t> ShardRouter::per_shard_batches() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return per_shard_batches_;
}

}  // namespace gv
