#include "shard/shard_router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

ShardRouter::ShardRouter(ShardedVaultDeployment& deployment,
                         ReplicaManager* replicas)
    : deployment_(&deployment),
      replicas_(replicas),
      per_shard_batches_(deployment.num_shards(), 0) {}

std::vector<std::uint32_t> ShardRouter::route(
    std::span<const std::uint32_t> nodes) {
  const std::uint32_t num_shards = deployment_->num_shards();
  // Split by ownership, remembering each node's position in the request.
  std::vector<std::vector<std::uint32_t>> shard_nodes(num_shards);
  std::vector<std::vector<std::size_t>> shard_positions(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint32_t s = deployment_->owner(nodes[i]);
    shard_nodes[s].push_back(nodes[i]);
    shard_positions[s].push_back(i);
  }

  std::vector<std::uint32_t> out(nodes.size(), 0);
  double slowest = 0.0;
  std::vector<std::uint32_t> touched;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (shard_nodes[s].empty()) continue;
    touched.push_back(s);
    double delta = 0.0;
    std::vector<std::uint32_t> labels;
    if (deployment_->shard_alive(s)) {
      labels = deployment_->lookup(s, shard_nodes[s], &delta);
    } else {
      GV_CHECK(replicas_ != nullptr && replicas_->ready(s),
               "shard enclave is down and no replica is ready");
      labels = replicas_->lookup(s, shard_nodes[s], &delta);
      failovers_.fetch_add(1);
    }
    slowest = std::max(slowest, delta);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      out[shard_positions[s][i]] = labels[i];
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    modeled_seconds_ += slowest;
    for (const auto s : touched) ++per_shard_batches_[s];
  }
  return out;
}

double ShardRouter::modeled_seconds() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return modeled_seconds_;
}

std::vector<std::uint64_t> ShardRouter::per_shard_batches() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return per_shard_batches_;
}

}  // namespace gv
