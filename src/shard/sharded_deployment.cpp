#include "shard/sharded_deployment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace gv {

namespace {

constexpr const char* kCodeTagPrefix = "shardvault-rectifier-v1:";

/// Sentinel for cold_forward: no shard's stores are being (re)materialized.
constexpr std::uint32_t kNoRetain = 0xffffffffu;

/// Position of `v` in sorted `ids`; throws when absent.
std::uint32_t position_of(const std::vector<std::uint32_t>& ids, std::uint32_t v,
                          const char* what) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  GV_CHECK(it != ids.end() && *it == v, what);
  return static_cast<std::uint32_t>(it - ids.begin());
}

/// Position of `v` in sorted `ids`, or -1 when absent.
std::ptrdiff_t find_in(const std::vector<std::uint32_t>& ids, std::uint32_t v) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  if (it == ids.end() || *it != v) return -1;
  return it - ids.begin();
}

/// Insert `v` into sorted `ids` if absent; true when inserted.
bool sorted_insert(std::vector<std::uint32_t>& ids, std::uint32_t v) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  if (it != ids.end() && *it == v) return false;
  ids.insert(it, v);
  return true;
}

/// Erase `v` from sorted `ids` if present; true when erased.
bool sorted_erase(std::vector<std::uint32_t>& ids, std::uint32_t v) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  if (it == ids.end() || *it != v) return false;
  ids.erase(it);
  return true;
}

/// The exact D̃^{-1/2} float the global normalization computes for an
/// integer degree — renormalized entries must match gcn_normalized() bit
/// for bit, so the formula is recomputed from the degree, never nudged.
float deg_inv_sqrt(std::uint32_t deg) {
  return 1.0f / std::sqrt(static_cast<float>(deg + 1));
}

/// FNV digest of one adjacency row's (global col, value) pairs: the
/// "did this row actually change?" oracle behind stale-label invalidation
/// (a delta that cancels out leaves digests — and labels — untouched).
std::uint64_t row_fnv(const std::vector<std::pair<std::uint32_t, float>>& row) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [c, v] : row) {
    h = (h ^ c) * 0x100000001b3ull;
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

ShardedVaultDeployment::ShardedVaultDeployment(const Dataset& ds, TrainedVault vault,
                                               ShardPlan plan,
                                               ShardedDeploymentOptions opts)
    : vault_(std::move(vault)), plan_(std::move(plan)), opts_(std::move(opts)) {
  GV_CHECK(vault_.rectifier != nullptr, "deployment requires a trained rectifier");
  GV_CHECK(plan_.num_shards >= 1 && plan_.shards.size() == plan_.num_shards,
           "malformed shard plan");
  GV_CHECK(plan_.owner.size() == ds.num_nodes(), "plan covers a different graph");
  if (opts_.enclave_name.empty()) opts_.enclave_name = "shardvault." + ds.name;
  if (opts_.platform_keys.empty()) {
    opts_.platform_keys.assign(plan_.num_shards, Enclave::default_platform_key());
  }
  GV_CHECK(opts_.platform_keys.size() == plan_.num_shards,
           "need one platform key per shard");
  required_layers_ = vault_.rectifier->required_backbone_layers();
  degrees_ = ds.graph.degrees();
  owner_map_ = std::make_shared<const std::vector<std::uint32_t>>(plan_.owner);

  auto payloads = ShardPlanner::build_payloads(ds, vault_, plan_);
  shards_.reserve(plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    provision_shard(*shards_[s], std::move(payloads[s]));
  }

  // Attested channels for shard pairs with halo overlap (in either
  // direction); the handshake runs now, at provisioning time.
  channels_.resize(static_cast<std::size_t>(plan_.num_shards) * plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    for (std::uint32_t t = s + 1; t < plan_.num_shards; ++t) {
      const bool overlap = !shards_[s]->payload.halo_out[t].empty() ||
                           !shards_[t]->payload.halo_out[s].empty();
      if (!overlap) continue;
      channels_[static_cast<std::size_t>(s) * plan_.num_shards + t] =
          std::make_unique<AttestedChannel>(*shards_[s]->enclave,
                                            *shards_[t]->enclave,
                                            opts_.platform_keys[s],
                                            opts_.platform_keys[t]);
    }
  }
}

void ShardedVaultDeployment::provision_shard(Shard& shard, ShardPayload payload) {
  // IDENTICAL measurement across shards (and replicas): name + code tag +
  // replicated weights.  The per-shard package is NOT measured — it is what
  // gets sealed — so every enclave of this tenant attests as the same code
  // image, which is what the channel handshake requires.
  shard.enclave = std::make_unique<Enclave>(
      opts_.enclave_name, opts_.cost_model, opts_.platform_keys[payload.shard_index]);
  shard.enclave->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  shard.enclave->extend_measurement(payload.rectifier_weights);
  shard.enclave->initialize();
  shard.stream = std::make_unique<OneWayChannel>(*shard.enclave);

  const auto bytes = serialize_shard_payload(payload);
  if (opts_.seal_artifacts) {
    shard.sealed = shard.enclave->seal(bytes);
    // Round-trip through sealed storage, as every enclave launch would.
    shard.payload = deserialize_shard_payload(shard.enclave->unseal(shard.sealed));
  } else {
    shard.payload = std::move(payload);
  }

  install_payload(shard);
}

void ShardedVaultDeployment::install_payload(Shard& shard) {
  shard.enclave->ecall([&] {
    const ShardPayload& p = shard.payload;
    GV_CHECK(p.closure_deg.size() == p.closure.size(),
             "shard payload missing closure degrees");
    std::vector<CooEntry> entries;
    entries.reserve(p.adj_row.size());
    for (std::size_t i = 0; i < p.adj_row.size(); ++i) {
      entries.push_back({p.adj_row[i], p.adj_col[i], p.adj_val[i]});
    }
    shard.sub_adj = std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(
        p.owned.size(), p.closure.size(), std::move(entries)));

    // GraphDrift mutable topology: per-row (global col, value) lists — the
    // payload triplets are row-major with ascending closure-local columns,
    // and the closure-local -> global remap is monotone, so each rebuilt
    // row is already in ascending GLOBAL column order.
    shard.adj_rows.assign(p.owned.size(), {});
    for (std::size_t i = 0; i < p.adj_row.size(); ++i) {
      shard.adj_rows[p.adj_row[i]].push_back(
          {p.closure[p.adj_col[i]], p.adj_val[i]});
    }
    shard.closure_dinv.clear();
    shard.closure_dinv.reserve(p.closure.size());
    for (const auto d : p.closure_deg) shard.closure_dinv.push_back(deg_inv_sqrt(d));
    shard.closure_refs.assign(p.closure.size(), 0);
    for (const auto& row : shard.adj_rows) {
      for (const auto& [c, v] : row) {
        (void)v;
        ++shard.closure_refs[position_of(p.closure, c, "adj col outside closure")];
      }
    }
    shard.row_digest.clear();
    shard.row_digest.reserve(shard.adj_rows.size());
    for (const auto& row : shard.adj_rows) shard.row_digest.push_back(row_fnv(row));
    shard.label_stale.assign(p.owned.size(), 0);
    Rng rng(0x5eed + p.shard_index);
    shard.rectifier = std::make_unique<Rectifier>(
        vault_.rectifier->config(), vault_.backbone().layer_dims(), shard.sub_adj,
        rng);
    shard.rectifier->deserialize_weights(p.rectifier_weights);
    shard.bb_rows.assign(vault_.backbone().layer_dims().size(), Matrix());

    // Boundary rows (owned-local, sorted): the union of every peer's halo
    // list — the only rows whose activations a cold cross-shard pull can
    // ever ask this shard for.
    shard.boundary_rows.clear();
    for (const auto& out_nodes : p.halo_out) {
      for (const auto v : out_nodes) {
        shard.boundary_rows.push_back(
            position_of(p.owned, v, "halo node not owned"));
      }
    }
    std::sort(shard.boundary_rows.begin(), shard.boundary_rows.end());
    shard.boundary_rows.erase(
        std::unique(shard.boundary_rows.begin(), shard.boundary_rows.end()),
        shard.boundary_rows.end());
    const std::size_t L = vault_.rectifier->config().channels.size();
    shard.retained.assign(L >= 1 ? L - 1 : 0, Matrix());

    auto& mem = shard.enclave->memory();
    mem.set("rectifier.weights", shard.rectifier->parameter_bytes());
    mem.set("shard.adj.coo", p.adj_row.size() * (2 * sizeof(std::uint32_t) +
                                                 sizeof(float)));
    mem.set("shard.adj.csr", shard.sub_adj->payload_bytes());
    mem.set("shard.routing", p.owned.size() * sizeof(std::uint32_t) +
                                 p.closure.size() * sizeof(std::uint32_t));
  });
  shard.stale_count.store(0);
}

void ShardedVaultDeployment::rebuild_topology_locked(Shard& sh) {
  // Caller is inside an ecall on sh.enclave: regenerate every derived view
  // of the (mutated) adj_rows + closure arrays.
  ShardPayload& p = sh.payload;
  GV_CHECK(sh.adj_rows.size() == p.owned.size(),
           "adjacency rows out of sync with the owned set");
  p.adj_row.clear();
  p.adj_col.clear();
  p.adj_val.clear();
  std::vector<CooEntry> entries;
  for (std::uint32_t i = 0; i < sh.adj_rows.size(); ++i) {
    for (const auto& [c, v] : sh.adj_rows[i]) {
      const std::uint32_t local =
          position_of(p.closure, c, "adjacency column outside closure");
      p.adj_row.push_back(i);
      p.adj_col.push_back(local);
      p.adj_val.push_back(v);
      entries.push_back({i, local, v});
    }
  }
  sh.sub_adj = std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(
      p.owned.size(), p.closure.size(), std::move(entries)));
  sh.rectifier->set_adjacency(sh.sub_adj);

  // Boundary rows + retained activations: the halo lists may have moved,
  // so the retained matrices (rows ~ old boundary_rows) are void.
  sh.boundary_rows.clear();
  for (const auto& out_nodes : p.halo_out) {
    for (const auto v : out_nodes) {
      sh.boundary_rows.push_back(position_of(p.owned, v, "halo node not owned"));
    }
  }
  std::sort(sh.boundary_rows.begin(), sh.boundary_rows.end());
  sh.boundary_rows.erase(
      std::unique(sh.boundary_rows.begin(), sh.boundary_rows.end()),
      sh.boundary_rows.end());
  const std::size_t L = vault_.rectifier->config().channels.size();
  sh.retained.assign(L >= 1 ? L - 1 : 0, Matrix());
  sh.retained_valid.store(false);

  auto& mem = sh.enclave->memory();
  mem.set("shard.adj.coo", p.adj_row.size() * (2 * sizeof(std::uint32_t) +
                                               sizeof(float)));
  mem.set("shard.adj.csr", sh.sub_adj->payload_bytes());
  mem.set("shard.routing", p.owned.size() * sizeof(std::uint32_t) +
                               p.closure.size() * sizeof(std::uint32_t));
  // Mutations persist: the sealed at-rest blob must match what a relaunch
  // would need, so the payload is re-sealed under the shard's platform key.
  if (opts_.seal_artifacts) {
    sh.sealed = sh.enclave->seal(serialize_shard_payload(p));
  }
}

void ShardedVaultDeployment::adopt_shard(std::uint32_t shard,
                                         std::unique_ptr<Enclave>& enclave,
                                         ShardPayload& payload, SealedBlob& sealed,
                                         const Sha256Digest& platform_key) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  GV_CHECK(enclave != nullptr && enclave->initialized(),
           "adoption requires a live, initialized enclave");
  GV_CHECK(payload.shard_index == shard, "payload belongs to a different shard");
  std::lock_guard<std::mutex> lock(*infer_mu_);  // exclude a concurrent refresh
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(!sh.alive.load(), "only a dead shard can adopt a promoted replica");
  // A package replicated before a graph update or migration describes a
  // topology that no longer exists; adopting it would resurrect retired
  // edges/ownership.  ReplicaManager's topology stamp refuses earlier, but
  // the owned-set check keeps the invariant for direct callers too.
  GV_CHECK(payload.owned == plan_.shards[shard].nodes,
           "promoted package predates the live topology (re-replicate after "
           "graph drift or migration)");
  GV_CHECK(enclave->measurement() == sh.enclave->measurement(),
           "promoted enclave runs different code than the shard it replaces");
  // Every precondition — including neighbor liveness — is checked before
  // anything is mutated or moved from, so a rejected adoption leaves both
  // the deployment and the caller's standby slot untouched.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard || channel(shard, t) == nullptr) continue;
    GV_CHECK(shards_[t]->alive.load(),
             "halo neighbor died before the promotion handshake");
  }
  // Rejoin handshake with every surviving halo neighbor BEFORE the dead
  // enclave is torn down: the channel objects stay in place (send/recv sides
  // address them by shard pair), only the dead endpoint and the session key
  // are replaced; blocks queued under the retired key are dropped.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard) continue;
    AttestedChannel* ch = channel(shard, t);
    if (ch == nullptr) continue;
    ch->rebind(*sh.enclave, *enclave, platform_key);
  }
  // Drain stragglers: a lookup that raced the kill holds access_mu shared
  // for its whole body, so taking it exclusive here guarantees nobody is
  // still reading the enclave pointer or the stores being swapped below —
  // a hard handoff, not a timing assumption.  The dead enclave object is
  // still retired (never destroyed) out of an abundance of caution.
  std::unique_lock<std::shared_mutex> access(sh.access_mu);
  GV_RANK_SCOPE(lockrank::kShardAccess);
  retired_enclaves_.push_back(std::move(sh.enclave));
  sh.enclave = std::move(enclave);
  sh.stream = std::make_unique<OneWayChannel>(*sh.enclave);
  sh.payload = std::move(payload);
  sh.sealed = std::move(sealed);  // the blob re-sealed under the standby key
  sh.labels.clear();              // empty until re-materialized
  sh.store_ready.store(false);
  sh.retained_valid.store(false);  // the fresh enclave has no activations
  sh.rectifier.reset();
  sh.sub_adj.reset();
  opts_.platform_keys[shard] = platform_key;
  install_payload(sh);
  sh.alive.store(true);
  // Adoption swaps an enclave and rebuilds its ledger — push the new EPC
  // picture immediately rather than waiting for the next stats() pull.
  publish_epc_gauges();
}

AttestedChannel* ShardedVaultDeployment::channel(std::uint32_t s, std::uint32_t t) {
  GV_CHECK(s != t && s < plan_.num_shards && t < plan_.num_shards,
           "bad shard pair");
  if (s > t) std::swap(s, t);
  return channels_[static_cast<std::size_t>(s) * plan_.num_shards + t].get();
}

AttestedChannel& ShardedVaultDeployment::ensure_channel(std::uint32_t s,
                                                        std::uint32_t t,
                                                        std::size_t* created) {
  AttestedChannel* ch = channel(s, t);
  if (ch != nullptr) return *ch;
  // Drift minted a brand-new halo pair: run the mutual-attestation
  // handshake now, exactly as provisioning would have.
  if (s > t) std::swap(s, t);
  auto fresh = std::make_unique<AttestedChannel>(
      *shards_[s]->enclave, *shards_[t]->enclave, opts_.platform_keys[s],
      opts_.platform_keys[t]);
  auto& slot = channels_[static_cast<std::size_t>(s) * plan_.num_shards + t];
  slot = std::move(fresh);
  if (created != nullptr) ++*created;
  return *slot;
}

void ShardedVaultDeployment::mark_cold_fault(std::uint32_t shard) {
  shards_[shard]->alive.store(false);
  shard_faults_.fetch_add(1);
  pending_fault_.store(shard);
}

template <typename F>
auto ShardedVaultDeployment::cold_ecall(std::uint32_t shard, F&& body)
    -> decltype(body()) {
  try {
    return shards_[shard]->enclave->ecall(std::forward<F>(body));
  } catch (const EnclaveFailure&) {
    mark_cold_fault(shard);
    throw;
  }
}

void ShardedVaultDeployment::notify_pending_fault() {
  const std::uint32_t shard = pending_fault_.exchange(0xffffffffu);
  if (shard == 0xffffffffu) return;
  std::function<void(std::uint32_t)> handler;
  {
    std::lock_guard<std::mutex> lock(*handler_mu_);
    GV_RANK_SCOPE(lockrank::kMoveFence);
    handler = failure_handler_;
  }
  if (handler) handler(shard);
}

void ShardedVaultDeployment::on_enclave_failure(std::uint32_t shard) {
  // Dead-shard detection: the enclave died under a serving ecall.  Mark it
  // dead exactly as kill_shard would and hand the shard index to the
  // registered handler (the server's fence + promote path).  MUST be
  // called with no shard locks held: the handler may join a promotion
  // whose adopt_shard needs this shard's access_mu exclusively.
  shards_[shard]->alive.store(false);
  shard_faults_.fetch_add(1);
  std::function<void(std::uint32_t)> handler;
  {
    std::lock_guard<std::mutex> lock(*handler_mu_);
    GV_RANK_SCOPE(lockrank::kMoveFence);
    handler = failure_handler_;
  }
  if (handler) handler(shard);
}

void ShardedVaultDeployment::set_shard_failure_handler(
    std::function<void(std::uint32_t)> handler) {
  std::lock_guard<std::mutex> lock(*handler_mu_);
  GV_RANK_SCOPE(lockrank::kMoveFence);
  failure_handler_ = std::move(handler);
}

std::size_t ShardedVaultDeployment::num_nodes() const {
  std::lock_guard<std::mutex> lock(*owner_mu_);
  GV_RANK_SCOPE(lockrank::kMoveFence);
  return owner_map_->size();
}

std::shared_ptr<const std::vector<std::uint32_t>>
ShardedVaultDeployment::owner_snapshot() const {
  std::lock_guard<std::mutex> lock(*owner_mu_);
  GV_RANK_SCOPE(lockrank::kMoveFence);
  return owner_map_;
}

void ShardedVaultDeployment::publish_owner_map() {
  auto fresh = std::make_shared<const std::vector<std::uint32_t>>(plan_.owner);
  {
    std::lock_guard<std::mutex> lock(*owner_mu_);
    GV_RANK_SCOPE(lockrank::kMoveFence);
    owner_map_ = std::move(fresh);
  }
  ownership_epoch_.fetch_add(1);
}

bool ShardedVaultDeployment::await_moves(
    std::span<const std::uint32_t> nodes,
    std::chrono::milliseconds timeout) const {
  if (moving_count_.load() == 0) return true;  // fast path: nothing in flight
  std::unique_lock<std::mutex> lock(*move_mu_);
  GV_RANK_SCOPE(lockrank::kMoveFence);
  return move_cv_->wait_for(lock, timeout, [&] {
    if (update_fence_) return false;
    for (const auto v : nodes) {
      if (std::binary_search(moving_.begin(), moving_.end(), v)) return false;
    }
    return true;
  });
}

std::size_t ShardedVaultDeployment::stale_store_entries(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->stale_count.load();
}

std::vector<char> ShardedVaultDeployment::stale_mask(
    std::uint32_t shard, std::span<const std::uint32_t> nodes) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  try {
    std::shared_lock<std::shared_mutex> access(sh.access_mu);
    GV_RANK_SCOPE(lockrank::kShardAccess);
    GV_CHECK(sh.alive, "shard enclave is down");
    return sh.enclave->ecall([&] {
      std::vector<char> mask(nodes.size(), 0);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const std::uint32_t r =
            position_of(sh.payload.owned, nodes[i], "node not owned by shard");
        mask[i] = sh.label_stale[r];
      }
      return mask;
    });
  } catch (const EnclaveFailure&) {
    on_enclave_failure(shard);
    throw;
  }
}

bool ShardedVaultDeployment::retained_valid(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->retained_valid.load();
}

double ShardedVaultDeployment::meter_seconds(const Shard& s) const {
  return s.enclave->meter_snapshot().total_seconds(opts_.cost_model);
}

template <typename F>
void ShardedVaultDeployment::parallel_phase(const char* phase, std::int64_t layer,
                                            F&& body) {
  // Shards are independent enclaves (typically on independent platforms);
  // between the layer barriers they run concurrently, so the modeled time
  // of a phase is the SLOWEST shard's meter delta, not the sum.
  TraceSpan span("fleet", phase);
  if (layer >= 0) span.arg("layer", double(layer));
  std::vector<double> before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) before[s] = meter_seconds(*shards_[s]);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) body(s);
  double slowest = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    slowest = std::max(slowest, meter_seconds(*shards_[s]) - before[s]);
  }
  span.modeled_seconds(slowest);
  parallel_seconds_.fetch_add(slowest);
}

template <typename F>
void ShardedVaultDeployment::parallel_phase(const char* phase, F&& body) {
  parallel_phase(phase, -1, std::forward<F>(body));
}

template <typename Scatter>
void ShardedVaultDeployment::stream_full_matrix(Shard& sh, const Matrix& full,
                                                Scatter&& scatter) {
  const std::size_t n = full.rows();
  const std::size_t dim = full.cols();
  // The untrusted side pushes the FULL matrix in fixed-size chunks — the
  // same stream regardless of which rows are wanted, so the access pattern
  // carries no information about shard neighbourhoods or query frontiers;
  // the enclave-side `scatter` keeps only the rows it needs.
  for (std::size_t r0 = 0; r0 < n; r0 += ShardPlanner::kStreamChunkRows) {
    const std::size_t rows = std::min(ShardPlanner::kStreamChunkRows, n - r0);
    Matrix chunk(rows, dim);
    std::memcpy(chunk.data(), full.data() + r0 * dim, rows * dim * sizeof(float));
    sh.stream->sender().push(chunk);
    sh.enclave->ecall([&] {
      const Matrix block = sh.stream->receiver().pop();
      scatter(block, r0);
    });
  }
}

void ShardedVaultDeployment::stream_backbone_rows(const std::vector<Matrix>& outputs) {
  const std::size_t n = plan_.owner.size();
  parallel_phase("backbone_stream", [&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    for (const std::size_t idx : required_layers_) {
      GV_CHECK(idx < outputs.size() && !outputs[idx].empty(),
               "required backbone output missing");
      const Matrix& full = outputs[idx];
      GV_CHECK(full.rows() == n, "backbone output covers a different node count");
      const std::size_t dim = full.cols();
      sh.enclave->ecall([&] {
        sh.bb_rows[idx] = Matrix(sh.payload.closure.size(), dim);
      });
      stream_full_matrix(sh, full, [&](const Matrix& block, std::size_t r0) {
        const auto& closure = sh.payload.closure;
        auto it = std::lower_bound(closure.begin(), closure.end(),
                                   static_cast<std::uint32_t>(r0));
        for (; it != closure.end() && *it < r0 + block.rows(); ++it) {
          const std::size_t local = static_cast<std::size_t>(it - closure.begin());
          std::memcpy(sh.bb_rows[idx].data() + local * dim,
                      block.data() + (*it - r0) * dim, dim * sizeof(float));
        }
      });
      sh.enclave->memory().set("bb.rows." + std::to_string(idx),
                               sh.bb_rows[idx].payload_bytes());
    }
  });
}

void ShardedVaultDeployment::refresh(const CsrMatrix& features) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  TraceSpan refresh_span("fleet", "refresh");
  const double refresh_parallel_before = parallel_seconds_.load();
  for (const auto& sh : shards_) {
    GV_CHECK(sh->alive, "refresh requires every shard enclave alive");
  }
  GV_CHECK(features.rows() == plan_.owner.size(),
           "features cover a different node count");

  // Whatever happens below, the previously retained boundary activations no
  // longer match the stores a completed refresh would leave behind.
  for (const auto& sh : shards_) sh->retained_valid.store(false);

  const std::uint64_t fingerprint = features_fingerprint(features);
  bool bb_cache_hit = false;
  const auto& outputs = backbone_for(features, fingerprint, &bb_cache_hit);

  stream_backbone_rows(outputs);

  const auto& cfg = vault_.rectifier->config();
  const std::size_t L = cfg.channels.size();
  const auto dims = vault_.backbone().layer_dims();
  const std::size_t penult = dims.size() >= 2 ? dims.size() - 2 : 0;

  for (std::size_t k = 0; k < L; ++k) {
    const bool last = (k + 1 == L);
    // --- Compute: every shard advances its owned rows one layer. ---------
    parallel_phase("layer_compute", std::int64_t(k), [&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        Matrix input;
        switch (cfg.kind) {
          case RectifierKind::kParallel:
            input = k == 0 ? sh.bb_rows[0]
                           : Matrix::hconcat(sh.bb_rows[k], sh.h_closure);
            break;
          case RectifierKind::kCascaded:
            if (k == 0) {
              std::vector<const Matrix*> blocks;
              blocks.reserve(dims.size());
              for (std::size_t i = 0; i < dims.size(); ++i) {
                blocks.push_back(&sh.bb_rows[i]);
              }
              input = Matrix::hconcat(
                  std::span<const Matrix* const>(blocks.data(), blocks.size()));
            } else {
              input = std::move(sh.h_closure);
            }
            break;
          case RectifierKind::kSeries:
            input = k == 0 ? sh.bb_rows[penult] : std::move(sh.h_closure);
            break;
        }
        Matrix z = sh.rectifier->layer(k).forward_subgraph(*sh.sub_adj, input);
        sh.h_owned = last ? std::move(z) : relu(z);
        sh.enclave->memory().set("rect.act." + std::to_string(k),
                                 sh.h_owned.payload_bytes());
        if (last) {
          // Label-only store: argmax inside the enclave; logits never leave.
          sh.labels = argmax_rows(sh.h_owned);
          sh.label_stale.assign(sh.labels.size(), 0);  // recomputed: all fresh
          sh.enclave->memory().set("labels.store",
                                   sh.labels.size() * sizeof(std::uint32_t));
        } else {
          // Retain the boundary rows' activations: they answer cold
          // cross-shard halo pulls (and incremental promotion
          // re-materialization) without recomputing this layer.
          sh.retained[k] = sh.h_owned.gather_rows(sh.boundary_rows);
        }
      });
    });
    if (last) break;

    // --- Halo exchange: boundary embeddings cross attested channels. ------
    parallel_phase("halo_send", std::int64_t(k), [&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          const auto& out_nodes = sh.payload.halo_out[t];
          if (out_nodes.empty()) continue;
          std::vector<std::uint32_t> positions;
          positions.reserve(out_nodes.size());
          for (const auto v : out_nodes) {
            positions.push_back(
                position_of(sh.payload.owned, v, "halo node not owned"));
          }
          channel(s, t)->send_embeddings(*sh.enclave, out_nodes,
                                         sh.h_owned.gather_rows(positions));
        }
      });
    });
    // --- Assemble the next layer's closure input (own + received rows). ---
    parallel_phase("halo_assemble", std::int64_t(k), [&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        const auto& closure = sh.payload.closure;
        const std::size_t ch_cols = sh.h_owned.cols();
        sh.h_closure = Matrix(closure.size(), ch_cols);
        std::size_t filled = 0;
        for (std::size_t i = 0; i < sh.payload.owned.size(); ++i) {
          const std::uint32_t local =
              position_of(closure, sh.payload.owned[i], "owned not in closure");
          std::memcpy(sh.h_closure.data() + local * ch_cols,
                      sh.h_owned.data() + i * ch_cols, ch_cols * sizeof(float));
          ++filled;
        }
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          if (t == s) continue;
          AttestedChannel* ch = t > s ? channels_[std::size_t(s) * plan_.num_shards + t].get()
                                      : channels_[std::size_t(t) * plan_.num_shards + s].get();
          if (ch == nullptr) continue;
          while (ch->has_embeddings(*sh.enclave)) {
            const auto block = ch->recv_embeddings(*sh.enclave);
            GV_CHECK(block.rows.cols() == ch_cols, "halo embedding dim mismatch");
            for (std::size_t i = 0; i < block.nodes.size(); ++i) {
              const std::uint32_t local = position_of(
                  closure, block.nodes[i], "halo node outside closure");
              std::memcpy(sh.h_closure.data() + local * ch_cols,
                          block.rows.data() + i * ch_cols,
                          ch_cols * sizeof(float));
              ++filled;
            }
          }
        }
        GV_CHECK(filled == closure.size(), "halo exchange left closure rows unfilled");
        sh.enclave->memory().set("halo.h_closure", sh.h_closure.payload_bytes());
      });
    });
  }

  // Release the forward pass's transient state: labels are materialized, so
  // steady-state shard residency is weights + adjacency + label store and
  // lookup ecalls never feel EPC pressure (the refresh peak is what the
  // planner budgeted for).
  parallel_phase("release_transients", [&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    sh.enclave->ecall([&] {
      auto& mem = sh.enclave->memory();
      for (const std::size_t idx : required_layers_) {
        sh.bb_rows[idx] = Matrix();
        mem.free("bb.rows." + std::to_string(idx));
      }
      sh.h_owned = Matrix();
      sh.h_closure = Matrix();
      for (std::size_t k = 0; k < L; ++k) mem.free("rect.act." + std::to_string(k));
      if (L > 1) mem.free("halo.h_closure");
      std::size_t retained_bytes = 0;
      for (const auto& m : sh.retained) retained_bytes += m.payload_bytes();
      mem.set("halo.retained", retained_bytes);
    });
  });
  for (const auto& sh : shards_) {
    sh->store_ready.store(true);
    sh->retained_valid.store(true);
    sh->stale_count.store(0);
  }
  store_fingerprint_ = fingerprint;
  have_store_fingerprint_ = true;
  refreshed_ = true;
  epoch_.fetch_add(1);
  refresh_span.modeled_seconds(parallel_seconds_.load() - refresh_parallel_before);
  // Push telemetry at the state change, not only when stats() is pulled:
  // a refresh is exactly when EPC occupancy and channel traffic move.
  publish_epc_gauges();
  publish_channel_audit();
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels(
    const CsrMatrix& features) {
  refresh(features);
  std::vector<std::uint32_t> out(plan_.owner.size());
  double slowest = 0.0;
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    double delta = 0.0;
    const auto labels = lookup(s, shards_[s]->payload.owned, &delta);
    slowest = std::max(slowest, delta);
    const auto& owned = shards_[s]->payload.owned;
    for (std::size_t i = 0; i < owned.size(); ++i) out[owned[i]] = labels[i];
  }
  parallel_seconds_.fetch_add(slowest);
  return out;
}

std::vector<std::uint32_t> ShardedVaultDeployment::lookup(
    std::uint32_t shard, std::span<const std::uint32_t> nodes,
    double* modeled_delta) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  try {
  // Shared with other lookups, exclusive against adopt_shard's swap of the
  // enclave + stores this function reads.
  std::shared_lock<std::shared_mutex> access(sh.access_mu);
  GV_RANK_SCOPE(lockrank::kShardAccess);
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "lookup before the first refresh");
  const double before = meter_seconds(sh);
  auto labels = sh.enclave->ecall([&] {
    // An adopted (promoted) shard has no label store until the next refresh
    // re-materializes it; the router's promotion fence keeps queries away,
    // and this check keeps the invariant even for direct callers.
    GV_CHECK(!sh.labels.empty() || sh.payload.owned.empty(),
             "shard label store not materialized (promotion in progress?)");
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (const auto v : nodes) {
      const std::uint32_t r =
          position_of(sh.payload.owned, v, "node not owned by shard");
      // A graph update invalidated this entry; serving it would resurrect a
      // pre-mutation label.  The router splits such nodes onto the cold
      // path (stale_mask); a direct caller must do the same or refresh.
      GV_CHECK(!sh.label_stale[r],
               "label store entry invalidated by a graph update (serve "
               "through the cold path or refresh)");
      out.push_back(sh.labels[r]);
    }
    return out;
  });
  if (modeled_delta != nullptr) *modeled_delta = meter_seconds(sh) - before;
  return labels;
  } catch (const EnclaveFailure&) {
    // The access_mu shared lock is released before the failure handler
    // runs (it may join a promotion that needs the lock exclusively).
    on_enclave_failure(shard);
    throw;
  }
}

std::uint64_t ShardedVaultDeployment::features_fingerprint(
    const CsrMatrix& features) {
  // Word-folded FNV-style content hash: cheap enough to run per cold query
  // (a SHA-256 over the matrix would rival the forward it is meant to
  // spare), collision-safe enough for its job — keying caches over public,
  // non-adversarial inputs.
  auto fold = [](std::uint64_t h, const void* p, std::size_t nbytes) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    std::size_t i = 0;
    for (; i + 8 <= nbytes; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, bytes + i, 8);
      h = (h ^ w) * 0x100000001b3ull;
      h ^= h >> 29;
    }
    if (i < nbytes) {
      std::uint64_t w = 0;
      std::memcpy(&w, bytes + i, nbytes - i);
      h = (h ^ w) * 0x100000001b3ull;
      h ^= h >> 29;
    }
    return h;
  };
  const auto& rp = features.row_ptr();
  const auto& ci = features.col_idx();
  const auto& va = features.values();
  std::uint64_t h = 0xcbf29ce484222325ull ^ (features.rows() * 0x9e3779b97f4a7c15ull);
  h = fold(h, rp.data(), rp.size() * sizeof(rp[0]));
  h = fold(h, ci.data(), ci.size() * sizeof(ci[0]));
  h = fold(h, va.data(), va.size() * sizeof(va[0]));
  return h;
}

const std::vector<Matrix>& ShardedVaultDeployment::backbone_for(
    const CsrMatrix& features, std::uint64_t fingerprint, bool* cache_hit) {
  // The backbone runs (and its outputs live) entirely in the untrusted
  // world — they are public embeddings, so caching them across refreshes
  // and cold queries of one snapshot leaks nothing and spares the repeat
  // forward that would otherwise dominate a shard-local re-materialization.
  if (have_bb_cache_ && fingerprint == bb_fingerprint_) {
    if (cache_hit != nullptr) *cache_hit = true;
    return bb_cache_;
  }
  Stopwatch bb_watch;
  bb_cache_ = vault_.backbone_outputs(features);
  untrusted_seconds_.fetch_add(bb_watch.seconds());
  bb_fingerprint_ = fingerprint;
  have_bb_cache_ = true;
  if (cache_hit != nullptr) *cache_hit = false;
  return bb_cache_;
}

bool ShardedVaultDeployment::store_materialized(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  const Shard& sh = *shards_[shard];
  return sh.alive.load() && sh.store_ready.load();
}

void ShardedVaultDeployment::install_labels(std::uint32_t shard,
                                            std::vector<std::uint32_t> labels) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive.load(), "cannot install labels into a dead shard");
  sh.enclave->ecall([&] {
    GV_CHECK(labels.size() == sh.payload.owned.size(),
             "label store does not cover the shard's nodes");
    sh.labels = std::move(labels);
    sh.enclave->memory().set("labels.store",
                             sh.labels.size() * sizeof(std::uint32_t));
  });
  sh.store_ready.store(true);
}

void ShardedVaultDeployment::drop_backbone_cache() {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  bb_cache_.clear();
  have_bb_cache_ = false;
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels_subset_cold(
    const CsrMatrix& features, std::span<const std::uint32_t> nodes,
    ColdSubsetStats* stats) {
  return infer_labels_subset_cold(features, features_fingerprint(features),
                                  nodes, stats);
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels_subset_cold(
    const CsrMatrix& features, std::uint64_t fingerprint,
    std::span<const std::uint32_t> nodes, ColdSubsetStats* stats) {
  try {
    std::lock_guard<std::mutex> lock(*infer_mu_);
    GV_RANK_SCOPE(lockrank::kDeployment);
    ColdSubsetStats local;
    return cold_forward(features, fingerprint, nodes,
                        stats != nullptr ? stats : &local, kNoRetain,
                        RetainMode::kNone);
  } catch (...) {
    // An enclave that died under a cold ecall was only RECORDED inside the
    // lock; hand it to the failure handler now that infer_mu_ is free (the
    // handler may join a promotion whose adopt_shard needs it).
    notify_pending_fault();
    throw;
  }
}

void ShardedVaultDeployment::rematerialize_shard(std::uint32_t shard,
                                                 const CsrMatrix& features) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive.load(), "cannot re-materialize a dead shard");
  GV_CHECK(refreshed_.load(),
           "incremental re-materialization requires a completed refresh");
  const std::uint64_t fingerprint = features_fingerprint(features);
  GV_CHECK(have_store_fingerprint_ && fingerprint == store_fingerprint_,
           "incremental re-materialization requires the current refresh "
           "snapshot (a feature change must go through refresh())");
  ColdSubsetStats stats;
  cold_forward(features, fingerprint, plan_.shards[shard].nodes, &stats, shard,
               RetainMode::kFull);
  sh.store_ready.store(true);
  sh.retained_valid.store(true);
  sh.stale_count.store(0);  // the full owned set was just recomputed
}

void ShardedVaultDeployment::rebuild_boundary_retained(std::uint32_t shard,
                                                       const CsrMatrix& features) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive.load(), "cannot rebuild retained stores of a dead shard");
  GV_CHECK(refreshed_.load(),
           "boundary rebuild requires a completed refresh");
  const std::uint64_t fingerprint = features_fingerprint(features);
  GV_CHECK(have_store_fingerprint_ && fingerprint == store_fingerprint_,
           "boundary rebuild requires the current refresh snapshot");
  // Boundary rows as global ids (read under the enclave's entry mutex).
  std::vector<std::uint32_t> boundary;
  sh.enclave->ecall([&] {
    boundary.reserve(sh.boundary_rows.size());
    for (const auto r : sh.boundary_rows) boundary.push_back(sh.payload.owned[r]);
  });
  if (!boundary.empty()) {
    ColdSubsetStats stats;
    cold_forward(features, fingerprint, boundary, &stats, shard,
                 RetainMode::kBoundary);
  }
  sh.retained_valid.store(true);
}

GraphUpdateStats ShardedVaultDeployment::update_graph(
    const GraphDelta& delta, const CsrMatrix* features_after,
    const std::function<void()>& before_unfence) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  GraphUpdateStats stats;
  if (delta.empty()) return stats;
  TraceSpan update_span("drift", "graph_update");
  update_span.arg("edge_inserts", double(delta.edge_inserts.size()));
  update_span.arg("edge_deletes", double(delta.edge_deletes.size()));
  update_span.arg("node_adds", double(delta.node_adds.size()));
  for (const auto& sh : shards_) {
    GV_CHECK(sh->alive, "graph update requires every shard enclave alive");
  }
  const std::uint32_t K = plan_.num_shards;
  const std::uint32_t n_old = static_cast<std::uint32_t>(plan_.owner.size());

  // Global fence: between the structural edit below and the stale marking
  // at the end there is a window where an invalidated label-store entry is
  // not yet flagged; routers wait the fence out instead of reading through
  // it (await_moves).
  {
    std::lock_guard<std::mutex> mlock(*move_mu_);
    GV_RANK_SCOPE(lockrank::kMoveFence);
    update_fence_ = true;
  }
  moving_count_.fetch_add(1);
  struct FenceGuard {
    ShardedVaultDeployment* d;
    std::chrono::steady_clock::time_point raised;
    ~FenceGuard() {
      {
        std::lock_guard<std::mutex> mlock(*d->move_mu_);
        GV_RANK_SCOPE(lockrank::kMoveFence);
        d->update_fence_ = false;
      }
      d->moving_count_.fetch_sub(1);
      d->move_cv_->notify_all();
      TraceRecorder::instance().emit("drift", "update_fence", raised,
                                     std::chrono::steady_clock::now());
    }
  } fence_guard{this, std::chrono::steady_clock::now()};

  // ---- 0. Validate BEFORE mutating any coordinator state: a rejected
  // delta must leave the deployment exactly as it found it.
  {
    const std::uint32_t n_after =
        n_old + static_cast<std::uint32_t>(delta.node_adds.size());
    for (const auto& [a, b] : delta.edge_inserts) {
      GV_CHECK(a < n_after && b < n_after, "edge insert endpoint out of range");
    }
  }
  // Epoch forward BEFORE any marking: a routed batch that slipped past
  // await_moves and trips over a half-applied update must see the epoch
  // already moved, so its retry regroups (and then blocks on the fence
  // until this update completes) instead of surfacing an internal error.
  ownership_epoch_.fetch_add(1);

  // ---- 1. Node adds: appended ids go to the least-loaded shard. ----------
  stats.nodes_added = delta.node_adds.size();
  for (std::size_t i = 0; i < delta.node_adds.size(); ++i) {
    std::uint32_t target = 0;
    for (std::uint32_t s = 1; s < K; ++s) {
      if (plan_.shards[s].nodes.size() < plan_.shards[target].nodes.size()) {
        target = s;
      }
    }
    const std::uint32_t g = n_old + static_cast<std::uint32_t>(i);
    plan_.owner.push_back(target);
    plan_.shards[target].nodes.push_back(g);  // new max id: stays sorted
    degrees_.push_back(0);
    stats.added_nodes.push_back({g, target});
  }
  const std::uint32_t n = n_old + static_cast<std::uint32_t>(stats.nodes_added);

  // ---- 2. Edge semantics: canonicalize, then replay deletes-then-inserts
  // against the start-of-delta edge state, so duplicates and cancels no-op
  // exactly like Graph::remove_edge / Graph::add_edge (what the vendor-side
  // apply_delta does to the oracle's graph).
  auto key_of = [](std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deletes_c, inserts_c;
  for (const auto& [a, b] : delta.edge_deletes) {
    if (a == b || a >= n || b >= n) continue;  // remove_edge semantics: no-op
    deletes_c.push_back({std::min(a, b), std::max(a, b)});
  }
  for (const auto& [a, b] : delta.edge_inserts) {
    if (a == b) continue;  // add_edge semantics: self-loops rejected
    inserts_c.push_back({std::min(a, b), std::max(a, b)});
  }

  // Start-of-delta existence, queried from the owning enclaves (one ecall
  // per shard).  Edges touching an appended node are trivially absent.
  std::unordered_map<std::uint64_t, char> state;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> queries(K);
  for (const auto& list : {deletes_c, inserts_c}) {
    for (const auto& [a, b] : list) {
      const std::uint64_t key = key_of(a, b);
      if (state.count(key)) continue;
      if (a >= n_old || b >= n_old) {
        state[key] = 0;
      } else {
        state[key] = 0;  // filled by the query below
        queries[plan_.owner[a]].push_back({a, b});
      }
    }
  }
  for (std::uint32_t s = 0; s < K; ++s) {
    if (queries[s].empty()) continue;
    Shard& sh = *shards_[s];
    sh.enclave->ecall([&] {
      for (const auto& [a, b] : queries[s]) {
        const std::uint32_t r =
            position_of(sh.payload.owned, a, "edge endpoint not owned");
        const auto& row = sh.adj_rows[r];
        const auto it = std::lower_bound(
            row.begin(), row.end(), b,
            [](const std::pair<std::uint32_t, float>& e, std::uint32_t x) {
              return e.first < x;
            });
        state[key_of(a, b)] = (it != row.end() && it->first == b) ? 1 : 0;
      }
    });
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> applied_deletes,
      applied_inserts;
  for (const auto& [a, b] : deletes_c) {
    char& st = state[key_of(a, b)];
    if (st) {
      st = 0;
      applied_deletes.push_back({a, b});
      if (plan_.owner[a] != plan_.owner[b]) ++stats.cut_edges_deleted;
    }
  }
  for (const auto& [a, b] : inserts_c) {
    char& st = state[key_of(a, b)];
    if (!st) {
      st = 1;
      applied_inserts.push_back({a, b});
      if (plan_.owner[a] != plan_.owner[b]) ++stats.cut_edges_inserted;
    }
  }
  stats.edges_deleted = applied_deletes.size();
  stats.edges_inserted = applied_inserts.size();
  if (applied_deletes.empty() && applied_inserts.empty() &&
      stats.nodes_added == 0) {
    return stats;  // the whole delta was a no-op
  }

  // ---- 3. Degree deltas -> (node, new absolute degree), sorted. ----------
  std::unordered_map<std::uint32_t, int> ddelta;
  for (const auto& [a, b] : applied_deletes) {
    --ddelta[a];
    --ddelta[b];
  }
  for (const auto& [a, b] : applied_inserts) {
    ++ddelta[a];
    ++ddelta[b];
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> touched;
  touched.reserve(ddelta.size() + stats.nodes_added);
  for (const auto& [v, d] : ddelta) {
    GV_CHECK(d >= 0 || degrees_[v] >= static_cast<std::uint32_t>(-d),
             "degree ledger underflow");
    degrees_[v] = static_cast<std::uint32_t>(static_cast<int>(degrees_[v]) + d);
    touched.push_back({v, degrees_[v]});
  }
  // Appended nodes are always "touched": their placeholder self-loop value
  // must go through the renormalization pass even when they stay isolated.
  for (const auto& [g, t] : stats.added_nodes) {
    (void)t;
    if (!ddelta.count(g)) touched.push_back({g, degrees_[g]});
  }
  std::sort(touched.begin(), touched.end());

  // ---- 4. Per-shard structural apply + bit-exact renormalization. --------
  struct ApplyReport {
    std::vector<std::uint32_t> changed_rows;     // global ids, ascending owned order
    std::vector<std::uint32_t> closure_added;    // global ids
    std::vector<std::uint32_t> closure_dropped;  // global ids
    std::size_t renormalized = 0;
    bool structural = false;
  };
  std::vector<ApplyReport> reports(K);
  std::vector<char> needs_rebuild(K, 0);
  std::vector<std::uint32_t> touched_ids;
  touched_ids.reserve(touched.size());
  for (const auto& [v, d] : touched) {
    (void)d;
    touched_ids.push_back(v);
  }

  for (std::uint32_t s = 0; s < K; ++s) {
    Shard& sh = *shards_[s];
    ApplyReport& rep = reports[s];
    sh.enclave->ecall([&] {
      ShardPayload& p = sh.payload;
      auto touched_deg = [&](std::uint32_t v) {
        const auto it = std::lower_bound(
            touched.begin(), touched.end(),
            std::make_pair(v, std::uint32_t{0}),
            [](const auto& e, const auto& x) { return e.first < x.first; });
        GV_CHECK(it != touched.end() && it->first == v,
                 "closure entrant missing from the touched set");
        return it->second;
      };
      auto closure_insert = [&](std::uint32_t g, std::uint32_t deg) {
        const auto it = std::lower_bound(p.closure.begin(), p.closure.end(), g);
        const std::size_t idx = static_cast<std::size_t>(it - p.closure.begin());
        p.closure.insert(it, g);
        p.closure_deg.insert(p.closure_deg.begin() + idx, deg);
        sh.closure_dinv.insert(sh.closure_dinv.begin() + idx, deg_inv_sqrt(deg));
        sh.closure_refs.insert(sh.closure_refs.begin() + idx, 0);
        rep.closure_added.push_back(g);
      };

      // Appended nodes owned here: a fresh row holding just the self-loop.
      for (const auto& [g, t] : stats.added_nodes) {
        if (t != s) continue;
        GV_CHECK(p.owned.empty() || g > p.owned.back(),
                 "appended node id must be a new maximum");
        p.owned.push_back(g);
        sh.adj_rows.push_back({{g, 0.0f}});  // value set by the renorm pass
        if (!sh.labels.empty()) sh.labels.push_back(0);
        sh.label_stale.push_back(0);
        sh.row_digest.push_back(0);
        if (find_in(p.closure, g) < 0) closure_insert(g, touched_deg(g));
        ++sh.closure_refs[position_of(p.closure, g, "added node not in closure")];
        rep.structural = true;
      }

      auto edit_dir = [&](std::uint32_t u, std::uint32_t v, bool insert) {
        if (plan_.owner[u] != s) return;
        const std::uint32_t r = position_of(p.owned, u, "endpoint not owned");
        if (insert && find_in(p.closure, v) < 0) {
          closure_insert(v, touched_deg(v));
        }
        auto& row = sh.adj_rows[r];
        const auto it = std::lower_bound(
            row.begin(), row.end(), v,
            [](const std::pair<std::uint32_t, float>& e, std::uint32_t x) {
              return e.first < x;
            });
        const std::uint32_t cp =
            position_of(p.closure, v, "edited column outside closure");
        if (insert) {
          GV_CHECK(it == row.end() || it->first != v,
                   "inserted edge already present in shard row");
          row.insert(it, {v, 0.0f});  // value set by the renorm pass
          ++sh.closure_refs[cp];
        } else {
          GV_CHECK(it != row.end() && it->first == v,
                   "deleted edge missing from shard row");
          row.erase(it);
          GV_CHECK(sh.closure_refs[cp] > 0, "closure refcount underflow");
          --sh.closure_refs[cp];
        }
        rep.structural = true;
      };
      for (const auto& [a, b] : applied_deletes) {
        edit_dir(a, b, false);
        edit_dir(b, a, false);
      }
      for (const auto& [a, b] : applied_inserts) {
        edit_dir(a, b, true);
        edit_dir(b, a, true);
      }

      // New degrees -> new D̃^{-1/2} for every touched closure node.
      bool touched_in_closure = false;
      for (const auto& [v, nd] : touched) {
        const std::ptrdiff_t idx = find_in(p.closure, v);
        if (idx < 0) continue;
        p.closure_deg[idx] = nd;
        sh.closure_dinv[idx] = deg_inv_sqrt(nd);
        touched_in_closure = true;
      }

      // Renormalize every owned row that is touched or references a touched
      // column: each value becomes dinv(row) * dinv(col) — the exact floats
      // a from-scratch normalization of the mutated graph would produce, in
      // the exact (ascending global column) summation order.  The per-row
      // digest decides whether the row REALLY changed (a cancelled delta
      // leaves it byte-identical and its labels alone).
      if (rep.structural || touched_in_closure) {
        for (std::uint32_t i = 0; i < sh.adj_rows.size(); ++i) {
          const std::uint32_t rg = p.owned[i];
          bool touch = std::binary_search(touched_ids.begin(), touched_ids.end(), rg);
          if (!touch) {
            for (const auto& [c, v] : sh.adj_rows[i]) {
              (void)v;
              if (std::binary_search(touched_ids.begin(), touched_ids.end(), c)) {
                touch = true;
                break;
              }
            }
          }
          if (!touch) continue;
          const float dr =
              sh.closure_dinv[position_of(p.closure, rg, "row not in closure")];
          for (auto& [c, val] : sh.adj_rows[i]) {
            val = dr * sh.closure_dinv[position_of(p.closure, c,
                                                   "column outside closure")];
          }
          ++rep.renormalized;
          const std::uint64_t digest = row_fnv(sh.adj_rows[i]);
          if (digest != sh.row_digest[i]) {
            sh.row_digest[i] = digest;
            rep.changed_rows.push_back(rg);
          }
        }
      }

      // Columns nobody references anymore leave the closure (and, via the
      // relay below, the former provider's halo list).
      for (std::size_t idx = p.closure.size(); idx-- > 0;) {
        if (sh.closure_refs[idx] != 0) continue;
        rep.closure_dropped.push_back(p.closure[idx]);
        p.closure.erase(p.closure.begin() + idx);
        p.closure_deg.erase(p.closure_deg.begin() + idx);
        sh.closure_dinv.erase(sh.closure_dinv.begin() + idx);
        sh.closure_refs.erase(sh.closure_refs.begin() + idx);
        rep.structural = true;
      }
    });
    stats.rows_renormalized += rep.renormalized;
    if (rep.structural || !rep.changed_rows.empty()) needs_rebuild[s] = 1;
  }

  // ---- 5. Halo relays: closure membership drives who ships what. ---------
  for (std::uint32_t s = 0; s < K; ++s) {
    for (const auto g : reports[s].closure_added) {
      const std::uint32_t t = plan_.owner[g];
      if (t == s) continue;
      ensure_channel(s, t, &stats.channels_created);
      Shard& sh = *shards_[t];
      sh.enclave->ecall([&] { sorted_insert(sh.payload.halo_out[s], g); });
      needs_rebuild[t] = 1;
    }
    for (const auto g : reports[s].closure_dropped) {
      const std::uint32_t t = plan_.owner[g];
      if (t == s) continue;
      Shard& sh = *shards_[t];
      sh.enclave->ecall([&] { sorted_erase(sh.payload.halo_out[s], g); });
      needs_rebuild[t] = 1;
    }
  }

  // ---- 6. Regenerate derived views + re-seal on every touched shard. -----
  for (std::uint32_t s = 0; s < K; ++s) {
    if (!needs_rebuild[s]) continue;
    Shard& sh = *shards_[s];
    sh.enclave->ecall([&] { rebuild_topology_locked(sh); });
    ++stats.shards_touched;
  }

  // ---- 7. Receptive-field BFS: labels within L-1 hops of a changed row
  // are stale.  Each hop expands inside the owning enclaves — the
  // coordinator sees node ids (delta-derived metadata), never edges beyond
  // what the delta itself named.
  const std::size_t L = vault_.rectifier->config().channels.size();
  std::vector<char> visited(n, 0);
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t s = 0; s < K; ++s) {
    for (const auto g : reports[s].changed_rows) {
      if (!visited[g]) {
        visited[g] = 1;
        frontier.push_back(g);
      }
    }
  }
  stats.changed_rows = frontier;
  std::sort(stats.changed_rows.begin(), stats.changed_rows.end());
  std::vector<std::uint32_t> affected = frontier;
  for (std::size_t hop = 1; hop < L && !frontier.empty(); ++hop) {
    std::vector<std::vector<std::uint32_t>> by_owner(K);
    for (const auto v : frontier) by_owner[plan_.owner[v]].push_back(v);
    std::vector<std::uint32_t> next;
    for (std::uint32_t s = 0; s < K; ++s) {
      if (by_owner[s].empty()) continue;
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        for (const auto v : by_owner[s]) {
          const std::uint32_t r =
              position_of(sh.payload.owned, v, "BFS node not owned");
          for (const auto& [c, val] : sh.adj_rows[r]) {
            (void)val;
            if (!visited[c]) {
              visited[c] = 1;
              next.push_back(c);
            }
          }
        }
      });
    }
    affected.insert(affected.end(), next.begin(), next.end());
    frontier.swap(next);
  }
  std::sort(affected.begin(), affected.end());
  stats.stale_nodes = std::move(affected);

  // ---- 8. Invalidate the reachable label-store entries. ------------------
  {
    std::vector<std::vector<std::uint32_t>> by_owner(K);
    for (const auto v : stats.stale_nodes) by_owner[plan_.owner[v]].push_back(v);
    for (std::uint32_t s = 0; s < K; ++s) {
      if (by_owner[s].empty()) continue;
      Shard& sh = *shards_[s];
      std::size_t newly = 0;
      sh.enclave->ecall([&] {
        if (sh.labels.empty()) return;  // no store: the cold path is already
                                        // the only source of truth
        for (const auto v : by_owner[s]) {
          const std::uint32_t r =
              position_of(sh.payload.owned, v, "stale node not owned");
          if (!sh.label_stale[r]) {
            sh.label_stale[r] = 1;
            ++newly;
          }
        }
      });
      if (newly > 0) sh.stale_count.fetch_add(newly);
      stats.store_entries_invalidated += newly;
      // Boundary activations of any shard inside the affected set may have
      // moved — even when every reached entry was ALREADY stale from an
      // earlier delta (a boundary rebuild may have run in between); cold
      // halo pulls fall back to live compute until the next refresh /
      // re-materialization.
      sh.retained_valid.store(false);
    }
  }

  // ---- 9. Publish. --------------------------------------------------------
  if (stats.nodes_added > 0) {
    extend_backbone(vault_, n);
    bb_cache_.clear();
    have_bb_cache_ = false;
    publish_owner_map();
    if (features_after != nullptr) {
      GV_CHECK(features_after->rows() == n,
               "post-update features must cover the appended nodes");
      if (have_store_fingerprint_) {
        store_fingerprint_ = features_fingerprint(*features_after);
      }
    } else {
      // Without the post-update snapshot the store fingerprint cannot be
      // re-anchored; retained stores stop serving until the next refresh.
      have_store_fingerprint_ = false;
    }
  }
  // Store epoch forward: replicated label stores synced before this update
  // are no longer byte-identical to the primary's; packages replicated
  // before it describe a retired topology.
  epoch_.fetch_add(1);
  topology_version_.fetch_add(1);
  // Caller-side state that must change atomically with the topology (the
  // server's feature snapshot) swaps while the fence is still up.
  if (before_unfence) before_unfence();
  return stats;
}

double ShardedVaultDeployment::move_node(std::uint32_t node, std::uint32_t to) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  GV_CHECK(node < plan_.owner.size(), "node out of range");
  GV_CHECK(to < plan_.num_shards, "destination shard out of range");
  const std::uint32_t from = plan_.owner[node];
  GV_CHECK(from != to, "node already lives on the destination shard");
  Shard& A = *shards_[from];
  Shard& B = *shards_[to];
  GV_CHECK(A.alive.load() && B.alive.load(),
           "migration requires both shards alive");
  GV_CHECK(plan_.shards[from].nodes.size() > 1,
           "refusing to empty a shard by migration");
  const std::uint32_t K = plan_.num_shards;

  TraceSpan move_span("drift", "move_node");
  move_span.arg("node", double(node));
  move_span.arg("from", double(from));
  move_span.arg("to", double(to));

  // Per-move fence: routers park lookups for THIS node until ownership has
  // flipped and both stores are consistent; every other node serves
  // throughout the move.
  {
    std::lock_guard<std::mutex> mlock(*move_mu_);
    GV_RANK_SCOPE(lockrank::kMoveFence);
    GV_CHECK(sorted_insert(moving_, node), "node is already mid-migration");
  }
  moving_count_.fetch_add(1);
  Stopwatch fence_watch;
  const auto fence_raised = std::chrono::steady_clock::now();
  double fence_ms = 0.0;
  bool fenced = true;
  auto unfence = [&] {
    if (!fenced) return;
    fence_ms = fence_watch.seconds() * 1e3;
    {
      std::lock_guard<std::mutex> mlock(*move_mu_);
      GV_RANK_SCOPE(lockrank::kMoveFence);
      sorted_erase(moving_, node);
    }
    moving_count_.fetch_sub(1);
    move_cv_->notify_all();
    fenced = false;
    TraceRecorder::instance().emit("drift", "migration_fence", fence_raised,
                                   std::chrono::steady_clock::now(), 0.0,
                                   {{"node", double(node)}});
  };

  try {
    AttestedChannel& ch = ensure_channel(from, to, nullptr);

    // --- Extract + seal inside the losing enclave. ------------------------
    A.enclave->ecall([&] {
      const std::uint32_t r =
          position_of(A.payload.owned, node, "node not owned by its shard");
      const auto& row = A.adj_rows[r];
      std::vector<std::uint8_t> bytes;
      bytes.reserve(24 + row.size() * 12);
      auto put32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
      };
      put32(node);
      const bool has_label = !A.labels.empty();
      put32(has_label ? 1u : 0u);
      put32(has_label ? A.labels[r] : 0u);
      put32(has_label && A.label_stale[r] ? 1u : 0u);
      put32(static_cast<std::uint32_t>(row.size()));
      for (const auto& [c, v] : row) {
        put32(c);
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        put32(bits);
        put32(A.payload.closure_deg[position_of(A.payload.closure, c,
                                                "row column outside closure")]);
      }
      ch.send_transfer(*A.enclave, std::move(bytes));
    });

    // --- Install inside the gaining enclave. ------------------------------
    std::vector<std::uint32_t> b_closure_added;
    bool b_gained_stale = false;
    B.enclave->ecall([&] {
      const auto bytes = ch.recv_transfer(*B.enclave);
      std::size_t off = 0;
      auto get32 = [&] {
        GV_CHECK(off + 4 <= bytes.size(), "truncated node transfer");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes[off + i]) << (8 * i);
        off += 4;
        return v;
      };
      GV_CHECK(get32() == node, "node transfer names a different node");
      const bool has_label = get32() != 0;
      const std::uint32_t label = get32();
      const bool was_stale = get32() != 0;
      const std::uint32_t nnz = get32();
      std::vector<std::pair<std::uint32_t, float>> row;
      row.reserve(nnz);
      std::vector<std::uint32_t> col_deg;
      col_deg.reserve(nnz);
      for (std::uint32_t i = 0; i < nnz; ++i) {
        const std::uint32_t c = get32();
        const std::uint32_t bits = get32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        row.push_back({c, v});
        col_deg.push_back(get32());
      }

      ShardPayload& p = B.payload;
      const auto it = std::lower_bound(p.owned.begin(), p.owned.end(), node);
      GV_CHECK(it == p.owned.end() || *it != node,
               "destination shard already owns the node");
      const std::size_t pos = static_cast<std::size_t>(it - p.owned.begin());
      p.owned.insert(it, node);
      B.adj_rows.insert(B.adj_rows.begin() + pos, row);
      B.row_digest.insert(B.row_digest.begin() + pos, row_fnv(row));
      char stale_bit = 0;
      if (!B.labels.empty() || (B.store_ready.load() && p.owned.size() == 1)) {
        // The gaining store is materialized: carry the label (and its
        // staleness) across so serving stays warm.
        B.labels.insert(B.labels.begin() + pos, label);
        stale_bit = (has_label ? (was_stale ? 1 : 0) : 1);
      }
      B.label_stale.insert(B.label_stale.begin() + pos, stale_bit);
      b_gained_stale = stale_bit != 0;

      for (std::uint32_t i = 0; i < row.size(); ++i) {
        const std::uint32_t c = row[i].first;
        if (find_in(p.closure, c) < 0) {
          const auto cit = std::lower_bound(p.closure.begin(), p.closure.end(), c);
          const std::size_t idx = static_cast<std::size_t>(cit - p.closure.begin());
          p.closure.insert(cit, c);
          p.closure_deg.insert(p.closure_deg.begin() + idx, col_deg[i]);
          B.closure_dinv.insert(B.closure_dinv.begin() + idx,
                                deg_inv_sqrt(col_deg[i]));
          B.closure_refs.insert(B.closure_refs.begin() + idx, 0);
          b_closure_added.push_back(c);
        }
        ++B.closure_refs[position_of(p.closure, c, "transfer column missing")];
      }
    });
    if (b_gained_stale) B.stale_count.fetch_add(1);

    // --- Flip ownership while BOTH enclaves hold the node: a lookup that
    // grouped against the old snapshot still finds the row on the old
    // owner; one that grouped against the new snapshot finds it on the new
    // one.  Split ownership is never observable.
    plan_.owner[node] = to;
    sorted_erase(plan_.shards[from].nodes, node);
    sorted_insert(plan_.shards[to].nodes, node);
    publish_owner_map();
    topology_version_.fetch_add(1);
    epoch_.fetch_add(1);

    // --- Retire the old row. ----------------------------------------------
    std::vector<std::uint32_t> a_closure_dropped;
    std::vector<std::uint32_t> halo_peers;  // shards that pull `node`
    bool a_lost_stale = false;
    A.enclave->ecall([&] {
      ShardPayload& p = A.payload;
      const std::uint32_t r = position_of(p.owned, node, "node vanished mid-move");
      for (const auto& [c, v] : A.adj_rows[r]) {
        (void)v;
        const std::uint32_t cp =
            position_of(p.closure, c, "row column outside closure");
        GV_CHECK(A.closure_refs[cp] > 0, "closure refcount underflow");
        --A.closure_refs[cp];
      }
      if (!A.labels.empty()) A.labels.erase(A.labels.begin() + r);
      a_lost_stale = A.label_stale[r] != 0;
      A.label_stale.erase(A.label_stale.begin() + r);
      A.adj_rows.erase(A.adj_rows.begin() + r);
      A.row_digest.erase(A.row_digest.begin() + r);
      p.owned.erase(p.owned.begin() + r);
      for (std::uint32_t t = 0; t < K; ++t) {
        if (sorted_erase(p.halo_out[t], node)) halo_peers.push_back(t);
      }
      for (std::size_t idx = p.closure.size(); idx-- > 0;) {
        if (A.closure_refs[idx] != 0) continue;
        a_closure_dropped.push_back(p.closure[idx]);
        p.closure.erase(p.closure.begin() + idx);
        p.closure_deg.erase(p.closure_deg.begin() + idx);
        A.closure_dinv.erase(A.closure_dinv.begin() + idx);
        A.closure_refs.erase(A.closure_refs.begin() + idx);
      }
    });
    if (a_lost_stale) A.stale_count.fetch_sub(1);

    // The label stores on both sides are consistent and ownership has
    // flipped — the fence can lift; halo re-routing below only affects
    // refresh/cold paths, which this thread's infer lock still excludes.
    unfence();

    std::vector<char> needs_rebuild(K, 0);
    needs_rebuild[from] = needs_rebuild[to] = 1;
    // Shards that pulled `node` from the old owner now pull it from the new
    // one; `to` itself owns it now and pulls nothing.
    for (const auto t : halo_peers) {
      if (t == to) continue;
      ensure_channel(to, t, nullptr);
      B.enclave->ecall([&] { sorted_insert(B.payload.halo_out[t], node); });
    }
    // The old owner may still border the node (other owned rows reference
    // it): it becomes a halo consumer of its former node.
    bool a_still_needs = false;
    A.enclave->ecall(
        [&] { a_still_needs = find_in(A.payload.closure, node) >= 0; });
    if (a_still_needs) {
      B.enclave->ecall([&] { sorted_insert(B.payload.halo_out[from], node); });
    }
    // Columns new to the gaining shard's closure: their owners ship them.
    for (const auto g : b_closure_added) {
      const std::uint32_t t = plan_.owner[g];
      if (t == to) continue;
      ensure_channel(to, t, nullptr);
      Shard& sh = *shards_[t];
      sh.enclave->ecall([&] { sorted_insert(sh.payload.halo_out[to], g); });
      needs_rebuild[t] = 1;
    }
    // Columns the losing shard dropped: their owners stop shipping them.
    for (const auto g : a_closure_dropped) {
      const std::uint32_t t = plan_.owner[g];
      if (t == from) continue;
      Shard& sh = *shards_[t];
      sh.enclave->ecall([&] { sorted_erase(sh.payload.halo_out[from], g); });
      needs_rebuild[t] = 1;
    }

    for (std::uint32_t s = 0; s < K; ++s) {
      if (!needs_rebuild[s]) continue;
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] { rebuild_topology_locked(sh); });
    }
  } catch (...) {
    unfence();
    throw;
  }
  return fence_ms;
}

std::vector<std::uint32_t> ShardedVaultDeployment::cold_forward(
    const CsrMatrix& features, std::uint64_t fingerprint,
    std::span<const std::uint32_t> nodes, ColdSubsetStats* stats,
    std::uint32_t retain_shard, RetainMode retain_mode) {
  const std::size_t n = plan_.owner.size();
  GV_CHECK(features.rows() == n, "features cover a different node count");
  if (nodes.empty()) return {};
  for (const auto v : nodes) GV_CHECK(v < n, "query node out of range");

  TraceSpan cold_span("fleet", "cold_forward");
  cold_span.arg("nodes", double(nodes.size()));

  const auto& cfg = vault_.rectifier->config();
  const std::size_t L = cfg.channels.size();
  const auto dims = vault_.backbone().layer_dims();
  const std::size_t penult = dims.size() >= 2 ? dims.size() - 2 : 0;
  const std::uint32_t K = plan_.num_shards;

  // Retained boundary stores may serve halo pulls only when they were
  // materialized from THIS feature snapshot.
  const bool stores_fresh = refreshed_.load() && have_store_fingerprint_ &&
                            fingerprint == store_fingerprint_;

  const double parallel_before = parallel_seconds_.load();
  const double untrusted_before = untrusted_seconds_.load();
  std::uint64_t req_bytes_before = 0, emb_bytes_before = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      req_bytes_before += ch->request_bytes();
      emb_bytes_before += ch->embedding_bytes();
    }
  }

  // Query nodes grouped by owner shard (sorted unique — owned[] is sorted,
  // so these align 1:1 with the owned-local out rows of the last layer).
  std::vector<std::vector<std::uint32_t>> qnodes(K);
  for (const auto v : nodes) qnodes[plan_.owner[v]].push_back(v);
  for (auto& q : qnodes) {
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
  }

  // Untrusted-side orchestration state.  The coordinator only ever learns
  // SHARD-level facts (who computes, who serves) — it must, to schedule
  // ecalls and streams — while the node-level frontier stays inside the
  // enclaves and the sealed channel blocks.
  std::vector<char> involved(K, 0);
  std::vector<std::vector<char>> computes(L, std::vector<char>(K, 0));

  auto ensure_cold = [&](std::uint32_t s) {
    if (involved[s]) return;
    Shard& sh = *shards_[s];
    GV_CHECK(sh.alive.load(), "shard enclave is down (cold frontier)");
    cold_ecall(s, [&] {
      auto& cq = sh.cold;
      cq.out_rows.assign(L, {});
      cq.in_cols.assign(L, {});
      cq.serve_live.assign(L, std::vector<std::vector<std::uint32_t>>(K));
      cq.serve_store.assign(L, std::vector<std::vector<std::uint32_t>>(K));
      cq.bb.assign(dims.size(), Matrix());
      cq.bb_need.assign(dims.size(), {});
      cq.h = Matrix();
      cq.query_id = 0;
      auto& mem = sh.enclave->memory();
      mem.set("cold.bb", 0);
      mem.set("cold.h", 0);
    });
    involved[s] = 1;
  };

  try {
    // --- Frontier walk, last layer first.  Each shard expands ONE hop over
    // its own rectangular sub-adjacency inside its enclave; columns owned by
    // a peer become halo-pull requests over the attested channel, and the
    // peer either answers from its retained boundary store (no expansion —
    // the walk stops at the boundary) or joins the computation.
    for (std::uint32_t s = 0; s < K; ++s) {
      if (qnodes[s].empty()) continue;
      ensure_cold(s);
      Shard& sh = *shards_[s];
      cold_ecall(s, [&] {
        auto& rows = sh.cold.out_rows[L - 1];
        rows.reserve(qnodes[s].size());
        for (const auto v : qnodes[s]) {
          rows.push_back(position_of(sh.payload.owned, v, "query node not owned"));
        }
      });
      computes[L - 1][s] = 1;
    }

    for (std::size_t k = L; k-- > 0;) {
      std::vector<std::vector<std::uint32_t>> requesters(K);  // t -> [s...]
      for (std::uint32_t s = 0; s < K; ++s) {
        if (!computes[k][s]) continue;
        Shard& sh = *shards_[s];
        std::vector<std::uint32_t> peers;
        std::size_t frontier_rows = 0;
        cold_ecall(s, [&] {
          auto& cq = sh.cold;
          auto& rows = cq.out_rows[k];
          std::sort(rows.begin(), rows.end());
          rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
          frontier_rows = rows.size();
          cq.in_cols[k] = sh.rectifier->frontier_columns(rows);
          std::vector<std::vector<std::uint32_t>> want(K);
          for (const auto c : cq.in_cols[k]) {
            const std::uint32_t g = sh.payload.closure[c];
            const std::uint32_t t = plan_.owner[g];
            if (t == s) {
              if (k > 0) {
                cq.out_rows[k - 1].push_back(
                    position_of(sh.payload.owned, g, "closure col not owned"));
              }
            } else if (k > 0) {
              // Layer 0's halo columns are fed from the public backbone
              // stream, not from a peer; only k > 0 pulls embeddings.
              want[t].push_back(g);
            }
          }
          if (k > 0) {
            for (std::uint32_t t = 0; t < K; ++t) {
              if (want[t].empty()) continue;
              AttestedChannel* ch = channel(s, t);
              GV_CHECK(ch != nullptr, "halo pull without an attested channel");
              ch->send_request(*sh.enclave, std::move(want[t]),
                               current_query_id());
              peers.push_back(t);
            }
          }
        });
        stats->frontier_rows += frontier_rows;
        if (k > 0) computes[k - 1][s] = 1;
        for (const auto t : peers) requesters[t].push_back(s);
      }
      if (k == 0) break;

      for (std::uint32_t t = 0; t < K; ++t) {
        if (requesters[t].empty()) continue;
        ensure_cold(t);
        Shard& sh = *shards_[t];
        const bool from_store = stores_fresh && sh.retained_valid.load();
        bool live = false;
        cold_ecall(t, [&] {
          auto& cq = sh.cold;
          for (const auto s : requesters[t]) {
            std::uint64_t qid = 0;
            auto want = channel(s, t)->recv_request(*sh.enclave, &qid);
            if (qid != 0) cq.query_id = qid;
            std::vector<std::uint32_t> rows;
            rows.reserve(want.size());
            for (const auto g : want) {
              rows.push_back(
                  position_of(sh.payload.owned, g, "halo pull for unowned node"));
            }
            if (from_store) {
              cq.serve_store[k - 1][s] = std::move(rows);
            } else {
              cq.out_rows[k - 1].insert(cq.out_rows[k - 1].end(), rows.begin(),
                                        rows.end());
              cq.serve_live[k - 1][s] = std::move(rows);
              live = true;
            }
          }
        });
        if (live) computes[k - 1][t] = 1;
      }
    }

    // --- Backbone staging: full-matrix oblivious stream to every COMPUTING
    // shard (the enclave keeps only the rows its frontier needs).  Shards
    // that only serve from retained stores stage nothing.
    bool bb_cache_hit = false;
    const auto& outputs = backbone_for(features, fingerprint, &bb_cache_hit);
    stats->backbone_cache_hit = bb_cache_hit;

    parallel_phase("cold_backbone_stage", [&](std::uint32_t s) {
      if (!involved[s] || !computes[0][s]) return;
      Shard& sh = *shards_[s];
      try {
      sh.enclave->ecall([&] {
        auto& cq = sh.cold;
        switch (cfg.kind) {
          case RectifierKind::kParallel:
            for (std::size_t kk = 0; kk < L; ++kk) {
              if (computes[kk][s]) cq.bb_need[kk] = cq.in_cols[kk];
            }
            break;
          case RectifierKind::kCascaded:
            for (const std::size_t idx : required_layers_) {
              cq.bb_need[idx] = cq.in_cols[0];
            }
            break;
          case RectifierKind::kSeries:
            cq.bb_need[penult] = cq.in_cols[0];
            break;
        }
      });
      for (const std::size_t idx : required_layers_) {
        bool needed = false;
        std::size_t need_rows = 0;
        sh.enclave->ecall([&] {
          needed = !sh.cold.bb_need[idx].empty();
          need_rows = sh.cold.bb_need[idx].size();
        });
        if (!needed) continue;
        GV_CHECK(idx < outputs.size() && !outputs[idx].empty(),
                 "required backbone output missing");
        const Matrix& full = outputs[idx];
        GV_CHECK(full.rows() == n, "backbone output covers a different node count");
        const std::size_t dim = full.cols();
        sh.enclave->ecall([&] { sh.cold.bb[idx] = Matrix(need_rows, dim); });
        stream_full_matrix(sh, full, [&](const Matrix& block, std::size_t r0) {
          const auto& closure = sh.payload.closure;
          const auto& need = sh.cold.bb_need[idx];
          auto it = std::lower_bound(
              need.begin(), need.end(), r0,
              [&](std::uint32_t c, std::size_t v) { return closure[c] < v; });
          for (; it != need.end() && closure[*it] < r0 + block.rows(); ++it) {
            const std::size_t local = static_cast<std::size_t>(it - need.begin());
            std::memcpy(sh.cold.bb[idx].data() + local * dim,
                        block.data() + (closure[*it] - r0) * dim,
                        dim * sizeof(float));
          }
        });
      }
      sh.enclave->ecall([&] {
        std::size_t bytes = 0;
        for (const auto& m : sh.cold.bb) bytes += m.payload_bytes();
        sh.enclave->memory().set("cold.bb", bytes);
      });
      } catch (const EnclaveFailure&) {
        // Covers every staging ecall above, the streaming chunks included.
        mark_cold_fault(s);
        throw;
      }
    });

    // --- Layer-synchronous cold compute.  Before layer k, every provider
    // ships the layer k-1 rows its peers requested (from the retained store
    // or the freshly computed frontier); then the computing shards assemble
    // their inputs, slice their sub-adjacency to the frontier, and advance.
    for (std::size_t k = 0; k < L; ++k) {
      const bool last = (k + 1 == L);
      if (k >= 1) {
        parallel_phase("cold_halo_serve", std::int64_t(k), [&](std::uint32_t t) {
          if (!involved[t]) return;
          Shard& sh = *shards_[t];
          // QueryLens: this shard's serving work belongs to the query whose
          // sealed halo-request trailer delivered the id — channel-carried
          // attribution, not coordinator bookkeeping.
          QueryScope qscope(sh.cold.query_id);
          TraceSpan serve_span("cold", "halo_serve");
          serve_span.arg("shard", double(t));
          serve_span.arg("layer", double(k));
          const auto halo_start = std::chrono::steady_clock::now();
          bool served = false;
          cold_ecall(t, [&] {
            auto& cq = sh.cold;
            for (std::uint32_t s2 = 0; s2 < K; ++s2) {
              const auto& store_rows = cq.serve_store[k - 1][s2];
              if (!store_rows.empty()) {
                std::vector<std::uint32_t> globals, pos;
                globals.reserve(store_rows.size());
                pos.reserve(store_rows.size());
                for (const auto r : store_rows) {
                  globals.push_back(sh.payload.owned[r]);
                  const auto it = std::lower_bound(sh.boundary_rows.begin(),
                                                   sh.boundary_rows.end(), r);
                  GV_CHECK(it != sh.boundary_rows.end() && *it == r,
                           "cold pull for a non-boundary row");
                  pos.push_back(
                      static_cast<std::uint32_t>(it - sh.boundary_rows.begin()));
                }
                channel(t, s2)->send_embeddings(
                    *sh.enclave, std::move(globals),
                    sh.retained[k - 1].gather_rows(pos));
                served = true;
              }
              const auto& live_rows = cq.serve_live[k - 1][s2];
              if (!live_rows.empty()) {
                std::vector<std::uint32_t> globals, pos;
                globals.reserve(live_rows.size());
                pos.reserve(live_rows.size());
                const auto& prev_rows = cq.out_rows[k - 1];
                for (const auto r : live_rows) {
                  globals.push_back(sh.payload.owned[r]);
                  const auto it =
                      std::lower_bound(prev_rows.begin(), prev_rows.end(), r);
                  GV_CHECK(it != prev_rows.end() && *it == r,
                           "live halo row missing from the computed frontier");
                  pos.push_back(static_cast<std::uint32_t>(it - prev_rows.begin()));
                }
                channel(t, s2)->send_embeddings(*sh.enclave, std::move(globals),
                                                cq.h.gather_rows(pos));
                served = true;
              }
            }
          });
          if (served) {
            record_query_stage(
                QueryStage::kHalo,
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              halo_start)
                    .count());
          } else {
            // Involved but served nothing this layer (e.g. compute-only):
            // an empty halo_serve span would just be noise.
            serve_span.cancel();
          }
        });
      }

      parallel_phase("cold_layer_compute", std::int64_t(k), [&](std::uint32_t s) {
        if (!computes[k][s]) return;
        Shard& sh = *shards_[s];
        cold_ecall(s, [&] {
          auto& cq = sh.cold;
          const auto& in_cols = cq.in_cols[k];

          // Previous-layer rows of the input frontier: own rows from the
          // local frontier, halo rows drained from the attested channels.
          auto assemble_prev = [&]() -> Matrix {
            const std::size_t chp = cfg.channels[k - 1];
            Matrix prev(in_cols.size(), chp);
            std::size_t filled = 0;
            const auto& prev_rows = cq.out_rows[k - 1];
            for (std::size_t i = 0; i < in_cols.size(); ++i) {
              const std::uint32_t g = sh.payload.closure[in_cols[i]];
              if (plan_.owner[g] != s) continue;
              const std::uint32_t r =
                  position_of(sh.payload.owned, g, "closure col not owned");
              const auto it =
                  std::lower_bound(prev_rows.begin(), prev_rows.end(), r);
              GV_CHECK(it != prev_rows.end() && *it == r,
                       "own frontier row missing at assembly");
              std::memcpy(prev.data() + i * chp,
                          cq.h.data() +
                              static_cast<std::size_t>(it - prev_rows.begin()) * chp,
                          chp * sizeof(float));
              ++filled;
            }
            for (std::uint32_t t = 0; t < K; ++t) {
              if (t == s) continue;
              AttestedChannel* ch = channel(s, t);
              if (ch == nullptr) continue;
              while (ch->has_embeddings(*sh.enclave)) {
                const auto block = ch->recv_embeddings(*sh.enclave);
                GV_CHECK(block.rows.cols() == chp, "cold halo dim mismatch");
                for (std::size_t i = 0; i < block.nodes.size(); ++i) {
                  const std::uint32_t c = position_of(
                      sh.payload.closure, block.nodes[i], "halo outside closure");
                  const auto it =
                      std::lower_bound(in_cols.begin(), in_cols.end(), c);
                  GV_CHECK(it != in_cols.end() && *it == c,
                           "halo row outside the input frontier");
                  std::memcpy(
                      prev.data() +
                          static_cast<std::size_t>(it - in_cols.begin()) * chp,
                      block.rows.data() + i * chp, chp * sizeof(float));
                  ++filled;
                }
              }
            }
            GV_CHECK(filled == in_cols.size(),
                     "cold halo pulls left input rows unfilled");
            return prev;
          };

          Matrix input;
          switch (cfg.kind) {
            case RectifierKind::kParallel:
              input = k == 0 ? std::move(cq.bb[0])
                             : Matrix::hconcat(cq.bb[k], assemble_prev());
              break;
            case RectifierKind::kCascaded:
              if (k == 0) {
                std::vector<const Matrix*> blocks;
                blocks.reserve(dims.size());
                for (std::size_t i = 0; i < dims.size(); ++i) {
                  blocks.push_back(&cq.bb[i]);
                }
                input = Matrix::hconcat(
                    std::span<const Matrix* const>(blocks.data(), blocks.size()));
              } else {
                input = assemble_prev();
              }
              break;
            case RectifierKind::kSeries:
              input = k == 0 ? std::move(cq.bb[penult]) : assemble_prev();
              break;
          }

          const CsrMatrix slice =
              sh.rectifier->frontier_slice(cq.out_rows[k], in_cols);
          Matrix z = sh.rectifier->layer(k).forward_subgraph(slice, input);
          cq.h = last ? std::move(z) : relu(z);
          sh.enclave->memory().set("cold.h",
                                   input.payload_bytes() + cq.h.payload_bytes());

          if (retain_shard == s && retain_mode != RetainMode::kNone) {
            // Re-materialization pass: reinstall this shard's durable stores
            // from the freshly computed frontier (full owned set for kFull;
            // kBoundary touches only the retained activations).
            if (last) {
              if (retain_mode == RetainMode::kFull) {
                GV_CHECK(cq.out_rows[k].size() == sh.payload.owned.size(),
                         "re-materialization must cover every owned node");
                sh.labels = argmax_rows(cq.h);
                sh.label_stale.assign(sh.labels.size(), 0);
                sh.enclave->memory().set(
                    "labels.store", sh.labels.size() * sizeof(std::uint32_t));
              }
            } else {
              std::vector<std::uint32_t> pos;
              pos.reserve(sh.boundary_rows.size());
              const auto& rows = cq.out_rows[k];
              for (const auto r : sh.boundary_rows) {
                const auto it = std::lower_bound(rows.begin(), rows.end(), r);
                GV_CHECK(it != rows.end() && *it == r,
                         "boundary row missing from re-materialization");
                pos.push_back(static_cast<std::uint32_t>(it - rows.begin()));
              }
              sh.retained[k] = cq.h.gather_rows(pos);
            }
          }
        });
      });
    }

    // --- Label-only exits, merged back into query order. -------------------
    std::vector<std::uint32_t> out(nodes.size(), 0);
    std::vector<std::vector<std::uint32_t>> labels_by_shard(K);
    for (std::uint32_t s = 0; s < K; ++s) {
      if (qnodes[s].empty()) continue;
      Shard& sh = *shards_[s];
      std::size_t healed = 0;
      labels_by_shard[s] = cold_ecall(s, [&] {
        auto& cq = sh.cold;
        GV_CHECK(cq.h.rows() == cq.out_rows[L - 1].size(),
                 "cold forward produced a malformed frontier");
        std::vector<std::uint32_t> all = argmax_rows(cq.h);
        // out_rows[L-1] ⊇ the query rows (a re-materialization computes the
        // whole owned set); project onto the query positions.
        std::vector<std::uint32_t> res;
        res.reserve(qnodes[s].size());
        const auto& rows = cq.out_rows[L - 1];
        const bool heal = retain_mode == RetainMode::kNone && stores_fresh &&
                          sh.store_ready.load() && !sh.labels.empty();
        for (const auto v : qnodes[s]) {
          const std::uint32_t r =
              position_of(sh.payload.owned, v, "query node not owned");
          const auto it = std::lower_bound(rows.begin(), rows.end(), r);
          GV_CHECK(it != rows.end() && *it == r, "query row missing");
          const std::uint32_t label =
              all[static_cast<std::size_t>(it - rows.begin())];
          // Store healing: this label was just recomputed for the CURRENT
          // snapshot — if a graph update had invalidated the stored entry,
          // write it back so the next lookup is warm again.
          if (heal && sh.label_stale[r]) {
            sh.labels[r] = label;
            sh.label_stale[r] = 0;
            ++healed;
          }
          res.push_back(label);
        }
        return res;
      });
      if (healed > 0) sh.stale_count.fetch_sub(healed);
    }
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      const std::uint32_t s = plan_.owner[nodes[j]];
      const auto& q = qnodes[s];
      const auto it = std::lower_bound(q.begin(), q.end(), nodes[j]);
      out[j] = labels_by_shard[s][static_cast<std::size_t>(it - q.begin())];
    }

    // --- Release transients + telemetry. -----------------------------------
    parallel_phase("cold_release", [&](std::uint32_t s) {
      if (!involved[s]) return;
      Shard& sh = *shards_[s];
      cold_ecall(s, [&] {
        sh.cold = Shard::Cold{};
        auto& mem = sh.enclave->memory();
        mem.free("cold.bb");
        mem.free("cold.h");
      });
    });

    std::size_t touched = 0, computed = 0;
    for (std::uint32_t s = 0; s < K; ++s) {
      if (involved[s]) ++touched;
      if (computes[0][s]) ++computed;
    }
    stats->shards_touched = touched;
    stats->shards_computed = computed;
    std::uint64_t req_after = 0, emb_after = 0;
    for (const auto& ch : channels_) {
      if (ch) {
        req_after += ch->request_bytes();
        emb_after += ch->embedding_bytes();
      }
    }
    stats->halo_request_bytes = req_after - req_bytes_before;
    stats->halo_embedding_bytes = emb_after - emb_bytes_before;
    stats->modeled_seconds = (parallel_seconds_.load() - parallel_before) +
                             (untrusted_seconds_.load() - untrusted_before);
    cold_span.arg("shards_touched", double(touched));
    cold_span.modeled_seconds(stats->modeled_seconds);
    return out;
  } catch (...) {
    // A walk aborted mid-exchange (dead frontier shard, malformed query)
    // must not leave sealed blocks queued for a later exchange to pop.
    for (const auto& ch : channels_) {
      if (ch) ch->drop_pending();
    }
    throw;
  }
}

std::uint32_t ShardedVaultDeployment::owner(std::uint32_t node) const {
  const auto snap = owner_snapshot();
  GV_CHECK(node < snap->size(), "node out of range");
  return (*snap)[node];
}

void ShardedVaultDeployment::kill_shard(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  shards_[shard]->alive = false;
}

bool ShardedVaultDeployment::shard_alive(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->alive;
}

Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Sha256Digest& ShardedVaultDeployment::shard_platform_key(
    std::uint32_t shard) const {
  GV_CHECK(shard < opts_.platform_keys.size(), "shard index out of range");
  return opts_.platform_keys[shard];
}

const SealedBlob& ShardedVaultDeployment::sealed_payload(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->sealed;
}

std::unique_ptr<Enclave> ShardedVaultDeployment::make_peer_enclave(
    std::uint32_t shard, const Sha256Digest& platform_key) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  // Peer enclaves repeat the exact build recipe (same name, same extends):
  // identical measurement is what lets the attested channel handshake and
  // what scopes sealing to {code identity} x {platform key}.
  auto peer = std::make_unique<Enclave>(opts_.enclave_name, opts_.cost_model,
                                        platform_key);
  peer->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  peer->extend_measurement(shards_[shard]->payload.rectifier_weights);
  peer->initialize();
  return peer;
}

void ShardedVaultDeployment::send_payload(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  // Under the infer lock: a graph update / migration mutates the payload
  // across several ecalls, and a replication racing it must never serialize
  // a half-updated topology.
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  sh.enclave->ecall(
      [&] { ch.send_package(*sh.enclave, serialize_shard_payload(sh.payload)); });
}

void ShardedVaultDeployment::send_labels(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  GV_RANK_SCOPE(lockrank::kDeployment);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "no label store to replicate before the first refresh");
  sh.enclave->ecall(
      [&] { ch.send_labels(*sh.enclave, sh.payload.owned, sh.labels); });
}

std::uint64_t ShardedVaultDeployment::halo_kind_bytes(
    AttestedChannel::PayloadKind kind) const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->kind_bytes(kind);
  }
  return sum;
}

std::uint64_t ShardedVaultDeployment::halo_embedding_bytes() const {
  return halo_kind_bytes(AttestedChannel::PayloadKind::kEmbeddings);
}

std::uint64_t ShardedVaultDeployment::halo_label_bytes() const {
  return halo_kind_bytes(AttestedChannel::PayloadKind::kLabels);
}

std::uint64_t ShardedVaultDeployment::halo_package_bytes() const {
  return halo_kind_bytes(AttestedChannel::PayloadKind::kPackage);
}

std::uint64_t ShardedVaultDeployment::halo_request_bytes() const {
  return halo_kind_bytes(AttestedChannel::PayloadKind::kRequest);
}

std::uint64_t ShardedVaultDeployment::halo_transfer_bytes() const {
  return halo_kind_bytes(AttestedChannel::PayloadKind::kTransfer);
}

std::uint64_t ShardedVaultDeployment::halo_padded_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->padded_bytes();
  }
  return sum;
}

void ShardedVaultDeployment::publish_channel_audit() const {
  auto& reg = MetricsRegistry::global();
  // One gauge per PayloadKind, driven by the channel's own policy table so
  // a kind added there is automatically audited here (vault_lint enforces
  // the table side).
  for (const auto& kp : AttestedChannel::kKindPolicies) {
    reg.gauge("halo.payload_bytes", MetricLabels::of("channel_kind", kp.name))
        .set(double(halo_kind_bytes(kp.kind)));
  }
  reg.gauge("halo.padded_bytes").set(double(halo_padded_bytes()));
  // Padding invariant: per channel, wire bytes can never undercut logical
  // payload bytes — if they do, some block skipped its bucket and its size
  // is leaking cardinality to the untrusted relay.  Worth a postmortem.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const auto& ch = channels_[i];
    if (!ch) continue;
    if (ch->padded_bytes() < ch->total_payload_bytes()) {
      reg.counter("halo.audit_anomalies").add(1);
      FlightRecorder::instance().trip(
          FaultKind::kChannelAnomaly, -1,
          "channel " + std::to_string(i) + " padded bytes " +
              std::to_string(ch->padded_bytes()) + " < logical payload " +
              std::to_string(ch->total_payload_bytes()));
    }
  }
}

void ShardedVaultDeployment::publish_epc_gauges() const {
  auto& reg = MetricsRegistry::global();
  const double budget = double(opts_.cost_model.epc_bytes);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const double used = double(shards_[s]->enclave->memory().current_bytes());
    reg.gauge("epc.shard_headroom_bytes",
              MetricLabels::of("shard", std::to_string(s)))
        .set(budget - used);
    reg.gauge("epc.shard_used_bytes",
              MetricLabels::of("shard", std::to_string(s)))
        .set(used);
  }
}

double ShardedVaultDeployment::modeled_seconds() const {
  return untrusted_seconds_.load() + parallel_seconds_.load();
}

CostMeter ShardedVaultDeployment::aggregate_meter() const {
  CostMeter total;
  for (const auto& sh : shards_) {
    const CostMeter m = sh->enclave->meter_snapshot();
    total.ecalls += m.ecalls;
    total.ocalls += m.ocalls;
    total.bytes_in += m.bytes_in;
    total.page_swaps += m.page_swaps;
    total.enclave_compute_seconds += m.enclave_compute_seconds;
    total.untrusted_compute_seconds += m.untrusted_compute_seconds;
  }
  total.untrusted_compute_seconds += untrusted_seconds_.load();
  return total;
}

std::size_t ShardedVaultDeployment::max_shard_peak_bytes() const {
  std::size_t mx = 0;
  for (const auto& sh : shards_) {
    mx = std::max(mx, sh->enclave->memory().peak_bytes());
  }
  return mx;
}

}  // namespace gv
