#include "shard/sharded_deployment.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "tensor/ops.hpp"

namespace gv {

namespace {

constexpr const char* kCodeTagPrefix = "shardvault-rectifier-v1:";

/// Position of `v` in sorted `ids`; throws when absent.
std::uint32_t position_of(const std::vector<std::uint32_t>& ids, std::uint32_t v,
                          const char* what) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  GV_CHECK(it != ids.end() && *it == v, what);
  return static_cast<std::uint32_t>(it - ids.begin());
}

}  // namespace

ShardedVaultDeployment::ShardedVaultDeployment(const Dataset& ds, TrainedVault vault,
                                               ShardPlan plan,
                                               ShardedDeploymentOptions opts)
    : vault_(std::move(vault)), plan_(std::move(plan)), opts_(std::move(opts)) {
  GV_CHECK(vault_.rectifier != nullptr, "deployment requires a trained rectifier");
  GV_CHECK(plan_.num_shards >= 1 && plan_.shards.size() == plan_.num_shards,
           "malformed shard plan");
  GV_CHECK(plan_.owner.size() == ds.num_nodes(), "plan covers a different graph");
  if (opts_.enclave_name.empty()) opts_.enclave_name = "shardvault." + ds.name;
  if (opts_.platform_keys.empty()) {
    opts_.platform_keys.assign(plan_.num_shards, Enclave::default_platform_key());
  }
  GV_CHECK(opts_.platform_keys.size() == plan_.num_shards,
           "need one platform key per shard");
  required_layers_ = vault_.rectifier->required_backbone_layers();

  auto payloads = ShardPlanner::build_payloads(ds, vault_, plan_);
  shards_.reserve(plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    provision_shard(*shards_[s], std::move(payloads[s]));
  }

  // Attested channels for shard pairs with halo overlap (in either
  // direction); the handshake runs now, at provisioning time.
  channels_.resize(static_cast<std::size_t>(plan_.num_shards) * plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    for (std::uint32_t t = s + 1; t < plan_.num_shards; ++t) {
      const bool overlap = !shards_[s]->payload.halo_out[t].empty() ||
                           !shards_[t]->payload.halo_out[s].empty();
      if (!overlap) continue;
      channels_[static_cast<std::size_t>(s) * plan_.num_shards + t] =
          std::make_unique<AttestedChannel>(*shards_[s]->enclave,
                                            *shards_[t]->enclave,
                                            opts_.platform_keys[s],
                                            opts_.platform_keys[t]);
    }
  }
}

void ShardedVaultDeployment::provision_shard(Shard& shard, ShardPayload payload) {
  // IDENTICAL measurement across shards (and replicas): name + code tag +
  // replicated weights.  The per-shard package is NOT measured — it is what
  // gets sealed — so every enclave of this tenant attests as the same code
  // image, which is what the channel handshake requires.
  shard.enclave = std::make_unique<Enclave>(
      opts_.enclave_name, opts_.cost_model, opts_.platform_keys[payload.shard_index]);
  shard.enclave->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  shard.enclave->extend_measurement(payload.rectifier_weights);
  shard.enclave->initialize();
  shard.stream = std::make_unique<OneWayChannel>(*shard.enclave);

  const auto bytes = serialize_shard_payload(payload);
  if (opts_.seal_artifacts) {
    shard.sealed = shard.enclave->seal(bytes);
    // Round-trip through sealed storage, as every enclave launch would.
    shard.payload = deserialize_shard_payload(shard.enclave->unseal(shard.sealed));
  } else {
    shard.payload = std::move(payload);
  }

  install_payload(shard);
}

void ShardedVaultDeployment::install_payload(Shard& shard) {
  shard.enclave->ecall([&] {
    const ShardPayload& p = shard.payload;
    std::vector<CooEntry> entries;
    entries.reserve(p.adj_row.size());
    for (std::size_t i = 0; i < p.adj_row.size(); ++i) {
      entries.push_back({p.adj_row[i], p.adj_col[i], p.adj_val[i]});
    }
    shard.sub_adj = std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(
        p.owned.size(), p.closure.size(), std::move(entries)));
    Rng rng(0x5eed + p.shard_index);
    shard.rectifier = std::make_unique<Rectifier>(
        vault_.rectifier->config(), vault_.backbone().layer_dims(), shard.sub_adj,
        rng);
    shard.rectifier->deserialize_weights(p.rectifier_weights);
    shard.bb_rows.assign(vault_.backbone().layer_dims().size(), Matrix());

    auto& mem = shard.enclave->memory();
    mem.set("rectifier.weights", shard.rectifier->parameter_bytes());
    mem.set("shard.adj.coo", p.adj_row.size() * (2 * sizeof(std::uint32_t) +
                                                 sizeof(float)));
    mem.set("shard.adj.csr", shard.sub_adj->payload_bytes());
    mem.set("shard.routing", p.owned.size() * sizeof(std::uint32_t) +
                                 p.closure.size() * sizeof(std::uint32_t));
  });
}

void ShardedVaultDeployment::adopt_shard(std::uint32_t shard,
                                         std::unique_ptr<Enclave>& enclave,
                                         ShardPayload& payload, SealedBlob& sealed,
                                         const Sha256Digest& platform_key) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  GV_CHECK(enclave != nullptr && enclave->initialized(),
           "adoption requires a live, initialized enclave");
  GV_CHECK(payload.shard_index == shard, "payload belongs to a different shard");
  std::lock_guard<std::mutex> lock(*infer_mu_);  // exclude a concurrent refresh
  Shard& sh = *shards_[shard];
  GV_CHECK(!sh.alive.load(), "only a dead shard can adopt a promoted replica");
  GV_CHECK(enclave->measurement() == sh.enclave->measurement(),
           "promoted enclave runs different code than the shard it replaces");
  // Every precondition — including neighbor liveness — is checked before
  // anything is mutated or moved from, so a rejected adoption leaves both
  // the deployment and the caller's standby slot untouched.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard || channel(shard, t) == nullptr) continue;
    GV_CHECK(shards_[t]->alive.load(),
             "halo neighbor died before the promotion handshake");
  }
  // Rejoin handshake with every surviving halo neighbor BEFORE the dead
  // enclave is torn down: the channel objects stay in place (send/recv sides
  // address them by shard pair), only the dead endpoint and the session key
  // are replaced; blocks queued under the retired key are dropped.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard) continue;
    AttestedChannel* ch = channel(shard, t);
    if (ch == nullptr) continue;
    ch->rebind(*sh.enclave, *enclave, platform_key);
  }
  // Retire (never destroy) the dead enclave: a lookup that raced the kill
  // may still be draining inside its entry mutex; the object must outlive
  // it.  Every new lookup has seen alive=false (and the router's PROMOTING
  // fence) since well before promotion reached this point.
  retired_enclaves_.push_back(std::move(sh.enclave));
  sh.enclave = std::move(enclave);
  sh.stream = std::make_unique<OneWayChannel>(*sh.enclave);
  sh.payload = std::move(payload);
  sh.sealed = std::move(sealed);  // the blob re-sealed under the standby key
  sh.labels.clear();              // empty until the next refresh materializes
  sh.rectifier.reset();
  sh.sub_adj.reset();
  opts_.platform_keys[shard] = platform_key;
  install_payload(sh);
  sh.alive.store(true);
}

AttestedChannel* ShardedVaultDeployment::channel(std::uint32_t s, std::uint32_t t) {
  GV_CHECK(s != t && s < plan_.num_shards && t < plan_.num_shards,
           "bad shard pair");
  if (s > t) std::swap(s, t);
  return channels_[static_cast<std::size_t>(s) * plan_.num_shards + t].get();
}

double ShardedVaultDeployment::meter_seconds(const Shard& s) const {
  return s.enclave->meter_snapshot().total_seconds(opts_.cost_model);
}

template <typename F>
void ShardedVaultDeployment::parallel_phase(F&& body) {
  // Shards are independent enclaves (typically on independent platforms);
  // between the layer barriers they run concurrently, so the modeled time
  // of a phase is the SLOWEST shard's meter delta, not the sum.
  std::vector<double> before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) before[s] = meter_seconds(*shards_[s]);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) body(s);
  double slowest = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    slowest = std::max(slowest, meter_seconds(*shards_[s]) - before[s]);
  }
  parallel_seconds_.fetch_add(slowest);
}

void ShardedVaultDeployment::stream_backbone_rows(const std::vector<Matrix>& outputs) {
  const std::size_t n = plan_.owner.size();
  parallel_phase([&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    for (const std::size_t idx : required_layers_) {
      GV_CHECK(idx < outputs.size() && !outputs[idx].empty(),
               "required backbone output missing");
      const Matrix& full = outputs[idx];
      GV_CHECK(full.rows() == n, "backbone output covers a different node count");
      const std::size_t dim = full.cols();
      sh.enclave->ecall([&] {
        sh.bb_rows[idx] = Matrix(sh.payload.closure.size(), dim);
      });
      // The untrusted side pushes the FULL matrix in fixed-size chunks —
      // the same stream for every shard, so the access pattern carries no
      // information about shard neighbourhoods; the enclave keeps only its
      // closure rows and drops the rest.
      for (std::size_t r0 = 0; r0 < n; r0 += ShardPlanner::kStreamChunkRows) {
        const std::size_t rows = std::min(ShardPlanner::kStreamChunkRows, n - r0);
        Matrix chunk(rows, dim);
        std::memcpy(chunk.data(), full.data() + r0 * dim,
                    rows * dim * sizeof(float));
        sh.stream->sender().push(chunk);
        sh.enclave->ecall([&] {
          const Matrix block = sh.stream->receiver().pop();
          const auto& closure = sh.payload.closure;
          auto it = std::lower_bound(closure.begin(), closure.end(),
                                     static_cast<std::uint32_t>(r0));
          for (; it != closure.end() && *it < r0 + rows; ++it) {
            const std::size_t local = static_cast<std::size_t>(it - closure.begin());
            std::memcpy(sh.bb_rows[idx].data() + local * dim,
                        block.data() + (*it - r0) * dim, dim * sizeof(float));
          }
        });
      }
      sh.enclave->memory().set("bb.rows." + std::to_string(idx),
                               sh.bb_rows[idx].payload_bytes());
    }
  });
}

void ShardedVaultDeployment::refresh(const CsrMatrix& features) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  for (const auto& sh : shards_) {
    GV_CHECK(sh->alive, "refresh requires every shard enclave alive");
  }
  GV_CHECK(features.rows() == plan_.owner.size(),
           "features cover a different node count");

  Stopwatch bb_watch;
  const auto outputs = vault_.backbone_outputs(features);
  untrusted_seconds_.fetch_add(bb_watch.seconds());

  stream_backbone_rows(outputs);

  const auto& cfg = vault_.rectifier->config();
  const std::size_t L = cfg.channels.size();
  const auto dims = vault_.backbone().layer_dims();
  const std::size_t penult = dims.size() >= 2 ? dims.size() - 2 : 0;

  for (std::size_t k = 0; k < L; ++k) {
    const bool last = (k + 1 == L);
    // --- Compute: every shard advances its owned rows one layer. ---------
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        Matrix input;
        switch (cfg.kind) {
          case RectifierKind::kParallel:
            input = k == 0 ? sh.bb_rows[0]
                           : Matrix::hconcat(sh.bb_rows[k], sh.h_closure);
            break;
          case RectifierKind::kCascaded:
            if (k == 0) {
              std::vector<const Matrix*> blocks;
              blocks.reserve(dims.size());
              for (std::size_t i = 0; i < dims.size(); ++i) {
                blocks.push_back(&sh.bb_rows[i]);
              }
              input = Matrix::hconcat(
                  std::span<const Matrix* const>(blocks.data(), blocks.size()));
            } else {
              input = std::move(sh.h_closure);
            }
            break;
          case RectifierKind::kSeries:
            input = k == 0 ? sh.bb_rows[penult] : std::move(sh.h_closure);
            break;
        }
        Matrix z = sh.rectifier->layer(k).forward_subgraph(*sh.sub_adj, input);
        sh.h_owned = last ? std::move(z) : relu(z);
        sh.enclave->memory().set("rect.act." + std::to_string(k),
                                 sh.h_owned.payload_bytes());
        if (last) {
          // Label-only store: argmax inside the enclave; logits never leave.
          sh.labels = argmax_rows(sh.h_owned);
          sh.enclave->memory().set("labels.store",
                                   sh.labels.size() * sizeof(std::uint32_t));
        }
      });
    });
    if (last) break;

    // --- Halo exchange: boundary embeddings cross attested channels. ------
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          const auto& out_nodes = sh.payload.halo_out[t];
          if (out_nodes.empty()) continue;
          std::vector<std::uint32_t> positions;
          positions.reserve(out_nodes.size());
          for (const auto v : out_nodes) {
            positions.push_back(
                position_of(sh.payload.owned, v, "halo node not owned"));
          }
          channel(s, t)->send_embeddings(*sh.enclave, out_nodes,
                                         sh.h_owned.gather_rows(positions));
        }
      });
    });
    // --- Assemble the next layer's closure input (own + received rows). ---
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        const auto& closure = sh.payload.closure;
        const std::size_t ch_cols = sh.h_owned.cols();
        sh.h_closure = Matrix(closure.size(), ch_cols);
        std::size_t filled = 0;
        for (std::size_t i = 0; i < sh.payload.owned.size(); ++i) {
          const std::uint32_t local =
              position_of(closure, sh.payload.owned[i], "owned not in closure");
          std::memcpy(sh.h_closure.data() + local * ch_cols,
                      sh.h_owned.data() + i * ch_cols, ch_cols * sizeof(float));
          ++filled;
        }
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          if (t == s) continue;
          AttestedChannel* ch = t > s ? channels_[std::size_t(s) * plan_.num_shards + t].get()
                                      : channels_[std::size_t(t) * plan_.num_shards + s].get();
          if (ch == nullptr) continue;
          while (ch->has_embeddings(*sh.enclave)) {
            const auto block = ch->recv_embeddings(*sh.enclave);
            GV_CHECK(block.rows.cols() == ch_cols, "halo embedding dim mismatch");
            for (std::size_t i = 0; i < block.nodes.size(); ++i) {
              const std::uint32_t local = position_of(
                  closure, block.nodes[i], "halo node outside closure");
              std::memcpy(sh.h_closure.data() + local * ch_cols,
                          block.rows.data() + i * ch_cols,
                          ch_cols * sizeof(float));
              ++filled;
            }
          }
        }
        GV_CHECK(filled == closure.size(), "halo exchange left closure rows unfilled");
        sh.enclave->memory().set("halo.h_closure", sh.h_closure.payload_bytes());
      });
    });
  }

  // Release the forward pass's transient state: labels are materialized, so
  // steady-state shard residency is weights + adjacency + label store and
  // lookup ecalls never feel EPC pressure (the refresh peak is what the
  // planner budgeted for).
  parallel_phase([&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    sh.enclave->ecall([&] {
      auto& mem = sh.enclave->memory();
      for (const std::size_t idx : required_layers_) {
        sh.bb_rows[idx] = Matrix();
        mem.free("bb.rows." + std::to_string(idx));
      }
      sh.h_owned = Matrix();
      sh.h_closure = Matrix();
      for (std::size_t k = 0; k < L; ++k) mem.free("rect.act." + std::to_string(k));
      if (L > 1) mem.free("halo.h_closure");
    });
  });
  refreshed_ = true;
  epoch_.fetch_add(1);
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels(
    const CsrMatrix& features) {
  refresh(features);
  std::vector<std::uint32_t> out(plan_.owner.size());
  double slowest = 0.0;
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    double delta = 0.0;
    const auto labels = lookup(s, shards_[s]->payload.owned, &delta);
    slowest = std::max(slowest, delta);
    const auto& owned = shards_[s]->payload.owned;
    for (std::size_t i = 0; i < owned.size(); ++i) out[owned[i]] = labels[i];
  }
  parallel_seconds_.fetch_add(slowest);
  return out;
}

std::vector<std::uint32_t> ShardedVaultDeployment::lookup(
    std::uint32_t shard, std::span<const std::uint32_t> nodes,
    double* modeled_delta) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "lookup before the first refresh");
  const double before = meter_seconds(sh);
  auto labels = sh.enclave->ecall([&] {
    // An adopted (promoted) shard has no label store until the next refresh
    // re-materializes it; the router's promotion fence keeps queries away,
    // and this check keeps the invariant even for direct callers.
    GV_CHECK(!sh.labels.empty() || sh.payload.owned.empty(),
             "shard label store not materialized (promotion in progress?)");
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (const auto v : nodes) {
      out.push_back(
          sh.labels[position_of(sh.payload.owned, v, "node not owned by shard")]);
    }
    return out;
  });
  if (modeled_delta != nullptr) *modeled_delta = meter_seconds(sh) - before;
  return labels;
}

std::uint32_t ShardedVaultDeployment::owner(std::uint32_t node) const {
  GV_CHECK(node < plan_.owner.size(), "node out of range");
  return plan_.owner[node];
}

void ShardedVaultDeployment::kill_shard(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  shards_[shard]->alive = false;
}

bool ShardedVaultDeployment::shard_alive(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->alive;
}

Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Sha256Digest& ShardedVaultDeployment::shard_platform_key(
    std::uint32_t shard) const {
  GV_CHECK(shard < opts_.platform_keys.size(), "shard index out of range");
  return opts_.platform_keys[shard];
}

const SealedBlob& ShardedVaultDeployment::sealed_payload(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->sealed;
}

std::unique_ptr<Enclave> ShardedVaultDeployment::make_peer_enclave(
    std::uint32_t shard, const Sha256Digest& platform_key) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  // Peer enclaves repeat the exact build recipe (same name, same extends):
  // identical measurement is what lets the attested channel handshake and
  // what scopes sealing to {code identity} x {platform key}.
  auto peer = std::make_unique<Enclave>(opts_.enclave_name, opts_.cost_model,
                                        platform_key);
  peer->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  peer->extend_measurement(shards_[shard]->payload.rectifier_weights);
  peer->initialize();
  return peer;
}

void ShardedVaultDeployment::send_payload(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  sh.enclave->ecall(
      [&] { ch.send_package(*sh.enclave, serialize_shard_payload(sh.payload)); });
}

void ShardedVaultDeployment::send_labels(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "no label store to replicate before the first refresh");
  sh.enclave->ecall(
      [&] { ch.send_labels(*sh.enclave, sh.payload.owned, sh.labels); });
}

std::uint64_t ShardedVaultDeployment::halo_embedding_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->embedding_bytes();
  }
  return sum;
}

std::uint64_t ShardedVaultDeployment::halo_label_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->label_bytes();
  }
  return sum;
}

std::uint64_t ShardedVaultDeployment::halo_package_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->package_bytes();
  }
  return sum;
}

double ShardedVaultDeployment::modeled_seconds() const {
  return untrusted_seconds_.load() + parallel_seconds_.load();
}

CostMeter ShardedVaultDeployment::aggregate_meter() const {
  CostMeter total;
  for (const auto& sh : shards_) {
    const CostMeter m = sh->enclave->meter_snapshot();
    total.ecalls += m.ecalls;
    total.ocalls += m.ocalls;
    total.bytes_in += m.bytes_in;
    total.page_swaps += m.page_swaps;
    total.enclave_compute_seconds += m.enclave_compute_seconds;
    total.untrusted_compute_seconds += m.untrusted_compute_seconds;
  }
  total.untrusted_compute_seconds += untrusted_seconds_.load();
  return total;
}

std::size_t ShardedVaultDeployment::max_shard_peak_bytes() const {
  std::size_t mx = 0;
  for (const auto& sh : shards_) {
    mx = std::max(mx, sh->enclave->memory().peak_bytes());
  }
  return mx;
}

}  // namespace gv
