#include "shard/sharded_deployment.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "tensor/ops.hpp"

namespace gv {

namespace {

constexpr const char* kCodeTagPrefix = "shardvault-rectifier-v1:";

/// Sentinel for cold_forward: no shard's stores are being (re)materialized.
constexpr std::uint32_t kNoRetain = 0xffffffffu;

/// Position of `v` in sorted `ids`; throws when absent.
std::uint32_t position_of(const std::vector<std::uint32_t>& ids, std::uint32_t v,
                          const char* what) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  GV_CHECK(it != ids.end() && *it == v, what);
  return static_cast<std::uint32_t>(it - ids.begin());
}

}  // namespace

ShardedVaultDeployment::ShardedVaultDeployment(const Dataset& ds, TrainedVault vault,
                                               ShardPlan plan,
                                               ShardedDeploymentOptions opts)
    : vault_(std::move(vault)), plan_(std::move(plan)), opts_(std::move(opts)) {
  GV_CHECK(vault_.rectifier != nullptr, "deployment requires a trained rectifier");
  GV_CHECK(plan_.num_shards >= 1 && plan_.shards.size() == plan_.num_shards,
           "malformed shard plan");
  GV_CHECK(plan_.owner.size() == ds.num_nodes(), "plan covers a different graph");
  if (opts_.enclave_name.empty()) opts_.enclave_name = "shardvault." + ds.name;
  if (opts_.platform_keys.empty()) {
    opts_.platform_keys.assign(plan_.num_shards, Enclave::default_platform_key());
  }
  GV_CHECK(opts_.platform_keys.size() == plan_.num_shards,
           "need one platform key per shard");
  required_layers_ = vault_.rectifier->required_backbone_layers();

  auto payloads = ShardPlanner::build_payloads(ds, vault_, plan_);
  shards_.reserve(plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    provision_shard(*shards_[s], std::move(payloads[s]));
  }

  // Attested channels for shard pairs with halo overlap (in either
  // direction); the handshake runs now, at provisioning time.
  channels_.resize(static_cast<std::size_t>(plan_.num_shards) * plan_.num_shards);
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    for (std::uint32_t t = s + 1; t < plan_.num_shards; ++t) {
      const bool overlap = !shards_[s]->payload.halo_out[t].empty() ||
                           !shards_[t]->payload.halo_out[s].empty();
      if (!overlap) continue;
      channels_[static_cast<std::size_t>(s) * plan_.num_shards + t] =
          std::make_unique<AttestedChannel>(*shards_[s]->enclave,
                                            *shards_[t]->enclave,
                                            opts_.platform_keys[s],
                                            opts_.platform_keys[t]);
    }
  }
}

void ShardedVaultDeployment::provision_shard(Shard& shard, ShardPayload payload) {
  // IDENTICAL measurement across shards (and replicas): name + code tag +
  // replicated weights.  The per-shard package is NOT measured — it is what
  // gets sealed — so every enclave of this tenant attests as the same code
  // image, which is what the channel handshake requires.
  shard.enclave = std::make_unique<Enclave>(
      opts_.enclave_name, opts_.cost_model, opts_.platform_keys[payload.shard_index]);
  shard.enclave->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  shard.enclave->extend_measurement(payload.rectifier_weights);
  shard.enclave->initialize();
  shard.stream = std::make_unique<OneWayChannel>(*shard.enclave);

  const auto bytes = serialize_shard_payload(payload);
  if (opts_.seal_artifacts) {
    shard.sealed = shard.enclave->seal(bytes);
    // Round-trip through sealed storage, as every enclave launch would.
    shard.payload = deserialize_shard_payload(shard.enclave->unseal(shard.sealed));
  } else {
    shard.payload = std::move(payload);
  }

  install_payload(shard);
}

void ShardedVaultDeployment::install_payload(Shard& shard) {
  shard.enclave->ecall([&] {
    const ShardPayload& p = shard.payload;
    std::vector<CooEntry> entries;
    entries.reserve(p.adj_row.size());
    for (std::size_t i = 0; i < p.adj_row.size(); ++i) {
      entries.push_back({p.adj_row[i], p.adj_col[i], p.adj_val[i]});
    }
    shard.sub_adj = std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(
        p.owned.size(), p.closure.size(), std::move(entries)));
    Rng rng(0x5eed + p.shard_index);
    shard.rectifier = std::make_unique<Rectifier>(
        vault_.rectifier->config(), vault_.backbone().layer_dims(), shard.sub_adj,
        rng);
    shard.rectifier->deserialize_weights(p.rectifier_weights);
    shard.bb_rows.assign(vault_.backbone().layer_dims().size(), Matrix());

    // Boundary rows (owned-local, sorted): the union of every peer's halo
    // list — the only rows whose activations a cold cross-shard pull can
    // ever ask this shard for.
    shard.boundary_rows.clear();
    for (const auto& out_nodes : p.halo_out) {
      for (const auto v : out_nodes) {
        shard.boundary_rows.push_back(
            position_of(p.owned, v, "halo node not owned"));
      }
    }
    std::sort(shard.boundary_rows.begin(), shard.boundary_rows.end());
    shard.boundary_rows.erase(
        std::unique(shard.boundary_rows.begin(), shard.boundary_rows.end()),
        shard.boundary_rows.end());
    const std::size_t L = vault_.rectifier->config().channels.size();
    shard.retained.assign(L >= 1 ? L - 1 : 0, Matrix());

    auto& mem = shard.enclave->memory();
    mem.set("rectifier.weights", shard.rectifier->parameter_bytes());
    mem.set("shard.adj.coo", p.adj_row.size() * (2 * sizeof(std::uint32_t) +
                                                 sizeof(float)));
    mem.set("shard.adj.csr", shard.sub_adj->payload_bytes());
    mem.set("shard.routing", p.owned.size() * sizeof(std::uint32_t) +
                                 p.closure.size() * sizeof(std::uint32_t));
  });
}

void ShardedVaultDeployment::adopt_shard(std::uint32_t shard,
                                         std::unique_ptr<Enclave>& enclave,
                                         ShardPayload& payload, SealedBlob& sealed,
                                         const Sha256Digest& platform_key) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  GV_CHECK(enclave != nullptr && enclave->initialized(),
           "adoption requires a live, initialized enclave");
  GV_CHECK(payload.shard_index == shard, "payload belongs to a different shard");
  std::lock_guard<std::mutex> lock(*infer_mu_);  // exclude a concurrent refresh
  Shard& sh = *shards_[shard];
  GV_CHECK(!sh.alive.load(), "only a dead shard can adopt a promoted replica");
  GV_CHECK(enclave->measurement() == sh.enclave->measurement(),
           "promoted enclave runs different code than the shard it replaces");
  // Every precondition — including neighbor liveness — is checked before
  // anything is mutated or moved from, so a rejected adoption leaves both
  // the deployment and the caller's standby slot untouched.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard || channel(shard, t) == nullptr) continue;
    GV_CHECK(shards_[t]->alive.load(),
             "halo neighbor died before the promotion handshake");
  }
  // Rejoin handshake with every surviving halo neighbor BEFORE the dead
  // enclave is torn down: the channel objects stay in place (send/recv sides
  // address them by shard pair), only the dead endpoint and the session key
  // are replaced; blocks queued under the retired key are dropped.
  for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
    if (t == shard) continue;
    AttestedChannel* ch = channel(shard, t);
    if (ch == nullptr) continue;
    ch->rebind(*sh.enclave, *enclave, platform_key);
  }
  // Retire (never destroy) the dead enclave: a lookup that raced the kill
  // may still be draining inside its entry mutex; the object must outlive
  // it.  Every new lookup has seen alive=false (and the router's PROMOTING
  // fence) since well before promotion reached this point.
  retired_enclaves_.push_back(std::move(sh.enclave));
  sh.enclave = std::move(enclave);
  sh.stream = std::make_unique<OneWayChannel>(*sh.enclave);
  sh.payload = std::move(payload);
  sh.sealed = std::move(sealed);  // the blob re-sealed under the standby key
  sh.labels.clear();              // empty until re-materialized
  sh.store_ready.store(false);
  sh.retained_valid.store(false);  // the fresh enclave has no activations
  sh.rectifier.reset();
  sh.sub_adj.reset();
  opts_.platform_keys[shard] = platform_key;
  install_payload(sh);
  sh.alive.store(true);
}

AttestedChannel* ShardedVaultDeployment::channel(std::uint32_t s, std::uint32_t t) {
  GV_CHECK(s != t && s < plan_.num_shards && t < plan_.num_shards,
           "bad shard pair");
  if (s > t) std::swap(s, t);
  return channels_[static_cast<std::size_t>(s) * plan_.num_shards + t].get();
}

double ShardedVaultDeployment::meter_seconds(const Shard& s) const {
  return s.enclave->meter_snapshot().total_seconds(opts_.cost_model);
}

template <typename F>
void ShardedVaultDeployment::parallel_phase(F&& body) {
  // Shards are independent enclaves (typically on independent platforms);
  // between the layer barriers they run concurrently, so the modeled time
  // of a phase is the SLOWEST shard's meter delta, not the sum.
  std::vector<double> before(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) before[s] = meter_seconds(*shards_[s]);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) body(s);
  double slowest = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    slowest = std::max(slowest, meter_seconds(*shards_[s]) - before[s]);
  }
  parallel_seconds_.fetch_add(slowest);
}

template <typename Scatter>
void ShardedVaultDeployment::stream_full_matrix(Shard& sh, const Matrix& full,
                                                Scatter&& scatter) {
  const std::size_t n = full.rows();
  const std::size_t dim = full.cols();
  // The untrusted side pushes the FULL matrix in fixed-size chunks — the
  // same stream regardless of which rows are wanted, so the access pattern
  // carries no information about shard neighbourhoods or query frontiers;
  // the enclave-side `scatter` keeps only the rows it needs.
  for (std::size_t r0 = 0; r0 < n; r0 += ShardPlanner::kStreamChunkRows) {
    const std::size_t rows = std::min(ShardPlanner::kStreamChunkRows, n - r0);
    Matrix chunk(rows, dim);
    std::memcpy(chunk.data(), full.data() + r0 * dim, rows * dim * sizeof(float));
    sh.stream->sender().push(chunk);
    sh.enclave->ecall([&] {
      const Matrix block = sh.stream->receiver().pop();
      scatter(block, r0);
    });
  }
}

void ShardedVaultDeployment::stream_backbone_rows(const std::vector<Matrix>& outputs) {
  const std::size_t n = plan_.owner.size();
  parallel_phase([&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    for (const std::size_t idx : required_layers_) {
      GV_CHECK(idx < outputs.size() && !outputs[idx].empty(),
               "required backbone output missing");
      const Matrix& full = outputs[idx];
      GV_CHECK(full.rows() == n, "backbone output covers a different node count");
      const std::size_t dim = full.cols();
      sh.enclave->ecall([&] {
        sh.bb_rows[idx] = Matrix(sh.payload.closure.size(), dim);
      });
      stream_full_matrix(sh, full, [&](const Matrix& block, std::size_t r0) {
        const auto& closure = sh.payload.closure;
        auto it = std::lower_bound(closure.begin(), closure.end(),
                                   static_cast<std::uint32_t>(r0));
        for (; it != closure.end() && *it < r0 + block.rows(); ++it) {
          const std::size_t local = static_cast<std::size_t>(it - closure.begin());
          std::memcpy(sh.bb_rows[idx].data() + local * dim,
                      block.data() + (*it - r0) * dim, dim * sizeof(float));
        }
      });
      sh.enclave->memory().set("bb.rows." + std::to_string(idx),
                               sh.bb_rows[idx].payload_bytes());
    }
  });
}

void ShardedVaultDeployment::refresh(const CsrMatrix& features) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  for (const auto& sh : shards_) {
    GV_CHECK(sh->alive, "refresh requires every shard enclave alive");
  }
  GV_CHECK(features.rows() == plan_.owner.size(),
           "features cover a different node count");

  // Whatever happens below, the previously retained boundary activations no
  // longer match the stores a completed refresh would leave behind.
  for (const auto& sh : shards_) sh->retained_valid.store(false);

  const std::uint64_t fingerprint = features_fingerprint(features);
  bool bb_cache_hit = false;
  const auto& outputs = backbone_for(features, fingerprint, &bb_cache_hit);

  stream_backbone_rows(outputs);

  const auto& cfg = vault_.rectifier->config();
  const std::size_t L = cfg.channels.size();
  const auto dims = vault_.backbone().layer_dims();
  const std::size_t penult = dims.size() >= 2 ? dims.size() - 2 : 0;

  for (std::size_t k = 0; k < L; ++k) {
    const bool last = (k + 1 == L);
    // --- Compute: every shard advances its owned rows one layer. ---------
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        Matrix input;
        switch (cfg.kind) {
          case RectifierKind::kParallel:
            input = k == 0 ? sh.bb_rows[0]
                           : Matrix::hconcat(sh.bb_rows[k], sh.h_closure);
            break;
          case RectifierKind::kCascaded:
            if (k == 0) {
              std::vector<const Matrix*> blocks;
              blocks.reserve(dims.size());
              for (std::size_t i = 0; i < dims.size(); ++i) {
                blocks.push_back(&sh.bb_rows[i]);
              }
              input = Matrix::hconcat(
                  std::span<const Matrix* const>(blocks.data(), blocks.size()));
            } else {
              input = std::move(sh.h_closure);
            }
            break;
          case RectifierKind::kSeries:
            input = k == 0 ? sh.bb_rows[penult] : std::move(sh.h_closure);
            break;
        }
        Matrix z = sh.rectifier->layer(k).forward_subgraph(*sh.sub_adj, input);
        sh.h_owned = last ? std::move(z) : relu(z);
        sh.enclave->memory().set("rect.act." + std::to_string(k),
                                 sh.h_owned.payload_bytes());
        if (last) {
          // Label-only store: argmax inside the enclave; logits never leave.
          sh.labels = argmax_rows(sh.h_owned);
          sh.enclave->memory().set("labels.store",
                                   sh.labels.size() * sizeof(std::uint32_t));
        } else {
          // Retain the boundary rows' activations: they answer cold
          // cross-shard halo pulls (and incremental promotion
          // re-materialization) without recomputing this layer.
          sh.retained[k] = sh.h_owned.gather_rows(sh.boundary_rows);
        }
      });
    });
    if (last) break;

    // --- Halo exchange: boundary embeddings cross attested channels. ------
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          const auto& out_nodes = sh.payload.halo_out[t];
          if (out_nodes.empty()) continue;
          std::vector<std::uint32_t> positions;
          positions.reserve(out_nodes.size());
          for (const auto v : out_nodes) {
            positions.push_back(
                position_of(sh.payload.owned, v, "halo node not owned"));
          }
          channel(s, t)->send_embeddings(*sh.enclave, out_nodes,
                                         sh.h_owned.gather_rows(positions));
        }
      });
    });
    // --- Assemble the next layer's closure input (own + received rows). ---
    parallel_phase([&](std::uint32_t s) {
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        const auto& closure = sh.payload.closure;
        const std::size_t ch_cols = sh.h_owned.cols();
        sh.h_closure = Matrix(closure.size(), ch_cols);
        std::size_t filled = 0;
        for (std::size_t i = 0; i < sh.payload.owned.size(); ++i) {
          const std::uint32_t local =
              position_of(closure, sh.payload.owned[i], "owned not in closure");
          std::memcpy(sh.h_closure.data() + local * ch_cols,
                      sh.h_owned.data() + i * ch_cols, ch_cols * sizeof(float));
          ++filled;
        }
        for (std::uint32_t t = 0; t < plan_.num_shards; ++t) {
          if (t == s) continue;
          AttestedChannel* ch = t > s ? channels_[std::size_t(s) * plan_.num_shards + t].get()
                                      : channels_[std::size_t(t) * plan_.num_shards + s].get();
          if (ch == nullptr) continue;
          while (ch->has_embeddings(*sh.enclave)) {
            const auto block = ch->recv_embeddings(*sh.enclave);
            GV_CHECK(block.rows.cols() == ch_cols, "halo embedding dim mismatch");
            for (std::size_t i = 0; i < block.nodes.size(); ++i) {
              const std::uint32_t local = position_of(
                  closure, block.nodes[i], "halo node outside closure");
              std::memcpy(sh.h_closure.data() + local * ch_cols,
                          block.rows.data() + i * ch_cols,
                          ch_cols * sizeof(float));
              ++filled;
            }
          }
        }
        GV_CHECK(filled == closure.size(), "halo exchange left closure rows unfilled");
        sh.enclave->memory().set("halo.h_closure", sh.h_closure.payload_bytes());
      });
    });
  }

  // Release the forward pass's transient state: labels are materialized, so
  // steady-state shard residency is weights + adjacency + label store and
  // lookup ecalls never feel EPC pressure (the refresh peak is what the
  // planner budgeted for).
  parallel_phase([&](std::uint32_t s) {
    Shard& sh = *shards_[s];
    sh.enclave->ecall([&] {
      auto& mem = sh.enclave->memory();
      for (const std::size_t idx : required_layers_) {
        sh.bb_rows[idx] = Matrix();
        mem.free("bb.rows." + std::to_string(idx));
      }
      sh.h_owned = Matrix();
      sh.h_closure = Matrix();
      for (std::size_t k = 0; k < L; ++k) mem.free("rect.act." + std::to_string(k));
      if (L > 1) mem.free("halo.h_closure");
      std::size_t retained_bytes = 0;
      for (const auto& m : sh.retained) retained_bytes += m.payload_bytes();
      mem.set("halo.retained", retained_bytes);
    });
  });
  for (const auto& sh : shards_) {
    sh->store_ready.store(true);
    sh->retained_valid.store(true);
  }
  store_fingerprint_ = fingerprint;
  have_store_fingerprint_ = true;
  refreshed_ = true;
  epoch_.fetch_add(1);
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels(
    const CsrMatrix& features) {
  refresh(features);
  std::vector<std::uint32_t> out(plan_.owner.size());
  double slowest = 0.0;
  for (std::uint32_t s = 0; s < plan_.num_shards; ++s) {
    double delta = 0.0;
    const auto labels = lookup(s, shards_[s]->payload.owned, &delta);
    slowest = std::max(slowest, delta);
    const auto& owned = shards_[s]->payload.owned;
    for (std::size_t i = 0; i < owned.size(); ++i) out[owned[i]] = labels[i];
  }
  parallel_seconds_.fetch_add(slowest);
  return out;
}

std::vector<std::uint32_t> ShardedVaultDeployment::lookup(
    std::uint32_t shard, std::span<const std::uint32_t> nodes,
    double* modeled_delta) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "lookup before the first refresh");
  const double before = meter_seconds(sh);
  auto labels = sh.enclave->ecall([&] {
    // An adopted (promoted) shard has no label store until the next refresh
    // re-materializes it; the router's promotion fence keeps queries away,
    // and this check keeps the invariant even for direct callers.
    GV_CHECK(!sh.labels.empty() || sh.payload.owned.empty(),
             "shard label store not materialized (promotion in progress?)");
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (const auto v : nodes) {
      out.push_back(
          sh.labels[position_of(sh.payload.owned, v, "node not owned by shard")]);
    }
    return out;
  });
  if (modeled_delta != nullptr) *modeled_delta = meter_seconds(sh) - before;
  return labels;
}

std::uint64_t ShardedVaultDeployment::features_fingerprint(
    const CsrMatrix& features) {
  // Word-folded FNV-style content hash: cheap enough to run per cold query
  // (a SHA-256 over the matrix would rival the forward it is meant to
  // spare), collision-safe enough for its job — keying caches over public,
  // non-adversarial inputs.
  auto fold = [](std::uint64_t h, const void* p, std::size_t nbytes) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    std::size_t i = 0;
    for (; i + 8 <= nbytes; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, bytes + i, 8);
      h = (h ^ w) * 0x100000001b3ull;
      h ^= h >> 29;
    }
    if (i < nbytes) {
      std::uint64_t w = 0;
      std::memcpy(&w, bytes + i, nbytes - i);
      h = (h ^ w) * 0x100000001b3ull;
      h ^= h >> 29;
    }
    return h;
  };
  const auto& rp = features.row_ptr();
  const auto& ci = features.col_idx();
  const auto& va = features.values();
  std::uint64_t h = 0xcbf29ce484222325ull ^ (features.rows() * 0x9e3779b97f4a7c15ull);
  h = fold(h, rp.data(), rp.size() * sizeof(rp[0]));
  h = fold(h, ci.data(), ci.size() * sizeof(ci[0]));
  h = fold(h, va.data(), va.size() * sizeof(va[0]));
  return h;
}

const std::vector<Matrix>& ShardedVaultDeployment::backbone_for(
    const CsrMatrix& features, std::uint64_t fingerprint, bool* cache_hit) {
  // The backbone runs (and its outputs live) entirely in the untrusted
  // world — they are public embeddings, so caching them across refreshes
  // and cold queries of one snapshot leaks nothing and spares the repeat
  // forward that would otherwise dominate a shard-local re-materialization.
  if (have_bb_cache_ && fingerprint == bb_fingerprint_) {
    if (cache_hit != nullptr) *cache_hit = true;
    return bb_cache_;
  }
  Stopwatch bb_watch;
  bb_cache_ = vault_.backbone_outputs(features);
  untrusted_seconds_.fetch_add(bb_watch.seconds());
  bb_fingerprint_ = fingerprint;
  have_bb_cache_ = true;
  if (cache_hit != nullptr) *cache_hit = false;
  return bb_cache_;
}

bool ShardedVaultDeployment::store_materialized(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  const Shard& sh = *shards_[shard];
  return sh.alive.load() && sh.store_ready.load();
}

void ShardedVaultDeployment::install_labels(std::uint32_t shard,
                                            std::vector<std::uint32_t> labels) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive.load(), "cannot install labels into a dead shard");
  sh.enclave->ecall([&] {
    GV_CHECK(labels.size() == sh.payload.owned.size(),
             "label store does not cover the shard's nodes");
    sh.labels = std::move(labels);
    sh.enclave->memory().set("labels.store",
                             sh.labels.size() * sizeof(std::uint32_t));
  });
  sh.store_ready.store(true);
}

void ShardedVaultDeployment::drop_backbone_cache() {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  bb_cache_.clear();
  have_bb_cache_ = false;
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels_subset_cold(
    const CsrMatrix& features, std::span<const std::uint32_t> nodes,
    ColdSubsetStats* stats) {
  return infer_labels_subset_cold(features, features_fingerprint(features),
                                  nodes, stats);
}

std::vector<std::uint32_t> ShardedVaultDeployment::infer_labels_subset_cold(
    const CsrMatrix& features, std::uint64_t fingerprint,
    std::span<const std::uint32_t> nodes, ColdSubsetStats* stats) {
  std::lock_guard<std::mutex> lock(*infer_mu_);
  ColdSubsetStats local;
  return cold_forward(features, fingerprint, nodes,
                      stats != nullptr ? stats : &local, kNoRetain);
}

void ShardedVaultDeployment::rematerialize_shard(std::uint32_t shard,
                                                 const CsrMatrix& features) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  std::lock_guard<std::mutex> lock(*infer_mu_);
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive.load(), "cannot re-materialize a dead shard");
  GV_CHECK(refreshed_.load(),
           "incremental re-materialization requires a completed refresh");
  const std::uint64_t fingerprint = features_fingerprint(features);
  GV_CHECK(have_store_fingerprint_ && fingerprint == store_fingerprint_,
           "incremental re-materialization requires the current refresh "
           "snapshot (a feature change must go through refresh())");
  ColdSubsetStats stats;
  cold_forward(features, fingerprint, plan_.shards[shard].nodes, &stats, shard);
  sh.store_ready.store(true);
  sh.retained_valid.store(true);
}

std::vector<std::uint32_t> ShardedVaultDeployment::cold_forward(
    const CsrMatrix& features, std::uint64_t fingerprint,
    std::span<const std::uint32_t> nodes, ColdSubsetStats* stats,
    std::uint32_t retain_shard) {
  const std::size_t n = plan_.owner.size();
  GV_CHECK(features.rows() == n, "features cover a different node count");
  if (nodes.empty()) return {};
  for (const auto v : nodes) GV_CHECK(v < n, "query node out of range");

  const auto& cfg = vault_.rectifier->config();
  const std::size_t L = cfg.channels.size();
  const auto dims = vault_.backbone().layer_dims();
  const std::size_t penult = dims.size() >= 2 ? dims.size() - 2 : 0;
  const std::uint32_t K = plan_.num_shards;

  // Retained boundary stores may serve halo pulls only when they were
  // materialized from THIS feature snapshot.
  const bool stores_fresh = refreshed_.load() && have_store_fingerprint_ &&
                            fingerprint == store_fingerprint_;

  const double parallel_before = parallel_seconds_.load();
  const double untrusted_before = untrusted_seconds_.load();
  std::uint64_t req_bytes_before = 0, emb_bytes_before = 0;
  for (const auto& ch : channels_) {
    if (ch) {
      req_bytes_before += ch->request_bytes();
      emb_bytes_before += ch->embedding_bytes();
    }
  }

  // Query nodes grouped by owner shard (sorted unique — owned[] is sorted,
  // so these align 1:1 with the owned-local out rows of the last layer).
  std::vector<std::vector<std::uint32_t>> qnodes(K);
  for (const auto v : nodes) qnodes[plan_.owner[v]].push_back(v);
  for (auto& q : qnodes) {
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
  }

  // Untrusted-side orchestration state.  The coordinator only ever learns
  // SHARD-level facts (who computes, who serves) — it must, to schedule
  // ecalls and streams — while the node-level frontier stays inside the
  // enclaves and the sealed channel blocks.
  std::vector<char> involved(K, 0);
  std::vector<std::vector<char>> computes(L, std::vector<char>(K, 0));

  auto ensure_cold = [&](std::uint32_t s) {
    if (involved[s]) return;
    Shard& sh = *shards_[s];
    GV_CHECK(sh.alive.load(), "shard enclave is down (cold frontier)");
    sh.enclave->ecall([&] {
      auto& cq = sh.cold;
      cq.out_rows.assign(L, {});
      cq.in_cols.assign(L, {});
      cq.serve_live.assign(L, std::vector<std::vector<std::uint32_t>>(K));
      cq.serve_store.assign(L, std::vector<std::vector<std::uint32_t>>(K));
      cq.bb.assign(dims.size(), Matrix());
      cq.bb_need.assign(dims.size(), {});
      cq.h = Matrix();
      auto& mem = sh.enclave->memory();
      mem.set("cold.bb", 0);
      mem.set("cold.h", 0);
    });
    involved[s] = 1;
  };

  try {
    // --- Frontier walk, last layer first.  Each shard expands ONE hop over
    // its own rectangular sub-adjacency inside its enclave; columns owned by
    // a peer become halo-pull requests over the attested channel, and the
    // peer either answers from its retained boundary store (no expansion —
    // the walk stops at the boundary) or joins the computation.
    for (std::uint32_t s = 0; s < K; ++s) {
      if (qnodes[s].empty()) continue;
      ensure_cold(s);
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        auto& rows = sh.cold.out_rows[L - 1];
        rows.reserve(qnodes[s].size());
        for (const auto v : qnodes[s]) {
          rows.push_back(position_of(sh.payload.owned, v, "query node not owned"));
        }
      });
      computes[L - 1][s] = 1;
    }

    for (std::size_t k = L; k-- > 0;) {
      std::vector<std::vector<std::uint32_t>> requesters(K);  // t -> [s...]
      for (std::uint32_t s = 0; s < K; ++s) {
        if (!computes[k][s]) continue;
        Shard& sh = *shards_[s];
        std::vector<std::uint32_t> peers;
        std::size_t frontier_rows = 0;
        sh.enclave->ecall([&] {
          auto& cq = sh.cold;
          auto& rows = cq.out_rows[k];
          std::sort(rows.begin(), rows.end());
          rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
          frontier_rows = rows.size();
          cq.in_cols[k] = sh.rectifier->frontier_columns(rows);
          std::vector<std::vector<std::uint32_t>> want(K);
          for (const auto c : cq.in_cols[k]) {
            const std::uint32_t g = sh.payload.closure[c];
            const std::uint32_t t = plan_.owner[g];
            if (t == s) {
              if (k > 0) {
                cq.out_rows[k - 1].push_back(
                    position_of(sh.payload.owned, g, "closure col not owned"));
              }
            } else if (k > 0) {
              // Layer 0's halo columns are fed from the public backbone
              // stream, not from a peer; only k > 0 pulls embeddings.
              want[t].push_back(g);
            }
          }
          if (k > 0) {
            for (std::uint32_t t = 0; t < K; ++t) {
              if (want[t].empty()) continue;
              AttestedChannel* ch = channel(s, t);
              GV_CHECK(ch != nullptr, "halo pull without an attested channel");
              ch->send_request(*sh.enclave, std::move(want[t]));
              peers.push_back(t);
            }
          }
        });
        stats->frontier_rows += frontier_rows;
        if (k > 0) computes[k - 1][s] = 1;
        for (const auto t : peers) requesters[t].push_back(s);
      }
      if (k == 0) break;

      for (std::uint32_t t = 0; t < K; ++t) {
        if (requesters[t].empty()) continue;
        ensure_cold(t);
        Shard& sh = *shards_[t];
        const bool from_store = stores_fresh && sh.retained_valid.load();
        bool live = false;
        sh.enclave->ecall([&] {
          auto& cq = sh.cold;
          for (const auto s : requesters[t]) {
            auto want = channel(s, t)->recv_request(*sh.enclave);
            std::vector<std::uint32_t> rows;
            rows.reserve(want.size());
            for (const auto g : want) {
              rows.push_back(
                  position_of(sh.payload.owned, g, "halo pull for unowned node"));
            }
            if (from_store) {
              cq.serve_store[k - 1][s] = std::move(rows);
            } else {
              cq.out_rows[k - 1].insert(cq.out_rows[k - 1].end(), rows.begin(),
                                        rows.end());
              cq.serve_live[k - 1][s] = std::move(rows);
              live = true;
            }
          }
        });
        if (live) computes[k - 1][t] = 1;
      }
    }

    // --- Backbone staging: full-matrix oblivious stream to every COMPUTING
    // shard (the enclave keeps only the rows its frontier needs).  Shards
    // that only serve from retained stores stage nothing.
    bool bb_cache_hit = false;
    const auto& outputs = backbone_for(features, fingerprint, &bb_cache_hit);
    stats->backbone_cache_hit = bb_cache_hit;

    parallel_phase([&](std::uint32_t s) {
      if (!involved[s] || !computes[0][s]) return;
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        auto& cq = sh.cold;
        switch (cfg.kind) {
          case RectifierKind::kParallel:
            for (std::size_t kk = 0; kk < L; ++kk) {
              if (computes[kk][s]) cq.bb_need[kk] = cq.in_cols[kk];
            }
            break;
          case RectifierKind::kCascaded:
            for (const std::size_t idx : required_layers_) {
              cq.bb_need[idx] = cq.in_cols[0];
            }
            break;
          case RectifierKind::kSeries:
            cq.bb_need[penult] = cq.in_cols[0];
            break;
        }
      });
      for (const std::size_t idx : required_layers_) {
        bool needed = false;
        std::size_t need_rows = 0;
        sh.enclave->ecall([&] {
          needed = !sh.cold.bb_need[idx].empty();
          need_rows = sh.cold.bb_need[idx].size();
        });
        if (!needed) continue;
        GV_CHECK(idx < outputs.size() && !outputs[idx].empty(),
                 "required backbone output missing");
        const Matrix& full = outputs[idx];
        GV_CHECK(full.rows() == n, "backbone output covers a different node count");
        const std::size_t dim = full.cols();
        sh.enclave->ecall([&] { sh.cold.bb[idx] = Matrix(need_rows, dim); });
        stream_full_matrix(sh, full, [&](const Matrix& block, std::size_t r0) {
          const auto& closure = sh.payload.closure;
          const auto& need = sh.cold.bb_need[idx];
          auto it = std::lower_bound(
              need.begin(), need.end(), r0,
              [&](std::uint32_t c, std::size_t v) { return closure[c] < v; });
          for (; it != need.end() && closure[*it] < r0 + block.rows(); ++it) {
            const std::size_t local = static_cast<std::size_t>(it - need.begin());
            std::memcpy(sh.cold.bb[idx].data() + local * dim,
                        block.data() + (closure[*it] - r0) * dim,
                        dim * sizeof(float));
          }
        });
      }
      sh.enclave->ecall([&] {
        std::size_t bytes = 0;
        for (const auto& m : sh.cold.bb) bytes += m.payload_bytes();
        sh.enclave->memory().set("cold.bb", bytes);
      });
    });

    // --- Layer-synchronous cold compute.  Before layer k, every provider
    // ships the layer k-1 rows its peers requested (from the retained store
    // or the freshly computed frontier); then the computing shards assemble
    // their inputs, slice their sub-adjacency to the frontier, and advance.
    for (std::size_t k = 0; k < L; ++k) {
      const bool last = (k + 1 == L);
      if (k >= 1) {
        parallel_phase([&](std::uint32_t t) {
          if (!involved[t]) return;
          Shard& sh = *shards_[t];
          sh.enclave->ecall([&] {
            auto& cq = sh.cold;
            for (std::uint32_t s2 = 0; s2 < K; ++s2) {
              const auto& store_rows = cq.serve_store[k - 1][s2];
              if (!store_rows.empty()) {
                std::vector<std::uint32_t> globals, pos;
                globals.reserve(store_rows.size());
                pos.reserve(store_rows.size());
                for (const auto r : store_rows) {
                  globals.push_back(sh.payload.owned[r]);
                  const auto it = std::lower_bound(sh.boundary_rows.begin(),
                                                   sh.boundary_rows.end(), r);
                  GV_CHECK(it != sh.boundary_rows.end() && *it == r,
                           "cold pull for a non-boundary row");
                  pos.push_back(
                      static_cast<std::uint32_t>(it - sh.boundary_rows.begin()));
                }
                channel(t, s2)->send_embeddings(
                    *sh.enclave, std::move(globals),
                    sh.retained[k - 1].gather_rows(pos));
              }
              const auto& live_rows = cq.serve_live[k - 1][s2];
              if (!live_rows.empty()) {
                std::vector<std::uint32_t> globals, pos;
                globals.reserve(live_rows.size());
                pos.reserve(live_rows.size());
                const auto& prev_rows = cq.out_rows[k - 1];
                for (const auto r : live_rows) {
                  globals.push_back(sh.payload.owned[r]);
                  const auto it =
                      std::lower_bound(prev_rows.begin(), prev_rows.end(), r);
                  GV_CHECK(it != prev_rows.end() && *it == r,
                           "live halo row missing from the computed frontier");
                  pos.push_back(static_cast<std::uint32_t>(it - prev_rows.begin()));
                }
                channel(t, s2)->send_embeddings(*sh.enclave, std::move(globals),
                                                cq.h.gather_rows(pos));
              }
            }
          });
        });
      }

      parallel_phase([&](std::uint32_t s) {
        if (!computes[k][s]) return;
        Shard& sh = *shards_[s];
        sh.enclave->ecall([&] {
          auto& cq = sh.cold;
          const auto& in_cols = cq.in_cols[k];

          // Previous-layer rows of the input frontier: own rows from the
          // local frontier, halo rows drained from the attested channels.
          auto assemble_prev = [&]() -> Matrix {
            const std::size_t chp = cfg.channels[k - 1];
            Matrix prev(in_cols.size(), chp);
            std::size_t filled = 0;
            const auto& prev_rows = cq.out_rows[k - 1];
            for (std::size_t i = 0; i < in_cols.size(); ++i) {
              const std::uint32_t g = sh.payload.closure[in_cols[i]];
              if (plan_.owner[g] != s) continue;
              const std::uint32_t r =
                  position_of(sh.payload.owned, g, "closure col not owned");
              const auto it =
                  std::lower_bound(prev_rows.begin(), prev_rows.end(), r);
              GV_CHECK(it != prev_rows.end() && *it == r,
                       "own frontier row missing at assembly");
              std::memcpy(prev.data() + i * chp,
                          cq.h.data() +
                              static_cast<std::size_t>(it - prev_rows.begin()) * chp,
                          chp * sizeof(float));
              ++filled;
            }
            for (std::uint32_t t = 0; t < K; ++t) {
              if (t == s) continue;
              AttestedChannel* ch = channel(s, t);
              if (ch == nullptr) continue;
              while (ch->has_embeddings(*sh.enclave)) {
                const auto block = ch->recv_embeddings(*sh.enclave);
                GV_CHECK(block.rows.cols() == chp, "cold halo dim mismatch");
                for (std::size_t i = 0; i < block.nodes.size(); ++i) {
                  const std::uint32_t c = position_of(
                      sh.payload.closure, block.nodes[i], "halo outside closure");
                  const auto it =
                      std::lower_bound(in_cols.begin(), in_cols.end(), c);
                  GV_CHECK(it != in_cols.end() && *it == c,
                           "halo row outside the input frontier");
                  std::memcpy(
                      prev.data() +
                          static_cast<std::size_t>(it - in_cols.begin()) * chp,
                      block.rows.data() + i * chp, chp * sizeof(float));
                  ++filled;
                }
              }
            }
            GV_CHECK(filled == in_cols.size(),
                     "cold halo pulls left input rows unfilled");
            return prev;
          };

          Matrix input;
          switch (cfg.kind) {
            case RectifierKind::kParallel:
              input = k == 0 ? std::move(cq.bb[0])
                             : Matrix::hconcat(cq.bb[k], assemble_prev());
              break;
            case RectifierKind::kCascaded:
              if (k == 0) {
                std::vector<const Matrix*> blocks;
                blocks.reserve(dims.size());
                for (std::size_t i = 0; i < dims.size(); ++i) {
                  blocks.push_back(&cq.bb[i]);
                }
                input = Matrix::hconcat(
                    std::span<const Matrix* const>(blocks.data(), blocks.size()));
              } else {
                input = assemble_prev();
              }
              break;
            case RectifierKind::kSeries:
              input = k == 0 ? std::move(cq.bb[penult]) : assemble_prev();
              break;
          }

          const CsrMatrix slice =
              sh.rectifier->frontier_slice(cq.out_rows[k], in_cols);
          Matrix z = sh.rectifier->layer(k).forward_subgraph(slice, input);
          cq.h = last ? std::move(z) : relu(z);
          sh.enclave->memory().set("cold.h",
                                   input.payload_bytes() + cq.h.payload_bytes());

          if (retain_shard == s) {
            // Re-materialization pass: reinstall this shard's durable stores
            // from the freshly computed (full-owned) frontier.
            if (last) {
              GV_CHECK(cq.out_rows[k].size() == sh.payload.owned.size(),
                       "re-materialization must cover every owned node");
              sh.labels = argmax_rows(cq.h);
              sh.enclave->memory().set(
                  "labels.store", sh.labels.size() * sizeof(std::uint32_t));
            } else {
              std::vector<std::uint32_t> pos;
              pos.reserve(sh.boundary_rows.size());
              const auto& rows = cq.out_rows[k];
              for (const auto r : sh.boundary_rows) {
                const auto it = std::lower_bound(rows.begin(), rows.end(), r);
                GV_CHECK(it != rows.end() && *it == r,
                         "boundary row missing from re-materialization");
                pos.push_back(static_cast<std::uint32_t>(it - rows.begin()));
              }
              sh.retained[k] = cq.h.gather_rows(pos);
            }
          }
        });
      });
    }

    // --- Label-only exits, merged back into query order. -------------------
    std::vector<std::uint32_t> out(nodes.size(), 0);
    std::vector<std::vector<std::uint32_t>> labels_by_shard(K);
    for (std::uint32_t s = 0; s < K; ++s) {
      if (qnodes[s].empty()) continue;
      Shard& sh = *shards_[s];
      labels_by_shard[s] = sh.enclave->ecall([&] {
        auto& cq = sh.cold;
        GV_CHECK(cq.h.rows() == cq.out_rows[L - 1].size(),
                 "cold forward produced a malformed frontier");
        std::vector<std::uint32_t> all = argmax_rows(cq.h);
        // out_rows[L-1] ⊇ the query rows (a re-materialization computes the
        // whole owned set); project onto the query positions.
        std::vector<std::uint32_t> res;
        res.reserve(qnodes[s].size());
        const auto& rows = cq.out_rows[L - 1];
        for (const auto v : qnodes[s]) {
          const std::uint32_t r =
              position_of(sh.payload.owned, v, "query node not owned");
          const auto it = std::lower_bound(rows.begin(), rows.end(), r);
          GV_CHECK(it != rows.end() && *it == r, "query row missing");
          res.push_back(all[static_cast<std::size_t>(it - rows.begin())]);
        }
        return res;
      });
    }
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      const std::uint32_t s = plan_.owner[nodes[j]];
      const auto& q = qnodes[s];
      const auto it = std::lower_bound(q.begin(), q.end(), nodes[j]);
      out[j] = labels_by_shard[s][static_cast<std::size_t>(it - q.begin())];
    }

    // --- Release transients + telemetry. -----------------------------------
    parallel_phase([&](std::uint32_t s) {
      if (!involved[s]) return;
      Shard& sh = *shards_[s];
      sh.enclave->ecall([&] {
        sh.cold = Shard::Cold{};
        auto& mem = sh.enclave->memory();
        mem.free("cold.bb");
        mem.free("cold.h");
      });
    });

    std::size_t touched = 0, computed = 0;
    for (std::uint32_t s = 0; s < K; ++s) {
      if (involved[s]) ++touched;
      if (computes[0][s]) ++computed;
    }
    stats->shards_touched = touched;
    stats->shards_computed = computed;
    std::uint64_t req_after = 0, emb_after = 0;
    for (const auto& ch : channels_) {
      if (ch) {
        req_after += ch->request_bytes();
        emb_after += ch->embedding_bytes();
      }
    }
    stats->halo_request_bytes = req_after - req_bytes_before;
    stats->halo_embedding_bytes = emb_after - emb_bytes_before;
    stats->modeled_seconds = (parallel_seconds_.load() - parallel_before) +
                             (untrusted_seconds_.load() - untrusted_before);
    return out;
  } catch (...) {
    // A walk aborted mid-exchange (dead frontier shard, malformed query)
    // must not leave sealed blocks queued for a later exchange to pop.
    for (const auto& ch : channels_) {
      if (ch) ch->drop_pending();
    }
    throw;
  }
}

std::uint32_t ShardedVaultDeployment::owner(std::uint32_t node) const {
  GV_CHECK(node < plan_.owner.size(), "node out of range");
  return plan_.owner[node];
}

void ShardedVaultDeployment::kill_shard(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  shards_[shard]->alive = false;
}

bool ShardedVaultDeployment::shard_alive(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->alive;
}

Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Enclave& ShardedVaultDeployment::shard_enclave(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return *shards_[shard]->enclave;
}

const Sha256Digest& ShardedVaultDeployment::shard_platform_key(
    std::uint32_t shard) const {
  GV_CHECK(shard < opts_.platform_keys.size(), "shard index out of range");
  return opts_.platform_keys[shard];
}

const SealedBlob& ShardedVaultDeployment::sealed_payload(std::uint32_t shard) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  return shards_[shard]->sealed;
}

std::unique_ptr<Enclave> ShardedVaultDeployment::make_peer_enclave(
    std::uint32_t shard, const Sha256Digest& platform_key) const {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  // Peer enclaves repeat the exact build recipe (same name, same extends):
  // identical measurement is what lets the attested channel handshake and
  // what scopes sealing to {code identity} x {platform key}.
  auto peer = std::make_unique<Enclave>(opts_.enclave_name, opts_.cost_model,
                                        platform_key);
  peer->extend_measurement(
      kCodeTagPrefix + rectifier_kind_name(vault_.rectifier->config().kind));
  peer->extend_measurement(shards_[shard]->payload.rectifier_weights);
  peer->initialize();
  return peer;
}

void ShardedVaultDeployment::send_payload(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  sh.enclave->ecall(
      [&] { ch.send_package(*sh.enclave, serialize_shard_payload(sh.payload)); });
}

void ShardedVaultDeployment::send_labels(std::uint32_t shard, AttestedChannel& ch) {
  GV_CHECK(shard < plan_.num_shards, "shard index out of range");
  Shard& sh = *shards_[shard];
  GV_CHECK(sh.alive, "shard enclave is down");
  GV_CHECK(refreshed_, "no label store to replicate before the first refresh");
  sh.enclave->ecall(
      [&] { ch.send_labels(*sh.enclave, sh.payload.owned, sh.labels); });
}

std::uint64_t ShardedVaultDeployment::halo_embedding_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->embedding_bytes();
  }
  return sum;
}

std::uint64_t ShardedVaultDeployment::halo_label_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->label_bytes();
  }
  return sum;
}

std::uint64_t ShardedVaultDeployment::halo_package_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& ch : channels_) {
    if (ch) sum += ch->package_bytes();
  }
  return sum;
}

double ShardedVaultDeployment::modeled_seconds() const {
  return untrusted_seconds_.load() + parallel_seconds_.load();
}

CostMeter ShardedVaultDeployment::aggregate_meter() const {
  CostMeter total;
  for (const auto& sh : shards_) {
    const CostMeter m = sh->enclave->meter_snapshot();
    total.ecalls += m.ecalls;
    total.ocalls += m.ocalls;
    total.bytes_in += m.bytes_in;
    total.page_swaps += m.page_swaps;
    total.enclave_compute_seconds += m.enclave_compute_seconds;
    total.untrusted_compute_seconds += m.untrusted_compute_seconds;
  }
  total.untrusted_compute_seconds += untrusted_seconds_.load();
  return total;
}

std::size_t ShardedVaultDeployment::max_shard_peak_bytes() const {
  std::size_t mx = 0;
  for (const auto& sh : shards_) {
    mx = std::max(mx, sh->enclave->memory().peak_bytes());
  }
  return mx;
}

}  // namespace gv
