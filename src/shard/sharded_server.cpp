#include "shard/sharded_server.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/tenant_ledger.hpp"
#include "obs/trace.hpp"
#include "sgxsim/attested_channel.hpp"

namespace gv {

ShardedVaultServer::ShardedVaultServer(const Dataset& ds, TrainedVault vault,
                                       ShardPlan plan,
                                       ShardedDeploymentOptions dopts,
                                       ShardedServerConfig cfg)
    : cfg_(cfg),
      deployment_(ds, std::move(vault), std::move(plan), std::move(dopts)),
      drift_(deployment_.plan()),
      features_(std::make_shared<const CsrMatrix>(ds.features)),
      frontend_(*this, cfg.server, ds.features.rows()) {
  // The front end's threads are already up, but no query can reach the
  // backend until this constructor returns the server to a caller — the
  // fleet bring-up below runs single-threaded on the constructing thread.
  //
  // Labels are usually materialized up front: the sharded forward is the
  // expensive, EPC-bounded part, and it amortizes over every query until
  // the next feature update.  A cold start skips it — the router serves
  // misses through the demand-driven cross-shard path instead.
  if (cfg_.materialize_on_start) deployment_.refresh(*features_);
  if (cfg_.replicate) {
    ReplicaConfig rcfg;
    rcfg.standby_platform_key = cfg_.standby_platform_key;
    rcfg.auto_restaff = cfg_.auto_restaff;
    replicas_ = std::make_unique<ReplicaManager>(deployment_, rcfg);
    replicas_->replicate_async();
  }
  // Dead-shard detection: a serving ecall that dies marks the shard dead
  // and lands here — same fence + promote path as an explicit kill_shard.
  deployment_.set_shard_failure_handler(
      [this](std::uint32_t shard) { handle_shard_failure(shard); });
  features_fp_ = ShardedVaultDeployment::features_fingerprint(*features_);
  router_ = std::make_unique<ShardRouter>(deployment_, replicas_.get());
  router_->set_cold_path([this](std::span<const std::uint32_t> nodes) {
    std::shared_ptr<const CsrMatrix> snap;
    std::uint64_t fp;
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      GV_RANK_SCOPE(lockrank::kServerSnap);
      snap = features_;
      fp = features_fp_;
    }
    TraceSpan span("shard", "cold_subset");
    span.arg("nodes", double(nodes.size()));
    const auto cold_start = std::chrono::steady_clock::now();
    ColdSubsetStats stats;
    auto labels = deployment_.infer_labels_subset_cold(*snap, fp, nodes, &stats);
    record_query_stage(
        QueryStage::kCold,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cold_start)
            .count());
    span.arg("shards_touched", double(stats.shards_touched));
    span.arg("frontier_rows", double(stats.frontier_rows));
    span.modeled_seconds(stats.modeled_seconds);
    record_cold_stats(stats);
    return labels;
  });
  // Flight-recorder fleet topology: every read below is an atomic or a
  // lock-free accessor, so the provider is safe from fault paths that hold
  // the control-plane locks (see FlightRecorder's lock discipline).
  FlightRecorder::instance().set_topology_provider(this, [this] {
    std::ostringstream out;
    const std::uint32_t K = deployment_.num_shards();
    out << "{\"num_shards\":" << K
        << ",\"ownership_epoch\":" << deployment_.ownership_epoch()
        << ",\"shards\":[";
    for (std::uint32_t s = 0; s < K; ++s) {
      if (s != 0) out << ',';
      out << "{\"shard\":" << s << ",\"alive\":"
          << (deployment_.shard_alive(s) ? "true" : "false")
          << ",\"store_materialized\":"
          << (deployment_.store_materialized(s) ? "true" : "false")
          << ",\"stale_store_entries\":" << deployment_.stale_store_entries(s)
          << ",\"replica_state\":\""
          << (replicas_ != nullptr ? replica_state_name(replicas_->state(s))
                                   : "none")
          << "\"}";
    }
    out << "]}";
    return out.str();
  });
  // EngineScope: attribute this fleet's metered usage — modeled seconds,
  // ecalls, batches, cache work, cold-walk rows, attested-channel bytes
  // (padding included) — to its tenant.  stats() takes only server-state
  // leaves, legal from the ledger's unlocked provider pass.
  TenantLedger::global().register_provider(
      this, frontend_.config().tenant, [this] {
        const MetricsSnapshot s = stats();
        TenantUsage u;
        u.modeled_seconds = s.modeled_seconds;
        u.ecalls = s.ecalls;
        u.batches = s.batches;
        u.cache_hits = s.cache_hits;
        u.cache_misses = s.cache_misses;
        u.cold_queries = s.cold_queries;
        u.cold_frontier_rows = s.cold_frontier_rows;
        std::uint64_t channel = 0;
        for (const auto& kp : AttestedChannel::kKindPolicies) {
          channel += deployment_.halo_kind_bytes(kp.kind);
        }
        u.channel_bytes = channel;
        u.channel_padded_bytes = deployment_.halo_padded_bytes();
        return u;
      });
}

ShardedVaultServer::~ShardedVaultServer() {
  // Unregister the ledger provider before anything else: it reads router /
  // deployment / replica state the teardown below destroys, and
  // unregister() blocks out any in-flight ledger pass.
  TenantLedger::global().unregister(this);
  // A bundle tripped during teardown must not call back into a
  // half-destroyed server (owner-scoped, so a successor's provider survives).
  FlightRecorder::instance().clear_topology_provider(this);
  try {
    // Before stopping the front end: the promotion tail may be waiting on a
    // COLD boundary-rebuild job, which needs the workers alive to run.
    join_promotion();
  } catch (...) {
    // A promotion that failed at teardown has nobody left to report to.
  }
  frontend_.stop();
}

void ShardedVaultServer::join_promotion() {
  // Held across the get(): concurrent joiners must all observe the
  // promotion retired, not race valid()/get() on one shared state.
  std::lock_guard<std::mutex> lock(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
}

std::shared_ptr<const CsrMatrix> ShardedVaultServer::features() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return features_;
}

Sha256Digest ShardedVaultServer::row_digest(std::uint32_t node) const {
  std::shared_ptr<const CsrMatrix> snap;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    snap = features_;
  }
  return feature_row_digest(*snap, node);
}

double ShardedVaultServer::modeled_seconds_total() const {
  // Critical-path time: refresh phases + the slowest shard of every routed
  // batch (distinct shard enclaves answer in parallel).
  return deployment_.modeled_seconds() + router_->modeled_seconds();
}

ServeBackend::BatchResult ShardedVaultServer::execute(
    std::span<const std::uint32_t> nodes, std::span<std::uint32_t> labels,
    std::span<Sha256Digest> digests) {
  // Pin the snapshot BEFORE the lookups: if update_features lands while
  // this batch is in flight, the labels we fetched pair with the OLD
  // digest and the cache entries self-evict on their next probe, instead
  // of stale labels being filed under the new digest.
  std::shared_ptr<const CsrMatrix> snap;
  if (!digests.empty()) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    snap = features_;
  }
  const std::uint64_t epoch_before = deployment_.ownership_epoch();
  const auto out = router_->route(nodes);
  std::copy(out.begin(), out.end(), labels.begin());
  for (std::size_t i = 0; i < digests.size(); ++i) {
    digests[i] = feature_row_digest(*snap, nodes[i]);
  }
  // A graph update or migration that landed mid-batch may have invalidated
  // what we just fetched — and unlike a feature update it does NOT change
  // the row digests the cache keys on, so filing these labels would poison
  // the cache permanently.  Report the batch uncacheable; the next miss
  // re-fetches through the (stale-aware) router.
  return BatchResult{deployment_.ownership_epoch() == epoch_before};
}

void ShardedVaultServer::update_features(const CsrMatrix& new_features) {
  GV_CHECK(new_features.rows() == frontend_.num_nodes(),
           "feature update must keep the node set");
  // Control-plane exclusion, held for the whole update: a mid-flight
  // promotion refreshes against the snapshot it pinned, so it must land
  // first — and no NEW kill/promotion may start under our refresh (it
  // would see the shard dead and throw).
  std::lock_guard<std::mutex> control(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
  auto fresh = std::make_shared<const CsrMatrix>(new_features);
  const std::uint64_t fresh_fp =
      ShardedVaultDeployment::features_fingerprint(*fresh);
  // The sharded forward rebuilds every shard's label store in place
  // (serialized against itself; lookups between shard updates see a mix of
  // old and new labels, the usual eventual-consistency window of a rolling
  // refresh).
  deployment_.refresh(*fresh);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    features_ = std::move(fresh);
    features_fp_ = fresh_fp;
  }
  if (replicas_ != nullptr) {
    replicas_->wait_ready();
    replicas_->sync_labels();
  }
  frontend_.cache().invalidate_stale(new_features);
  frontend_.metrics().record_feature_update();
}

void ShardedVaultServer::kill_shard(std::uint32_t shard) {
  std::lock_guard<std::mutex> lock(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  // Under the control-plane lock: wait_ready() joins ReplicaManager's
  // replication future, which is not safe to get() from two threads.
  if (replicas_ != nullptr) replicas_->wait_ready();
  if (promotion_.valid()) promotion_.get();  // one promotion at a time
  // Refuse to kill a shard whose replica slot cannot take over (already
  // promoted and not restaffed): killing first and failing later would
  // leave the shard dead with nobody to promote.
  GV_CHECK(replicas_ == nullptr ||
               (replicas_->state(shard) == ReplicaState::kStandby &&
                replicas_->ready(shard)),
           "shard has no promotable standby (already promoted? restaff and "
           "replicate first)");
  deployment_.kill_shard(shard);
  FlightRecorder::instance().trip(FaultKind::kDeadShard,
                                  static_cast<int>(shard),
                                  "kill_shard: operator-initiated failover");
  if (replicas_ == nullptr) return;
  launch_promotion(shard);
}

void ShardedVaultServer::launch_promotion(std::uint32_t shard) {
  // Fence BEFORE returning: from this point no query can read the standby's
  // (soon to be stale) store — the router blocks on the PROMOTING state
  // until the replica has rebuilt from its re-sealed package, re-handshaked
  // with the survivors, and re-materialized from the current snapshot.
  replicas_->begin_promotion(shard);
  promotion_ = std::async(std::launch::async, [this, shard] {
    // Incremental re-materialization: only the adopted shard's store is
    // rebuilt (shard-local cold forward, halo pulls from the survivors'
    // retained boundary stores) — the fencing window no longer pays a
    // full-fleet refresh.  A cold-start fleet (no refresh yet) has no
    // stores at all: the adopted shard serves demand-driven like everyone
    // else, so there is nothing to re-materialize.
    const double ms = replicas_->promote(shard, [this, shard] {
      if (deployment_.refreshed()) {
        deployment_.rematerialize_shard(shard, *features());
      }
    });
    frontend_.metrics().record_promotion_ms(ms);
    // Warm adoption installs a bit-fresh label store but no retained
    // boundary activations; rebuild them OUTSIDE the fence (queries are
    // already flowing) so the shard's halo contributions to cold queries
    // go back to store-served instead of live-computed until the next
    // refresh.  The rebuild is exactly the demand-recompute class, so it
    // runs as a COLD job on the shared workers — interactive flushes
    // preempt it instead of queueing behind it — and this promotion thread
    // waits for it, keeping join_promotion()'s "fully landed" contract.
    if (deployment_.refreshed() && deployment_.store_materialized(shard) &&
        !deployment_.retained_valid(shard)) {
      auto done = std::make_shared<std::promise<void>>();
      auto landed = done->get_future();
      frontend_.post_background(
          JobClass::kCold,
          [this, shard, done] {
            try {
              deployment_.rebuild_boundary_retained(shard, *features());
              done->set_value();
            } catch (...) {
              done->set_exception(std::current_exception());
            }
          },
          [done] {
            // Shed at shutdown: the retained stores simply stay invalid
            // (the next refresh rebuilds them); surface the usual error to
            // whoever still joins this promotion.
            done->set_exception(
                std::make_exception_ptr(Error("server shutting down")));
          });
      landed.get();
    }
  });
}

void ShardedVaultServer::handle_shard_failure(std::uint32_t shard) {
  // Called from the job-system worker whose serving ecall just died (the
  // deployment has already marked the shard dead and counted the fault).
  // Mirror kill_shard's fence + promote; the failed batch retries through
  // the router's promotion fence and lands on the new PRIMARY.  Best
  // effort by design: a control-plane problem (stale standby package, an
  // earlier promotion's failure resurfacing from its future) must not
  // replace the data-path error on a query's stack — the shard then simply
  // stays dead and the router reports it honestly.
  FlightRecorder::instance().trip(FaultKind::kDeadShard,
                                  static_cast<int>(shard),
                                  "serving ecall died; attempting promotion");
  try {
    std::lock_guard<std::mutex> lock(promotion_mu_);
    GV_RANK_SCOPE(lockrank::kServerControl);
    if (replicas_ == nullptr) return;  // nothing to promote: queries fail
    replicas_->wait_ready();
    if (promotion_.valid()) promotion_.get();
    // A concurrent failure of the same shard may have promoted it while we
    // waited for the control plane: nothing left to do.
    if (deployment_.shard_alive(shard)) return;
    if (replicas_->state(shard) != ReplicaState::kStandby ||
        !replicas_->ready(shard)) {
      return;  // no promotable standby; the shard stays dead
    }
    launch_promotion(shard);
  } catch (const std::exception& e) {
    GV_LOG_WARN << "dead-shard promotion for shard " << shard
                << " could not be launched: " << e.what();
  }
}

void ShardedVaultServer::record_cold_stats(const ColdSubsetStats& stats) {
  cold_queries_.fetch_add(1, std::memory_order_relaxed);
  cold_shards_computed_.fetch_add(stats.shards_computed,
                                  std::memory_order_relaxed);
  cold_shards_touched_.fetch_add(stats.shards_touched,
                                 std::memory_order_relaxed);
  cold_frontier_rows_.fetch_add(stats.frontier_rows, std::memory_order_relaxed);
  cold_halo_request_bytes_.fetch_add(stats.halo_request_bytes,
                                     std::memory_order_relaxed);
  cold_halo_embedding_bytes_.fetch_add(stats.halo_embedding_bytes,
                                       std::memory_order_relaxed);
  if (stats.backbone_cache_hit) {
    cold_backbone_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  auto& reg = MetricsRegistry::global();
  reg.counter("cold.queries").add(1);
  reg.counter("cold.shards_touched").add(stats.shards_touched);
  reg.counter("cold.frontier_rows").add(stats.frontier_rows);
  reg.counter("cold.halo_bytes", MetricLabels::of("channel_kind", "request"))
      .add(stats.halo_request_bytes);
  reg.counter("cold.halo_bytes", MetricLabels::of("channel_kind", "embedding"))
      .add(stats.halo_embedding_bytes);
  reg.histogram("cold.modeled_seconds").record(stats.modeled_seconds);
}

GraphUpdateStats ShardedVaultServer::update_graph(const GraphDelta& delta,
                                                  const CsrMatrix& new_features) {
  // Control-plane exclusion, like update_features: promotions re-handshake
  // enclaves the update needs alive, so they must land first.
  std::lock_guard<std::mutex> control(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
  GV_CHECK(new_features.rows() ==
               deployment_.num_nodes() + delta.node_adds.size(),
           "post-update features must cover existing plus appended nodes");
  auto fresh = std::make_shared<const CsrMatrix>(new_features);
  const std::uint64_t fresh_fp =
      ShardedVaultDeployment::features_fingerprint(*fresh);
  // The snapshot swap runs under the deployment's update fence: a batch
  // waking from await_moves must never pair the grown node count with the
  // old (smaller) snapshot on the cold path.
  const GraphUpdateStats stats =
      deployment_.update_graph(delta, &new_features, [&] {
        {
          std::lock_guard<std::mutex> lock(snap_mu_);
          GV_RANK_SCOPE(lockrank::kServerSnap);
          features_ = fresh;
          features_fp_ = fresh_fp;
        }
        frontend_.set_num_nodes(fresh->rows());
      });
  // The label cache keys on (node, feature-row digest); a graph mutation
  // moves labels through the private neighbourhood while the digests stay
  // put, so the delta-derived affected set is evicted by node id.
  const std::size_t evicted =
      frontend_.cache().invalidate_nodes(stats.stale_nodes);
  frontend_.metrics().record_graph_update(stats.store_entries_invalidated +
                                          evicted);
  {
    // Fold the update into the drift health readings (DriftTracker also
    // publishes them as gauges to the global registry).
    std::lock_guard<std::mutex> lock(drift_mu_);
    GV_RANK_SCOPE(lockrank::kServerState);
    drift_.record(stats);
  }
  // Telemetry push at the state change: a drift update is exactly when EPC
  // occupancy and channel traffic move, so don't wait for a stats() pull.
  deployment_.publish_epc_gauges();
  deployment_.publish_channel_audit();
  if (replicas_ != nullptr) {
    // The standby packages now describe a retired topology (they refuse to
    // promote); re-replicate so the fleet is failover-ready again.
    replicas_->wait_ready();
    replicas_->replicate_async();
  }
  return stats;
}

MetricsSnapshot ShardedVaultServer::stats() const {
  MetricsSnapshot s = frontend_.metrics().snapshot();
  s.failovers = router_->failovers();
  s.fenced_batches = router_->fenced();
  s.cold_batches = router_->cold_batches();
  s.restaffs = replicas_ != nullptr ? replicas_->restaffs() : 0;
  s.shard_faults = deployment_.shard_faults();
  s.cold_queries = cold_queries_.load(std::memory_order_relaxed);
  s.cold_shards_computed = cold_shards_computed_.load(std::memory_order_relaxed);
  s.cold_shards_touched = cold_shards_touched_.load(std::memory_order_relaxed);
  s.cold_frontier_rows = cold_frontier_rows_.load(std::memory_order_relaxed);
  s.cold_halo_request_bytes =
      cold_halo_request_bytes_.load(std::memory_order_relaxed);
  s.cold_halo_embedding_bytes =
      cold_halo_embedding_bytes_.load(std::memory_order_relaxed);
  s.cold_backbone_cache_hits =
      cold_backbone_cache_hits_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    GV_RANK_SCOPE(lockrank::kServerState);
    s.drift_cut_growth = drift_.cut_growth();
    s.drift_load_imbalance = drift_.load_imbalance();
  }
  const CostMeter m = deployment_.aggregate_meter();
  s.ecalls = m.ecalls;
  s.bytes_in = m.bytes_in;
  s.modeled_seconds = modeled_seconds_total();
  const auto served = s.completed + s.cache_hits;
  s.requests_per_second =
      s.modeled_seconds > 0.0 ? static_cast<double>(served) / s.modeled_seconds : 0.0;
  // Refresh the channel-kind byte-audit gauges alongside the poll, so a
  // registry snapshot taken next to stats() is internally consistent.
  deployment_.publish_channel_audit();
  return s;
}

}  // namespace gv
