#include "shard/sharded_server.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace gv {

ShardedVaultServer::ShardedVaultServer(const Dataset& ds, TrainedVault vault,
                                       ShardPlan plan,
                                       ShardedDeploymentOptions dopts,
                                       ShardedServerConfig cfg)
    : cfg_(cfg),
      deployment_(ds, std::move(vault), std::move(plan), std::move(dopts)),
      cache_(cfg.server.cache_capacity),
      drift_(deployment_.plan()),
      num_nodes_(ds.features.rows()),
      features_(std::make_shared<const CsrMatrix>(ds.features)),
      queue_(cfg.server.max_batch, cfg.server.max_wait),
      pool_(std::max<std::size_t>(1, cfg.server.worker_threads)) {
  // Labels are usually materialized up front: the sharded forward is the
  // expensive, EPC-bounded part, and it amortizes over every query until
  // the next feature update.  A cold start skips it — the router serves
  // misses through the demand-driven cross-shard path instead.
  if (cfg_.materialize_on_start) deployment_.refresh(*features_);
  if (cfg_.replicate) {
    ReplicaConfig rcfg;
    rcfg.standby_platform_key = cfg_.standby_platform_key;
    rcfg.auto_restaff = cfg_.auto_restaff;
    replicas_ = std::make_unique<ReplicaManager>(deployment_, rcfg);
    replicas_->replicate_async();
  }
  // Dead-shard detection: a serving ecall that dies marks the shard dead
  // and lands here — same fence + promote path as an explicit kill_shard.
  deployment_.set_shard_failure_handler(
      [this](std::uint32_t shard) { handle_shard_failure(shard); });
  features_fp_ = ShardedVaultDeployment::features_fingerprint(*features_);
  router_ = std::make_unique<ShardRouter>(deployment_, replicas_.get());
  router_->set_cold_path([this](std::span<const std::uint32_t> nodes) {
    std::shared_ptr<const CsrMatrix> snap;
    std::uint64_t fp;
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      GV_RANK_SCOPE(lockrank::kServerSnap);
      snap = features_;
      fp = features_fp_;
    }
    TraceSpan span("shard", "cold_subset");
    span.arg("nodes", double(nodes.size()));
    const auto cold_start = std::chrono::steady_clock::now();
    ColdSubsetStats stats;
    auto labels = deployment_.infer_labels_subset_cold(*snap, fp, nodes, &stats);
    record_query_stage(
        QueryStage::kCold,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cold_start)
            .count());
    span.arg("shards_touched", double(stats.shards_touched));
    span.arg("frontier_rows", double(stats.frontier_rows));
    span.modeled_seconds(stats.modeled_seconds);
    record_cold_stats(stats);
    return labels;
  });
  // Flight-recorder fleet topology: every read below is an atomic or a
  // lock-free accessor, so the provider is safe from fault paths that hold
  // the control-plane locks (see FlightRecorder's lock discipline).
  FlightRecorder::instance().set_topology_provider(this, [this] {
    std::ostringstream out;
    const std::uint32_t K = deployment_.num_shards();
    out << "{\"num_shards\":" << K
        << ",\"ownership_epoch\":" << deployment_.ownership_epoch()
        << ",\"shards\":[";
    for (std::uint32_t s = 0; s < K; ++s) {
      if (s != 0) out << ',';
      out << "{\"shard\":" << s << ",\"alive\":"
          << (deployment_.shard_alive(s) ? "true" : "false")
          << ",\"store_materialized\":"
          << (deployment_.store_materialized(s) ? "true" : "false")
          << ",\"stale_store_entries\":" << deployment_.stale_store_entries(s)
          << ",\"replica_state\":\""
          << (replicas_ != nullptr ? replica_state_name(replicas_->state(s))
                                   : "none")
          << "\"}";
    }
    out << "]}";
    return out.str();
  });
  workers_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    workers_.push_back(pool_.submit([this] { worker_loop(); }));
  }
}

ShardedVaultServer::~ShardedVaultServer() {
  // First thing: a bundle tripped during teardown must not call back into a
  // half-destroyed server (owner-scoped, so a successor's provider survives).
  FlightRecorder::instance().clear_topology_provider(this);
  try {
    join_promotion();
  } catch (...) {
    // A promotion that failed at teardown has nobody left to report to.
  }
  queue_.stop();
  for (auto& w : workers_) {
    try {
      w.get();
    } catch (...) {
      // Shutdown proceeds regardless.
    }
  }
}

void ShardedVaultServer::join_promotion() {
  // Held across the get(): concurrent joiners must all observe the
  // promotion retired, not race valid()/get() on one shared state.
  std::lock_guard<std::mutex> lock(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
}

std::shared_ptr<const CsrMatrix> ShardedVaultServer::features() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  GV_RANK_SCOPE(lockrank::kServerSnap);
  return features_;
}

std::future<std::uint32_t> ShardedVaultServer::submit(std::uint32_t node) {
  GV_CHECK(node < num_nodes_.load(), "query node out of range");
  metrics_.record_request();
  Sha256Digest digest{};
  if (cache_.enabled()) {
    std::shared_ptr<const CsrMatrix> snap;
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      GV_RANK_SCOPE(lockrank::kServerSnap);
      snap = features_;
    }
    digest = feature_row_digest(*snap, node);
    if (const auto hit = cache_.get(node, digest)) {
      metrics_.record_cache_hit();
      metrics_.record_latency_ms(0.0);
      std::promise<std::uint32_t> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
    metrics_.record_cache_miss();
  }
  std::promise<std::uint32_t> promise;
  std::future<std::uint32_t> fut = promise.get_future();
  if (queue_.submit(node, digest, std::move(promise))) {
    metrics_.record_coalesced();
  }
  return fut;
}

std::vector<std::future<std::uint32_t>> ShardedVaultServer::submit_many(
    std::span<const std::uint32_t> nodes) {
  std::vector<std::future<std::uint32_t>> futs;
  futs.reserve(nodes.size());
  for (const auto node : nodes) futs.push_back(submit(node));
  return futs;
}

std::uint32_t ShardedVaultServer::query(std::uint32_t node) {
  return submit(node).get();
}

void ShardedVaultServer::update_features(const CsrMatrix& new_features) {
  GV_CHECK(new_features.rows() == num_nodes_,
           "feature update must keep the node set");
  // Control-plane exclusion, held for the whole update: a mid-flight
  // promotion refreshes against the snapshot it pinned, so it must land
  // first — and no NEW kill/promotion may start under our refresh (it
  // would see the shard dead and throw).
  std::lock_guard<std::mutex> control(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
  auto fresh = std::make_shared<const CsrMatrix>(new_features);
  const std::uint64_t fresh_fp =
      ShardedVaultDeployment::features_fingerprint(*fresh);
  // The sharded forward rebuilds every shard's label store in place
  // (serialized against itself; lookups between shard updates see a mix of
  // old and new labels, the usual eventual-consistency window of a rolling
  // refresh).
  deployment_.refresh(*fresh);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    GV_RANK_SCOPE(lockrank::kServerSnap);
    features_ = std::move(fresh);
    features_fp_ = fresh_fp;
  }
  if (replicas_ != nullptr) {
    replicas_->wait_ready();
    replicas_->sync_labels();
  }
  cache_.invalidate_stale(new_features);
  metrics_.record_feature_update();
}

void ShardedVaultServer::kill_shard(std::uint32_t shard) {
  std::lock_guard<std::mutex> lock(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  // Under the control-plane lock: wait_ready() joins ReplicaManager's
  // replication future, which is not safe to get() from two threads.
  if (replicas_ != nullptr) replicas_->wait_ready();
  if (promotion_.valid()) promotion_.get();  // one promotion at a time
  // Refuse to kill a shard whose replica slot cannot take over (already
  // promoted and not restaffed): killing first and failing later would
  // leave the shard dead with nobody to promote.
  GV_CHECK(replicas_ == nullptr ||
               (replicas_->state(shard) == ReplicaState::kStandby &&
                replicas_->ready(shard)),
           "shard has no promotable standby (already promoted? restaff and "
           "replicate first)");
  deployment_.kill_shard(shard);
  FlightRecorder::instance().trip(FaultKind::kDeadShard,
                                  static_cast<int>(shard),
                                  "kill_shard: operator-initiated failover");
  if (replicas_ == nullptr) return;
  launch_promotion(shard);
}

void ShardedVaultServer::launch_promotion(std::uint32_t shard) {
  // Fence BEFORE returning: from this point no query can read the standby's
  // (soon to be stale) store — the router blocks on the PROMOTING state
  // until the replica has rebuilt from its re-sealed package, re-handshaked
  // with the survivors, and re-materialized from the current snapshot.
  replicas_->begin_promotion(shard);
  promotion_ = std::async(std::launch::async, [this, shard] {
    // Incremental re-materialization: only the adopted shard's store is
    // rebuilt (shard-local cold forward, halo pulls from the survivors'
    // retained boundary stores) — the fencing window no longer pays a
    // full-fleet refresh.  A cold-start fleet (no refresh yet) has no
    // stores at all: the adopted shard serves demand-driven like everyone
    // else, so there is nothing to re-materialize.
    const double ms = replicas_->promote(shard, [this, shard] {
      if (deployment_.refreshed()) {
        deployment_.rematerialize_shard(shard, *features());
      }
    });
    metrics_.record_promotion_ms(ms);
    // Warm adoption installs a bit-fresh label store but no retained
    // boundary activations; rebuild them OUTSIDE the fence (queries are
    // already flowing) so the shard's halo contributions to cold queries
    // go back to store-served instead of live-computed until the next
    // refresh.
    if (deployment_.refreshed() && deployment_.store_materialized(shard) &&
        !deployment_.retained_valid(shard)) {
      deployment_.rebuild_boundary_retained(shard, *features());
    }
  });
}

void ShardedVaultServer::handle_shard_failure(std::uint32_t shard) {
  // Called from the worker thread whose serving ecall just died (the
  // deployment has already marked the shard dead and counted the fault).
  // Mirror kill_shard's fence + promote; the failed batch retries through
  // the router's promotion fence and lands on the new PRIMARY.  Best
  // effort by design: a control-plane problem (stale standby package, an
  // earlier promotion's failure resurfacing from its future) must not
  // replace the data-path error on a query's stack — the shard then simply
  // stays dead and the router reports it honestly.
  FlightRecorder::instance().trip(FaultKind::kDeadShard,
                                  static_cast<int>(shard),
                                  "serving ecall died; attempting promotion");
  try {
    std::lock_guard<std::mutex> lock(promotion_mu_);
    GV_RANK_SCOPE(lockrank::kServerControl);
    if (replicas_ == nullptr) return;  // nothing to promote: queries fail
    replicas_->wait_ready();
    if (promotion_.valid()) promotion_.get();
    // A concurrent failure of the same shard may have promoted it while we
    // waited for the control plane: nothing left to do.
    if (deployment_.shard_alive(shard)) return;
    if (replicas_->state(shard) != ReplicaState::kStandby ||
        !replicas_->ready(shard)) {
      return;  // no promotable standby; the shard stays dead
    }
    launch_promotion(shard);
  } catch (const std::exception& e) {
    GV_LOG_WARN << "dead-shard promotion for shard " << shard
                << " could not be launched: " << e.what();
  }
}

void ShardedVaultServer::record_cold_stats(const ColdSubsetStats& stats) {
  cold_queries_.fetch_add(1, std::memory_order_relaxed);
  cold_shards_computed_.fetch_add(stats.shards_computed,
                                  std::memory_order_relaxed);
  cold_shards_touched_.fetch_add(stats.shards_touched,
                                 std::memory_order_relaxed);
  cold_frontier_rows_.fetch_add(stats.frontier_rows, std::memory_order_relaxed);
  cold_halo_request_bytes_.fetch_add(stats.halo_request_bytes,
                                     std::memory_order_relaxed);
  cold_halo_embedding_bytes_.fetch_add(stats.halo_embedding_bytes,
                                       std::memory_order_relaxed);
  if (stats.backbone_cache_hit) {
    cold_backbone_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  auto& reg = MetricsRegistry::global();
  reg.counter("cold.queries").add(1);
  reg.counter("cold.shards_touched").add(stats.shards_touched);
  reg.counter("cold.frontier_rows").add(stats.frontier_rows);
  reg.counter("cold.halo_bytes", MetricLabels::of("channel_kind", "request"))
      .add(stats.halo_request_bytes);
  reg.counter("cold.halo_bytes", MetricLabels::of("channel_kind", "embedding"))
      .add(stats.halo_embedding_bytes);
  reg.histogram("cold.modeled_seconds").record(stats.modeled_seconds);
}

GraphUpdateStats ShardedVaultServer::update_graph(const GraphDelta& delta,
                                                  const CsrMatrix& new_features) {
  // Control-plane exclusion, like update_features: promotions re-handshake
  // enclaves the update needs alive, so they must land first.
  std::lock_guard<std::mutex> control(promotion_mu_);
  GV_RANK_SCOPE(lockrank::kServerControl);
  if (promotion_.valid()) promotion_.get();
  GV_CHECK(new_features.rows() ==
               deployment_.num_nodes() + delta.node_adds.size(),
           "post-update features must cover existing plus appended nodes");
  auto fresh = std::make_shared<const CsrMatrix>(new_features);
  const std::uint64_t fresh_fp =
      ShardedVaultDeployment::features_fingerprint(*fresh);
  // The snapshot swap runs under the deployment's update fence: a batch
  // waking from await_moves must never pair the grown node count with the
  // old (smaller) snapshot on the cold path.
  const GraphUpdateStats stats =
      deployment_.update_graph(delta, &new_features, [&] {
        std::lock_guard<std::mutex> lock(snap_mu_);
        GV_RANK_SCOPE(lockrank::kServerSnap);
        features_ = fresh;
        features_fp_ = fresh_fp;
        num_nodes_.store(fresh->rows());
      });
  // The label cache keys on (node, feature-row digest); a graph mutation
  // moves labels through the private neighbourhood while the digests stay
  // put, so the delta-derived affected set is evicted by node id.
  const std::size_t evicted = cache_.invalidate_nodes(stats.stale_nodes);
  metrics_.record_graph_update(stats.store_entries_invalidated + evicted);
  {
    // Fold the update into the drift health readings (DriftTracker also
    // publishes them as gauges to the global registry).
    std::lock_guard<std::mutex> lock(drift_mu_);
    GV_RANK_SCOPE(lockrank::kServerState);
    drift_.record(stats);
  }
  // Telemetry push at the state change: a drift update is exactly when EPC
  // occupancy and channel traffic move, so don't wait for a stats() pull.
  deployment_.publish_epc_gauges();
  deployment_.publish_channel_audit();
  if (replicas_ != nullptr) {
    // The standby packages now describe a retired topology (they refuse to
    // promote); re-replicate so the fleet is failover-ready again.
    replicas_->wait_ready();
    replicas_->replicate_async();
  }
  return stats;
}

void ShardedVaultServer::flush() { queue_.flush(); }

std::size_t ShardedVaultServer::pending() const { return queue_.pending(); }

MetricsSnapshot ShardedVaultServer::stats() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.failovers = router_->failovers();
  s.fenced_batches = router_->fenced();
  s.cold_batches = router_->cold_batches();
  s.restaffs = replicas_ != nullptr ? replicas_->restaffs() : 0;
  s.shard_faults = deployment_.shard_faults();
  s.cold_queries = cold_queries_.load(std::memory_order_relaxed);
  s.cold_shards_computed = cold_shards_computed_.load(std::memory_order_relaxed);
  s.cold_shards_touched = cold_shards_touched_.load(std::memory_order_relaxed);
  s.cold_frontier_rows = cold_frontier_rows_.load(std::memory_order_relaxed);
  s.cold_halo_request_bytes =
      cold_halo_request_bytes_.load(std::memory_order_relaxed);
  s.cold_halo_embedding_bytes =
      cold_halo_embedding_bytes_.load(std::memory_order_relaxed);
  s.cold_backbone_cache_hits =
      cold_backbone_cache_hits_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    GV_RANK_SCOPE(lockrank::kServerState);
    s.drift_cut_growth = drift_.cut_growth();
    s.drift_load_imbalance = drift_.load_imbalance();
  }
  const CostMeter m = deployment_.aggregate_meter();
  s.ecalls = m.ecalls;
  s.bytes_in = m.bytes_in;
  // Critical-path time: refresh phases + the slowest shard of every routed
  // batch (distinct shard enclaves answer in parallel).
  s.modeled_seconds = deployment_.modeled_seconds() + router_->modeled_seconds();
  const auto served = s.completed + s.cache_hits;
  s.requests_per_second =
      s.modeled_seconds > 0.0 ? static_cast<double>(served) / s.modeled_seconds : 0.0;
  // Refresh the channel-kind byte-audit gauges alongside the poll, so a
  // registry snapshot taken next to stats() is internally consistent.
  deployment_.publish_channel_audit();
  return s;
}

void ShardedVaultServer::worker_loop() {
  for (;;) {
    auto batch = queue_.next_batch();
    if (batch.empty()) return;  // stopped and drained
    execute_batch(std::move(batch));
  }
}

void ShardedVaultServer::execute_batch(std::vector<MicroBatchQueue::Entry> batch) {
  std::vector<std::uint32_t> nodes;
  nodes.reserve(batch.size());
  std::size_t waiters = 0;
  auto oldest = std::chrono::steady_clock::now();
  for (const auto& e : batch) {
    nodes.push_back(e.node);
    waiters += e.waiters.size();
    oldest = std::min(oldest, e.enqueued);
  }
  const auto flush_start = std::chrono::steady_clock::now();
  // Queue stage, per entry: enqueue -> flush start.  The oldest entry also
  // labels the async queue_wait slice with its query id.
  std::uint64_t oldest_qid = 0;
  for (const auto& e : batch) {
    if (e.enqueued == oldest) oldest_qid = e.query_id;
    record_query_stage(
        QueryStage::kQueue,
        std::chrono::duration<double>(flush_start - e.enqueued).count());
  }
  // The wait the batch's oldest request spent in the micro-batch queue,
  // reconstructed from its enqueue timestamp (no-op when tracing is off).
  TraceRecorder::instance().emit_async("serve", "queue_wait", oldest,
                                 flush_start, 0.0,
                                 {{"batch_size", double(batch.size())},
                                  {"query_id", double(oldest_qid)}});
  // The flush runs in the scope of the batch's first entry — a multi-query
  // batch attributes its shared spans (routing, ecalls, any cold walk the
  // router falls back to, halo pulls on peers) to that representative query.
  QueryScope qscope(batch.front().query_id);
  TraceSpan span("serve", "batch_flush");
  span.arg("batch_size", double(batch.size()));
  span.arg("waiters", double(waiters));
  double modeled_before = 0.0;
  if (span.active()) {
    modeled_before = deployment_.modeled_seconds() + router_->modeled_seconds();
  }
  try {
    // Pin the snapshot BEFORE the lookups: if update_features lands while
    // this batch is in flight, the labels we fetched pair with the OLD
    // digest and the cache entries self-evict on their next probe, instead
    // of stale labels being filed under the new digest.
    std::shared_ptr<const CsrMatrix> snap;
    if (cache_.enabled()) {
      std::lock_guard<std::mutex> lock(snap_mu_);
      GV_RANK_SCOPE(lockrank::kServerSnap);
      snap = features_;
    }
    const std::uint64_t epoch_before = deployment_.ownership_epoch();
    const auto labels = router_->route(nodes);
    // A graph update or migration that landed mid-batch may have
    // invalidated what we just fetched — and unlike a feature update it
    // does NOT change the row digests the cache keys on, so filing these
    // labels would poison the cache permanently.  Skip the put; the next
    // miss re-fetches through the (stale-aware) router.
    const bool cacheable =
        cache_.enabled() && deployment_.ownership_epoch() == epoch_before;
    const auto done = std::chrono::steady_clock::now();
    record_query_stage(QueryStage::kFlush,
                       std::chrono::duration<double>(done - flush_start).count());
    if (span.active()) {
      span.modeled_seconds(deployment_.modeled_seconds() +
                           router_->modeled_seconds() - modeled_before);
    }
    metrics_.record_batch(waiters);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (cacheable) {
        cache_.put(batch[i].node, feature_row_digest(*snap, batch[i].node),
                   labels[i]);
      }
      const double ms =
          std::chrono::duration<double, std::milli>(done - batch[i].enqueued)
              .count();
      for (std::size_t w = 0; w < batch[i].waiters.size(); ++w) {
        metrics_.record_latency_ms(ms);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (auto& waiter : batch[i].waiters) waiter.set_value(labels[i]);
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (auto& e : batch) {
      for (auto& waiter : e.waiters) waiter.set_exception(err);
    }
  }
}

}  // namespace gv
