// MigrationExecutor: turn a plan-diff move-set into live node migrations.
//
// After the private graph drifts, ShardPlanner::plan_diff emits the minimal
// set of nodes whose shard assignment should change.  A full re-provision
// would re-seal, re-attest, and re-refresh every enclave — the executor
// instead moves exactly those nodes between LIVE shards:
//
//   per move   the losing enclave seals the node's adjacency row, degrees,
//              and current label into an audited node-transfer payload on
//              the attested channel; the gaining enclave installs it; the
//              deployment flips its copy-on-write owner map; only then is
//              the old row retired.  The router fences just that node for
//              the (sub-millisecond) window, so no query ever observes
//              split ownership — every other node serves throughout.
//
// The bytes moved are one adjacency row + one label per node instead of K
// full shard packages, and the fencing is per node instead of fleet-wide:
// bench/migration.cpp records both ratios in BENCH_migration.json.
//
// After a migration the standby replicas hold packages for a retired
// topology; re-replicate before the next failover (the topology stamp
// makes a stale standby refuse promotion rather than resurrect old
// ownership).
#pragma once

#include <cstdint>
#include <span>

#include "shard/shard_planner.hpp"
#include "shard/sharded_deployment.hpp"

namespace gv {

struct MigrationStats {
  std::size_t moves_executed = 0;
  /// Moves whose node already lived on the target shard (plan replayed).
  std::size_t moves_skipped = 0;
  /// Logical node-transfer payload bytes that crossed attested channels.
  std::uint64_t transfer_bytes = 0;
  /// Wire bytes (bucket-padded) added across all channels by the moves.
  std::uint64_t wire_bytes = 0;
  /// Per-move router-fence window (the only serving disruption).
  double max_fence_ms = 0.0;
  double mean_fence_ms = 0.0;
  /// End-to-end wall time of the whole move-set.
  double total_ms = 0.0;
};

class MigrationExecutor {
 public:
  explicit MigrationExecutor(ShardedVaultDeployment& deployment)
      : deployment_(&deployment) {}

  /// Execute the move-set sequentially (each move fences one node for its
  /// sub-millisecond window; queries for everything else flow throughout).
  /// Moves whose node already sits on the target are skipped, so replaying
  /// a plan-diff is idempotent.  Throws on a dead shard or a move that
  /// would empty a shard; already-executed moves stay executed.
  MigrationStats execute(std::span<const NodeMove> moves);

 private:
  ShardedVaultDeployment* deployment_;
};

}  // namespace gv
