// ShardPlanner: partition one tenant's private graph across N enclaves.
//
// GNNVault's registry must reject (or queue) any tenant whose enclave
// working set exceeds the usable EPC, because Sec. III-C paging costs make
// oversubscription toxic for every co-tenant.  ShardVault's answer is to
// split the tenant: a greedy edge-cut partition of the private adjacency
// (balanced by estimated per-shard working set) assigns every node to one
// shard enclave, so each shard's rectifier weights + subgraph + staging fit
// the EPC slice it is granted.  Cut edges become halo traffic: at every
// rectifier layer the boundary nodes' embeddings cross attested
// enclave-to-enclave channels, so the planner minimizes the cut.
//
// The plan's owner map is serving metadata (the router needs it); the
// per-shard subgraphs and halo routing lists derive from the private edges
// and live only in sealed shard packages (core/package.hpp ShardPayload).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/package.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"

namespace gv {

struct ShardInfo {
  /// Owned nodes (sorted global ids).
  std::vector<std::uint32_t> nodes;
  /// |owned ∪ one-hop halo|.
  std::size_t closure_nodes = 0;
  /// Nonzeros of the shard's rows of the global Â (internal + cut + loops).
  std::size_t adj_nnz = 0;
  /// Estimated enclave working set of this shard.
  std::size_t estimated_bytes = 0;
};

struct ShardPlan {
  std::uint32_t num_shards = 0;
  /// Node -> shard id.
  std::vector<std::uint32_t> owner;
  std::vector<ShardInfo> shards;
  /// Undirected private edges crossing shards (each becomes halo traffic).
  std::size_t cut_edges = 0;

  std::size_t max_shard_bytes() const;
  std::size_t total_bytes() const;
};

/// One node changing owner (GraphDrift rebalancing).
struct NodeMove {
  std::uint32_t node = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

/// Result of an incremental re-plan: the refreshed plan plus the minimal
/// move-set that turns the old owner map into the new one.
struct PlanDiff {
  ShardPlan plan;
  std::vector<NodeMove> moves;
  /// LDG passes until the drift set reached a fixpoint.
  std::size_t passes = 0;
};

class ShardPlanner {
 public:
  /// Rows per streamed backbone chunk: untrusted code pushes the FULL public
  /// embedding matrices in fixed-size chunks and each enclave keeps only its
  /// closure rows, so the access pattern reveals nothing while staging stays
  /// O(chunk + closure) instead of O(n).
  static constexpr std::size_t kStreamChunkRows = 512;

  /// Partition into exactly `num_shards` shards.
  static ShardPlan plan(const Dataset& ds, const TrainedVault& vault,
                        std::uint32_t num_shards, double balance_slack = 1.1);

  /// Smallest shard count (<= max_shards) whose largest shard fits
  /// `shard_budget_bytes`; throws gv::Error when even max_shards does not.
  static ShardPlan plan_for_budget(const Dataset& ds, const TrainedVault& vault,
                                   std::size_t shard_budget_bytes,
                                   std::uint32_t max_shards = 16);

  /// Incremental re-plan after graph drift: re-run the LDG placement score
  /// over ONLY `drift_nodes` (the nodes whose neighbourhood changed since
  /// `old_plan` — DriftTracker::drift_nodes), keeping every other node
  /// where it is, and iterate to a fixpoint.  A node moves only when the
  /// destination's score beats its current shard's by more than `min_gain`
  /// (churn damping), so plan_diff on its own output emits no moves
  /// (idempotence).  `old_plan.owner` must cover `ds` — for appended nodes
  /// that means the plan the deployment maintains (update_graph assigns
  /// them an owner), not the provisioning-time plan.  Returns the refreshed
  /// plan and the minimal move-set; moves are emitted in ascending node id.
  static PlanDiff plan_diff(const Dataset& ds, const TrainedVault& vault,
                            const ShardPlan& old_plan,
                            std::span<const std::uint32_t> drift_nodes,
                            double balance_slack = 1.1, double min_gain = 0.05,
                            std::size_t max_passes = 16);

  /// Materialize the per-shard sealed-package payloads (sub-adjacency in
  /// GLOBAL normalized values, halo routing lists, replicated weights).
  static std::vector<ShardPayload> build_payloads(const Dataset& ds,
                                                  const TrainedVault& vault,
                                                  const ShardPlan& plan);

  /// Working-set estimate for one shard (exposed for registry admission).
  /// `total_nodes` bounds the streamed chunk (a graph smaller than one
  /// chunk stages at most its own row count).
  static std::size_t estimate_shard_bytes(const TrainedVault& vault,
                                          std::size_t total_nodes,
                                          std::size_t owned_nodes,
                                          std::size_t closure_nodes,
                                          std::size_t adj_nnz);
};

}  // namespace gv
