#include "shard/replica_manager.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace gv {

const char* replica_state_name(ReplicaState s) {
  switch (s) {
    case ReplicaState::kStandby: return "STANDBY";
    case ReplicaState::kPromoting: return "PROMOTING";
    case ReplicaState::kPrimary: return "PRIMARY";
  }
  return "?";
}

Sha256Digest ReplicaConfig::standby_platform_default_key() {
  Sha256 h;
  h.update(std::string("gnnvault-simulated-standby-cpu-fuse-key-v1"));
  return h.finish();
}

Sha256Digest ReplicaConfig::standby_generation_key(std::uint32_t shard,
                                                   std::uint32_t generation) {
  Sha256 h;
  h.update(std::string("gnnvault-simulated-standby-cpu-fuse-key-v1"));
  h.update(std::string("/shard=") + std::to_string(shard) +
           "/gen=" + std::to_string(generation));
  return h.finish();
}

ReplicaManager::ReplicaManager(ShardedVaultDeployment& primary, ReplicaConfig cfg)
    : primary_(&primary), cfg_(cfg) {
  replicas_.reserve(primary.num_shards());
  for (std::uint32_t s = 0; s < primary.num_shards(); ++s) {
    auto rep = std::make_unique<Replica>();
    rep->platform_key = cfg_.standby_platform_key;
    rep->enclave = primary.make_peer_enclave(s, cfg_.standby_platform_key);
    // Handshake now: the primary attests the standby (and vice versa)
    // before any package bytes move.
    rep->channel = std::make_unique<AttestedChannel>(
        primary.shard_enclave(s), *rep->enclave, primary.shard_platform_key(s),
        cfg_.standby_platform_key);
    replicas_.push_back(std::move(rep));
  }
}

ReplicaManager::~ReplicaManager() {
  if (pending_.valid()) {
    try {
      pending_.get();
    } catch (...) {
      // Replication failure at teardown has nobody left to report to.
    }
  }
}

void ReplicaManager::replicate_one(std::uint32_t shard) {
  Replica& rep = *replicas_[shard];
  // A promoted replica IS the shard's primary now — there is no standby to
  // replicate into until restaff() provisions one.  (A promotion that
  // failed after consuming the slot also leaves it empty until restaffed.)
  if (rep.state.load() != ReplicaState::kStandby || rep.enclave == nullptr ||
      rep.channel == nullptr) {
    return;
  }
  // A primary that died mid-pass is skipped, not an error: poisoning the
  // replication future would make the dead-shard handler's wait_ready()
  // rethrow the very failure it is trying to recover from.  The standby
  // keeps whatever it replicated last (and its stamps fail safe).
  if (!primary_->shard_alive(shard)) return;
  std::lock_guard<std::mutex> slot(rep.mu);
  GV_RANK_SCOPE(lockrank::kReplicaSlot);
  // Primary side: package (and labels when available) leave the primary
  // enclave only through the attested channel.  Capture the epoch and
  // topology version BEFORE the send: if a refresh / graph update lands
  // mid-replication the copy is stamped with the older value and reads
  // fail safe (stale), never the other way.
  const std::uint64_t epoch = primary_->refresh_epoch();
  const std::uint64_t topology = primary_->topology_version();
  primary_->send_payload(shard, *rep.channel);
  // Labels whose store entries were invalidated by a graph update must not
  // be replicated as fresh — the standby cannot see the stale bits.  Skip
  // the label sync; the stale standby refuses reads until the store heals.
  const bool with_labels =
      primary_->refreshed() && primary_->stale_store_entries(shard) == 0;
  if (with_labels) primary_->send_labels(shard, *rep.channel);

  // Standby side: receive, RE-SEAL under the standby platform key, and keep
  // the label store warm.
  rep.enclave->ecall([&] {
    const auto bytes = rep.channel->recv_package(*rep.enclave);
    rep.payload = deserialize_shard_payload(bytes);
    rep.sealed = rep.enclave->seal(bytes);
    auto& mem = rep.enclave->memory();
    mem.set("replica.package", rep.payload.payload_bytes());
    if (with_labels) {
      auto block = rep.channel->recv_labels(*rep.enclave);
      GV_CHECK(block.nodes == rep.payload.owned,
               "replicated label store does not cover the shard's nodes");
      rep.labels = std::move(block.labels);
      mem.set("labels.store", rep.labels.size() * sizeof(std::uint32_t));
    }
  });
  if (with_labels) rep.synced_epoch.store(epoch);
  rep.synced_topology.store(topology);
  rep.ready.store(true);
}

void ReplicaManager::replicate_all() {
  MutexLock lock(replicate_mu_);
  GV_RANK_SCOPE(lockrank::kReplicate);
  for (std::uint32_t s = 0; s < replicas_.size(); ++s) replicate_one(s);
}

void ReplicaManager::replicate_async() {
  wait_ready();  // one async replication at a time
  pending_ = std::async(std::launch::async, [this] { replicate_all(); });
}

void ReplicaManager::wait_ready() {
  if (pending_.valid()) pending_.get();
}

bool ReplicaManager::ready(std::uint32_t shard) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return replicas_[shard]->ready.load();
}

void ReplicaManager::sync_labels() {
  MutexLock lock(replicate_mu_);
  GV_RANK_SCOPE(lockrank::kReplicate);
  sync_labels_locked();
}

void ReplicaManager::sync_labels_locked() {
  for (std::uint32_t s = 0; s < replicas_.size(); ++s) {
    Replica& rep = *replicas_[s];
    if (rep.state.load() != ReplicaState::kStandby || rep.channel == nullptr) {
      continue;
    }
    if (!rep.ready.load() || !primary_->shard_alive(s)) continue;
    // A store with graph-update-invalidated entries must not be shipped as
    // fresh (the stale bits do not travel); skip until it heals.
    if (primary_->stale_store_entries(s) > 0) continue;
    std::lock_guard<std::mutex> slot(rep.mu);
    GV_RANK_SCOPE(lockrank::kReplicaSlot);
    const std::uint64_t epoch = primary_->refresh_epoch();
    primary_->send_labels(s, *rep.channel);
    rep.enclave->ecall([&] {
      auto block = rep.channel->recv_labels(*rep.enclave);
      GV_CHECK(block.nodes == rep.payload.owned,
               "replicated label store does not cover the shard's nodes");
      rep.labels = std::move(block.labels);
      rep.enclave->memory().set("labels.store",
                                rep.labels.size() * sizeof(std::uint32_t));
    });
    rep.synced_epoch.store(epoch);
  }
}

ReplicaState ReplicaManager::state(std::uint32_t shard) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return replicas_[shard]->state.load();
}

void ReplicaManager::begin_promotion(std::uint32_t shard) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  Replica& rep = *replicas_[shard];
  GV_CHECK(rep.ready.load(), "cannot promote an unreplicated standby");
  GV_CHECK(rep.synced_topology.load() == primary_->topology_version(),
           "replica package predates the live topology (graph drift or "
           "migration since replication) — re-replicate before promoting");
  GV_CHECK(!primary_->shard_alive(shard),
           "cannot promote while the primary shard is alive");
  ReplicaState expected = ReplicaState::kStandby;
  GV_CHECK(rep.state.compare_exchange_strong(expected, ReplicaState::kPromoting),
           std::string("replica is ") + replica_state_name(expected) +
               ", expected STANDBY");
}

double ReplicaManager::promote(std::uint32_t shard,
                               const std::function<void()>& rematerialize) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  Replica& rep = *replicas_[shard];
  if (rep.state.load() != ReplicaState::kPromoting) begin_promotion(shard);
  Stopwatch watch;
  // Promotion phases are emitted with explicit timestamps (not one RAII
  // span) because the "promotion" slice must stop where the latency metric
  // stops — when serving resumes — while this function continues into the
  // background restaff.
  const auto promo_start = std::chrono::steady_clock::now();
  // Promotion must not race replication traffic into the same enclave.
  MutexLock lock(replicate_mu_);
  GV_RANK_SCOPE(lockrank::kReplicate);
  try {
    // Warm-adoption fast path: when the standby's replicated label store
    // was synced at the CURRENT refresh epoch, it is bit-identical to what
    // any re-materialization would compute — and it already lives inside
    // the enclave being adopted.  Promotion then needs no forward at all;
    // `rematerialize` is the fallback for a store that missed a refresh.
    bool warm = primary_->refreshed() &&
                rep.synced_epoch.load() == primary_->refresh_epoch();
    std::vector<std::uint32_t> warm_labels;
    {
      // Exclude any lookup that slipped past the PROMOTING fence before it
      // went up: the slot's enclave/labels must not be consumed under a
      // reader.  Released before the (possibly long) re-materialization.
      std::lock_guard<std::mutex> slot(rep.mu);
      GV_RANK_SCOPE(lockrank::kReplicaSlot);
      // Relaunch from the RE-SEALED package: the blob opens only inside
      // this standby enclave (sealing binds to the standby platform fuse
      // key), so this is exactly the restart-from-local-sealed-storage
      // path a real standby machine would take — no vendor, no dead
      // platform in the loop.
      ShardPayload payload;
      {
        TraceSpan unseal_span("promotion", "unseal");
        unseal_span.arg("shard", double(shard));
        rep.enclave->ecall([&] {
          payload = deserialize_shard_payload(rep.enclave->unseal(rep.sealed));
        });
      }
      // adopt_shard consumes the slot only once every precondition passed;
      // a rejected adoption (throw) leaves a fully functional warm standby —
      // which is why the warm labels are taken only AFTER it succeeds.
      {
        TraceSpan adopt_span("promotion", "adopt");
        adopt_span.arg("shard", double(shard));
        primary_->adopt_shard(shard, rep.enclave, payload, rep.sealed,
                              rep.platform_key);
      }
      // Now the donation is committed: take the warm store (it stays inside
      // the same, now-adopted enclave; install_labels re-registers it there)
      // and drop the replication channel (its dead-primary endpoint is
      // retired, its standby endpoint donated).
      if (warm) warm_labels = std::move(rep.labels);
      rep.channel.reset();
      rep.ready.store(false);
      rep.labels.clear();
      rep.payload = ShardPayload{};
      rep.synced_epoch.store(0);
      rep.synced_topology.store(0);
    }
    // Label stores (re)materialize from the CURRENT feature snapshot while
    // the router fence is still up — no query ever sees a pre-promotion
    // (or empty) store.
    const std::uint64_t epoch_before = primary_->refresh_epoch();
    if (warm) {
      TraceSpan install_span("promotion", "install_labels");
      install_span.arg("shard", double(shard));
      primary_->install_labels(shard, std::move(warm_labels));
    } else {
      TraceSpan remat_span("promotion", "rematerialize");
      remat_span.arg("shard", double(shard));
      rematerialize();
    }
    // A full-refresh re-materialization bumps the refresh epoch without
    // changing the snapshot; re-stamp the OTHER shards' standbys before the
    // fence lifts so their (bit-identical) stores do not read as stale.
    // The warm-adopt and shard-local (rematerialize_shard) paths leave the
    // epoch alone, so the standbys are already fresh and the fencing window
    // skips the fleet-wide label re-ship.
    if (primary_->refresh_epoch() != epoch_before) {
      TraceSpan sync_span("promotion", "sync_labels");
      sync_span.arg("shard", double(shard));
      sync_labels_locked();
    }
  } catch (const std::exception& e) {
    // Failed promotion: drop back to STANDBY so fenced routers unblock
    // instead of hanging forever.  A rejected adoption left the slot a
    // warm standby (ready stays true); a slot consumed before the failure
    // refuses lookups (ready=false) and waits for restaff().  Logged here
    // because the caller may only join (and rethrow) much later.
    GV_LOG_WARN << "promotion of shard " << shard << " failed: " << e.what();
    // Postmortem bundle while the failure is still on the stack (trip only
    // takes leaf locks, so calling under replicate_mu_ is safe).
    FlightRecorder::instance().trip(FaultKind::kPromotionFailure,
                                    static_cast<int>(shard), e.what());
    rep.ready.store(rep.enclave != nullptr);
    {
      std::lock_guard<std::mutex> state_lock(promote_mu_);
      GV_RANK_SCOPE(lockrank::kReplicaSlot);
      rep.state.store(ReplicaState::kStandby);
    }
    promote_cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> state_lock(promote_mu_);
    GV_RANK_SCOPE(lockrank::kReplicaSlot);
    rep.state.store(ReplicaState::kPrimary);
  }
  promote_cv_.notify_all();
  // Serving resumed at the notify above — the promotion latency (the
  // kill-to-serving fencing window) stops HERE; auto-restaff is background
  // work that must not inflate it.
  const double promotion_ms = watch.seconds() * 1e3;
  TraceRecorder::instance().emit("promotion", "promotion", promo_start,
                                 std::chrono::steady_clock::now(), 0.0,
                                 {{"shard", double(shard)}});
  if (cfg_.auto_restaff) {
    // Gen-2 standby on a fresh derived platform key: the fleet survives
    // back-to-back failovers with nobody in the loop.  Best effort — a
    // failed restaff leaves the slot empty for an explicit retry and never
    // fails the promotion that already landed (replicate_mu_ is still
    // held, so nothing races the fresh slot).
    try {
      TraceSpan restaff_span("promotion", "restaff");
      restaff_span.arg("shard", double(shard));
      rep.generation += 1;
      restaff_locked(shard,
                     ReplicaConfig::standby_generation_key(shard, rep.generation));
      replicate_one(shard);
      restaffs_.fetch_add(1);
    } catch (...) {
      // Slot stays empty; restaff() can retry explicitly.
    }
  }
  return promotion_ms;
}

bool ReplicaManager::await_promotion(std::uint32_t shard,
                                     std::chrono::milliseconds timeout) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  const Replica& rep = *replicas_[shard];
  std::unique_lock<std::mutex> lock(promote_mu_);
  GV_RANK_SCOPE(lockrank::kReplicaSlot);
  return promote_cv_.wait_for(lock, timeout, [&] {
    return rep.state.load() != ReplicaState::kPromoting;
  });
}

void ReplicaManager::restaff(std::uint32_t shard, const Sha256Digest& platform_key) {
  MutexLock lock(replicate_mu_);
  GV_RANK_SCOPE(lockrank::kReplicate);
  restaff_locked(shard, platform_key);
}

void ReplicaManager::restaff_locked(std::uint32_t shard,
                                    const Sha256Digest& platform_key) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  Replica& rep = *replicas_[shard];
  // Restaffable slots: a completed promotion (PRIMARY), or a STANDBY slot
  // whose enclave was consumed by a promotion that failed after adoption.
  // A live standby is not restaffed from under its own feet.
  GV_CHECK(rep.state.load() == ReplicaState::kPrimary || rep.enclave == nullptr,
           "only an empty (promoted or failed-promotion) replica slot can be "
           "restaffed");
  GV_CHECK(primary_->shard_alive(shard),
           "restaff requires the shard's primary to be alive");
  std::lock_guard<std::mutex> slot(rep.mu);
  GV_RANK_SCOPE(lockrank::kReplicaSlot);
  rep.platform_key = platform_key;
  rep.enclave = primary_->make_peer_enclave(shard, platform_key);
  rep.channel = std::make_unique<AttestedChannel>(
      primary_->shard_enclave(shard), *rep.enclave,
      primary_->shard_platform_key(shard), platform_key);
  rep.payload = ShardPayload{};
  rep.labels.clear();
  rep.sealed = SealedBlob{};
  rep.synced_epoch.store(0);
  rep.synced_topology.store(0);
  rep.ready.store(false);
  {
    std::lock_guard<std::mutex> state_lock(promote_mu_);
    GV_RANK_SCOPE(lockrank::kReplicaSlot);
    rep.state.store(ReplicaState::kStandby);
  }
}

std::vector<std::uint32_t> ReplicaManager::lookup(std::uint32_t shard,
                                                  std::span<const std::uint32_t> nodes,
                                                  double* modeled_delta) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  Replica& rep = *replicas_[shard];
  // Slot lock: a promotion that won the race must not consume the enclave
  // or label store from under this reader.
  std::lock_guard<std::mutex> slot(rep.mu);
  GV_RANK_SCOPE(lockrank::kReplicaSlot);
  GV_CHECK(rep.state.load() == ReplicaState::kStandby,
           std::string("replica is ") + replica_state_name(rep.state.load()) +
               "; lookups are served by the shard enclave");
  GV_CHECK(rep.ready.load(), "replica not yet replicated");
  // Never serve a snapshot the primary has since replaced: a standby that
  // missed a feature refresh must be promoted (re-materializing from the
  // current snapshot), not read.
  GV_CHECK(rep.synced_epoch.load() == primary_->refresh_epoch(),
           "replica label store is stale (missed a feature refresh); "
           "promotion required");
  const double before =
      rep.enclave->meter_snapshot().total_seconds(primary_->cost_model());
  auto labels = rep.enclave->ecall([&] {
    // Label-store state is read only here, inside the ecall, so the enclave
    // entry mutex serializes lookups against a concurrent sync_labels.
    GV_CHECK(!rep.labels.empty() || rep.payload.owned.empty(),
             "replica has no label store yet");
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (const auto v : nodes) {
      const auto it =
          std::lower_bound(rep.payload.owned.begin(), rep.payload.owned.end(), v);
      GV_CHECK(it != rep.payload.owned.end() && *it == v,
               "node not owned by this shard");
      out.push_back(
          rep.labels[static_cast<std::size_t>(it - rep.payload.owned.begin())]);
    }
    return out;
  });
  if (modeled_delta != nullptr) {
    *modeled_delta =
        rep.enclave->meter_snapshot().total_seconds(primary_->cost_model()) - before;
  }
  return labels;
}

Enclave& ReplicaManager::replica_enclave(std::uint32_t shard) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  GV_CHECK(replicas_[shard]->enclave != nullptr,
           "replica enclave was promoted into the deployment");
  return *replicas_[shard]->enclave;
}

const SealedBlob& ReplicaManager::sealed_payload(std::uint32_t shard) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return replicas_[shard]->sealed;
}

std::uint64_t ReplicaManager::package_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& r : replicas_) {
    if (r->channel != nullptr) sum += r->channel->package_bytes();
  }
  return sum;
}

std::uint64_t ReplicaManager::label_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& r : replicas_) {
    if (r->channel != nullptr) sum += r->channel->label_bytes();
  }
  return sum;
}

}  // namespace gv
