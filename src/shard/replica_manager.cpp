#include "shard/replica_manager.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

Sha256Digest ReplicaConfig::standby_platform_default_key() {
  Sha256 h;
  h.update(std::string("gnnvault-simulated-standby-cpu-fuse-key-v1"));
  return h.finish();
}

ReplicaManager::ReplicaManager(ShardedVaultDeployment& primary, ReplicaConfig cfg)
    : primary_(&primary), cfg_(cfg) {
  replicas_.reserve(primary.num_shards());
  for (std::uint32_t s = 0; s < primary.num_shards(); ++s) {
    auto rep = std::make_unique<Replica>();
    rep->enclave = primary.make_peer_enclave(s, cfg_.standby_platform_key);
    // Handshake now: the primary attests the standby (and vice versa)
    // before any package bytes move.
    rep->channel = std::make_unique<AttestedChannel>(
        primary.shard_enclave(s), *rep->enclave, primary.shard_platform_key(s),
        cfg_.standby_platform_key);
    replicas_.push_back(std::move(rep));
  }
}

ReplicaManager::~ReplicaManager() {
  if (pending_.valid()) {
    try {
      pending_.get();
    } catch (...) {
      // Replication failure at teardown has nobody left to report to.
    }
  }
}

void ReplicaManager::replicate_one(std::uint32_t shard) {
  Replica& rep = *replicas_[shard];
  // Primary side: package (and labels when available) leave the primary
  // enclave only through the attested channel.
  primary_->send_payload(shard, *rep.channel);
  const bool with_labels = primary_->refreshed();
  if (with_labels) primary_->send_labels(shard, *rep.channel);

  // Standby side: receive, RE-SEAL under the standby platform key, and keep
  // the label store warm.
  rep.enclave->ecall([&] {
    const auto bytes = rep.channel->recv_package(*rep.enclave);
    rep.payload = deserialize_shard_payload(bytes);
    rep.sealed = rep.enclave->seal(bytes);
    auto& mem = rep.enclave->memory();
    mem.set("replica.package", rep.payload.payload_bytes());
    if (with_labels) {
      auto block = rep.channel->recv_labels(*rep.enclave);
      GV_CHECK(block.nodes == rep.payload.owned,
               "replicated label store does not cover the shard's nodes");
      rep.labels = std::move(block.labels);
      mem.set("labels.store", rep.labels.size() * sizeof(std::uint32_t));
    }
  });
  rep.ready.store(true);
}

void ReplicaManager::replicate_all() {
  std::lock_guard<std::mutex> lock(replicate_mu_);
  for (std::uint32_t s = 0; s < replicas_.size(); ++s) replicate_one(s);
}

void ReplicaManager::replicate_async() {
  wait_ready();  // one async replication at a time
  pending_ = std::async(std::launch::async, [this] { replicate_all(); });
}

void ReplicaManager::wait_ready() {
  if (pending_.valid()) pending_.get();
}

bool ReplicaManager::ready(std::uint32_t shard) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return replicas_[shard]->ready.load();
}

void ReplicaManager::sync_labels() {
  std::lock_guard<std::mutex> lock(replicate_mu_);
  for (std::uint32_t s = 0; s < replicas_.size(); ++s) {
    Replica& rep = *replicas_[s];
    if (!rep.ready.load() || !primary_->shard_alive(s)) continue;
    primary_->send_labels(s, *rep.channel);
    rep.enclave->ecall([&] {
      auto block = rep.channel->recv_labels(*rep.enclave);
      GV_CHECK(block.nodes == rep.payload.owned,
               "replicated label store does not cover the shard's nodes");
      rep.labels = std::move(block.labels);
      rep.enclave->memory().set("labels.store",
                                rep.labels.size() * sizeof(std::uint32_t));
    });
  }
}

std::vector<std::uint32_t> ReplicaManager::lookup(std::uint32_t shard,
                                                  std::span<const std::uint32_t> nodes,
                                                  double* modeled_delta) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  Replica& rep = *replicas_[shard];
  GV_CHECK(rep.ready.load(), "replica not yet replicated");
  const double before =
      rep.enclave->meter_snapshot().total_seconds(primary_->cost_model());
  auto labels = rep.enclave->ecall([&] {
    // Label-store state is read only here, inside the ecall, so the enclave
    // entry mutex serializes lookups against a concurrent sync_labels.
    GV_CHECK(!rep.labels.empty() || rep.payload.owned.empty(),
             "replica has no label store yet");
    std::vector<std::uint32_t> out;
    out.reserve(nodes.size());
    for (const auto v : nodes) {
      const auto it =
          std::lower_bound(rep.payload.owned.begin(), rep.payload.owned.end(), v);
      GV_CHECK(it != rep.payload.owned.end() && *it == v,
               "node not owned by this shard");
      out.push_back(
          rep.labels[static_cast<std::size_t>(it - rep.payload.owned.begin())]);
    }
    return out;
  });
  if (modeled_delta != nullptr) {
    *modeled_delta =
        rep.enclave->meter_snapshot().total_seconds(primary_->cost_model()) - before;
  }
  return labels;
}

Enclave& ReplicaManager::replica_enclave(std::uint32_t shard) {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return *replicas_[shard]->enclave;
}

const SealedBlob& ReplicaManager::sealed_payload(std::uint32_t shard) const {
  GV_CHECK(shard < replicas_.size(), "shard index out of range");
  return replicas_[shard]->sealed;
}

std::uint64_t ReplicaManager::package_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& r : replicas_) sum += r->channel->package_bytes();
  return sum;
}

std::uint64_t ReplicaManager::label_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& r : replicas_) sum += r->channel->label_bytes();
  return sum;
}

}  // namespace gv
