// GraphSAGE layer with the mean aggregator (Hamilton et al. 2017):
//     H' = H W_self + (D^{-1} A H) W_neigh + b
// i.e. the "concat then project" formulation with the projection split
// into a self part and a neighbor part.  This is the first of the two
// additional GNN architectures the paper lists as future work (Sec. VI).
//
// Unlike the symmetric GCN propagation, the row-stochastic P = D^{-1}A is
// NOT symmetric, so the backward pass needs P's transpose; the layer
// takes both (built once per graph by sage_propagation()).
#pragma once

#include <memory>

#include "nn/param.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace gv {

/// Row-stochastic neighbor-mean propagation pair (P, P^T) for a graph
/// adjacency WITHOUT self loops (the self contribution has its own weight).
struct SagePropagation {
  std::shared_ptr<const CsrMatrix> p;   // D^{-1} A
  std::shared_ptr<const CsrMatrix> pt;  // (D^{-1} A)^T
};

class SageLayer {
 public:
  SageLayer() = default;
  SageLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return w_self_.value.rows(); }
  std::size_t out_dim() const { return w_self_.value.cols(); }
  std::size_t parameter_count() const {
    return w_self_.count() + w_neigh_.count() + b_.count();
  }

  Matrix forward(const SagePropagation& prop, const Matrix& x, bool training);
  Matrix forward(const SagePropagation& prop, const CsrMatrix& x, bool training);

  /// Accumulates gradients; returns dL/dx (dense-input variant only).
  Matrix backward(const SagePropagation& prop, const Matrix& dy);
  void backward_sparse_input(const SagePropagation& prop, const Matrix& dy);

  Parameter& weight_self() { return w_self_; }
  Parameter& weight_neigh() { return w_neigh_; }
  VectorParameter& bias() { return b_; }
  void collect_parameters(ParamRefs& refs);

 private:
  Parameter w_self_;
  Parameter w_neigh_;
  VectorParameter b_;
  Matrix cached_dense_input_;
  Matrix cached_aggregated_;            // P x (cached for both variants)
  const CsrMatrix* cached_sparse_input_ = nullptr;
  bool cached_sparse_ = false;
};

}  // namespace gv
