#include "nn/param.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gv {

void Parameter::init_zero(std::size_t rows, std::size_t cols) {
  value = Matrix(rows, cols, 0.0f);
  grad = Matrix(rows, cols, 0.0f);
  m = Matrix(rows, cols, 0.0f);
  v = Matrix(rows, cols, 0.0f);
}

void Parameter::init_glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  init_zero(rows, cols);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (std::size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void Parameter::zero_grad() { grad.fill(0.0f); }

void VectorParameter::init_zero(std::size_t n) {
  value.assign(n, 0.0f);
  grad.assign(n, 0.0f);
  m.assign(n, 0.0f);
  v.assign(n, 0.0f);
}

void VectorParameter::zero_grad() { std::fill(grad.begin(), grad.end(), 0.0f); }

std::size_t ParamRefs::total_count() const {
  std::size_t n = 0;
  for (const auto* p : matrices) n += p->count();
  for (const auto* p : vectors) n += p->count();
  return n;
}

void ParamRefs::zero_grad() {
  for (auto* p : matrices) p->zero_grad();
  for (auto* p : vectors) p->zero_grad();
}

void Adam::step(ParamRefs& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  const float lr = static_cast<float>(cfg_.lr);
  const float b1 = static_cast<float>(cfg_.beta1);
  const float b2 = static_cast<float>(cfg_.beta2);
  const float eps = static_cast<float>(cfg_.eps);
  const float wd = static_cast<float>(cfg_.weight_decay);
  const float ibc1 = static_cast<float>(1.0 / bc1);
  const float ibc2 = static_cast<float>(1.0 / bc2);

  for (auto* p : params.matrices) {
    GV_ASSERT(p->grad.size() == p->value.size(), "parameter grad shape mismatch");
    float* w = p->value.data();
    const float* g0 = p->grad.data();
    float* m = p->m.data();
    float* v = p->v.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = g0[i] + wd * w[i];  // L2 regularization
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float mh = m[i] * ibc1;
      const float vh = v[i] * ibc2;
      w[i] -= lr * mh / (std::sqrt(vh) + eps);
    }
  }
  for (auto* p : params.vectors) {
    float* w = p->value.data();
    const float* g0 = p->grad.data();
    float* m = p->m.data();
    float* v = p->v.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = g0[i];  // no decay on biases
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float mh = m[i] * ibc1;
      const float vh = v[i] * ibc2;
      w[i] -= lr * mh / (std::sqrt(vh) + eps);
    }
  }
}

}  // namespace gv
