#include "nn/sage_layer.hpp"

#include "common/error.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gv {

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  w_self_.init_glorot(in_dim, out_dim, rng);
  w_neigh_.init_glorot(in_dim, out_dim, rng);
  b_.init_zero(out_dim);
}

namespace {
void check_prop(const SagePropagation& prop, std::size_t n) {
  GV_CHECK(prop.p != nullptr && prop.pt != nullptr,
           "SagePropagation must carry P and P^T");
  GV_CHECK(prop.p->rows() == n && prop.p->cols() == n, "P shape mismatch");
  GV_CHECK(prop.pt->rows() == n && prop.pt->cols() == n, "P^T shape mismatch");
}
}  // namespace

Matrix SageLayer::forward(const SagePropagation& prop, const Matrix& x,
                          bool training) {
  GV_CHECK(x.cols() == in_dim(), "SageLayer input dim mismatch");
  check_prop(prop, x.rows());
  Matrix agg = spmm(*prop.p, x);
  if (training) {
    cached_dense_input_ = x;
    cached_aggregated_ = agg;
    cached_sparse_input_ = nullptr;
    cached_sparse_ = false;
  }
  Matrix y = matmul(x, w_self_.value);
  matmul_acc(agg, w_neigh_.value, y);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix SageLayer::forward(const SagePropagation& prop, const CsrMatrix& x,
                          bool training) {
  GV_CHECK(x.cols() == in_dim(), "SageLayer sparse input dim mismatch");
  check_prop(prop, x.rows());
  // P (n x n sparse) times x (n x d sparse): densify the aggregate via
  // spmm over x's dense projection row-block-wise. For the feature sizes
  // used here, aggregating the sparse input densely is acceptable.
  Matrix xd = x.to_dense();
  Matrix agg = spmm(*prop.p, xd);
  if (training) {
    cached_sparse_input_ = &x;
    cached_aggregated_ = agg;
    cached_dense_input_ = Matrix();
    cached_sparse_ = true;
  }
  Matrix y = spmm(x, w_self_.value);
  matmul_acc(agg, w_neigh_.value, y);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix SageLayer::backward(const SagePropagation& prop, const Matrix& dy) {
  GV_CHECK(!cached_sparse_, "backward() called after sparse-input forward");
  GV_CHECK(!cached_dense_input_.empty(),
           "backward() requires a training-mode forward first");
  // y = x Ws + (P x) Wn + b
  w_self_.grad += matmul_tn(cached_dense_input_, dy);
  w_neigh_.grad += matmul_tn(cached_aggregated_, dy);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
  // dx = dy Ws' + P' (dy Wn')
  Matrix dx = matmul_nt(dy, w_self_.value);
  dx += spmm(*prop.pt, matmul_nt(dy, w_neigh_.value));
  return dx;
}

void SageLayer::backward_sparse_input(const SagePropagation& prop,
                                      const Matrix& dy) {
  (void)prop;
  GV_CHECK(cached_sparse_ && cached_sparse_input_ != nullptr,
           "backward_sparse_input() requires a sparse training forward first");
  w_self_.grad += spmm_tn(*cached_sparse_input_, dy);
  w_neigh_.grad += matmul_tn(cached_aggregated_, dy);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
}

void SageLayer::collect_parameters(ParamRefs& refs) {
  refs.matrices.push_back(&w_self_);
  refs.matrices.push_back(&w_neigh_);
  refs.vectors.push_back(&b_);
}

}  // namespace gv
