#include "nn/trainer.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "data/dataset.hpp"

namespace gv {

TrainResult train_node_classifier(NodeModel& model, const CsrMatrix& features,
                                  const std::vector<std::uint32_t>& labels,
                                  const std::vector<std::uint32_t>& train_mask,
                                  const TrainConfig& cfg) {
  GV_CHECK(!train_mask.empty(), "empty training mask");
  GV_CHECK(cfg.epochs > 0, "epochs must be positive");

  ParamRefs params;
  model.collect_parameters(params);
  Adam opt(cfg.adam);

  TrainResult result;
  result.loss_history.reserve(cfg.epochs);
  Matrix dlogp;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    params.zero_grad();
    const Matrix logits = model.forward(features, /*training=*/true);
    const Matrix logp = log_softmax_rows(logits);
    const double loss = nll_loss_masked(logp, labels, train_mask, dlogp);
    const Matrix dlogits = log_softmax_backward(dlogp, logp);
    model.backward(dlogits);
    opt.step(params);
    result.loss_history.push_back(loss);
    if (cfg.verbose && (epoch % 25 == 0 || epoch + 1 == cfg.epochs)) {
      GV_LOG_INFO << "epoch " << epoch << " loss " << loss;
    }
  }
  result.final_loss = result.loss_history.back();
  const auto preds = predict(model, features);
  result.train_accuracy = accuracy_on(preds, labels, train_mask);
  return result;
}

std::vector<std::uint32_t> predict(NodeModel& model, const CsrMatrix& features) {
  const Matrix logits = model.forward(features, /*training=*/false);
  return argmax_rows(logits);
}

double evaluate_accuracy(NodeModel& model, const CsrMatrix& features,
                         const std::vector<std::uint32_t>& labels,
                         const std::vector<std::uint32_t>& node_set) {
  const auto preds = predict(model, features);
  return accuracy_on(preds, labels, node_set);
}

}  // namespace gv
