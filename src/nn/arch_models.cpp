#include "nn/arch_models.hpp"

#include "common/error.hpp"
#include "graph/normalize.hpp"

namespace gv {

SagePropagation make_sage_propagation(const Graph& g) {
  SagePropagation prop;
  auto p = row_normalize(g.adjacency_csr(/*add_self_loops=*/false));
  prop.pt = std::make_shared<const CsrMatrix>(p.transposed());
  prop.p = std::make_shared<const CsrMatrix>(std::move(p));
  return prop;
}

SageModel::SageModel(Config cfg, SagePropagation prop, Rng& rng)
    : cfg_(std::move(cfg)), prop_(std::move(prop)), dropout_rng_(rng.split()) {
  GV_CHECK(cfg_.input_dim > 0, "SageModel requires input_dim > 0");
  GV_CHECK(!cfg_.channels.empty(), "SageModel requires at least one layer");
  std::size_t in = cfg_.input_dim;
  layers_.reserve(cfg_.channels.size());
  for (const std::size_t out : cfg_.channels) {
    layers_.emplace_back(in, out, rng);
    in = out;
  }
}

Matrix SageModel::forward(const CsrMatrix& features, bool training) {
  outputs_.clear();
  pre_activations_.clear();
  masks_.clear();
  trained_forward_ = training;
  Matrix h;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const bool last = (k + 1 == layers_.size());
    Matrix z = (k == 0) ? layers_[k].forward(prop_, features, training)
                        : layers_[k].forward(prop_, h, training);
    if (training) pre_activations_.push_back(z);
    if (!last) {
      h = relu(z);
      if (training && cfg_.dropout > 0.0f) {
        masks_.push_back(dropout_forward(h, cfg_.dropout, dropout_rng_));
      }
    } else {
      h = z;
    }
    outputs_.push_back(h);
  }
  return outputs_.back();
}

void SageModel::backward(const Matrix& dlogits) {
  GV_CHECK(trained_forward_, "backward() requires a training-mode forward");
  Matrix d = dlogits;
  for (std::size_t k = layers_.size(); k-- > 0;) {
    const bool last = (k + 1 == layers_.size());
    if (!last) {
      if (cfg_.dropout > 0.0f) dropout_backward(d, masks_[k]);
      d = relu_backward(d, pre_activations_[k]);
    }
    if (k == 0) {
      layers_[k].backward_sparse_input(prop_, d);
    } else {
      d = layers_[k].backward(prop_, d);
    }
  }
}

void SageModel::collect_parameters(ParamRefs& refs) {
  for (auto& l : layers_) l.collect_parameters(refs);
}

GatModel::GatModel(Config cfg, std::shared_ptr<const CsrMatrix> adjacency, Rng& rng)
    : cfg_(std::move(cfg)), adj_(std::move(adjacency)), dropout_rng_(rng.split()) {
  GV_CHECK(cfg_.input_dim > 0, "GatModel requires input_dim > 0");
  GV_CHECK(!cfg_.channels.empty(), "GatModel requires at least one layer");
  GV_CHECK(adj_ != nullptr, "GatModel requires an adjacency (with self-loops)");
  std::size_t in = cfg_.input_dim;
  layers_.reserve(cfg_.channels.size());
  for (const std::size_t out : cfg_.channels) {
    layers_.emplace_back(in, out, rng, cfg_.leaky_slope);
    in = out;
  }
}

Matrix GatModel::forward(const CsrMatrix& features, bool training) {
  outputs_.clear();
  pre_activations_.clear();
  masks_.clear();
  trained_forward_ = training;
  // GAT's attention needs dense z rows; densify the input once per call.
  dense_features_ = features.to_dense();
  Matrix h;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const bool last = (k + 1 == layers_.size());
    Matrix z = layers_[k].forward(*adj_, k == 0 ? dense_features_ : h, training);
    if (training) pre_activations_.push_back(z);
    if (!last) {
      h = relu(z);
      if (training && cfg_.dropout > 0.0f) {
        masks_.push_back(dropout_forward(h, cfg_.dropout, dropout_rng_));
      }
    } else {
      h = z;
    }
    outputs_.push_back(h);
  }
  return outputs_.back();
}

void GatModel::backward(const Matrix& dlogits) {
  GV_CHECK(trained_forward_, "backward() requires a training-mode forward");
  Matrix d = dlogits;
  for (std::size_t k = layers_.size(); k-- > 0;) {
    const bool last = (k + 1 == layers_.size());
    if (!last) {
      if (cfg_.dropout > 0.0f) dropout_backward(d, masks_[k]);
      d = relu_backward(d, pre_activations_[k]);
    }
    d = layers_[k].backward(*adj_, d);  // input gradient of layer 0 unused
  }
}

void GatModel::collect_parameters(ParamRefs& refs) {
  for (auto& l : layers_) l.collect_parameters(refs);
}

}  // namespace gv
