// One graph-convolution layer implementing the paper's Eq. 1:
//     H^(k) = Â · H^(k-1) · W^(k) + b^(k)
// (the nonlinearity is applied by the owning model so that layers can be
// freely composed into backbones and rectifiers).
//
// The layer supports a dense input (hidden layers, rectifier layers) or a
// sparse CSR input (the raw bag-of-words features at the first layer),
// which keeps first-layer training cheap on 1k+-dimensional features.
#pragma once

#include <cstdint>

#include "nn/param.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace gv {

class GcnLayer {
 public:
  GcnLayer() = default;

  /// in/out channel sizes; weights Glorot-initialized.
  GcnLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return w_.value.rows(); }
  std::size_t out_dim() const { return w_.value.cols(); }
  std::size_t parameter_count() const { return w_.count() + b_.count(); }

  /// Forward with dense input; `adj` is the normalized adjacency Â.
  /// Caches what backward() needs when `training` is true.
  Matrix forward(const CsrMatrix& adj, const Matrix& x, bool training);

  /// Forward with sparse input (first layer over raw features).
  Matrix forward(const CsrMatrix& adj, const CsrMatrix& x, bool training);

  /// Inference-only forward against a rectangular sub-adjacency whose rows
  /// are an output frontier and whose columns index the rows of `x` (the
  /// input frontier). Used by batched node-subset serving; never caches.
  Matrix forward_subgraph(const CsrMatrix& sub_adj, const Matrix& x) const;

  /// Backward: given dL/d(output), accumulates dW, db and returns dL/d(input).
  /// For the sparse-input variant the input gradient is not needed (features
  /// are not trainable), so `backward_sparse_input` skips computing it.
  Matrix backward(const CsrMatrix& adj, const Matrix& dy);
  void backward_sparse_input(const CsrMatrix& adj, const Matrix& dy);

  Parameter& weight() { return w_; }
  const Parameter& weight() const { return w_; }
  VectorParameter& bias() { return b_; }
  const VectorParameter& bias() const { return b_; }

  void collect_parameters(ParamRefs& refs);

 private:
  Parameter w_;
  VectorParameter b_;
  // Cached forward state (training mode only).
  Matrix cached_dense_input_;
  const CsrMatrix* cached_sparse_input_ = nullptr;
  bool cached_sparse_ = false;
};

}  // namespace gv
