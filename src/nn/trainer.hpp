// Full-batch semi-supervised trainer (paper Sec. V-A recipe: Adam, 20
// labeled nodes per class, cross-entropy on the labeled set).
#pragma once

#include <vector>

#include "nn/model.hpp"
#include "nn/param.hpp"

namespace gv {

struct TrainConfig {
  int epochs = 150;
  Adam::Config adam;       // lr 0.01, weight decay 5e-4 by default
  bool verbose = false;    // log loss every 25 epochs
};

struct TrainResult {
  std::vector<double> loss_history;
  double final_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Train `model` to classify nodes; labels are read only at `train_mask`
/// rows. Returns the loss trajectory and final train accuracy.
TrainResult train_node_classifier(NodeModel& model, const CsrMatrix& features,
                                  const std::vector<std::uint32_t>& labels,
                                  const std::vector<std::uint32_t>& train_mask,
                                  const TrainConfig& cfg = {});

/// Inference-mode class predictions for every node.
std::vector<std::uint32_t> predict(NodeModel& model, const CsrMatrix& features);

/// Inference-mode accuracy over `node_set`.
double evaluate_accuracy(NodeModel& model, const CsrMatrix& features,
                         const std::vector<std::uint32_t>& labels,
                         const std::vector<std::uint32_t>& node_set);

}  // namespace gv
