// Node-classification models built from the future-work layer types
// (paper Sec. VI): GraphSAGE (mean aggregator) and GAT (attention).
// Both implement the same NodeModel interface as GcnModel/MlpModel, so
// they drop into the trainer, the attack harness, and ablations.
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "nn/gat_layer.hpp"
#include "nn/model.hpp"
#include "nn/sage_layer.hpp"

namespace gv {

/// Build the (P, P^T) mean-aggregation pair for a graph.
SagePropagation make_sage_propagation(const Graph& g);

class SageModel : public NodeModel {
 public:
  struct Config {
    std::size_t input_dim = 0;
    std::vector<std::size_t> channels;
    float dropout = 0.5f;
  };

  SageModel(Config cfg, SagePropagation prop, Rng& rng);

  Matrix forward(const CsrMatrix& features, bool training) override;
  void backward(const Matrix& dlogits) override;
  void collect_parameters(ParamRefs& refs) override;
  const std::vector<Matrix>& layer_outputs() const override { return outputs_; }
  std::vector<std::size_t> layer_dims() const override { return cfg_.channels; }

 private:
  Config cfg_;
  SagePropagation prop_;
  std::vector<SageLayer> layers_;
  Rng dropout_rng_;
  std::vector<Matrix> pre_activations_;
  std::vector<Matrix> outputs_;
  std::vector<DropoutMask> masks_;
  bool trained_forward_ = false;
};

class GatModel : public NodeModel {
 public:
  struct Config {
    std::size_t input_dim = 0;
    std::vector<std::size_t> channels;
    float dropout = 0.5f;
    float leaky_slope = 0.2f;
  };

  /// `adjacency` must include self-loops (use Graph::adjacency_csr(true)).
  GatModel(Config cfg, std::shared_ptr<const CsrMatrix> adjacency, Rng& rng);

  Matrix forward(const CsrMatrix& features, bool training) override;
  void backward(const Matrix& dlogits) override;
  void collect_parameters(ParamRefs& refs) override;
  const std::vector<Matrix>& layer_outputs() const override { return outputs_; }
  std::vector<std::size_t> layer_dims() const override { return cfg_.channels; }

 private:
  Config cfg_;
  std::shared_ptr<const CsrMatrix> adj_;
  std::vector<GatLayer> layers_;
  Rng dropout_rng_;
  std::vector<Matrix> pre_activations_;
  std::vector<Matrix> outputs_;
  std::vector<DropoutMask> masks_;
  Matrix dense_features_;  // GAT's first layer densifies the sparse input
  bool trained_forward_ = false;
};

}  // namespace gv
