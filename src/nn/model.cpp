#include "nn/model.hpp"

#include "common/error.hpp"

namespace gv {

std::size_t NodeModel::parameter_count() {
  ParamRefs refs;
  collect_parameters(refs);
  return refs.total_count();
}

GcnModel::GcnModel(GcnConfig cfg, std::shared_ptr<const CsrMatrix> adjacency,
                   Rng& rng)
    : cfg_(std::move(cfg)), adj_(std::move(adjacency)), dropout_rng_(rng.split()) {
  GV_CHECK(cfg_.input_dim > 0, "GcnModel requires input_dim > 0");
  GV_CHECK(!cfg_.channels.empty(), "GcnModel requires at least one layer");
  GV_CHECK(adj_ != nullptr, "GcnModel requires an adjacency");
  std::size_t in = cfg_.input_dim;
  layers_.reserve(cfg_.channels.size());
  for (const std::size_t out : cfg_.channels) {
    layers_.emplace_back(in, out, rng);
    in = out;
  }
}

void GcnModel::set_adjacency(std::shared_ptr<const CsrMatrix> adjacency) {
  GV_CHECK(adjacency != nullptr, "adjacency must not be null");
  adj_ = std::move(adjacency);
}

Matrix GcnModel::forward(const CsrMatrix& features, bool training) {
  outputs_.clear();
  pre_activations_.clear();
  masks_.clear();
  trained_forward_ = training;

  Matrix h;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const bool last = (k + 1 == layers_.size());
    Matrix z = (k == 0) ? layers_[k].forward(*adj_, features, training)
                        : layers_[k].forward(*adj_, h, training);
    if (training) pre_activations_.push_back(z);
    if (!last) {
      h = relu(z);
      if (training && cfg_.dropout > 0.0f) {
        masks_.push_back(dropout_forward(h, cfg_.dropout, dropout_rng_));
      }
    } else {
      h = z;  // logits
    }
    outputs_.push_back(h);
  }
  return outputs_.back();
}

void GcnModel::backward(const Matrix& dlogits) {
  GV_CHECK(trained_forward_, "backward() requires a training-mode forward");
  Matrix d = dlogits;
  for (std::size_t k = layers_.size(); k-- > 0;) {
    const bool last = (k + 1 == layers_.size());
    if (!last) {
      // d arrived w.r.t. the post-dropout activation; undo dropout, then ReLU.
      if (cfg_.dropout > 0.0f) dropout_backward(d, masks_[k]);
      d = relu_backward(d, pre_activations_[k]);
    }
    if (k == 0) {
      layers_[k].backward_sparse_input(*adj_, d);
    } else {
      d = layers_[k].backward(*adj_, d);
    }
  }
}

void GcnModel::collect_parameters(ParamRefs& refs) {
  for (auto& l : layers_) l.collect_parameters(refs);
}

std::vector<std::size_t> GcnModel::layer_dims() const { return cfg_.channels; }

MlpModel::MlpModel(MlpConfig cfg, Rng& rng)
    : cfg_(std::move(cfg)), dropout_rng_(rng.split()) {
  GV_CHECK(cfg_.input_dim > 0, "MlpModel requires input_dim > 0");
  GV_CHECK(!cfg_.channels.empty(), "MlpModel requires at least one layer");
  std::size_t in = cfg_.input_dim;
  layers_.reserve(cfg_.channels.size());
  for (const std::size_t out : cfg_.channels) {
    layers_.emplace_back(in, out, rng);
    in = out;
  }
}

Matrix MlpModel::forward(const CsrMatrix& features, bool training) {
  outputs_.clear();
  pre_activations_.clear();
  masks_.clear();
  trained_forward_ = training;

  Matrix h;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const bool last = (k + 1 == layers_.size());
    Matrix z = (k == 0) ? layers_[k].forward(features, training)
                        : layers_[k].forward(h, training);
    if (training) pre_activations_.push_back(z);
    if (!last) {
      h = relu(z);
      if (training && cfg_.dropout > 0.0f) {
        masks_.push_back(dropout_forward(h, cfg_.dropout, dropout_rng_));
      }
    } else {
      h = z;
    }
    outputs_.push_back(h);
  }
  return outputs_.back();
}

void MlpModel::backward(const Matrix& dlogits) {
  GV_CHECK(trained_forward_, "backward() requires a training-mode forward");
  Matrix d = dlogits;
  for (std::size_t k = layers_.size(); k-- > 0;) {
    const bool last = (k + 1 == layers_.size());
    if (!last) {
      if (cfg_.dropout > 0.0f) dropout_backward(d, masks_[k]);
      d = relu_backward(d, pre_activations_[k]);
    }
    if (k == 0) {
      layers_[k].backward_sparse_input(d);
    } else {
      d = layers_[k].backward(d);
    }
  }
}

void MlpModel::collect_parameters(ParamRefs& refs) {
  for (auto& l : layers_) l.collect_parameters(refs);
}

std::vector<std::size_t> MlpModel::layer_dims() const { return cfg_.channels; }

}  // namespace gv
