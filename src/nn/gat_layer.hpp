// Graph attention layer (Velickovic et al. 2018), single head:
//     z_i  = W' x_i
//     e_ij = LeakyReLU(a_src . z_i + a_dst . z_j)   for j in N(i) u {i}
//     α_ij = softmax_j(e_ij)
//     y_i  = Σ_j α_ij z_j + b
// The second architecture from the paper's future work (Sec. VI). The
// neighbor structure is the binary adjacency WITH self-loops; attention
// replaces the fixed GCN normalization.
#pragma once

#include <memory>

#include "nn/param.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace gv {

class GatLayer {
 public:
  GatLayer() = default;
  GatLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng,
           float leaky_slope = 0.2f);

  std::size_t in_dim() const { return w_.value.rows(); }
  std::size_t out_dim() const { return w_.value.cols(); }
  std::size_t parameter_count() const {
    return w_.count() + a_src_.count() + a_dst_.count() + b_.count();
  }

  /// `adj` must be the binary adjacency with self-loops (values ignored).
  Matrix forward(const CsrMatrix& adj, const Matrix& x, bool training);

  /// Accumulates gradients; returns dL/dx.
  Matrix backward(const CsrMatrix& adj, const Matrix& dy);

  Parameter& weight() { return w_; }
  VectorParameter& attention_src() { return a_src_; }
  VectorParameter& attention_dst() { return a_dst_; }
  VectorParameter& bias() { return b_; }
  void collect_parameters(ParamRefs& refs);

 private:
  Parameter w_;
  VectorParameter a_src_;  // length out_dim
  VectorParameter a_dst_;
  VectorParameter b_;
  float leaky_slope_ = 0.2f;

  // Cached forward state (training mode).
  Matrix cached_input_;
  Matrix cached_z_;
  std::vector<float> cached_alpha_;   // per stored edge, aligned with adj CSR
  std::vector<float> cached_pre_;     // pre-LeakyReLU scores per edge
};

}  // namespace gv
