// Trainable parameters and the Adam optimizer.
//
// GNNVault trains three kinds of models (original GCN, public backbone,
// private rectifier) with full-batch Adam, matching the paper's standard
// semi-supervised GCN training recipe.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gv {

/// A trainable weight matrix with gradient and Adam moment buffers.
struct Parameter {
  Matrix value;
  Matrix grad;
  Matrix m;  // first moment
  Matrix v;  // second moment

  void init_zero(std::size_t rows, std::size_t cols);
  /// Glorot/Xavier uniform initialization.
  void init_glorot(std::size_t rows, std::size_t cols, Rng& rng);
  void zero_grad();
  std::size_t count() const { return value.size(); }
};

/// A trainable bias vector with gradient and Adam moment buffers.
struct VectorParameter {
  std::vector<float> value;
  std::vector<float> grad;
  std::vector<float> m;
  std::vector<float> v;

  void init_zero(std::size_t n);
  void zero_grad();
  std::size_t count() const { return value.size(); }
};

/// References to every parameter of a model, filled by collect_parameters.
struct ParamRefs {
  std::vector<Parameter*> matrices;
  std::vector<VectorParameter*> vectors;

  std::size_t total_count() const;
  void zero_grad();
};

/// Adam with decoupled-from-schedule L2 weight decay on matrices only
/// (biases are not decayed, following common GCN practice).
class Adam {
 public:
  struct Config {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 5e-4;
  };

  Adam();
  explicit Adam(Config cfg) : cfg_(cfg) {}

  const Config& config() const { return cfg_; }

  /// Apply one update step to all parameters (increments the step counter).
  void step(ParamRefs& params);

  std::uint64_t steps_taken() const { return t_; }

 private:
  Config cfg_;
  std::uint64_t t_ = 0;
};

inline Adam::Adam() : cfg_(Config{}) {}

}  // namespace gv
