// Fully-connected layer: y = x W + b.
// Used by the DNN (MLP) backbone baseline of Table III and by the
// link-stealing attack's baseline model M_base.
#pragma once

#include "nn/param.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace gv {

class DenseLayer {
 public:
  DenseLayer() = default;
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return w_.value.rows(); }
  std::size_t out_dim() const { return w_.value.cols(); }
  std::size_t parameter_count() const { return w_.count() + b_.count(); }

  Matrix forward(const Matrix& x, bool training);
  Matrix forward(const CsrMatrix& x, bool training);

  /// Accumulates dW/db; returns dL/dx for the dense-input variant.
  Matrix backward(const Matrix& dy);
  void backward_sparse_input(const Matrix& dy);

  Parameter& weight() { return w_; }
  VectorParameter& bias() { return b_; }
  void collect_parameters(ParamRefs& refs);

 private:
  Parameter w_;
  VectorParameter b_;
  Matrix cached_dense_input_;
  const CsrMatrix* cached_sparse_input_ = nullptr;
  bool cached_sparse_ = false;
};

}  // namespace gv
