// Node-classification models.
//
//   GcnModel : stacked GCN layers (Eq. 1) — used for the original
//              (unprotected) GNN and the public GNN backbone, differing
//              only in which adjacency they are given (real vs substitute).
//   MlpModel : stacked dense layers — the "DNN backbone" of Table III and
//              the link-stealing baseline M_base.
//
// Both expose per-layer post-activation embeddings: the rectifier consumes
// backbone embeddings, and the link-stealing attack measures similarity on
// every embedding an attacker can observe.
#pragma once

#include <memory>
#include <vector>

#include "nn/dense_layer.hpp"
#include "nn/gcn_layer.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace gv {

/// Abstract full-batch node classifier.
class NodeModel {
 public:
  virtual ~NodeModel() = default;

  /// Forward over all nodes; returns logits [n, C]. When `training`, caches
  /// state for backward() and applies dropout.
  virtual Matrix forward(const CsrMatrix& features, bool training) = 0;

  /// Backward from dL/dlogits (training forward must precede).
  virtual void backward(const Matrix& dlogits) = 0;

  virtual void collect_parameters(ParamRefs& refs) = 0;

  /// Post-activation embedding of every layer from the most recent forward;
  /// the last entry is the logits.
  virtual const std::vector<Matrix>& layer_outputs() const = 0;

  /// Output channel size of every layer.
  virtual std::vector<std::size_t> layer_dims() const = 0;

  std::size_t parameter_count();
};

struct GcnConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> channels;  // hidden..., num_classes
  float dropout = 0.5f;
};

class GcnModel : public NodeModel {
 public:
  /// `adjacency` is the normalized propagation matrix Â the model uses for
  /// every layer (real graph for the original GNN, substitute for the
  /// backbone). Held by shared_ptr: deployments share one copy.
  GcnModel(GcnConfig cfg, std::shared_ptr<const CsrMatrix> adjacency, Rng& rng);

  Matrix forward(const CsrMatrix& features, bool training) override;
  void backward(const Matrix& dlogits) override;
  void collect_parameters(ParamRefs& refs) override;
  const std::vector<Matrix>& layer_outputs() const override { return outputs_; }
  std::vector<std::size_t> layer_dims() const override;

  std::size_t num_layers() const { return layers_.size(); }
  GcnLayer& layer(std::size_t i) { return layers_[i]; }
  const CsrMatrix& adjacency() const { return *adj_; }
  /// Swap the propagation matrix (used by ablations).
  void set_adjacency(std::shared_ptr<const CsrMatrix> adjacency);

 private:
  GcnConfig cfg_;
  std::shared_ptr<const CsrMatrix> adj_;
  std::vector<GcnLayer> layers_;
  Rng dropout_rng_;
  // Cached training state.
  std::vector<Matrix> pre_activations_;
  std::vector<Matrix> outputs_;
  std::vector<DropoutMask> masks_;
  bool trained_forward_ = false;
};

struct MlpConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> channels;
  float dropout = 0.5f;
};

class MlpModel : public NodeModel {
 public:
  MlpModel(MlpConfig cfg, Rng& rng);

  Matrix forward(const CsrMatrix& features, bool training) override;
  void backward(const Matrix& dlogits) override;
  void collect_parameters(ParamRefs& refs) override;
  const std::vector<Matrix>& layer_outputs() const override { return outputs_; }
  std::vector<std::size_t> layer_dims() const override;

  std::size_t num_layers() const { return layers_.size(); }
  DenseLayer& layer(std::size_t i) { return layers_[i]; }

 private:
  MlpConfig cfg_;
  std::vector<DenseLayer> layers_;
  Rng dropout_rng_;
  std::vector<Matrix> pre_activations_;
  std::vector<Matrix> outputs_;
  std::vector<DropoutMask> masks_;
  bool trained_forward_ = false;
};

}  // namespace gv
