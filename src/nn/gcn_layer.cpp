#include "nn/gcn_layer.hpp"

#include "common/error.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gv {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  w_.init_glorot(in_dim, out_dim, rng);
  b_.init_zero(out_dim);
}

Matrix GcnLayer::forward(const CsrMatrix& adj, const Matrix& x, bool training) {
  GV_CHECK(x.cols() == in_dim(), "GcnLayer dense input dim mismatch");
  GV_CHECK(adj.rows() == adj.cols() && adj.rows() == x.rows(),
           "GcnLayer adjacency shape mismatch");
  if (training) {
    cached_dense_input_ = x;
    cached_sparse_input_ = nullptr;
    cached_sparse_ = false;
  }
  Matrix xw = matmul(x, w_.value);
  Matrix y = spmm(adj, xw);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix GcnLayer::forward(const CsrMatrix& adj, const CsrMatrix& x, bool training) {
  GV_CHECK(x.cols() == in_dim(), "GcnLayer sparse input dim mismatch");
  GV_CHECK(adj.rows() == adj.cols() && adj.rows() == x.rows(),
           "GcnLayer adjacency shape mismatch");
  if (training) {
    cached_sparse_input_ = &x;
    cached_sparse_ = true;
    cached_dense_input_ = Matrix();
  }
  Matrix xw = spmm(x, w_.value);
  Matrix y = spmm(adj, xw);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix GcnLayer::forward_subgraph(const CsrMatrix& sub_adj, const Matrix& x) const {
  GV_CHECK(x.cols() == in_dim(), "GcnLayer dense input dim mismatch");
  GV_CHECK(sub_adj.cols() == x.rows(), "GcnLayer sub-adjacency shape mismatch");
  // Empty output frontier (a shard touched only as a halo provider): skip
  // the x·W GEMM entirely instead of multiplying rows nobody aggregates.
  if (sub_adj.rows() == 0) return Matrix(0, out_dim());
  Matrix xw = matmul(x, w_.value);
  Matrix y = spmm(sub_adj, xw);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix GcnLayer::backward(const CsrMatrix& adj, const Matrix& dy) {
  GV_CHECK(!cached_sparse_, "backward() called after sparse-input forward");
  GV_CHECK(!cached_dense_input_.empty(),
           "backward() requires a training-mode forward first");
  // y = Â (x W) + b ; Â is symmetric, so d(xW) = Â' dy = Â dy.
  Matrix dxw = spmm(adj, dy);
  // dW = x' dxw ; db = colsum(dy) ; dx = dxw W'.
  w_.grad += matmul_tn(cached_dense_input_, dxw);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
  return matmul_nt(dxw, w_.value);
}

void GcnLayer::backward_sparse_input(const CsrMatrix& adj, const Matrix& dy) {
  GV_CHECK(cached_sparse_ && cached_sparse_input_ != nullptr,
           "backward_sparse_input() requires a sparse training forward first");
  Matrix dxw = spmm(adj, dy);
  w_.grad += spmm_tn(*cached_sparse_input_, dxw);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
}

void GcnLayer::collect_parameters(ParamRefs& refs) {
  refs.matrices.push_back(&w_);
  refs.vectors.push_back(&b_);
}

}  // namespace gv
