#include "nn/dense_layer.hpp"

#include "common/error.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gv {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  w_.init_glorot(in_dim, out_dim, rng);
  b_.init_zero(out_dim);
}

Matrix DenseLayer::forward(const Matrix& x, bool training) {
  GV_CHECK(x.cols() == in_dim(), "DenseLayer input dim mismatch");
  if (training) {
    cached_dense_input_ = x;
    cached_sparse_input_ = nullptr;
    cached_sparse_ = false;
  }
  Matrix y = matmul(x, w_.value);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix DenseLayer::forward(const CsrMatrix& x, bool training) {
  GV_CHECK(x.cols() == in_dim(), "DenseLayer sparse input dim mismatch");
  if (training) {
    cached_sparse_input_ = &x;
    cached_sparse_ = true;
    cached_dense_input_ = Matrix();
  }
  Matrix y = spmm(x, w_.value);
  add_bias_rows(y, b_.value);
  return y;
}

Matrix DenseLayer::backward(const Matrix& dy) {
  GV_CHECK(!cached_sparse_, "backward() called after sparse-input forward");
  GV_CHECK(!cached_dense_input_.empty(),
           "backward() requires a training-mode forward first");
  w_.grad += matmul_tn(cached_dense_input_, dy);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
  return matmul_nt(dy, w_.value);
}

void DenseLayer::backward_sparse_input(const Matrix& dy) {
  GV_CHECK(cached_sparse_ && cached_sparse_input_ != nullptr,
           "backward_sparse_input() requires a sparse training forward first");
  w_.grad += spmm_tn(*cached_sparse_input_, dy);
  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];
}

void DenseLayer::collect_parameters(ParamRefs& refs) {
  refs.matrices.push_back(&w_);
  refs.vectors.push_back(&b_);
}

}  // namespace gv
