#include "nn/gat_layer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gv {

GatLayer::GatLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng,
                   float leaky_slope)
    : leaky_slope_(leaky_slope) {
  w_.init_glorot(in_dim, out_dim, rng);
  a_src_.init_zero(out_dim);
  a_dst_.init_zero(out_dim);
  // Attention vectors: small random init (zero would kill the gradient
  // symmetry between src and dst).
  const float limit = std::sqrt(3.0f / static_cast<float>(out_dim));
  for (auto& v : a_src_.value) v = static_cast<float>(rng.uniform(-limit, limit));
  for (auto& v : a_dst_.value) v = static_cast<float>(rng.uniform(-limit, limit));
  b_.init_zero(out_dim);
}

Matrix GatLayer::forward(const CsrMatrix& adj, const Matrix& x, bool training) {
  GV_CHECK(x.cols() == in_dim(), "GatLayer input dim mismatch");
  GV_CHECK(adj.rows() == adj.cols() && adj.rows() == x.rows(),
           "GatLayer adjacency shape mismatch");
  const std::size_t n = x.rows(), h = out_dim();
  Matrix z = matmul(x, w_.value);

  // Per-node attention projections s_i = z_i . a_src, t_i = z_i . a_dst.
  std::vector<float> s(n, 0.0f), t(n, 0.0f);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const float* zr = z.data() + i * h;
    float si = 0.0f, ti = 0.0f;
    for (std::size_t c = 0; c < h; ++c) {
      si += zr[c] * a_src_.value[c];
      ti += zr[c] * a_dst_.value[c];
    }
    s[i] = si;
    t[i] = ti;
  }

  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  std::vector<float> alpha(adj.nnz());
  std::vector<float> pre(adj.nnz());
  Matrix y(n, h, 0.0f);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    // Row-wise softmax over LeakyReLU scores, numerically stabilized.
    float mx = -1e30f;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      const float raw = s[i] + t[ci[p]];
      const float act = raw > 0.0f ? raw : leaky_slope_ * raw;
      pre[p] = raw;
      alpha[p] = act;
      mx = std::max(mx, act);
    }
    double denom = 0.0;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      alpha[p] = std::exp(alpha[p] - mx);
      denom += alpha[p];
    }
    if (denom <= 0.0) continue;  // isolated node without self-loop
    float* yr = y.data() + i * h;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      alpha[p] = static_cast<float>(alpha[p] / denom);
      const float* zj = z.data() + static_cast<std::size_t>(ci[p]) * h;
      for (std::size_t c = 0; c < h; ++c) yr[c] += alpha[p] * zj[c];
    }
  }
  add_bias_rows(y, b_.value);
  if (training) {
    cached_input_ = x;
    cached_z_ = std::move(z);
    cached_alpha_ = std::move(alpha);
    cached_pre_ = std::move(pre);
  }
  return y;
}

Matrix GatLayer::backward(const CsrMatrix& adj, const Matrix& dy) {
  GV_CHECK(!cached_input_.empty(), "backward() requires a training forward");
  GV_CHECK(dy.rows() == cached_input_.rows() && dy.cols() == out_dim(),
           "GatLayer backward shape mismatch");
  const std::size_t n = dy.rows(), h = out_dim();
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();

  const auto db = col_sums(dy);
  for (std::size_t i = 0; i < db.size(); ++i) b_.grad[i] += db[i];

  // dalpha_ij = dy_i . z_j ; softmax + LeakyReLU backward per row.
  std::vector<float> dpre(adj.nnz(), 0.0f);
  Matrix dz(n, h, 0.0f);
  std::vector<float> ds(n, 0.0f), dt_acc(adj.nnz(), 0.0f);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const float* dyr = dy.data() + i * h;
    // dalpha and the softmax-row dot product.
    double dot = 0.0;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      const float* zj = cached_z_.data() + static_cast<std::size_t>(ci[p]) * h;
      float da = 0.0f;
      for (std::size_t c = 0; c < h; ++c) da += dyr[c] * zj[c];
      dpre[p] = da;  // temporarily holds dalpha
      dot += static_cast<double>(da) * cached_alpha_[p];
    }
    float dsi = 0.0f;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      float de = cached_alpha_[p] * (dpre[p] - static_cast<float>(dot));
      de *= cached_pre_[p] > 0.0f ? 1.0f : leaky_slope_;
      dpre[p] = de;
      dsi += de;
      dt_acc[p] = de;  // contribution to dt[ci[p]], scattered below
    }
    ds[i] = dsi;
    // Aggregation path: dz_j += alpha_ij dy_i (scattered below, serial-safe
    // per-row here only for j == i? no — handled after the loop).
  }
  // Scatter passes that write across rows are done serially (nnz is the
  // graph size; this is not the hot path).
  std::vector<float> dt(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const float* dyr = dy.data() + i * h;
    for (std::int64_t p = rp[i]; p < rp[i + 1]; ++p) {
      const std::size_t j = ci[p];
      dt[j] += dt_acc[p];
      float* dzj = dz.data() + j * h;
      const float a = cached_alpha_[p];
      for (std::size_t c = 0; c < h; ++c) dzj[c] += a * dyr[c];
    }
  }
  // Attention-vector gradients and the dz contributions via s and t.
  for (std::size_t i = 0; i < n; ++i) {
    const float* zi = cached_z_.data() + i * h;
    float* dzi = dz.data() + i * h;
    for (std::size_t c = 0; c < h; ++c) {
      a_src_.grad[c] += ds[i] * zi[c];
      a_dst_.grad[c] += dt[i] * zi[c];
      dzi[c] += ds[i] * a_src_.value[c] + dt[i] * a_dst_.value[c];
    }
  }
  w_.grad += matmul_tn(cached_input_, dz);
  return matmul_nt(dz, w_.value);
}

void GatLayer::collect_parameters(ParamRefs& refs) {
  refs.matrices.push_back(&w_);
  refs.vectors.push_back(&a_src_);
  refs.vectors.push_back(&a_dst_);
  refs.vectors.push_back(&b_);
}

}  // namespace gv
