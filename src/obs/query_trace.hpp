// QueryLens per-query causal tracing: a 64-bit query id allocated at
// MicroBatchQueue enqueue and carried through batch flush -> ShardRouter ->
// per-shard ecalls -> attested-channel halo-pull request trailers (so a
// peer's cold_halo_serve work is attributed to the originating query) ->
// cold recursion.
//
// Propagation is a thread-local "current query" slot managed by the RAII
// QueryScope: the worker flushing a batch enters the scope of the batch's
// representative entry, and every TraceSpan destroyed under the scope
// auto-attaches a "query_id" arg — one filter in Perfetto reconstructs a
// single query's cross-shard cascade.  Crossing an attested channel, the id
// rides as a sealed 8-byte trailer on the halo-pull request payload
// (observability context, not frontier data: it is excluded from the
// logical request-byte audit but padded/sealed with everything else), and
// the serving shard re-enters the received scope before emitting its
// halo_serve span — attribution genuinely flows through the channel, not
// through shared process state.
//
// The critical-path breakdown lands in per-stage wall-second histograms
// (`query.stage_seconds{stage=...}` in the global MetricsRegistry):
//
//   queue  enqueue -> batch flush start, per entry
//   flush  one batch end-to-end (routing, ecalls, fan-out included)
//   ecall  in-enclave label lookups (per shard sub-batch)
//   halo   a peer shard serving one cold halo pull
//   cold   one demand-driven cold cross-shard walk
//   fence  migration/update fences + promotion fence waits
//
// Stages overlap by construction (flush contains ecall/cold/fence): each
// histogram answers "where does a query's time go" per mechanism, which is
// the direct measurement AsyncFabric's overlap fraction will be judged
// against.  Recording is a steady_clock read plus a few relaxed atomics and
// is always on — unlike spans it needs no GNNVAULT_TRACE opt-in.
#pragma once

#include <cstdint>

namespace gv {

/// Allocate a fresh, never-zero query id (process-wide monotonic; ids stay
/// below 2^53, so the double-typed span arg round-trips exactly).
std::uint64_t next_query_id();

/// The calling thread's current query id; 0 when no query is in scope.
std::uint64_t current_query_id();

/// RAII: set the calling thread's current query id, restoring the previous
/// one on destruction (scopes nest; entering id 0 deliberately clears the
/// context, e.g. a peer shard that received no halo request).
class QueryScope {
 public:
  explicit QueryScope(std::uint64_t id);
  ~QueryScope();
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Critical-path stages of one query (see the breakdown table above).
enum class QueryStage : int {
  kQueue = 0,
  kFlush,
  kEcall,
  kHalo,
  kCold,
  kFence,
};

/// Stable lowercase stage name ("queue", "flush", ...).
const char* query_stage_name(QueryStage stage);

/// Record `wall_seconds` into the stage's histogram
/// `query.stage_seconds{stage=<name>}` in MetricsRegistry::global().
/// Instrument references are resolved once and cached.
void record_query_stage(QueryStage stage, double wall_seconds);

}  // namespace gv
