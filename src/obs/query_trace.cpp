#include "obs/query_trace.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace gv {

namespace {

std::atomic<std::uint64_t> g_next_query_id{1};
thread_local std::uint64_t t_current_query_id = 0;

}  // namespace

std::uint64_t next_query_id() {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_query_id() { return t_current_query_id; }

QueryScope::QueryScope(std::uint64_t id) : prev_(t_current_query_id) {
  t_current_query_id = id;
}

QueryScope::~QueryScope() { t_current_query_id = prev_; }

const char* query_stage_name(QueryStage stage) {
  switch (stage) {
    case QueryStage::kQueue:
      return "queue";
    case QueryStage::kFlush:
      return "flush";
    case QueryStage::kEcall:
      return "ecall";
    case QueryStage::kHalo:
      return "halo";
    case QueryStage::kCold:
      return "cold";
    case QueryStage::kFence:
      return "fence";
  }
  return "unknown";
}

void record_query_stage(QueryStage stage, double wall_seconds) {
  // Resolved once per process: the registry guarantees reference stability
  // for its lifetime, and reset() zeroes instruments without invalidating
  // them — the hot path never re-takes the registry mutex.
  static Histogram* stages[] = {
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "queue")),
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "flush")),
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "ecall")),
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "halo")),
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "cold")),
      &MetricsRegistry::global().histogram(
          "query.stage_seconds", MetricLabels::of("stage", "fence")),
  };
  stages[static_cast<int>(stage)]->record(wall_seconds);
}

}  // namespace gv
