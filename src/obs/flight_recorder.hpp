// QueryLens FlightRecorder: fault-triggered postmortem bundles.
//
// A dead shard, a failed promotion, a channel-audit anomaly, or an SLO page
// used to leave nothing behind but a log line; by the time anyone looks,
// the trace rings have wrapped and the fleet state has moved on.  The
// recorder is armed with a directory (configure()); every trip() then dumps
// one self-contained JSON bundle capturing the moment of the fault:
//
//   fault       kind + shard + human detail,
//   spans       the most recent TraceEvents across all thread rings
//               (query ids included, so the victim query is identifiable),
//   metrics     a full MetricsRegistry::global() snapshot,
//   timeseries  the attached TimeSeriesRing's windows (null when none),
//   topology    the registered provider's fleet JSON — per-shard alive /
//               replica-state / store flags (null when none).
//
// Bundles are sequence-numbered (`flight_<seq>_<kind>.json`) so cascading
// faults order themselves, and validate_flight_bundle() is the independent
// schema check (like validate_trace_json for traces) that tests and CI run
// against the dumped file.  Unarmed, trip() is a counter bump — the
// recorder costs nothing until a fault actually needs it.
//
// Lock discipline: trip() may be called from fault paths that hold
// control-plane locks (the server's promotion_mu_, the replica manager's
// replicate_mu_), so everything it calls — trace snapshot, registry
// to_json, ring to_json, topology provider — must only take its own leaf
// locks.  Topology providers in particular must read atomics / lock-free
// state, never re-enter the control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/timeseries.hpp"
#include "common/annotations.hpp"

namespace gv {

enum class FaultKind : int {
  kDeadShard = 0,
  kPromotionFailure,
  kChannelAnomaly,
  kSloPage,
  kManual,
};

/// Stable snake_case name ("dead_shard", ...), used in filenames and the
/// bundle's fault.kind field.
const char* fault_kind_name(FaultKind kind);

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Arm the recorder: bundles land in `dir` (created if missing), each
  /// carrying at most `max_spans` recent spans.
  void configure(const std::string& dir, std::size_t max_spans = 512);
  /// Disarm (trip() reverts to counting only).  The sequence number and
  /// trip counter survive, attached ring / provider registrations too.
  void disarm();
  bool armed() const;

  /// Attach the ring whose windows future bundles embed (nullptr detaches).
  /// The ring must outlive the attachment.
  void attach_timeseries(const TimeSeriesRing* ring);

  /// Register the fleet-topology JSON provider.  `owner` scopes the
  /// registration: clear_topology_provider(owner) only removes a provider
  /// the same owner installed, so a dying server never unhooks its
  /// successor's.
  void set_topology_provider(const void* owner,
                             std::function<std::string()> provider);
  void clear_topology_provider(const void* owner);

  /// Record a fault.  Armed: writes the bundle and returns its path.
  /// Unarmed (or on a write failure, which must never take the serving
  /// stack down with it): returns "".  `shard` is -1 when no single shard
  /// is implicated (e.g. an SLO page).
  std::string trip(FaultKind kind, int shard, const std::string& detail);

  /// Lifetime trip() calls (armed or not).
  std::uint64_t trips() const;

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
  bool armed_ = false;
  std::string dir_;
  std::size_t max_spans_ = 512;
  std::uint64_t seq_ = 0;
  std::uint64_t trips_ = 0;
  const TimeSeriesRing* ring_ = nullptr;
  const void* topology_owner_ = nullptr;
  std::function<std::string()> topology_;
};

/// Validate that `json` parses as a flight-recorder bundle: syntactically
/// well-formed JSON whose top-level object carries schema
/// "gnnvault.flight_recorder.v1" plus the seq / fault / wall_ns / spans /
/// metrics / timeseries / topology keys, with a fault object naming a known
/// kind.  Returns true on success; on failure fills `error` (when non-null)
/// with a human-readable reason.
bool validate_flight_bundle(const std::string& json,
                            std::string* error = nullptr);

}  // namespace gv
