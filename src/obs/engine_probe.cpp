#include "obs/engine_probe.hpp"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "serve/batch_queue.hpp"
#include "serve/submit_token.hpp"

namespace gv {

namespace {

constexpr const char* kLaneNames[kNumJobClasses] = {"interactive", "cold",
                                                    "maintenance"};

// Process-wide live-probe set for pull_all()/engines_json().  A plain
// std::mutex (outside the rank table) ordered strictly before any probe
// mutex; never taken from engine code.
std::mutex& probes_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<EngineProbe*>& probes() {
  static std::vector<EngineProbe*> v;
  return v;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

EngineProbe::EngineProbe(MetricsRegistry& reg, const std::string& engine)
    : reg_(reg), engine_(engine) {
  std::lock_guard<std::mutex> lock(probes_mu());
  probes().push_back(this);
}

EngineProbe::~EngineProbe() {
  std::lock_guard<std::mutex> lock(probes_mu());
  auto& v = probes();
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == this) {
      v.erase(it);
      break;
    }
  }
}

void EngineProbe::attach(const JobSystem* jobs, const TokenPool* tokens,
                         const MicroBatchQueue* queue) {
  // Taking pull_mu_ (not just mu_) makes attach a barrier against pull():
  // once attach(nullptr, ...) returns, no pull is still reading the old
  // engine objects, so the caller may safely destroy them.
  std::lock_guard<std::mutex> pull_lock(pull_mu_);
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  jobs_ = jobs;
  tokens_ = tokens;
  queue_ = queue;
}

void EngineProbe::resolve_scalars_locked() {
  if (scalars_resolved_) return;
  const MetricLabels eng = MetricLabels::of("engine", engine_);
  steals_hit_ = &reg_.counter(
      "jobs.steals", MetricLabels{{"engine", engine_}, {"result", "hit"}});
  steals_miss_ = &reg_.counter(
      "jobs.steals", MetricLabels{{"engine", engine_}, {"result", "miss"}});
  maint_cap_ = &reg_.gauge("jobs.maintenance_cap", eng);
  maint_in_flight_ = &reg_.gauge("jobs.maintenance_in_flight", eng);
  maint_hw_ = &reg_.gauge("jobs.maintenance_high_water", eng);
  tokens_capacity_ = &reg_.gauge("tokens.capacity", eng);
  tokens_free_ = &reg_.gauge("tokens.free", eng);
  tokens_in_use_ = &reg_.gauge("tokens.in_use", eng);
  tokens_chunks_ = &reg_.gauge("tokens.chunks", eng);
  arena_retained_ = &reg_.gauge("arena.retained_bytes", eng);
  arena_blocks_ = &reg_.gauge("arena.blocks", eng);
  arena_hw_ = &reg_.gauge("arena.high_water_bytes", eng);
  queue_depth_hw_ = &reg_.gauge("queue.depth_high_water", eng);
  queue_slots_ = &reg_.gauge("queue.slots", eng);
  queue_free_slots_ = &reg_.gauge("queue.free_slots", eng);
  queue_index_ = &reg_.gauge("queue.index_size", eng);
  scalars_resolved_ = true;
}

void EngineProbe::resolve_worker_locked(std::size_t i) {
  while (worker_instruments_.size() <= i) {
    const std::string w = std::to_string(worker_instruments_.size());
    WorkerInstruments ins;
    for (std::size_t c = 0; c < kNumJobClasses; ++c) {
      const MetricLabels lane{
          {"engine", engine_}, {"worker", w}, {"lane", kLaneNames[c]}};
      ins.executed[c] = &reg_.counter("jobs.executed", lane);
      ins.depth[c] = &reg_.gauge("jobs.depth", lane);
      ins.depth_hw[c] = &reg_.gauge("jobs.depth_high_water", lane);
    }
    const MetricLabels wl{{"engine", engine_}, {"worker", w}};
    ins.parks = &reg_.counter("jobs.parks", wl);
    ins.unparks = &reg_.counter("jobs.unparks", wl);
    worker_instruments_.push_back(ins);
    worker_prev_.emplace_back();
  }
}

void EngineProbe::publish_token_pool(std::size_t capacity,
                                     std::size_t free_count,
                                     std::size_t chunks) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  resolve_scalars_locked();
  tokens_capacity_->set(static_cast<double>(capacity));
  tokens_free_->set(static_cast<double>(free_count));
  tokens_in_use_->set(static_cast<double>(capacity - free_count));
  tokens_chunks_->set(static_cast<double>(chunks));
}

void EngineProbe::add_arena_delta(double retained_bytes, double blocks,
                                  double high_water_bytes) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  resolve_scalars_locked();
  if (retained_bytes != 0.0) arena_retained_->add(retained_bytes);
  if (blocks != 0.0) arena_blocks_->add(blocks);
  if (high_water_bytes != 0.0) arena_hw_->add(high_water_bytes);
}

void EngineProbe::pull() {
  // One pull at a time, gather THROUGH fold: interleaved pulls could fold
  // an older worker snapshot after a newer one already advanced prev_*,
  // underflowing the unsigned deltas fed to the monotone counters.
  // Holding pull_mu_ across the engine-state reads also lets attach()
  // synchronize teardown (see attach()).
  std::lock_guard<std::mutex> pull_lock(pull_mu_);
  // Gather engine state BEFORE taking mu_: the accessors below acquire
  // kJobQueue/kTokenState/kQueue locks, all of which rank below the probe's
  // kTelemetry mutex.
  const JobSystem* jobs = nullptr;
  const TokenPool* tokens = nullptr;
  const MicroBatchQueue* queue = nullptr;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    jobs = jobs_;
    tokens = tokens_;
    queue = queue_;
  }

  std::vector<JobWorkerSnapshot> snaps;
  std::size_t maint_cap = 0, maint_in_flight = 0, maint_hw = 0;
  if (jobs != nullptr) {
    snaps = jobs->worker_snapshots();
    maint_cap = jobs->max_maintenance_in_flight();
    maint_in_flight = jobs->maintenance_in_flight();
    maint_hw = jobs->maintenance_high_water();
  }
  std::size_t tok_capacity = 0, tok_free = 0, tok_chunks = 0;
  if (tokens != nullptr) {
    tok_capacity = tokens->capacity();
    tok_free = tokens->free_count();
    tok_chunks = tokens->num_chunks();
  }
  std::size_t q_depth_hw = 0, q_slots = 0, q_free = 0, q_index = 0;
  if (queue != nullptr) {
    q_depth_hw = queue->depth_high_water();
    q_slots = queue->slot_capacity();
    q_free = queue->free_slots();
    q_index = queue->index_size();
  }

  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  resolve_scalars_locked();

  std::uint64_t exec_total[kNumJobClasses] = {0, 0, 0};
  std::uint64_t hits = 0, misses = 0, parks = 0, unparks = 0;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    resolve_worker_locked(i);
    WorkerInstruments& ins = worker_instruments_[i];
    WorkerPrev& prev = worker_prev_[i];
    const JobWorkerSnapshot& s = snaps[i];
    for (std::size_t c = 0; c < kNumJobClasses; ++c) {
      ins.executed[c]->add(s.executed[c] - prev.executed[c]);
      prev.executed[c] = s.executed[c];
      ins.depth[c]->set(static_cast<double>(s.depth[c]));
      ins.depth_hw[c]->set(static_cast<double>(s.depth_high_water[c]));
      exec_total[c] += s.executed[c];
    }
    ins.parks->add(s.parks - prev.parks);
    ins.unparks->add(s.unparks - prev.unparks);
    prev.parks = s.parks;
    prev.unparks = s.unparks;
    hits += s.steal_hits;
    misses += s.steal_misses;
    parks += s.parks;
    unparks += s.unparks;
  }
  if (jobs != nullptr) {
    steals_hit_->add(hits - prev_steal_hits_);
    steals_miss_->add(misses - prev_steal_misses_);
    prev_steal_hits_ = hits;
    prev_steal_misses_ = misses;
    maint_cap_->set(static_cast<double>(maint_cap));
    maint_in_flight_->set(static_cast<double>(maint_in_flight));
    maint_hw_->set(static_cast<double>(maint_hw));
  }
  if (tokens != nullptr) {
    tokens_capacity_->set(static_cast<double>(tok_capacity));
    tokens_free_->set(static_cast<double>(tok_free));
    tokens_in_use_->set(static_cast<double>(tok_capacity - tok_free));
    tokens_chunks_->set(static_cast<double>(tok_chunks));
  }
  if (queue != nullptr) {
    queue_depth_hw_->set(static_cast<double>(q_depth_hw));
    queue_slots_->set(static_cast<double>(q_slots));
    queue_free_slots_->set(static_cast<double>(q_free));
    queue_index_->set(static_cast<double>(q_index));
  }

  std::ostringstream os;
  os << "{\"engine\":\"";
  std::string esc;
  append_escaped(esc, engine_);
  os << esc << "\",\"workers\":" << snaps.size() << ",\"executed\":{";
  for (std::size_t c = 0; c < kNumJobClasses; ++c) {
    if (c != 0) os << ",";
    os << "\"" << kLaneNames[c] << "\":" << exec_total[c];
  }
  os << "},\"steal_hits\":" << hits << ",\"steal_misses\":" << misses
     << ",\"parks\":" << parks << ",\"unparks\":" << unparks
     << ",\"maintenance\":{\"cap\":" << maint_cap
     << ",\"in_flight\":" << maint_in_flight << ",\"high_water\":" << maint_hw
     << "},\"tokens\":{\"capacity\":" << tok_capacity << ",\"free\":" << tok_free
     << ",\"in_use\":" << (tok_capacity - tok_free)
     << ",\"chunks\":" << tok_chunks
     << "},\"arena\":{\"retained_bytes\":"
     << static_cast<std::uint64_t>(arena_retained_->value())
     << ",\"blocks\":" << static_cast<std::uint64_t>(arena_blocks_->value())
     << ",\"high_water_bytes\":"
     << static_cast<std::uint64_t>(arena_hw_->value())
     << "},\"queue\":{\"depth_high_water\":" << q_depth_hw
     << ",\"slots\":" << q_slots << ",\"free_slots\":" << q_free
     << ",\"index_size\":" << q_index << "}}";
  snapshot_ = os.str();
}

std::string EngineProbe::snapshot_json() {
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    if (!snapshot_.empty()) return snapshot_;
  }
  pull();
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return snapshot_;
}

void EngineProbe::pull_all() {
  std::lock_guard<std::mutex> lock(probes_mu());
  for (EngineProbe* p : probes()) p->pull();
}

std::string EngineProbe::engines_json(bool live) {
  std::lock_guard<std::mutex> lock(probes_mu());
  std::string out = "[";
  bool first = true;
  for (EngineProbe* p : probes()) {
    if (!first) out += ",";
    first = false;
    if (live) p->pull();
    MutexLock plock(p->mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    out += p->snapshot_.empty() ? std::string("{}") : p->snapshot_;
  }
  out += "]";
  return out;
}

}  // namespace gv
