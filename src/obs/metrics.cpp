#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace gv {

MetricLabels::MetricLabels(
    std::initializer_list<std::pair<std::string, std::string>> init) {
  kv.assign(init.begin(), init.end());
  std::sort(kv.begin(), kv.end());
}

MetricLabels MetricLabels::of(std::string key, std::string value) {
  MetricLabels l;
  l.kv.emplace_back(std::move(key), std::move(value));
  return l;
}

std::string MetricLabels::canonical() const {
  std::string out;
  for (const auto& [k, v] : kv) {
    if (!out.empty()) out.push_back(',');
    out += k;
    out.push_back('=');
    out += v;
  }
  return out;
}

// --- Histogram. --------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (!(v > kMinValue)) return 0;  // zeros, negatives, NaN -> underflow
  // log2(v / kMinValue) * 4, floored: geometric buckets with ratio 2^(1/4).
  const int idx =
      1 + static_cast<int>(std::floor(std::log2(v / kMinValue) *
                                      kBucketsPerDoubling));
  return std::clamp(idx, 1, kNumBuckets);
}

double Histogram::bucket_upper(int i) {
  if (i <= 0) return kMinValue;
  return kMinValue * std::exp2(static_cast<double>(i) / kBucketsPerDoubling);
}

void Histogram::record(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  if (!has_min_.load(std::memory_order_relaxed)) {
    // First writer initializes min/max; a racing second writer falls
    // through to the CAS loops below, which handle it correctly.
    bool expected = false;
    if (has_min_.compare_exchange_strong(expected, true)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
      return;
    }
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m && !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (has_min_.load(std::memory_order_relaxed)) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i <= kNumBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c != 0) s.buckets.emplace_back(bucket_upper(i), c);
  }
  return s;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  const double rank = p * static_cast<double>(count - 1) + 0.5;
  std::uint64_t seen = 0;
  for (const auto& [upper, c] : buckets) {
    seen += c;
    if (static_cast<double>(seen) >= rank) {
      if (upper <= kMinValue) return 0.0;  // underflow bucket
      // Geometric mean of the bucket bounds: the estimator with bounded
      // relative error for log-spaced buckets.
      const double lower = upper / std::exp2(1.0 / kBucketsPerDoubling);
      return std::clamp(std::sqrt(lower * upper), min, max);
    }
  }
  return max;
}

void Histogram::reset() {
  for (int i = 0; i <= kNumBuckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_min_.store(false, std::memory_order_relaxed);
}

// --- Registry. ---------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  const Key key{name, labels.canonical()};
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  label_sets_.emplace(key.labels, labels);
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  const Key key{name, labels.canonical()};
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  label_sets_.emplace(key.labels, labels);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  const Key key{name, labels.canonical()};
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>();
  label_sets_.emplace(key.labels, labels);
  return *slot;
}

RegistrySample MetricsRegistry::sample() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  RegistrySample s;
  s.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    s.counters.push_back({key.name, key.labels, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    s.gauges.push_back({key.name, key.labels, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    s.histograms.push_back({key.name, key.labels, h->snapshot()});
  }
  return s;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->reset();
  for (auto& [k, h] : histograms_) h->reset();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_labels(std::string& out,
                   const std::map<std::string, MetricLabels>& sets,
                   const std::string& canonical) {
  out += "\"labels\": {";
  const auto it = sets.find(canonical);
  if (it != sets.end()) {
    bool first = true;
    for (const auto& [k, v] : it->second.kv) {
      if (!first) out += ", ";
      first = false;
      out.push_back('"');
      append_escaped(out, k);
      out += "\": \"";
      append_escaped(out, v);
      out.push_back('"');
    }
  }
  out += "}";
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  std::string out = "{\"counters\": [";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    append_escaped(out, key.name);
    out += "\", ";
    append_labels(out, label_sets_, key.labels);
    out += ", \"value\": " + std::to_string(c->value()) + "}";
  }
  out += "], \"gauges\": [";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    append_escaped(out, key.name);
    out += "\", ";
    append_labels(out, label_sets_, key.labels);
    out += ", \"value\": ";
    append_number(out, g->value());
    out += "}";
  }
  out += "], \"histograms\": [";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    const auto s = h->snapshot();
    out += "{\"name\": \"";
    append_escaped(out, key.name);
    out += "\", ";
    append_labels(out, label_sets_, key.labels);
    out += ", \"count\": " + std::to_string(s.count);
    out += ", \"sum\": ";
    append_number(out, s.sum);
    out += ", \"min\": ";
    append_number(out, s.min);
    out += ", \"max\": ";
    append_number(out, s.max);
    out += ", \"mean\": ";
    append_number(out, s.mean());
    out += ", \"p50\": ";
    append_number(out, s.percentile(0.50));
    out += ", \"p95\": ";
    append_number(out, s.percentile(0.95));
    out += ", \"p99\": ";
    append_number(out, s.percentile(0.99));
    out += "}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GV_CHECK(f.good(), "cannot open metrics output file: " + path);
  f << to_json() << "\n";
  GV_CHECK(f.good(), "failed writing metrics output file: " + path);
}

}  // namespace gv
