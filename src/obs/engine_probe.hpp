// EngineScope EngineProbe: serving-engine occupancy + throughput telemetry.
//
// PR 9 rebuilt the serving core (work-stealing JobSystem, TokenPool,
// arena-backed MicroBatchQueue) but left it almost blind: JobSystem::stats()
// was a coarse struct behind a mutex and the pools exposed no occupancy.
// The probe folds the engine's worker-local relaxed counters into labeled
// MetricsRegistry instruments on PULL (nothing on the execute/steal hot
// path pays for it), and accepts PUSHES for warm-up-only state changes
// (token-pool chunk grows, arena growth at batch release) so retained
// memory is visible without polling:
//
//   jobs.executed{engine,worker,lane}        counter (per lane fold)
//   jobs.steals{engine,result=hit|miss}      counter
//   jobs.parks / jobs.unparks{engine,worker} counter
//   jobs.depth / jobs.depth_high_water{engine,worker,lane}   gauge
//   jobs.maintenance_{cap,in_flight,high_water}{engine}      gauge
//   tokens.{capacity,free,in_use,chunks}{engine}             gauge (push)
//   arena.{retained_bytes,blocks,high_water_bytes}{engine}   gauge (push)
//   queue.{depth_high_water,slots,free_slots,index_size}{engine}  gauge
//
// The `engine` label is the owning front end's tenant name (ServerConfig::
// tenant), so engine pressure lines up with the TenantLedger's attribution.
// Every live probe registers itself; ops_report() calls pull_all() and
// embeds the per-engine snapshots.
//
// Lock discipline: push APIs take only the probe's own kTelemetry mutex
// (plus, lazily, the registry's kTelemetry mutex to resolve an instrument),
// so publishers may call them under serving leaves (kTokenState, kJobQueue
// — both below kTelemetry).  pull() gathers engine state BEFORE taking the
// probe mutex, because the deque/queue accessors it reads rank BELOW
// kTelemetry.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"
#include "obs/metrics.hpp"
#include "serve/job_system.hpp"

namespace gv {

class TokenPool;
class MicroBatchQueue;

class EngineProbe {
 public:
  /// Registers the probe in the process-wide set pull_all() walks.
  EngineProbe(MetricsRegistry& reg, const std::string& engine);
  ~EngineProbe();

  EngineProbe(const EngineProbe&) = delete;
  EngineProbe& operator=(const EngineProbe&) = delete;

  /// Attach the engine pieces pull() reads.  Any may be null (skipped).
  /// The attached objects must outlive the probe.
  void attach(const JobSystem* jobs, const TokenPool* tokens,
              const MicroBatchQueue* queue);

  const std::string& engine() const { return engine_; }

  /// Push APIs — state-change publishing (atomic gauge stores; instruments
  /// resolve lazily on first use, a warm-up-only event).
  void publish_token_pool(std::size_t capacity, std::size_t free_count,
                          std::size_t chunks);
  /// Per-batch arenas publish GROWTH DELTAS (the gauges aggregate across
  /// the owner's whole batch pool); negative deltas rewind on batch death.
  void add_arena_delta(double retained_bytes, double blocks,
                       double high_water_bytes);

  /// Fold the engine's worker-local counters + occupancy into the registry
  /// (delta-based: registry counters stay monotone) and refresh the cached
  /// per-engine snapshot ops_report() embeds.
  void pull();

  /// Last pull()'s snapshot as one JSON object (pulls first if never
  /// pulled).  {"engine":...,"workers":N,"executed":{...},...}.
  std::string snapshot_json();

  /// pull() every live probe (ops_report, benches).
  static void pull_all();
  /// JSON array of every live probe's cached snapshot.  `live` pulls
  /// first; pass false from leaf-lock-only contexts (flight bundles).
  static std::string engines_json(bool live = true);

 private:
  struct WorkerInstruments {
    Counter* executed[kNumJobClasses] = {nullptr, nullptr, nullptr};
    Counter* parks = nullptr;
    Counter* unparks = nullptr;
    Gauge* depth[kNumJobClasses] = {nullptr, nullptr, nullptr};
    Gauge* depth_hw[kNumJobClasses] = {nullptr, nullptr, nullptr};
  };
  struct WorkerPrev {
    std::uint64_t executed[kNumJobClasses] = {0, 0, 0};
    std::uint64_t parks = 0;
    std::uint64_t unparks = 0;
  };

  void resolve_worker_locked(std::size_t i) GV_REQUIRES(mu_);
  void resolve_scalars_locked() GV_REQUIRES(mu_);

  MetricsRegistry& reg_;
  const std::string engine_;

  /// Serializes pull() end-to-end (gather + delta fold).  Two interleaved
  /// pulls could otherwise fold an older snapshot after a newer one and
  /// underflow the unsigned counter deltas.  attach() also takes it, so a
  /// detach (front-end teardown) blocks until any in-flight pull has
  /// finished reading the engine objects.  Plain std::mutex outside the
  /// rank table, ordered before the engine locks and mu_ (and after the
  /// process-wide probes mutex pull_all() holds).
  std::mutex pull_mu_;

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry){
      gv::lockrank::kTelemetry};
  const JobSystem* jobs_ GV_GUARDED_BY(mu_) = nullptr;
  const TokenPool* tokens_ GV_GUARDED_BY(mu_) = nullptr;
  const MicroBatchQueue* queue_ GV_GUARDED_BY(mu_) = nullptr;

  std::vector<WorkerInstruments> worker_instruments_ GV_GUARDED_BY(mu_);
  std::vector<WorkerPrev> worker_prev_ GV_GUARDED_BY(mu_);
  std::uint64_t prev_steal_hits_ GV_GUARDED_BY(mu_) = 0;
  std::uint64_t prev_steal_misses_ GV_GUARDED_BY(mu_) = 0;

  bool scalars_resolved_ GV_GUARDED_BY(mu_) = false;
  Counter* steals_hit_ GV_GUARDED_BY(mu_) = nullptr;
  Counter* steals_miss_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* maint_cap_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* maint_in_flight_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* maint_hw_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* tokens_capacity_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* tokens_free_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* tokens_in_use_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* tokens_chunks_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* arena_retained_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* arena_blocks_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* arena_hw_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* queue_depth_hw_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* queue_slots_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* queue_free_slots_ GV_GUARDED_BY(mu_) = nullptr;
  Gauge* queue_index_ GV_GUARDED_BY(mu_) = nullptr;

  std::string snapshot_ GV_GUARDED_BY(mu_);
};

}  // namespace gv
