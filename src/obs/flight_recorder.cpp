#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_export.hpp"
#include "obs/trace.hpp"

namespace gv {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeadShard:
      return "dead_shard";
    case FaultKind::kPromotionFailure:
      return "promotion_failure";
    case FaultKind::kChannelAnomaly:
      return "channel_anomaly";
    case FaultKind::kSloPage:
      return "slo_page";
    case FaultKind::kManual:
      return "manual";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::configure(const std::string& dir, std::size_t max_spans) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  armed_ = true;
  dir_ = dir;
  max_spans_ = max_spans;
}

void FlightRecorder::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  armed_ = false;
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return armed_;
}

void FlightRecorder::attach_timeseries(const TimeSeriesRing* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ring_ = ring;
}

void FlightRecorder::set_topology_provider(
    const void* owner, std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  topology_owner_ = owner;
  topology_ = std::move(provider);
}

void FlightRecorder::clear_topology_provider(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (topology_owner_ != owner) return;
  topology_owner_ = nullptr;
  topology_ = nullptr;
}

std::uint64_t FlightRecorder::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return trips_;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string FlightRecorder::trip(FaultKind kind, int shard,
                                 const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  ++trips_;
  MetricsRegistry::global()
      .counter("flight.trips", MetricLabels::of("kind", fault_kind_name(kind)))
      .add(1);
  if (!armed_) return "";

  auto& rec = TraceRecorder::instance();
  std::string out = "{\"schema\": \"gnnvault.flight_recorder.v1\"";
  out += ", \"seq\": " + std::to_string(seq_);
  out += ", \"wall_ns\": " + std::to_string(rec.now_ns());
  out += ", \"fault\": {\"kind\": \"";
  out += fault_kind_name(kind);
  out += "\", \"shard\": " + std::to_string(shard);
  out += ", \"detail\": \"";
  append_escaped(out, detail.c_str());
  out += "\"}";

  // Most recent spans across every thread ring (snapshot() sorts by start).
  out += ", \"spans\": [";
  {
    const auto events = rec.snapshot();
    const std::size_t take = std::min(max_spans_, events.size());
    for (std::size_t i = events.size() - take; i < events.size(); ++i) {
      const auto& ev = events[i];
      if (i != events.size() - take) out += ", ";
      out += "{\"cat\": \"";
      append_escaped(out, ev.category);
      out += "\", \"name\": \"";
      append_escaped(out, ev.name);
      out += "\", \"ts_ns\": " + std::to_string(ev.start_ns);
      out += ", \"dur_ns\": " + std::to_string(ev.dur_ns);
      out += ", \"modeled_sgx_s\": ";
      append_number(out, ev.modeled_s);
      out += ", \"args\": {";
      for (int a = 0; a < ev.num_args; ++a) {
        if (a != 0) out += ", ";
        out.push_back('"');
        append_escaped(out, ev.args[a].key);
        out += "\": ";
        append_number(out, ev.args[a].value);
      }
      out += "}}";
    }
  }
  out += "]";

  out += ", \"metrics\": " + MetricsRegistry::global().to_json();
  // EngineScope ops snapshot (cached ledger + last-pulled engine probes):
  // leaf-lock-only, so it is safe under the fault-path locks trip() allows.
  out += ", \"ops\": " + ops_report_cached();
  out += ", \"timeseries\": ";
  out += ring_ != nullptr ? ring_->to_json() : std::string("null");
  out += ", \"topology\": ";
  if (topology_) {
    // A provider that throws mid-fault must not mask the fault itself.
    try {
      out += topology_();
    } catch (const std::exception& e) {
      out += "null";
      GV_LOG_WARN << "flight-recorder topology provider failed: " << e.what();
    }
  } else {
    out += "null";
  }
  out += "}\n";

  char name[64];
  std::snprintf(name, sizeof(name), "flight_%04llu_%s.json",
                static_cast<unsigned long long>(seq_), fault_kind_name(kind));
  ++seq_;
  const std::string path = dir_ + "/" + name;
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    GV_LOG_WARN << "flight recorder cannot open " << path;
    return "";
  }
  f << out;
  if (!f.good()) {
    GV_LOG_WARN << "flight recorder failed writing " << path;
    return "";
  }
  return path;
}

// --- Bundle validation. ------------------------------------------------------
//
// Independent of the writer above (like validate_trace_json): a minimal
// recursive-descent JSON reader that materializes just enough structure to
// check the schema, so a writer bug cannot validate its own output.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;
  std::string error;

  explicit JsonParser(const std::string& text) : s(text) {}

  bool fail(const std::string& why) {
    error = why + " at byte " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return fail("truncated escape");
        const char e = s[pos];
        if (e == 'u') {
          if (pos + 4 >= s.size()) return fail("truncated \\u escape");
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
        if (out != nullptr && e != 'u') out->push_back(e);
      } else {
        if (out != nullptr) out->push_back(s[pos]);
      }
      ++pos;
    }
    if (pos >= s.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parse_value(JsonValue* v) {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    const char c = s[pos];
    if (c == '{') {
      ++pos;
      v->type = JsonValue::Type::kObject;
      skip_ws();
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        skip_ws();
        if (!parse_string(&key)) return false;
        if (!consume(':')) return false;
        JsonValue child;
        if (!parse_value(&child)) return false;
        v->object.emplace(std::move(key), std::move(child));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      v->type = JsonValue::Type::kArray;
      skip_ws();
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue child;
        if (!parse_value(&child)) return false;
        v->array.push_back(std::move(child));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      v->type = JsonValue::Type::kString;
      return parse_string(&v->str);
    }
    if (s.compare(pos, 4, "true") == 0) {
      v->type = JsonValue::Type::kBool;
      v->boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      v->type = JsonValue::Type::kBool;
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      v->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s[pos]))) digits = true;
      ++pos;
    }
    if (!digits) return fail("invalid value");
    v->type = JsonValue::Type::kNumber;
    v->number = std::strtod(s.c_str() + start, nullptr);
    return true;
  }
};

bool bundle_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool validate_flight_bundle(const std::string& json, std::string* error) {
  JsonParser p(json);
  JsonValue root;
  if (!p.parse_value(&root)) return bundle_error(error, p.error);
  p.skip_ws();
  if (p.pos != json.size()) {
    return bundle_error(error, "trailing bytes after the bundle document");
  }
  if (root.type != JsonValue::Type::kObject) {
    return bundle_error(error, "bundle root is not an object");
  }

  const auto schema = root.object.find("schema");
  if (schema == root.object.end() ||
      schema->second.type != JsonValue::Type::kString ||
      schema->second.str != "gnnvault.flight_recorder.v1") {
    return bundle_error(error, "missing or unknown schema");
  }
  for (const char* key : {"seq", "wall_ns"}) {
    const auto it = root.object.find(key);
    if (it == root.object.end() ||
        it->second.type != JsonValue::Type::kNumber) {
      return bundle_error(error, std::string(key) + " missing or not a number");
    }
  }

  const auto fault = root.object.find("fault");
  if (fault == root.object.end() ||
      fault->second.type != JsonValue::Type::kObject) {
    return bundle_error(error, "fault missing or not an object");
  }
  const auto& fobj = fault->second.object;
  const auto fkind = fobj.find("kind");
  if (fkind == fobj.end() || fkind->second.type != JsonValue::Type::kString) {
    return bundle_error(error, "fault.kind missing or not a string");
  }
  bool known = false;
  for (const auto k :
       {FaultKind::kDeadShard, FaultKind::kPromotionFailure,
        FaultKind::kChannelAnomaly, FaultKind::kSloPage, FaultKind::kManual}) {
    if (fkind->second.str == fault_kind_name(k)) known = true;
  }
  if (!known) return bundle_error(error, "fault.kind '" + fkind->second.str +
                                             "' is not a known fault");
  if (fobj.find("shard") == fobj.end() ||
      fobj.at("shard").type != JsonValue::Type::kNumber) {
    return bundle_error(error, "fault.shard missing or not a number");
  }
  if (fobj.find("detail") == fobj.end() ||
      fobj.at("detail").type != JsonValue::Type::kString) {
    return bundle_error(error, "fault.detail missing or not a string");
  }

  const auto spans = root.object.find("spans");
  if (spans == root.object.end() ||
      spans->second.type != JsonValue::Type::kArray) {
    return bundle_error(error, "spans missing or not an array");
  }
  for (const auto& sp : spans->second.array) {
    if (sp.type != JsonValue::Type::kObject) {
      return bundle_error(error, "span entry is not an object");
    }
    for (const char* key : {"cat", "name"}) {
      const auto it = sp.object.find(key);
      if (it == sp.object.end() ||
          it->second.type != JsonValue::Type::kString) {
        return bundle_error(error,
                            std::string("span ") + key + " missing/not string");
      }
    }
    for (const char* key : {"ts_ns", "dur_ns", "modeled_sgx_s"}) {
      const auto it = sp.object.find(key);
      if (it == sp.object.end() ||
          it->second.type != JsonValue::Type::kNumber) {
        return bundle_error(error,
                            std::string("span ") + key + " missing/not number");
      }
    }
  }

  const auto metrics = root.object.find("metrics");
  if (metrics == root.object.end() ||
      metrics->second.type != JsonValue::Type::kObject) {
    return bundle_error(error, "metrics missing or not an object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const auto it = metrics->second.object.find(key);
    if (it == metrics->second.object.end() ||
        it->second.type != JsonValue::Type::kArray) {
      return bundle_error(error,
                          std::string("metrics.") + key + " missing/not array");
    }
  }

  for (const char* key : {"timeseries", "topology"}) {
    const auto it = root.object.find(key);
    if (it == root.object.end()) {
      return bundle_error(error, std::string(key) + " missing");
    }
    if (it->second.type != JsonValue::Type::kObject &&
        it->second.type != JsonValue::Type::kNull) {
      return bundle_error(error,
                          std::string(key) + " must be an object or null");
    }
  }
  return true;
}

}  // namespace gv
